//! Cross-crate integration tests: the full Adelie stack from plugin
//! transformation through loading, execution, continuous
//! re-randomization, and attack defeat.

use adelie::core::{rerandomize_module, ModuleRegistry};
use adelie::drivers::{install_dummy, install_nic, install_nvme, specs, NicFlavor};
use adelie::gadget::{build_chain, scan};
use adelie::kernel::{Kernel, KernelConfig, ReclaimerKind, VmError, SECTOR_SIZE};
use adelie::plugin::{transform, TransformOptions};
use adelie::sched::{SchedConfig, Scheduler, SimClock};
use adelie::vmem::{Access, Fault, PAGE_SIZE};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn boot() -> (Arc<Kernel>, Arc<ModuleRegistry>) {
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    (kernel, registry)
}

#[test]
fn full_stack_ioctl_under_1ms_rerand_with_both_reclaimers() {
    // Stepped scheduler on a virtual clock: each ioctl "takes" 5 µs of
    // virtual time and every due 1 ms deadline cycles the module — the
    // cycle count is exact, not a function of machine speed.
    for reclaimer in [ReclaimerKind::Hyaline, ReclaimerKind::Ebr] {
        let kernel = Kernel::new(KernelConfig {
            reclaimer,
            ..KernelConfig::default()
        });
        let registry = ModuleRegistry::new(&kernel);
        let opts = TransformOptions::rerandomizable(true);
        install_dummy(&registry, &opts).unwrap();
        let clock = SimClock::new();
        let sched = Scheduler::spawn_stepped(
            kernel.clone(),
            registry.clone(),
            &[(
                "dummy",
                adelie::sched::Policy::FixedPeriod(Duration::from_millis(1)),
            )],
            SchedConfig::serial(Duration::from_millis(1)),
            clock.clone(),
            Duration::from_micros(50),
        );
        let mut vm = kernel.vm();
        for i in 0..2000u64 {
            assert_eq!(
                kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, i).unwrap(),
                i,
                "{reclaimer:?}"
            );
            clock.advance(Duration::from_micros(5));
            while sched
                .peek_deadline_ns()
                .is_some_and(|d| d <= clock.now_ns())
            {
                sched.step();
            }
        }
        let stats = sched.stop();
        // 2000 ioctls × 5 µs ≈ 10 ms of virtual time at a 1 ms period
        // (cycle cost stretches the spacing slightly).
        assert!(
            (8..=11).contains(&stats.cycles),
            "{reclaimer:?}: {} cycles — virtual time makes this exact-ish",
            stats.cycles
        );
        assert_eq!(stats.failures, 0, "{reclaimer:?}");
        kernel.reclaim.flush();
        assert_eq!(
            kernel.reclaim.stats().delta(),
            0,
            "{reclaimer:?} drained everything"
        );
    }
}

#[test]
fn leaked_gadget_chain_dies_with_the_next_period() {
    // The §6 JIT-ROP scenario as an assertion.
    let (kernel, registry) = boot();
    let spec = adelie::gadget::synth_module("vuln", 16 * 1024, 0xA77ACC);
    let opts = TransformOptions::rerandomizable(true);
    let obj = transform(&spec, &opts).unwrap();
    let module = registry.load(&obj, &opts).unwrap();

    // Leak + scan + build.
    let base = module.movable_base.load(Ordering::Relaxed);
    let text_pages = module.movable.groups[0].pages;
    let mut text = vec![0u8; text_pages * PAGE_SIZE];
    kernel
        .space
        .read_bytes(&kernel.phys, base, &mut text)
        .unwrap();
    let gadgets = scan(&text);
    let chain = build_chain(
        &gadgets,
        base,
        [0x4000_0000, 1, 0],
        adelie::kernel::layout::NATIVE_BASE,
    );
    let Some(chain) = chain else {
        // Gadget-poor module: still fine for this test's purpose.
        return;
    };
    // Fire after one period: first hop must fault.
    rerandomize_module(&kernel, &registry, &module).unwrap();
    let mut vm = kernel.vm();
    match vm.call(chain.words[0], &[]) {
        Err(VmError::Fault(Fault::Unmapped { .. })) => {}
        other => panic!("chain should die on unmapped code, got {other:?}"),
    }
}

#[test]
fn return_address_encryption_defeats_in_window_hijack() {
    // Within a single period, a forged (plaintext) return address is
    // decrypted with the key before `ret`, landing at garbage.
    let (kernel, registry) = boot();
    let opts = TransformOptions::rerandomizable(true);
    let drv = install_dummy(&registry, &opts).unwrap();
    let key = drv.module.current_key.load(Ordering::Relaxed);
    assert_ne!(key, 0, "key must be generated at load");
    // The real function's prologue encrypts [rsp]; calling it directly
    // with a sentinel return address must NOT return cleanly (the
    // sentinel gets encrypted, then decrypted — but a *forged* hijack
    // skips the prologue: emulate by entering at the epilogue side).
    // Direct wrapper call still works:
    let mut vm = kernel.vm();
    assert_eq!(kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 5).unwrap(), 5);
    // An attacker jumping straight to the real function *body past the
    // prologue* (skipping encryption) has their return address XORed at
    // the epilogue — control lands at sentinel^key, which faults.
    let real = drv.module.symbol_va("dummy_ioctl__real").unwrap();
    // Skip the 13-byte prologue (7-byte GOT load + 4-byte xor + 3-byte
    // clear — Fig. 3b).
    let past_prologue = real + 14;
    match vm.call(past_prologue, &[0, 0, 7]) {
        Err(_) => {} // fault: decrypted sentinel is garbage
        Ok(v) => panic!("hijack skipped encryption and returned {v:#x}"),
    }
}

#[test]
fn mixed_fleet_of_configurations_coexists() {
    // PIC, legacy, and re-randomizable modules in one kernel.
    let (kernel, registry) = boot();
    install_dummy(&registry, &TransformOptions::rerandomizable(true)).unwrap();
    let nvme = install_nvme(&registry, &TransformOptions::pic(true)).unwrap();
    let nic = install_nic(
        &registry,
        &TransformOptions::vanilla(true),
        NicFlavor::E1000,
    )
    .unwrap();
    assert!(!nvme.module.rerandomizable);
    assert!(!nic.module.rerandomizable);
    let mut vm = kernel.vm();
    assert_eq!(kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 3).unwrap(), 3);
    kernel.devices.set_rx_handler(Box::new(|_| {}));
    kernel.net_xmit(&mut vm, b"frame").unwrap();
    // Storage path through the PIC nvme module.
    kernel.vfs.create("mix.bin", 1 << 16);
    let fd = kernel.vfs.open("mix.bin", true).unwrap();
    let buf = kernel
        .heap
        .kmalloc(&kernel.space, &kernel.phys, SECTOR_SIZE);
    assert_eq!(
        kernel.vfs.pread(&mut vm, fd, buf, SECTOR_SIZE, 0).unwrap(),
        SECTOR_SIZE
    );
}

#[test]
fn rerand_stress_many_threads_many_modules() {
    // Real pending calls from six racing threads, but the cycles are
    // driven deterministically from the main thread on a virtual clock:
    // exactly 60 cycles happen, no matter how fast the machine is. The
    // memory-level races (pending calls pinning retired ranges) stay
    // real — only the schedule is pinned down.
    let (kernel, registry) = boot();
    let opts = TransformOptions::rerandomizable(true);
    install_dummy(&registry, &opts).unwrap();
    let nvme = install_nvme(&registry, &opts).unwrap();
    kernel.vfs.create("stress.bin", 1 << 20);
    let clock = SimClock::new();
    let period = adelie::sched::Policy::FixedPeriod(Duration::from_millis(1));
    let sched = Scheduler::spawn_stepped(
        kernel.clone(),
        registry.clone(),
        &[("dummy", period.clone()), ("nvme", period)],
        SchedConfig {
            workers: 2,
            ..SchedConfig::default()
        },
        clock.clone(),
        Duration::from_micros(100),
    );
    std::thread::scope(|s| {
        for t in 0..6 {
            let kernel = kernel.clone();
            s.spawn(move || {
                let mut vm = kernel.vm();
                let buf = kernel
                    .heap
                    .kmalloc(&kernel.space, &kernel.phys, SECTOR_SIZE);
                let fd = kernel.vfs.open("stress.bin", true).unwrap();
                for i in 0..400u64 {
                    if t % 2 == 0 {
                        assert_eq!(kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, i).unwrap(), i);
                    } else {
                        kernel
                            .vfs
                            .pread(&mut vm, fd, buf, SECTOR_SIZE, (i % 64) * 512)
                            .unwrap();
                    }
                }
            });
        }
        // Drive exactly 60 cycles (30 virtual ms over both modules)
        // while the traffic threads hammer the wrappers.
        for _ in 0..60 {
            sched.step();
        }
    });
    let stats = sched.stop();
    assert_eq!(stats.cycles, 60, "virtual clock makes the count exact");
    assert_eq!(stats.failures, 0);
    kernel.reclaim.flush();
    assert_eq!(kernel.reclaim.stats().delta(), 0);
    assert!(nvme.device.completed() > 0);
}

#[test]
fn testkit_oracle_holds_over_a_long_deterministic_run() {
    // The standing verification backbone, from the facade level: half a
    // virtual second of hot+cold cycling, then the oracle sweeps for
    // stale mappings, SMR/stack leaks, overlapping placements, and
    // silent pointer-refresh drops.
    use adelie_testkit::{Sim, SimConfig};
    let mut sim = Sim::new(SimConfig {
        seed: 0xE2E,
        ..SimConfig::default()
    });
    sim.run_for(Duration::from_millis(500));
    assert!(sim.reports().len() >= 60, "{}", sim.reports().len());
    sim.assert_modules_work();
    sim.verify(0).assert_clean();
}

#[test]
fn long_blocking_call_delays_unmap_but_not_forever() {
    // §6 "Delayed Unmapping": a pending call pins the old range; the
    // moment it completes, reclamation proceeds.
    let (kernel, registry) = boot();
    let opts = TransformOptions::rerandomizable(true);
    let drv = install_dummy(&registry, &opts).unwrap();
    let base0 = drv.module.movable_base.load(Ordering::Relaxed);
    // A "blocked" call: mr_start held open on another CPU.
    kernel.reclaim.enter(7);
    for _ in 0..3 {
        rerandomize_module(&kernel, &registry, &drv.module).unwrap();
    }
    assert!(
        kernel.space.translate(base0, Access::Read).is_ok(),
        "oldest range pinned by the blocked call"
    );
    // Three module ranges plus any rotated stack batches stay pinned.
    assert!(kernel.reclaim.stats().delta() >= 3);
    kernel.reclaim.leave(7);
    kernel.reclaim.flush();
    assert_eq!(kernel.reclaim.stats().delta(), 0);
    assert!(kernel.space.translate(base0, Access::Read).is_err());
}

#[test]
fn physical_frames_do_not_leak_across_cycles() {
    let (kernel, registry) = boot();
    let opts = TransformOptions::rerandomizable(true);
    let drv = install_dummy(&registry, &opts).unwrap();
    // Let the first cycle flush the install-time stack out of the pool,
    // then require steady state: zero-copy cycles reuse frames.
    rerandomize_module(&kernel, &registry, &drv.module).unwrap();
    let live0 = kernel.phys.stats().frames_live;
    for _ in 0..50 {
        rerandomize_module(&kernel, &registry, &drv.module).unwrap();
    }
    let live1 = kernel.phys.stats().frames_live;
    assert_eq!(
        live0, live1,
        "zero-copy cycles must not grow physical memory"
    );
}

#[test]
fn kaslr_bases_are_unpredictable_across_boots() {
    let mut bases = std::collections::HashSet::new();
    for seed in 0..8u64 {
        let kernel = Kernel::new(KernelConfig {
            seed,
            ..KernelConfig::default()
        });
        let registry = ModuleRegistry::new(&kernel);
        let opts = TransformOptions::pic(true);
        let drv = install_dummy(&registry, &opts).unwrap();
        bases.insert(drv.module.movable_base.load(Ordering::Relaxed));
    }
    assert_eq!(bases.len(), 8, "distinct base per boot seed");
}

#[test]
fn dmesg_shape_matches_artifact_appendix() {
    let (kernel, registry) = boot();
    let opts = TransformOptions::rerandomizable(true);
    install_dummy(&registry, &opts).unwrap();
    // The deprecated shim is exactly what this test is about: the
    // legacy dmesg shape must survive the scheduler rewrite.
    #[allow(deprecated)]
    let rr = adelie::sched::Rerandomizer::spawn(
        kernel.clone(),
        registry.clone(),
        &["dummy"],
        Duration::from_millis(2),
    );
    let mut vm = kernel.vm();
    for i in 0..200u64 {
        kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, i).unwrap();
    }
    let stats = rr.stop();
    adelie::core::log_stats(&kernel, stats.randomized, &registry.stacks);
    assert!(!kernel.printk.grep("Randomize: kthread started").is_empty());
    assert!(!kernel.printk.grep("Randomized").is_empty());
    assert!(!kernel.printk.grep("SMR Retire").is_empty());
    assert!(!kernel.printk.grep("Stack Alloc").is_empty());
    // The artifact's invariant: deltas drain to zero at quiescence.
    assert!(
        kernel
            .printk
            .grep("SMR Delta: 0")
            .len()
            .max(usize::from(kernel.reclaim.stats().delta() == 0))
            >= 1
    );
}
