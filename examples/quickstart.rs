//! Quickstart: boot the simulated kernel, load a re-randomizable
//! driver, run it under continuous re-randomization, and read the
//! dmesg statistics block (the same output the paper's artifact shows).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adelie::core::ModuleRegistry;
use adelie::drivers::{install_dummy, specs::DUMMY_MINOR};
use adelie::kernel::{Kernel, KernelConfig};
use adelie::plugin::TransformOptions;
use adelie::sched::{Policy, SchedConfig, Scheduler};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn main() {
    // 1. Boot (20 simulated CPUs, Hyaline reclamation — Table 1-ish).
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);

    // 2. Build + load the dummy ioctl driver as a re-randomizable
    //    module: the plugin wraps its exported functions, injects
    //    return-address encryption, and splits movable/immovable parts.
    let opts = TransformOptions::rerandomizable(true);
    let driver = install_dummy(&registry, &opts).expect("insmod dummy");
    println!(
        "loaded `dummy`: movable base {:#x}, immovable base {:#x}",
        driver.module.movable_base.load(Ordering::Relaxed),
        driver.module.immovable.as_ref().unwrap().base,
    );
    println!(
        "  {} local / {} fixed GOT entries, {} PLT stubs, {} Fig.4 patches",
        driver.module.stats.local_got_entries,
        driver.module.stats.fixed_got_entries,
        driver.module.stats.plt_stubs,
        driver.module.stats.patched_calls + driver.module.stats.patched_movs,
    );

    // 3. Start the re-randomization scheduler. Where the paper's
    //    artifact ran one kthread at a fixed period (`modprobe randmod
    //    module_names=dummy rand_period=5`), the scheduler adapts the
    //    period to the driver's call rate and gadget exposure.
    let sched = Scheduler::spawn(
        kernel.clone(),
        registry.clone(),
        &["dummy"],
        SchedConfig {
            workers: 2,
            policy: Policy::Adaptive {
                min: Duration::from_millis(1),
                max: Duration::from_millis(25),
                rate_scale: 1_000.0,
                exposure_scale: 20.0,
            },
            ..SchedConfig::default()
        },
    );

    // 4. Hammer the driver while it moves underneath us.
    let mut vm = kernel.vm();
    let t0 = std::time::Instant::now();
    let mut calls = 0u64;
    while t0.elapsed() < Duration::from_millis(500) {
        let arg = calls;
        let ret = kernel.ioctl(&mut vm, DUMMY_MINOR, 0, arg).expect("ioctl");
        assert_eq!(ret, arg);
        calls += 1;
    }
    // 5. The artifact-appendix dmesg block plus per-module scheduler
    //    telemetry (policy, period, call rate, latency percentiles).
    sched.log_stats();
    let stats = sched.stop();
    println!(
        "\n{} ioctls served while the module re-randomized {} times \
         ({} failures, {} missed deadlines)",
        calls, stats.cycles, stats.failures, stats.missed_deadlines
    );
    println!(
        "module moved to {:#x} (generation {})",
        driver.module.movable_base.load(Ordering::Relaxed),
        driver.module.times_randomized(),
    );
    println!("\n--- dmesg ---");
    print!("{}", kernel.printk.dmesg());
}
