//! Quickstart: boot the simulated kernel, load a re-randomizable
//! driver, run it under continuous re-randomization, and read the
//! dmesg statistics block (the same output the paper's artifact shows).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use adelie::core::{log_stats, ModuleRegistry, Rerandomizer};
use adelie::drivers::{install_dummy, specs::DUMMY_MINOR};
use adelie::kernel::{Kernel, KernelConfig};
use adelie::plugin::TransformOptions;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn main() {
    // 1. Boot (20 simulated CPUs, Hyaline reclamation — Table 1-ish).
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);

    // 2. Build + load the dummy ioctl driver as a re-randomizable
    //    module: the plugin wraps its exported functions, injects
    //    return-address encryption, and splits movable/immovable parts.
    let opts = TransformOptions::rerandomizable(true);
    let driver = install_dummy(&registry, &opts).expect("insmod dummy");
    println!(
        "loaded `dummy`: movable base {:#x}, immovable base {:#x}",
        driver.module.movable_base.load(Ordering::Relaxed),
        driver.module.immovable.as_ref().unwrap().base,
    );
    println!(
        "  {} local / {} fixed GOT entries, {} PLT stubs, {} Fig.4 patches",
        driver.module.stats.local_got_entries,
        driver.module.stats.fixed_got_entries,
        driver.module.stats.plt_stubs,
        driver.module.stats.patched_calls + driver.module.stats.patched_movs,
    );

    // 3. Start the randomizer kernel thread at a 5 ms period
    //    (`modprobe randmod module_names=dummy rand_period=5`).
    let rr = Rerandomizer::spawn(
        kernel.clone(),
        registry.clone(),
        &["dummy"],
        Duration::from_millis(5),
    );

    // 4. Hammer the driver while it moves underneath us.
    let mut vm = kernel.vm();
    let t0 = std::time::Instant::now();
    let mut calls = 0u64;
    while t0.elapsed() < Duration::from_millis(500) {
        let arg = calls;
        let ret = kernel.ioctl(&mut vm, DUMMY_MINOR, 0, arg).expect("ioctl");
        assert_eq!(ret, arg);
        calls += 1;
    }
    let stats = rr.stop();
    println!(
        "\n{} ioctls served while the module re-randomized {} times",
        calls, stats.randomized
    );
    println!(
        "module moved to {:#x} (generation {})",
        driver.module.movable_base.load(Ordering::Relaxed),
        driver.module.times_randomized(),
    );

    // 5. The artifact-appendix dmesg block.
    log_stats(&kernel, stats.randomized, &registry.stacks);
    println!("\n--- dmesg ---");
    print!("{}", kernel.printk.dmesg());
}
