//! Driver-VM scenario (paper §2.8 / the SAVIOR deployment): a guest OS
//! whose whole job is running a network driver, with the driver
//! re-randomized continuously while serving traffic.
//!
//! Boots the kernel, installs the E1000E-analog NIC plus the NVMe and
//! extfs modules, starts an Apache-like file server behind the NIC, and
//! measures throughput with and without 5 ms re-randomization.
//!
//! ```sh
//! cargo run --release --example driver_vm
//! ```

use adelie::plugin::TransformOptions;
use adelie::workloads::{run_apache, DriverSet, Testbed};
use std::time::Duration;

fn main() {
    let window = Duration::from_millis(700);
    println!("driver VM: E1000E + NVMe + extfs + xHCI + FUSE, Apache-like serving\n");

    // Baseline: vanilla (non-PIC) modules.
    let tb = Testbed::new(TransformOptions::vanilla(true), DriverSet::full());
    let base = run_apache(&tb, 4096, 4, 2, window);
    println!(
        "vanilla linux      : {:>8.2} MB/s  {:>7.0} req/s  cpu {:>5.1}%",
        base.mb_per_sec(),
        base.ops_per_sec(),
        base.cpu_percent()
    );

    // Adelie, re-randomizing all five modules at 5 ms.
    let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full());
    let rr = tb.start_rerand(Duration::from_millis(5));
    let m = run_apache(&tb, 4096, 4, 2, window);
    let stats = rr.stop();
    println!(
        "adelie @ 5 ms      : {:>8.2} MB/s  {:>7.0} req/s  cpu {:>5.1}%",
        m.mb_per_sec(),
        m.ops_per_sec(),
        m.cpu_percent()
    );
    println!(
        "\nmodules re-randomized {} times during the run; SMR delta {} (all old ranges unmapped)",
        stats.randomized,
        tb.kernel.reclaim.stats().delta()
    );
    let delta = (base.mb_per_sec() - m.mb_per_sec()) / base.mb_per_sec() * 100.0;
    println!("throughput delta vs vanilla: {delta:+.1}% (paper: re-randomization does not impact throughput)");
    for name in &tb.module_names {
        let module = tb.registry.get(name).unwrap();
        println!(
            "  {:<8} generation {:>4}, movable base now {:#x}",
            name,
            module.times_randomized(),
            module
                .movable_base
                .load(std::sync::atomic::Ordering::Relaxed)
        );
    }
}
