//! Gadget survey: run the Ropper-style scanner over the real driver
//! modules of this repository plus a synthetic corpus, print the Fig. 10
//! distribution and the per-module Table 2 verdicts — including the
//! paper's observation that the *immovable* part of a re-randomizable
//! module carries a negligible share of its gadgets.
//!
//! ```sh
//! cargo run --release --example gadget_survey
//! ```

use adelie::gadget::{chain_verdict, classify::histogram, generate_corpus, scan, CorpusModule};
use adelie::obj::SectionKind;
use adelie::plugin::{transform, TransformOptions};

fn main() {
    // ---- the repository's real driver modules ----------------------
    println!("real driver modules (PIC, re-randomizable):");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>14}",
        "module", "text B", "gadgets", "in movable", "in immovable"
    );
    let opts = TransformOptions::rerandomizable(true);
    let specs = vec![
        adelie::drivers::specs::nvme_spec(0x1000_0000),
        adelie::drivers::specs::nic_spec(adelie::drivers::NicFlavor::E1000e, 0x1000_0000),
        adelie::drivers::specs::dummy_spec(),
        adelie::drivers::specs::extfs_spec(),
        adelie::drivers::specs::fuse_spec(),
    ];
    for spec in specs {
        let obj = transform(&spec, &opts).expect("transform");
        let movable = obj
            .section(SectionKind::Text)
            .map(|s| scan(&s.bytes).len())
            .unwrap_or(0);
        let immovable = obj
            .section(SectionKind::FixedText)
            .map(|s| scan(&s.bytes).len())
            .unwrap_or(0);
        let text = obj.section(SectionKind::Text).map(|s| s.size).unwrap_or(0);
        println!(
            "{:<10} {:>8} {:>10} {:>11}% {:>13}%",
            obj.name,
            text,
            movable + immovable,
            movable * 100 / (movable + immovable).max(1),
            immovable * 100 / (movable + immovable).max(1),
        );
    }
    println!("(paper: \"the immovable part of PIC modules has a negligible amount of gadgets\")");

    // ---- synthetic corpus distribution ------------------------------
    let corpus = generate_corpus(40, 4 * 1024, 64 * 1024, 0x5EED);
    let mut all = Vec::new();
    for m in &corpus {
        all.extend(scan(&CorpusModule::code_bytes(&m.pic)));
    }
    println!(
        "\nsynthetic corpus ({} modules): {} gadgets",
        corpus.len(),
        all.len()
    );
    for (class, count) in histogram(&all) {
        let bar = "#".repeat((count * 50 / all.len().max(1)).max(1));
        println!("  {:<10} {count:>7} {bar}", class.label());
    }

    // ---- Table 2 verdicts -------------------------------------------
    let mut clean = 0;
    let mut side = 0;
    let mut none = 0;
    for m in &corpus {
        match chain_verdict(&scan(&CorpusModule::code_bytes(&m.pic))) {
            adelie::gadget::ChainVerdict::CleanChain => clean += 1,
            adelie::gadget::ChainVerdict::ChainWithSideEffects => side += 1,
            adelie::gadget::ChainVerdict::NoChain => none += 1,
        }
    }
    println!(
        "\nNX-disable chain verdicts: {clean} clean, {side} with side effects, {none} without \
         (paper: ~80% of modules carry a chain — which is why gadget availability alone \
         cannot be the defence; continuous re-randomization is)"
    );
}
