//! JIT-ROP attack simulation (paper §6): an attacker who leaked a
//! module pointer scans for gadgets, builds an NX-disable chain, and
//! fires it by hijacking a return address — against a vanilla kernel
//! and against Adelie.
//!
//! Demonstrates all three defence layers:
//!  1. continuous re-randomization invalidates the leaked addresses,
//!  2. return-address encryption turns the hijacked first hop into
//!     garbage even within one period,
//!  3. 64-bit KASLR makes blind guessing infeasible (printed math).
//!
//! ```sh
//! cargo run --release --example jit_rop_attack
//! ```

use adelie::core::{rerandomize_module, ModuleRegistry};
use adelie::gadget::attack::{brute_force_success, expected_attempts};
use adelie::gadget::{build_chain, scan};
use adelie::kernel::{layout, Kernel, KernelConfig, VmError};
use adelie::plugin::TransformOptions;
use adelie::vmem::PAGE_SIZE;
use std::sync::atomic::Ordering;

/// The attacker's "malicious payload" target: a fake `set_memory_x`.
const FAKE_SET_MEMORY_X: u64 = layout::NATIVE_BASE + 0x0123_4560;

fn main() {
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);

    // A vulnerable driver with plenty of gadget-rich code.
    let spec = adelie::gadget::synth_module("vuln_drv", 32 * 1024, 0xBAD);
    let opts = TransformOptions::rerandomizable(true);
    let obj = adelie::plugin::transform(&spec, &opts).expect("transform");
    let module = registry.load(&obj, &opts).expect("insmod");

    // ---- Step 1: the information leak -----------------------------
    // A vulnerability discloses the module's current base (the paper's
    // JIT-ROP premise: read gadget addresses just-in-time).
    let leaked_base = module.movable_base.load(Ordering::Relaxed);
    println!("[leak]   movable part at {leaked_base:#x}");

    // ---- Step 2: JIT gadget discovery ------------------------------
    // The attacker reads the leaked code pages and scans them.
    let text_pages = module.movable.groups[0].pages;
    let mut text = vec![0u8; text_pages * PAGE_SIZE];
    kernel
        .space
        .read_bytes(&kernel.phys, leaked_base, &mut text)
        .expect("attacker reads leaked pages");
    let gadgets = scan(&text);
    println!("[scan]   {} gadgets discovered just-in-time", gadgets.len());

    // ---- Step 3: chain construction --------------------------------
    // args: (page to make executable, npages, flags)
    let chain = build_chain(
        &gadgets,
        leaked_base,
        [0x4000_0000, 1, 0],
        FAKE_SET_MEMORY_X,
    )
    .expect("gadget set suffices (Table 2: ~80% of modules)");
    println!("[chain]  {} words:", chain.words.len());
    for step in &chain.plan {
        println!("           {step}");
    }

    // ---- Step 4a: fire immediately (within the window) -------------
    // The attacker overwrites a return address mid-call. Return-address
    // encryption XORs every return slot with the rotating key, so the
    // very first hop lands on key-garbled bytes.
    println!("\n[attack] firing chain immediately (same period):");
    let mut vm = kernel.vm();
    let key = module.current_key.load(Ordering::Relaxed);
    let first_hop = chain.words[0] ^ key; // what the epilogue decrypts to
    match vm.call(first_hop, &[]) {
        Err(e) => println!("         defeated → {e}"),
        Ok(_) => println!("         !! chain executed (defence failed)"),
    }

    // ---- Step 4b: fire after one re-randomization period -----------
    println!("\n[attack] firing chain after one re-randomization period:");
    rerandomize_module(&kernel, &registry, &module).expect("cycle");
    match vm.call(chain.words[0], &[]) {
        Err(VmError::Fault(f)) => println!("         defeated → {f} (old range unmapped)"),
        Err(e) => println!("         defeated → {e}"),
        Ok(_) => println!("         !! chain executed (defence failed)"),
    }
    println!(
        "         module now at {:#x} with a fresh key",
        module.movable_base.load(Ordering::Relaxed)
    );

    // ---- Step 5: what about blind guessing? ------------------------
    println!("\n[brute]  blind ROP against 64-bit KASLR:");
    let bits = layout::pic_entropy_bits();
    println!(
        "         {} bits of page-aligned entropy → expected {:.2e} guesses",
        bits,
        expected_attempts(bits)
    );
    println!(
        "         P(success) with 512K guesses: {:.2e}  (32-bit KASLR: {:.2})",
        brute_force_success(bits, 512 * 1024),
        brute_force_success(layout::legacy_entropy_bits(), 512 * 1024)
    );
    println!("\nall three defence layers held.");
}
