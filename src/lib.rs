//! # adelie — continuous address space layout re-randomization
//!
//! A from-scratch reproduction of *Adelie: Continuous Address Space
//! Layout Re-randomization for Linux Drivers* (ASPLOS '22) over a
//! simulated kernel substrate. This facade crate re-exports the
//! workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`isa`] | x86-64 subset: encoder/decoder/assembler |
//! | [`vmem`] | physical frames, 5-level page tables, TLB |
//! | [`reclaim`] | Hyaline + EBR safe memory reclamation |
//! | [`obj`] | relocatable module objects (the `.ko` analog) |
//! | [`kernel`] | the simulated kernel: interpreter, kmalloc, VFS, MMIO |
//! | [`core`] | Adelie: PIC loader, four GOTs, one-cycle re-randomization, stack pools |
//! | [`sched`] | adaptive, concurrent re-randomization scheduler: worker pool, policies, CPU budget |
//! | [`plugin`] | the GCC-plugin analog (module transformer) |
//! | [`drivers`] | device models + driver modules (NVMe, E1000E, …) |
//! | [`gadget`] | ROP gadget scanning, chains, attack models |
//! | [`workloads`] | the paper's benchmark workloads |
//!
//! The verification backbone lives in `adelie-testkit` (a dev-/bench-
//! side crate, not re-exported here): a deterministic virtual-clock
//! harness with fault injection, a layout oracle, and the adversarial
//! attack-window experiment — see DESIGN.md §9.
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the architecture (§6 covers the scheduler subsystem, §9 the
//! verification & threat model).

pub use adelie_core as core;
pub use adelie_drivers as drivers;
pub use adelie_gadget as gadget;
pub use adelie_isa as isa;
pub use adelie_kernel as kernel;
pub use adelie_obj as obj;
pub use adelie_plugin as plugin;
pub use adelie_reclaim as reclaim;
pub use adelie_sched as sched;
pub use adelie_vmem as vmem;
pub use adelie_workloads as workloads;
