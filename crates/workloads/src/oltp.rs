//! The sysbench-OLTP/mySQL-like workload (Fig. 7).
//!
//! The paper runs `sysbench oltp` against mySQL over the network: a
//! database of 10 tables × 1 M rows, partially cached in memory, with
//! both the E1000E and NVMe drivers re-randomizing. The model here: 10
//! table files; each transaction is a request over the NIC that makes
//! ten 64-byte point reads (a fraction of them `O_DIRECT`, modelling the
//! uncached portion) and returns a row.

use crate::net::{AppFn, NetHarness};
use crate::{CpuMeter, Measurement, Testbed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of tables (paper: 10 tables, 1 M rows each).
pub const TABLES: usize = 10;
/// Point reads per transaction (sysbench oltp default mix).
pub const READS_PER_TXN: usize = 10;
/// Fraction of reads that miss the cache and hit NVMe (the database is
/// "partially cached in memory").
pub const DIRECT_EVERY: u64 = 10;

/// Table file size in the testbed (a scaled-down 1 M-row table).
pub const TABLE_BYTES: u64 = 1 << 22; // 4 MiB

/// Create the mySQL application closure over the testbed's files.
fn make_app(tb: &Testbed) -> AppFn {
    // fds resolved once, shared by the server threads.
    let mut cached = Vec::new();
    let mut direct = Vec::new();
    for t in 0..TABLES {
        let name = format!("sbtest{t}");
        cached.push(tb.kernel.vfs.open(&name, false).expect("table file"));
        direct.push(tb.kernel.vfs.open(&name, true).expect("table file"));
    }
    let kernel = tb.kernel.clone();
    let counter = AtomicU64::new(0);
    Arc::new(move |vm, req| {
        // Request: 8-byte transaction seed.
        let seed = if req.len() >= 8 {
            u64::from_le_bytes(req[..8].try_into().unwrap())
        } else {
            1
        };
        let buf = kernel.heap.kmalloc(&kernel.space, &kernel.phys, 512);
        let mut row = [0u8; 64];
        for k in 0..READS_PER_TXN as u64 {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(k * 0x1234_5678);
            let table = (h % TABLES as u64) as usize;
            let n = counter.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(DIRECT_EVERY) {
                // Uncached row: sector-aligned O_DIRECT read via NVMe.
                let off = ((h >> 8) % (TABLE_BYTES - 512)) & !511;
                let _ = kernel.vfs.pread(vm, direct[table], buf, 512, off);
            } else {
                let off = (h >> 8) % (TABLE_BYTES - 64);
                let _ = kernel.vfs.pread(vm, cached[table], buf, 64, off);
            }
            let mut tmp = [0u8; 8];
            // Through the CPU's TLB (batched translation) rather than a
            // pin-per-call raw space read — this is ioctl-path traffic.
            let _ = vm.read_bytes(buf, &mut tmp);
            row[(k as usize * 6) % 56..][..8].copy_from_slice(&tmp);
        }
        kernel.heap.kfree(buf);
        row.to_vec()
    })
}

/// Run the OLTP workload at the given client concurrency. Returns
/// transactions (ops) per the measurement window.
pub fn run_oltp(
    tb: &Testbed,
    concurrency: usize,
    server_threads: usize,
    duration: Duration,
) -> Measurement {
    let nic = tb.nic.as_ref().expect("testbed NIC").clone();
    let app = make_app(tb);
    let harness = NetHarness::start(tb.kernel.clone(), nic, server_threads, app);
    let meter = CpuMeter::start(&tb.kernel);
    let txns = AtomicU64::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for c in 0..concurrency {
            let harness = harness.clone();
            let txns = &txns;
            let stop = &stop;
            s.spawn(move || {
                let mut seed = 0x1000u64 + c as u64;
                while !stop.load(Ordering::Relaxed) {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if harness.request(&seed.to_le_bytes()).is_some() {
                        txns.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    let (wall, cpu) = meter.stop();
    harness.shutdown();
    Measurement {
        ops: txns.load(Ordering::Relaxed),
        bytes: txns.load(Ordering::Relaxed) * 64,
        wall,
        cpu,
    }
}
