//! # adelie-workloads — the paper's benchmark workloads
//!
//! One runner per evaluation workload, each returning a structured
//! [`Measurement`] (ops, bytes, wall time, modeled CPU usage):
//!
//! | paper workload | runner |
//! |---|---|
//! | `dd` cached reads (Fig. 5b) | [`run_dd`] |
//! | sysbench `file_io` (Fig. 5c) | [`run_fileio`] |
//! | kernbench (Fig. 5d) | [`run_kernbench`] |
//! | NVMe `O_DIRECT` loop (Fig. 6) | [`run_nvme_direct`] |
//! | sysbench OLTP / mySQL (Fig. 7) | [`run_oltp`] |
//! | ApacheBench (Fig. 8) | [`run_apache`] |
//! | null-ioctl loop (Fig. 9) | [`run_ioctl`] |
//!
//! [`Testbed`] assembles the machine: kernel + drivers built under a
//! given [`TransformOptions`] configuration + pre-created files, the
//! way Table 1's server is provisioned before each experiment.

mod apache;
mod fleet;
mod micro;
mod net;
mod oltp;

pub use apache::{run_apache, BLOCK_SIZES};
pub use fleet::{run_soak_round, FleetTestbed, PAPER_WORKLOADS};
pub use micro::{run_dd, run_fileio, run_ioctl, run_kernbench, run_nvme_direct, FileIoMode};
pub use net::{AppFn, NetHarness};
pub use oltp::{run_oltp, TABLES, TABLE_BYTES};

use adelie_core::ModuleRegistry;
use adelie_drivers::{
    install_dummy, install_extfs, install_fuse, install_nic, install_nvme, install_xhci, NicDevice,
    NicFlavor, NvmeDevice,
};
use adelie_kernel::{Kernel, KernelConfig, ReclaimerKind};
use adelie_plugin::TransformOptions;
use adelie_sched::{Policy, SchedConfig, Scheduler, SimClock};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A throughput/CPU measurement (one data point of one figure).
#[derive(Copy, Clone, Debug)]
pub struct Measurement {
    /// Operations completed (reads, ioctls, transactions, requests…).
    pub ops: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Wall-clock duration of the measurement window.
    pub wall: Duration,
    /// Modeled machine utilization over the window (0..=1).
    pub cpu: f64,
}

impl Measurement {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64()
    }

    /// Megabytes per second.
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.wall.as_secs_f64()
    }

    /// CPU usage in percent (the unit the paper's figures use).
    pub fn cpu_percent(&self) -> f64 {
        self.cpu * 100.0
    }
}

/// Measures wall time and modeled CPU usage over a window.
pub struct CpuMeter {
    kernel: Arc<Kernel>,
    busy0: u64,
    t0: Instant,
}

impl CpuMeter {
    /// Start measuring.
    pub fn start(kernel: &Arc<Kernel>) -> CpuMeter {
        CpuMeter {
            kernel: kernel.clone(),
            busy0: kernel.percpu.total_busy_ns(),
            t0: Instant::now(),
        }
    }

    /// Stop; returns `(wall, usage)`.
    pub fn stop(self) -> (Duration, f64) {
        let wall = self.t0.elapsed();
        let usage = self.kernel.percpu.usage_since(self.busy0, wall);
        (wall, usage)
    }
}

/// Which driver set to install.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DriverSet {
    /// E1000E-like NIC.
    pub nic: bool,
    /// NVMe-like storage.
    pub nvme: bool,
    /// ext4-analog block mapping.
    pub extfs: bool,
    /// Null-ioctl dummy driver.
    pub dummy: bool,
    /// xHCI + FUSE extra-load modules.
    pub extras: bool,
}

impl DriverSet {
    /// Everything (the Fig. 8 configuration).
    pub fn full() -> DriverSet {
        DriverSet {
            nic: true,
            nvme: true,
            extfs: true,
            dummy: true,
            extras: true,
        }
    }

    /// Storage-only (Fig. 6).
    pub fn storage() -> DriverSet {
        DriverSet {
            nic: false,
            nvme: true,
            extfs: true,
            dummy: false,
            extras: false,
        }
    }

    /// Dummy-only (Fig. 9).
    pub fn dummy_only() -> DriverSet {
        DriverSet {
            nic: false,
            nvme: false,
            extfs: false,
            dummy: true,
            extras: false,
        }
    }
}

/// The provisioned machine for one experiment.
pub struct Testbed {
    /// The simulated kernel.
    pub kernel: Arc<Kernel>,
    /// Module registry (for spawning a re-randomizer).
    pub registry: Arc<ModuleRegistry>,
    /// NIC device handle (when installed).
    pub nic: Option<Arc<NicDevice>>,
    /// NVMe device handle (when installed).
    pub nvme: Option<Arc<NvmeDevice>>,
    /// The module configuration used.
    pub opts: TransformOptions,
    /// Names of installed re-randomizable modules.
    pub module_names: Vec<String>,
    /// Scheduler configuration used by [`Testbed::start_scheduler`] —
    /// the knob that runs any paper workload under any policy/worker
    /// combination.
    pub sched: SchedConfig,
}

impl Testbed {
    /// Provision a testbed: boot, install `drivers` under `opts`, create
    /// and warm the benchmark files.
    pub fn new(opts: TransformOptions, drivers: DriverSet) -> Testbed {
        Testbed::with_kernel_config(
            opts,
            drivers,
            KernelConfig {
                retpoline: opts.retpoline,
                ..KernelConfig::default()
            },
        )
    }

    /// Provision with an explicit kernel configuration (reclaimer
    /// ablations, CPU-count scaling).
    pub fn with_kernel_config(
        opts: TransformOptions,
        drivers: DriverSet,
        config: KernelConfig,
    ) -> Testbed {
        Testbed::with_kernel(Kernel::new(config), opts, drivers)
    }

    /// Provision over an already-booted kernel — the fleet shape, where
    /// [`FleetTestbed`] hands each shard of a
    /// [`ShardedKernel`](adelie_kernel::ShardedKernel) its own testbed.
    pub fn with_kernel(kernel: Arc<Kernel>, opts: TransformOptions, drivers: DriverSet) -> Testbed {
        let registry = ModuleRegistry::new(&kernel);
        let mut names = Vec::new();
        let nic = drivers.nic.then(|| {
            let d = install_nic(&registry, &opts, NicFlavor::E1000e).expect("nic");
            names.push(d.module.name.to_string());
            d.device
        });
        let nvme = drivers.nvme.then(|| {
            let d = install_nvme(&registry, &opts).expect("nvme");
            names.push(d.module.name.to_string());
            d.device
        });
        if drivers.extfs {
            let d = install_extfs(&registry, &opts).expect("extfs");
            names.push(d.module.name.to_string());
        }
        if drivers.dummy {
            let d = install_dummy(&registry, &opts).expect("dummy");
            names.push(d.module.name.to_string());
        }
        if drivers.extras {
            let x = install_xhci(&registry, &opts).expect("xhci");
            names.push(x.module.name.to_string());
            let f = install_fuse(&registry, &opts).expect("fuse");
            names.push(f.module.name.to_string());
        }
        let tb = Testbed {
            kernel,
            registry,
            nic,
            nvme,
            opts,
            module_names: names,
            sched: SchedConfig::default(),
        };
        tb.provision_files();
        tb
    }

    /// Replace the scheduler configuration (builder-style).
    pub fn with_sched(mut self, sched: SchedConfig) -> Testbed {
        self.sched = sched;
        self
    }

    fn provision_files(&self) {
        let mut vm = self.kernel.vm();
        // dd microbenchmark file (cached).
        self.kernel.vfs.create("dd.dat", 4 << 20);
        self.kernel.vfs.warm(&mut vm, "dd.dat").unwrap();
        // sysbench file_io files.
        for i in 0..4 {
            let name = format!("sb_file_{i}");
            self.kernel.vfs.create(&name, 1 << 20);
            self.kernel.vfs.warm(&mut vm, &name).unwrap();
        }
        // kernbench source tree.
        for i in 0..8 {
            let name = format!("src_{i}");
            self.kernel.vfs.create(&name, 128 * 1024);
            self.kernel.vfs.warm(&mut vm, &name).unwrap();
        }
        // NVMe O_DIRECT target.
        self.kernel.vfs.create("nvme.dat", 1 << 20);
        // OLTP tables (warm = the cached fraction).
        for t in 0..TABLES {
            let name = format!("sbtest{t}");
            self.kernel.vfs.create(&name, TABLE_BYTES);
            self.kernel.vfs.warm(&mut vm, &name).unwrap();
        }
        // Apache documents.
        for bs in BLOCK_SIZES {
            let name = format!("www_doc_{bs}");
            self.kernel.vfs.create(&name, bs as u64);
            self.kernel.vfs.warm(&mut vm, &name).unwrap();
        }
    }

    /// Start the re-randomization scheduler over the installed modules
    /// with the testbed's [`SchedConfig`] knob.
    ///
    /// # Panics
    ///
    /// Panics if the installed modules were not built re-randomizable.
    pub fn start_scheduler(&self) -> Scheduler {
        let names: Vec<&str> = self.module_names.iter().map(|s| s.as_str()).collect();
        Scheduler::spawn(
            self.kernel.clone(),
            self.registry.clone(),
            &names,
            self.sched.clone(),
        )
    }

    /// Start a **stepped** scheduler over the installed modules on a
    /// virtual clock — no threads; the caller drives cycles with
    /// `Scheduler::step` between workload operations, which removes
    /// every wall-clock race from scheduler-under-load tests (cycle
    /// counts become a deterministic function of the step schedule).
    /// Each stepped cycle charges `cycle_cost` of modeled CPU.
    ///
    /// # Panics
    ///
    /// Panics if the installed modules were not built re-randomizable.
    pub fn start_stepped_scheduler(&self, clock: Arc<SimClock>, cycle_cost: Duration) -> Scheduler {
        let with_policies: Vec<(&str, Policy)> = self
            .module_names
            .iter()
            .map(|s| (s.as_str(), self.sched.policy.clone()))
            .collect();
        Scheduler::spawn_stepped(
            self.kernel.clone(),
            self.registry.clone(),
            &with_policies,
            self.sched.clone(),
            clock,
            cycle_cost,
        )
    }

    /// Start continuous re-randomization of the installed modules at a
    /// fixed `period` — the legacy single-worker shape, kept for the
    /// figure benches that sweep `rand_period`.
    ///
    /// # Panics
    ///
    /// Panics if the installed modules were not built re-randomizable.
    #[allow(deprecated)]
    pub fn start_rerand(&self, period: Duration) -> adelie_sched::Rerandomizer {
        let names: Vec<&str> = self.module_names.iter().map(|s| s.as_str()).collect();
        adelie_sched::Rerandomizer::spawn(
            self.kernel.clone(),
            self.registry.clone(),
            &names,
            period,
        )
    }
}

/// The four Fig. 5 system configurations.
pub fn pic_matrix() -> Vec<(&'static str, TransformOptions)> {
    vec![
        ("linux", TransformOptions::vanilla(false)),
        ("linux+retpoline", TransformOptions::vanilla(true)),
        ("pic", TransformOptions::pic(false)),
        ("pic+retpoline", TransformOptions::pic(true)),
    ]
}

/// Convenience: testbed config with the EBR reclaimer (ablation).
pub fn ebr_kernel_config(opts: &TransformOptions) -> KernelConfig {
    KernelConfig {
        retpoline: opts.retpoline,
        reclaimer: ReclaimerKind::Ebr,
        ..KernelConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_millis(60);

    #[test]
    fn dd_runs_in_every_configuration() {
        for (label, opts) in pic_matrix() {
            let tb = Testbed::new(opts, DriverSet::storage());
            let m = run_dd(&tb, 64 * 1024, SHORT);
            assert!(m.ops > 0, "{label}: no ops");
            assert!(m.mb_per_sec() > 0.0);
        }
    }

    #[test]
    fn fileio_modes_run() {
        let tb = Testbed::new(TransformOptions::pic(true), DriverSet::storage());
        for mode in [FileIoMode::SeqRead, FileIoMode::RndRead] {
            let m = run_fileio(&tb, mode, SHORT);
            assert!(m.ops > 0, "{mode:?}");
        }
    }

    #[test]
    fn kernbench_scales_with_concurrency() {
        let tb = Testbed::new(TransformOptions::pic(true), DriverSet::storage());
        let m = run_kernbench(&tb, 4, 24);
        assert_eq!(m.ops, 24);
        assert!(m.wall > Duration::ZERO);
    }

    #[test]
    fn nvme_direct_loop_hits_the_driver() {
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::storage());
        let completed_before = tb.nvme.as_ref().unwrap().completed();
        let m = run_nvme_direct(&tb, SHORT);
        assert!(m.ops > 0);
        assert!(tb.nvme.as_ref().unwrap().completed() > completed_before);
    }

    #[test]
    fn ioctl_loop_under_rerand() {
        let tb = Testbed::new(
            TransformOptions::rerandomizable(true),
            DriverSet::dummy_only(),
        );
        let rr = tb.start_rerand(Duration::from_millis(1));
        let m = run_ioctl(&tb, SHORT);
        let stats = rr.stop();
        assert!(m.ops > 256);
        assert!(stats.randomized > 0);
        assert_eq!(tb.kernel.reclaim.stats().delta(), 0);
    }

    #[test]
    fn oltp_transactions_flow() {
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full());
        let m = run_oltp(&tb, 4, 2, Duration::from_millis(150));
        assert!(m.ops > 0, "no transactions completed");
    }

    #[test]
    fn apache_serves_bytes() {
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full());
        let m = run_apache(&tb, 4096, 4, 2, Duration::from_millis(150));
        assert!(m.ops > 0, "no requests served");
        assert!(m.bytes >= m.ops * 4096, "responses carry the document");
    }

    #[test]
    fn apache_under_full_rerand_fleet() {
        // The Fig. 8 configuration: five modules re-randomizing while
        // serving.
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full());
        let rr = tb.start_rerand(Duration::from_millis(5));
        let m = run_apache(&tb, 1024, 4, 2, Duration::from_millis(200));
        let stats = rr.stop();
        assert!(m.ops > 0);
        assert!(stats.randomized >= 5, "fleet cycled: {}", stats.randomized);
        assert_eq!(tb.kernel.reclaim.stats().delta(), 0);
    }

    #[test]
    fn ioctl_fleet_under_virtual_clock_is_deterministic() {
        // The stepped scheduler removes the wall-clock race from
        // scheduler-under-load tests: the cycle count is a function of
        // the step schedule, not of machine speed.
        let run = || {
            let tb = Testbed::new(
                TransformOptions::rerandomizable(true),
                DriverSet::dummy_only(),
            );
            let clock = SimClock::new();
            let sched = tb.start_stepped_scheduler(clock.clone(), Duration::from_micros(100));
            let mut vm = tb.kernel.vm();
            for i in 0..200u64 {
                assert_eq!(
                    tb.kernel
                        .ioctl(&mut vm, adelie_drivers::specs::DUMMY_MINOR, 0, i)
                        .unwrap(),
                    i
                );
                // One virtual millisecond of "time passes" per ioctl
                // batch; step every deadline that came due.
                clock.advance(Duration::from_millis(1));
                while sched
                    .peek_deadline_ns()
                    .is_some_and(|d| d <= clock.now_ns())
                {
                    sched.step();
                }
            }
            let stats = sched.stop();
            tb.kernel.reclaim.flush();
            assert_eq!(tb.kernel.reclaim.stats().delta(), 0);
            stats.cycles
        };
        let a = run();
        let b = run();
        assert!(a >= 5, "virtual clock drove cycles: {a}");
        assert_eq!(a, b, "stepped runs must be reproducible");
    }

    #[test]
    fn ioctl_fleet_pays_partial_flushes_not_full_flushes() {
        // The shootdown ablation at workload level: the same ioctl
        // fleet + stepped schedule under the legacy whole-TLB regime
        // (`tlb_inval_log: 0`) and under range-based invalidation. The
        // driver CPU's TLB must stop whole-flushing once invalidation
        // is range-based.
        let run = |inval_log: usize| {
            let tb = Testbed::with_kernel_config(
                TransformOptions::rerandomizable(true),
                DriverSet::dummy_only(),
                KernelConfig {
                    tlb_inval_log: inval_log,
                    ..KernelConfig::default()
                },
            );
            let clock = SimClock::new();
            let sched = tb.start_stepped_scheduler(clock.clone(), Duration::from_micros(100));
            let mut vm = tb.kernel.vm();
            // Warm the TLB before counting.
            for i in 0..10u64 {
                tb.kernel
                    .ioctl(&mut vm, adelie_drivers::specs::DUMMY_MINOR, 0, i)
                    .unwrap();
            }
            let warm = vm.tlb_stats();
            for i in 0..100u64 {
                assert_eq!(
                    tb.kernel
                        .ioctl(&mut vm, adelie_drivers::specs::DUMMY_MINOR, 0, i)
                        .unwrap(),
                    i
                );
                clock.advance(Duration::from_millis(1));
                while sched
                    .peek_deadline_ns()
                    .is_some_and(|d| d <= clock.now_ns())
                {
                    sched.step();
                }
            }
            let cycles = sched.stop().cycles;
            let t = vm.tlb_stats();
            (
                cycles,
                t.flushes - warm.flushes,
                t.partial_flushes - warm.partial_flushes,
            )
        };
        let (legacy_cycles, legacy_full, _) = run(0);
        assert!(legacy_cycles >= 5);
        assert!(
            legacy_full > 0,
            "legacy regime must whole-flush under cycling"
        );
        let (cycles, full, partial) = run(adelie_vmem::DEFAULT_INVAL_LOG);
        assert!(cycles >= 5);
        assert!(partial > 0, "range regime must take the partial path");
        assert!(
            full < legacy_full,
            "range-based shootdown must cut whole-TLB flushes ({full} vs {legacy_full})"
        );
    }

    #[test]
    fn any_workload_runs_under_any_policy() {
        // The SchedConfig knob: the same Fig. 8 workload under a
        // 4-worker adaptive pool instead of the serial fixed period.
        use adelie_sched::Policy;
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full())
            .with_sched(SchedConfig {
                workers: 4,
                policy: Policy::Adaptive {
                    min: Duration::from_millis(1),
                    max: Duration::from_millis(25),
                    rate_scale: 500.0,
                    exposure_scale: 20.0,
                },
                ..SchedConfig::default()
            });
        let sched = tb.start_scheduler();
        let m = run_apache(&tb, 1024, 4, 2, Duration::from_millis(200));
        let stats = sched.stop();
        assert!(m.ops > 0);
        assert!(stats.cycles >= 5, "pool cycled: {}", stats.cycles);
        assert_eq!(stats.failures, 0);
        tb.kernel.reclaim.flush();
        assert_eq!(tb.kernel.reclaim.stats().delta(), 0);
    }
}
