//! Microbenchmark workloads: dd (Fig. 5b), sysbench file_io (Fig. 5c),
//! kernbench (Fig. 5d), the NVMe O_DIRECT loop (Fig. 6), and the
//! null-ioctl loop (Fig. 9).

use crate::{CpuMeter, Measurement, Testbed};
use adelie_drivers::specs::DUMMY_MINOR;
use adelie_kernel::SECTOR_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Fig. 5b — the `dd` microbenchmark: sequential cached reads of a warm
/// file at the given block size ("CPU bound due to the use of the
/// buffer cache").
pub fn run_dd(tb: &Testbed, block_size: usize, duration: Duration) -> Measurement {
    let file = tb.kernel.vfs.stat("dd.dat").expect("testbed file");
    let fd = tb.kernel.vfs.open("dd.dat", false).unwrap();
    let mut vm = tb.kernel.vm();
    let buf = tb
        .kernel
        .heap
        .kmalloc(&tb.kernel.space, &tb.kernel.phys, block_size);
    let meter = CpuMeter::start(&tb.kernel);
    let mut ops = 0u64;
    let mut bytes = 0u64;
    let mut off = 0u64;
    let t0 = std::time::Instant::now();
    while t0.elapsed() < duration {
        let n = tb
            .kernel
            .vfs
            .pread(&mut vm, fd, buf, block_size, off)
            .unwrap();
        bytes += n as u64;
        ops += 1;
        off += block_size as u64;
        if off + block_size as u64 > file.size {
            off = 0;
        }
    }
    let (wall, cpu) = meter.stop();
    tb.kernel.vfs.close(fd);
    Measurement {
        ops,
        bytes,
        wall,
        cpu,
    }
}

/// sysbench file_io access patterns (Fig. 5c).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FileIoMode {
    /// `seqrd` — sequential reads.
    SeqRead,
    /// `rndrd` — random reads.
    RndRead,
}

/// Fig. 5c — sysbench `file_io` over RAM-cached files.
pub fn run_fileio(tb: &Testbed, mode: FileIoMode, duration: Duration) -> Measurement {
    const BLOCK: usize = 16 * 1024; // sysbench default 16 KiB
    let files: Vec<(u64, u64)> = (0..4)
        .map(|i| {
            let name = format!("sb_file_{i}");
            let f = tb.kernel.vfs.stat(&name).expect("testbed file");
            (tb.kernel.vfs.open(&name, false).unwrap(), f.size)
        })
        .collect();
    let mut vm = tb.kernel.vm();
    let buf = tb
        .kernel
        .heap
        .kmalloc(&tb.kernel.space, &tb.kernel.phys, BLOCK);
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let meter = CpuMeter::start(&tb.kernel);
    let mut ops = 0u64;
    let mut bytes = 0u64;
    let mut seq_off = 0u64;
    let t0 = std::time::Instant::now();
    while t0.elapsed() < duration {
        let (fd, size) = files[ops as usize % files.len()];
        let off = match mode {
            FileIoMode::SeqRead => {
                let o = seq_off % (size - BLOCK as u64);
                seq_off += BLOCK as u64;
                o
            }
            FileIoMode::RndRead => rng.gen_range(0..(size - BLOCK as u64)),
        };
        let n = tb.kernel.vfs.pread(&mut vm, fd, buf, BLOCK, off).unwrap();
        bytes += n as u64;
        ops += 1;
    }
    let (wall, cpu) = meter.stop();
    for (fd, _) in files {
        tb.kernel.vfs.close(fd);
    }
    Measurement {
        ops,
        bytes,
        wall,
        cpu,
    }
}

/// Fig. 5d — a kernbench-like model: `jobs` compile jobs at the given
/// concurrency, each job a burst of open/read/close syscalls (header
/// reads dominate a compiler's kernel time). Returns kernel-time-per-
/// job via the wall measurement.
pub fn run_kernbench(tb: &Testbed, concurrency: usize, jobs: usize) -> Measurement {
    let meter = CpuMeter::start(&tb.kernel);
    let done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            s.spawn(|| {
                let mut vm = tb.kernel.vm();
                let buf = tb
                    .kernel
                    .heap
                    .kmalloc(&tb.kernel.space, &tb.kernel.phys, 4096);
                loop {
                    let j = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if j >= jobs {
                        break;
                    }
                    // One "compilation unit": read 16 headers + 1 source.
                    for h in 0..17u64 {
                        let name = format!("src_{}", (j as u64 * 7 + h) % 8);
                        let fd = tb.kernel.vfs.open(&name, false).unwrap();
                        let _ = tb.kernel.vfs.pread(&mut vm, fd, buf, 4096, h * 4096);
                        tb.kernel.vfs.close(fd);
                    }
                }
            });
        }
    });
    let (wall, cpu) = meter.stop();
    Measurement {
        ops: jobs as u64,
        bytes: 0,
        wall,
        cpu,
    }
}

/// Fig. 6 — the NVMe O_DIRECT loop: re-read the same 512-byte block
/// "over and over again to leverage NVMe's internal DRAM cache".
pub fn run_nvme_direct(tb: &Testbed, duration: Duration) -> Measurement {
    let fd = tb.kernel.vfs.open("nvme.dat", true).expect("nvme.dat");
    let mut vm = tb.kernel.vm();
    let buf = tb
        .kernel
        .heap
        .kmalloc(&tb.kernel.space, &tb.kernel.phys, SECTOR_SIZE);
    let meter = CpuMeter::start(&tb.kernel);
    let mut ops = 0u64;
    let t0 = std::time::Instant::now();
    while t0.elapsed() < duration {
        tb.kernel
            .vfs
            .pread(&mut vm, fd, buf, SECTOR_SIZE, 0)
            .unwrap();
        ops += 1;
    }
    let (wall, cpu) = meter.stop();
    tb.kernel.vfs.close(fd);
    Measurement {
        ops,
        bytes: ops * SECTOR_SIZE as u64,
        wall,
        cpu,
    }
}

/// Fig. 9 — the CPU-bound null-ioctl loop ("captures the impact of
/// function wrappers and stack randomization").
pub fn run_ioctl(tb: &Testbed, duration: Duration) -> Measurement {
    let mut vm = tb.kernel.vm();
    let meter = CpuMeter::start(&tb.kernel);
    let mut ops = 0u64;
    let t0 = std::time::Instant::now();
    while t0.elapsed() < duration {
        // Batch to keep Instant::now() out of the hot loop.
        for i in 0..256u64 {
            let r = tb.kernel.ioctl(&mut vm, DUMMY_MINOR, 0, i).unwrap();
            debug_assert_eq!(r, i);
        }
        ops += 256;
    }
    let (wall, cpu) = meter.stop();
    Measurement {
        ops,
        bytes: 0,
        wall,
        cpu,
    }
}
