//! The ApacheBench-like HTTP workload (Fig. 8).
//!
//! The paper serves static files of 512 B–8 KB with Apache while five
//! modules re-randomize (E1000E on the critical path, NVMe occasionally,
//! FUSE/ext4/xHCI as extra load). The model: clients request a document
//! by size class over the NIC; the server reads it from the page cache
//! (every Nth request touches NVMe directly, modelling cold objects) and
//! streams it back through the driver's transmit path.

use crate::net::{AppFn, NetHarness};
use crate::{CpuMeter, Measurement, Testbed};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The document size classes of Fig. 8.
pub const BLOCK_SIZES: [usize; 5] = [512, 1024, 2048, 4096, 8192];

/// Every Nth request bypasses the cache (cold object via NVMe).
pub const COLD_EVERY: u64 = 64;

fn make_app(tb: &Testbed) -> AppFn {
    let kernel = tb.kernel.clone();
    let mut fds = std::collections::HashMap::new();
    let mut direct_fds = std::collections::HashMap::new();
    for &bs in &BLOCK_SIZES {
        let name = format!("www_doc_{bs}");
        fds.insert(bs, kernel.vfs.open(&name, false).expect("www doc"));
        direct_fds.insert(bs, kernel.vfs.open(&name, true).expect("www doc"));
    }
    let counter = AtomicU64::new(0);
    Arc::new(move |vm, req| {
        // Request: "GET <bs>".
        let bs: usize = std::str::from_utf8(req)
            .ok()
            .and_then(|s| s.strip_prefix("GET "))
            .and_then(|s| s.parse().ok())
            .unwrap_or(512);
        let bs = if BLOCK_SIZES.contains(&bs) { bs } else { 512 };
        let buf = kernel
            .heap
            .kmalloc(&kernel.space, &kernel.phys, bs.max(512));
        let n = counter.fetch_add(1, Ordering::Relaxed);
        let read = if n.is_multiple_of(COLD_EVERY) {
            kernel.vfs.pread(vm, direct_fds[&bs], buf, bs, 0)
        } else {
            kernel.vfs.pread(vm, fds[&bs], buf, bs, 0)
        };
        let n = read.unwrap_or(0);
        let mut body = vec![0u8; n];
        // Batched TLB translation for the whole payload span (vs. the
        // old pin-per-call raw space read).
        let _ = vm.read_bytes(buf, &mut body);
        kernel.heap.kfree(buf);
        body
    })
}

/// Run ApacheBench at one `(block_size, concurrency)` point. Throughput
/// is response payload bytes over the wall clock — the MB/s series of
/// Fig. 8.
pub fn run_apache(
    tb: &Testbed,
    block_size: usize,
    concurrency: usize,
    server_threads: usize,
    duration: Duration,
) -> Measurement {
    assert!(BLOCK_SIZES.contains(&block_size), "unknown size class");
    let nic = tb.nic.as_ref().expect("testbed NIC").clone();
    let app = make_app(tb);
    let harness = NetHarness::start(tb.kernel.clone(), nic, server_threads, app);
    let meter = CpuMeter::start(&tb.kernel);
    let reqs = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let request = format!("GET {block_size}");
    std::thread::scope(|s| {
        for _ in 0..concurrency {
            let harness = harness.clone();
            let reqs = &reqs;
            let bytes = &bytes;
            let stop = &stop;
            let request = request.as_bytes();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Some(resp) = harness.request(request) {
                        reqs.fetch_add(1, Ordering::Relaxed);
                        bytes.fetch_add(resp.len() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    let (wall, cpu) = meter.stop();
    harness.shutdown();
    Measurement {
        ops: reqs.load(Ordering::Relaxed),
        bytes: bytes.load(Ordering::Relaxed),
        wall,
        cpu,
    }
}
