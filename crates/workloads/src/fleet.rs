//! Fleet workloads: every paper benchmark, across kernel shards.
//!
//! [`FleetTestbed`] provisions one full [`Testbed`] per shard of a
//! [`ShardedKernel`] — same drivers, same benchmark files, independent
//! address space and VA window — and starts one
//! [`FleetScheduler`] worker group per shard under one global CPU
//! budget. Two drive modes:
//!
//! * [`FleetTestbed::run_paper_workloads_concurrently`] — the seven
//!   paper workloads as real concurrent threads spread over the shards
//!   (the Fig. 5–9 suite as one machine-wide load, wall-clock
//!   measured);
//! * [`run_soak_round`] — a **deterministic, fixed-op** pass touching
//!   every workload's driver path (cached reads, file_io, kernbench
//!   bursts, NVMe `O_DIRECT`, OLTP table read/write, document serve +
//!   NIC xmit, null ioctls) with zero wall-clock dependence. The soak
//!   suite interleaves these rounds with stepped scheduler cycles on a
//!   virtual clock, which is what makes "same seed ⇒ byte-identical
//!   stats dumps" an assertable property rather than a hope.

use crate::{
    run_apache, run_dd, run_fileio, run_ioctl, run_kernbench, run_nvme_direct, run_oltp, DriverSet,
    FileIoMode, Measurement, Testbed, TABLES,
};
use adelie_drivers::specs::DUMMY_MINOR;
use adelie_kernel::{FleetConfig, ShardedKernel, Vm, SECTOR_SIZE};
use adelie_plugin::TransformOptions;
use adelie_sched::{FleetScheduler, ShardSched, SimClock};
use std::sync::Arc;
use std::time::Duration;

/// The seven paper workloads, in figure order.
pub const PAPER_WORKLOADS: [&str; 7] = [
    "dd",
    "fileio",
    "kernbench",
    "nvme",
    "oltp",
    "apache",
    "ioctl",
];

/// One [`Testbed`] per shard of a [`ShardedKernel`].
pub struct FleetTestbed {
    /// The shard set.
    pub sharded: Arc<ShardedKernel>,
    /// Shard testbeds, indexed by shard.
    pub shards: Vec<Testbed>,
}

impl FleetTestbed {
    /// Provision `shards` shard testbeds from `seed`, each with the
    /// full `drivers` set under `opts`.
    pub fn new(
        opts: TransformOptions,
        drivers: DriverSet,
        shards: usize,
        seed: u64,
    ) -> FleetTestbed {
        let base = adelie_kernel::KernelConfig {
            retpoline: opts.retpoline,
            seed,
            ..adelie_kernel::KernelConfig::default()
        };
        FleetTestbed::with_fleet_config(opts, drivers, FleetConfig { shards, base })
    }

    /// Provision from an explicit [`FleetConfig`].
    pub fn with_fleet_config(
        opts: TransformOptions,
        drivers: DriverSet,
        config: FleetConfig,
    ) -> FleetTestbed {
        let sharded = ShardedKernel::new(config);
        let shards = sharded
            .shards()
            .iter()
            .map(|kernel| Testbed::with_kernel(kernel.clone(), opts, drivers))
            .collect();
        FleetTestbed { sharded, shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Never true (a fleet has ≥ 1 shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shard `i`'s testbed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &Testbed {
        &self.shards[i]
    }

    fn shard_scheds(&self) -> Vec<ShardSched> {
        self.shards
            .iter()
            .map(|tb| {
                let modules: Vec<(String, adelie_sched::Policy)> = tb
                    .module_names
                    .iter()
                    .map(|n| (n.clone(), tb.sched.policy.clone()))
                    .collect();
                (tb.kernel.clone(), tb.registry.clone(), modules)
            })
            .collect()
    }

    /// Start one threaded scheduler group per shard under one global
    /// budget, each using its own testbed's [`crate::Testbed::sched`]
    /// knob (shard 0's config decides pool shape and budget cap).
    ///
    /// # Panics
    ///
    /// Panics if any shard's modules were not built re-randomizable.
    pub fn start_schedulers(&self) -> FleetScheduler {
        FleetScheduler::spawn(self.shard_scheds(), self.shards[0].sched.clone())
    }

    /// Start one **stepped** scheduler group per shard, all on `clock`,
    /// under one global budget — the deterministic fleet.
    ///
    /// # Panics
    ///
    /// Panics if any shard's modules were not built re-randomizable.
    pub fn start_stepped_schedulers(
        &self,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
    ) -> FleetScheduler {
        FleetScheduler::spawn_stepped(
            self.shard_scheds(),
            self.shards[0].sched.clone(),
            clock,
            cycle_cost,
        )
    }

    /// Run **all seven paper workloads concurrently across the
    /// shards**: workload `k` runs on shard `k % shards`, every runner
    /// on its own OS thread for `duration`. Returns
    /// `(shard, workload, measurement)` rows in workload order.
    ///
    /// Requires the full driver set (OLTP and Apache need the NIC).
    pub fn run_paper_workloads_concurrently(
        &self,
        duration: Duration,
    ) -> Vec<(usize, &'static str, Measurement)> {
        let n = self.shards.len();
        let mut rows: Vec<(usize, &'static str, Measurement)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = PAPER_WORKLOADS
                .iter()
                .enumerate()
                .map(|(k, &name)| {
                    let shard = k % n;
                    let tb = &self.shards[shard];
                    s.spawn(move || {
                        let m = match name {
                            "dd" => run_dd(tb, 64 * 1024, duration),
                            "fileio" => run_fileio(tb, FileIoMode::RndRead, duration),
                            "kernbench" => run_kernbench(tb, 2, 8),
                            "nvme" => run_nvme_direct(tb, duration),
                            "oltp" => run_oltp(tb, 2, 2, duration),
                            "apache" => run_apache(tb, 4096, 2, 2, duration),
                            _ => run_ioctl(tb, duration),
                        };
                        (shard, name, m)
                    })
                })
                .collect();
            for h in handles {
                rows.push(h.join().expect("workload thread"));
            }
        });
        rows
    }
}

impl std::fmt::Debug for FleetTestbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTestbed")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// One **deterministic** soak round on one shard: a fixed bundle of
/// operations down every paper workload's driver path, with no
/// wall-clock reads and no unseeded randomness. `round` varies offsets
/// and table picks so consecutive rounds touch different cache lines
/// the way the duration-based runners do. Returns operations completed
/// (a pure function of the testbed's driver set and `round`).
///
/// # Panics
///
/// Panics on I/O errors — a soak round never legitimately fails.
pub fn run_soak_round(tb: &Testbed, vm: &mut Vm<'_>, round: u64) -> u64 {
    let k = &tb.kernel;
    let mut ops = 0u64;
    let buf = k.heap.kmalloc(&k.space, &k.phys, 64 * 1024);

    // dd (Fig. 5b): one 64 KiB cached sequential read.
    if let Some(f) = k.vfs.stat("dd.dat") {
        let fd = k.vfs.open("dd.dat", false).unwrap();
        let off = (round * 64 * 1024) % (f.size - 64 * 1024);
        k.vfs.pread(vm, fd, buf, 64 * 1024, off).unwrap();
        k.vfs.close(fd);
        ops += 1;
    }

    // sysbench file_io (Fig. 5c): one 16 KiB read at a derived offset.
    {
        let name = format!("sb_file_{}", round % 4);
        if let Some(f) = k.vfs.stat(&name) {
            let fd = k.vfs.open(&name, false).unwrap();
            let off = (round.wrapping_mul(0x9E37) * 16384) % (f.size - 16384);
            k.vfs.pread(vm, fd, buf, 16384, off).unwrap();
            k.vfs.close(fd);
            ops += 1;
        }
    }

    // kernbench (Fig. 5d): one header-read burst.
    for h in 0..4u64 {
        let name = format!("src_{}", (round * 7 + h) % 8);
        if let Some(fd) = k.vfs.open(&name, false) {
            k.vfs.pread(vm, fd, buf, 4096, h * 4096).unwrap();
            k.vfs.close(fd);
            ops += 1;
        }
    }

    // NVMe O_DIRECT (Fig. 6): one direct sector re-read.
    if tb.nvme.is_some() {
        if let Some(fd) = k.vfs.open("nvme.dat", true) {
            k.vfs.pread(vm, fd, buf, SECTOR_SIZE, 0).unwrap();
            k.vfs.close(fd);
            ops += 1;
        }
    }

    // OLTP (Fig. 7): one read + one write on a rotating table.
    {
        let name = format!("sbtest{}", round % TABLES as u64);
        if let Some(f) = k.vfs.stat(&name) {
            let fd = k.vfs.open(&name, false).unwrap();
            let off = (round.wrapping_mul(0x51ED) * 128) % (f.size - 128);
            k.vfs.pread(vm, fd, buf, 128, off).unwrap();
            k.vfs.pwrite(vm, fd, buf, 128, off).unwrap();
            k.vfs.close(fd);
            ops += 2;
        }
    }

    // Apache (Fig. 8): serve one 4 KiB document out the NIC.
    if tb.nic.is_some() {
        if let Some(fd) = k.vfs.open("www_doc_4096", false) {
            k.vfs.pread(vm, fd, buf, 4096, 0).unwrap();
            k.vfs.close(fd);
            let frame = [0xABu8; 128];
            k.net_xmit(vm, &frame).unwrap();
            ops += 2;
        }
    }

    // Null ioctl (Fig. 9): a burst through the dummy driver's wrapper.
    if k.devices.chrdev(DUMMY_MINOR).is_some() {
        for i in 0..16u64 {
            let r = k.ioctl(vm, DUMMY_MINOR, 0, round ^ i).unwrap();
            assert_eq!(r, round ^ i, "null ioctl must echo");
        }
        ops += 16;
    }

    k.heap.kfree(buf);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_sched::{Policy, SchedConfig};

    #[test]
    fn fleet_testbed_boots_disjoint_shards() {
        let ft = FleetTestbed::new(
            TransformOptions::rerandomizable(true),
            DriverSet::full(),
            2,
            5,
        );
        assert_eq!(ft.len(), 2);
        // Shards are real, independent machines: same driver fleet,
        // different address spaces, disjoint windows.
        assert_ne!(ft.shard(0).kernel.space.id(), ft.shard(1).kernel.space.id());
        assert_eq!(ft.shard(0).module_names, ft.shard(1).module_names);
        let w0 = ft.sharded.window(0);
        let w1 = ft.sharded.window(1);
        assert!(w0.1 <= w1.0);
    }

    #[test]
    fn soak_rounds_are_deterministic_per_shard() {
        let run = || {
            let ft = FleetTestbed::new(
                TransformOptions::rerandomizable(true),
                DriverSet::full(),
                2,
                9,
            );
            let mut total = 0u64;
            for (i, tb) in ft.shards.iter().enumerate() {
                let mut vm = tb.kernel.vm();
                for round in 0..10u64 {
                    total += run_soak_round(tb, &mut vm, round * (i as u64 + 1));
                }
            }
            total
        };
        let a = run();
        assert!(a > 0);
        assert_eq!(a, run(), "soak rounds must be a pure function of config");
    }

    #[test]
    fn stepped_fleet_schedulers_share_one_budget() {
        let ft = FleetTestbed::new(
            TransformOptions::rerandomizable(true),
            DriverSet::dummy_only(),
            2,
            3,
        );
        let clock = SimClock::new();
        let sched = ft.start_stepped_schedulers(clock.clone(), Duration::from_micros(50));
        clock.advance(Duration::from_millis(40));
        let mut steps = 0;
        while let Some((_, _)) = sched.step() {
            steps += 1;
            if steps > 64 {
                break;
            }
            if sched
                .peek_deadline_ns()
                .is_none_or(|(_, d)| d > clock.now_ns())
            {
                break;
            }
        }
        assert!(sched.cycles() > 0, "fleet cycled");
        // Every group's spend landed in ONE budget.
        let spent = sched.budget().spent();
        assert_eq!(
            spent,
            Duration::from_micros(50) * sched.cycles() as u32,
            "shared budget must see every shard's cycles"
        );
        let _ = sched.stop();
    }

    #[test]
    fn paper_workloads_run_concurrently_across_shards() {
        let ft = FleetTestbed::new(
            TransformOptions::rerandomizable(true),
            DriverSet::full(),
            2,
            21,
        );
        let _sched = ft.start_schedulers();
        let rows = ft.run_paper_workloads_concurrently(Duration::from_millis(80));
        assert_eq!(rows.len(), PAPER_WORKLOADS.len());
        for (shard, name, m) in &rows {
            assert!(*shard < 2);
            assert!(m.ops > 0, "{name} on shard {shard} did no work");
        }
        // Both shards actually served workloads.
        let shards_used: std::collections::HashSet<usize> =
            rows.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(shards_used.len(), 2);
    }

    /// All seven paper workloads must run from modules that took the
    /// ELF64 detour (`adelie_elf::emit` → `parse` inside the driver
    /// installers) — same fleet, same schedulers, real work on every
    /// workload, under continuous re-randomization.
    #[test]
    fn paper_workloads_run_from_elf_ingested_modules() {
        let ft = FleetTestbed::new(
            TransformOptions::rerandomizable(true).with_elf_ingest(),
            DriverSet::full(),
            2,
            21,
        );
        let _sched = ft.start_schedulers();
        let rows = ft.run_paper_workloads_concurrently(Duration::from_millis(80));
        assert_eq!(rows.len(), PAPER_WORKLOADS.len());
        for (shard, name, m) in &rows {
            assert!(
                m.ops > 0,
                "{name} on shard {shard} did no work from its ELF-ingested module"
            );
        }
    }

    #[test]
    fn fleet_sched_config_knob_applies_to_every_shard() {
        let mut ft = FleetTestbed::new(
            TransformOptions::rerandomizable(true),
            DriverSet::dummy_only(),
            2,
            13,
        );
        for tb in &mut ft.shards {
            tb.sched = SchedConfig {
                workers: 2,
                policy: Policy::FixedPeriod(Duration::from_millis(2)),
                ..SchedConfig::default()
            };
        }
        let clock = SimClock::new();
        let sched = ft.start_stepped_schedulers(clock.clone(), Duration::from_micros(50));
        for _ in 0..40 {
            clock.advance(Duration::from_millis(1));
            while sched
                .peek_deadline_ns()
                .is_some_and(|(_, d)| d <= clock.now_ns())
            {
                sched.step();
            }
        }
        let stats = sched.stop();
        assert_eq!(stats.len(), 2);
        for (i, s) in stats.iter().enumerate() {
            assert!(s.cycles > 0, "shard {i} group never cycled");
            assert_eq!(s.failures, 0);
        }
    }
}
