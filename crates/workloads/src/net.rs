//! Request/response harness over the NIC driver — the "client machine"
//! of Table 1.
//!
//! Client threads submit tagged request frames into the NIC's RX ring
//! (the wire); server threads poll the driver (interpreted module code),
//! process requests (the application: Apache- or mySQL-like), and
//! transmit tagged responses, which a dispatcher thread routes back to
//! the waiting client. Every frame crosses the re-randomizable NIC
//! driver in both directions, exactly like the paper's macrobenchmarks.

use adelie_drivers::NicDevice;
use adelie_kernel::{Kernel, Vm};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// The server application: turns a request payload into a response.
pub type AppFn = Arc<dyn Fn(&mut Vm<'_>, &[u8]) -> Vec<u8> + Send + Sync>;

/// The running harness (threads stop on drop).
pub struct NetHarness {
    kernel: Arc<Kernel>,
    nic: Arc<NicDevice>,
    pending: Arc<Mutex<HashMap<u64, mpsc::SyncSender<Vec<u8>>>>>,
    next_id: AtomicU64,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    requests_served: Arc<AtomicU64>,
}

impl NetHarness {
    /// Start `server_threads` pollers running `app`.
    pub fn start(
        kernel: Arc<Kernel>,
        nic: Arc<NicDevice>,
        server_threads: usize,
        app: AppFn,
    ) -> Arc<NetHarness> {
        let inbox: Arc<Mutex<VecDeque<Vec<u8>>>> = Arc::new(Mutex::new(VecDeque::new()));
        {
            let inbox = inbox.clone();
            kernel.devices.set_rx_handler(Box::new(move |frame| {
                inbox.lock().push_back(frame.to_vec())
            }));
        }
        let harness = Arc::new(NetHarness {
            kernel: kernel.clone(),
            nic: nic.clone(),
            pending: Arc::new(Mutex::new(HashMap::new())),
            next_id: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
            requests_served: Arc::new(AtomicU64::new(0)),
        });
        let mut threads = Vec::new();
        // The driver's RX path uses a single DMA buffer and the TX path
        // a single register file, so each is serialized (NAPI instance /
        // __netif_tx_lock); request processing stays parallel.
        let poll_lock = Arc::new(Mutex::new(()));
        let tx_lock = Arc::new(Mutex::new(()));
        // Server pollers: drive the driver's poll entry, run the app,
        // transmit through the driver's xmit entry.
        for _ in 0..server_threads {
            let kernel = kernel.clone();
            let inbox = inbox.clone();
            let stop = harness.stop.clone();
            let app = app.clone();
            let served = harness.requests_served.clone();
            let poll_lock = poll_lock.clone();
            let tx_lock = tx_lock.clone();
            let nic = nic.clone();
            threads.push(std::thread::spawn(move || {
                let mut vm = kernel.vm();
                while !stop.load(Ordering::Relaxed) {
                    // NAPI-style: enter the driver's poll path only when
                    // the device raised its interrupt line; park briefly
                    // otherwise (spinning through the wrapper would both
                    // distort the figures and starve single-core hosts).
                    let polled = if nic.irq_pending() {
                        let _napi = poll_lock.lock();
                        kernel.net_poll(&mut vm).unwrap_or(0)
                    } else {
                        0
                    };
                    let Some(frame) = inbox.lock().pop_front() else {
                        if polled == 0 {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        continue;
                    };
                    if frame.len() < 8 {
                        continue;
                    }
                    let id = u64::from_le_bytes(frame[..8].try_into().unwrap());
                    let body = app(&mut vm, &frame[8..]);
                    let mut reply = id.to_le_bytes().to_vec();
                    reply.extend_from_slice(&body);
                    let sent = {
                        let _txq = tx_lock.lock();
                        kernel.net_xmit(&mut vm, &reply).is_ok()
                    };
                    if sent {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        // Dispatcher: routes TX frames back to waiting clients.
        {
            let nic = nic.clone();
            let stop = harness.stop.clone();
            let pending = harness.pending.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Some(frame) = nic.pop_tx() else {
                        std::thread::sleep(Duration::from_micros(20));
                        continue;
                    };
                    if frame.len() < 8 {
                        continue;
                    }
                    let id = u64::from_le_bytes(frame[..8].try_into().unwrap());
                    if let Some(tx) = pending.lock().remove(&id) {
                        let _ = tx.send(frame[8..].to_vec());
                    }
                }
            }));
        }
        *harness.threads.lock() = threads;
        harness
    }

    /// Synchronous round trip: inject a request, wait for the response.
    /// Retransmits like TCP on a lost frame (bounded); returns `None`
    /// only when the harness is stopping.
    pub fn request(&self, payload: &[u8]) -> Option<Vec<u8>> {
        for _attempt in 0..4 {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = mpsc::sync_channel(1);
            self.pending.lock().insert(id, tx);
            let mut frame = id.to_le_bytes().to_vec();
            frame.extend_from_slice(payload);
            self.nic.inject_rx(&frame);
            // Generous per-attempt timeout: the poll/serve threads run
            // interpreted code and can be starved for hundreds of ms on
            // a loaded test machine — a short timeout here turns CPU
            // contention into spurious retransmits and flaky callers.
            match rx.recv_timeout(std::time::Duration::from_secs(2)) {
                Ok(resp) => return Some(resp),
                Err(_) => {
                    self.pending.lock().remove(&id);
                    if self.stop.load(Ordering::Relaxed) {
                        return None;
                    }
                }
            }
        }
        None
    }

    /// Requests fully served so far.
    pub fn served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Stop all harness threads and wait for them.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        let _ = &self.kernel;
    }
}

impl Drop for NetHarness {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_core::ModuleRegistry;
    use adelie_drivers::{install_nic, NicFlavor};
    use adelie_kernel::KernelConfig;
    use adelie_plugin::TransformOptions;

    #[test]
    fn echo_round_trips_concurrently() {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let opts = TransformOptions::rerandomizable(true);
        let nic = install_nic(&registry, &opts, NicFlavor::E1000e).unwrap();
        let app: AppFn = Arc::new(|_vm, req| {
            let mut out = b"echo:".to_vec();
            out.extend_from_slice(req);
            out
        });
        let harness = NetHarness::start(kernel.clone(), nic.device.clone(), 2, app);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let harness = harness.clone();
                s.spawn(move || {
                    for i in 0..50u64 {
                        let payload = format!("req-{t}-{i}");
                        let resp = harness.request(payload.as_bytes()).unwrap();
                        assert_eq!(resp, format!("echo:{payload}").into_bytes());
                    }
                });
            }
        });
        // Join the server threads first: a poller increments `served`
        // *after* the dispatcher may already have delivered its
        // response, so reading the counter while pollers still run can
        // observe 199 for 200 delivered answers.
        harness.shutdown();
        // ≥, not ==: a response that arrives after its caller's timeout
        // is dropped and the request retransmitted with a fresh id, so
        // a starved run can legitimately serve a few duplicates — the
        // guarantee is that every request got an answer.
        assert!(harness.served() >= 200, "served {}", harness.served());
    }
}
