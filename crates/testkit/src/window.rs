//! The adversarial attack-window experiment.
//!
//! The MARDU/Shuffler-era critique of re-randomization designs is that
//! their security lives in the *leak-to-use race*: a fixed period gives
//! the attacker a predictable window, and CPU spent re-randomizing
//! idle modules is CPU not spent shrinking the window where leaks
//! actually happen. This module measures that race end-to-end on the
//! deterministic harness:
//!
//! * a **hot** module takes all the traffic (where an info leak would
//!   realistically occur) and is gadget-rich;
//! * a **cold** module idles (the fleet ballast every real system has);
//! * the attacker leaks a hot-module address on a fixed virtual-time
//!   grid; each leak's **exposure window** is the distance to the hot
//!   module's next re-randomization (ground truth from the layout
//!   oracle's commit timeline);
//! * per policy, the run yields a survival curve (`P[window > Δ]`), its
//!   mean, and the CPU budget spent (cycles × modeled cycle cost).
//!
//! [`assert_adaptive_beats_fixed`] is the acceptance property: at equal
//! (in fact strictly smaller) budget, `Adaptive` must yield a strictly
//! smaller mean exposure window on the hot module than `FixedPeriod`.

use crate::harness::{ModuleProfile, Sim, SimConfig};
use adelie_gadget::attack::{exposure_windows, mean_exposure_ns, survival_curve};
use adelie_sched::Policy;
use std::time::Duration;

/// Experiment shape.
#[derive(Clone, Debug)]
pub struct WindowConfig {
    /// Kernel seed (shared by every policy run for a fair comparison).
    pub seed: u64,
    /// Baseline fixed period `P`.
    pub fixed_period: Duration,
    /// Virtual run length.
    pub window: Duration,
    /// Leak-sampling warm-up (skip the fleet's staggered start-up).
    pub warmup: Duration,
    /// Leak-sampling interval on the hot module.
    pub leak_every: Duration,
    /// Attack-duration grid for the survival curve.
    pub deltas: Vec<Duration>,
    /// Modeled CPU cost per cycle.
    pub cycle_cost: Duration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        let p = Duration::from_millis(10);
        WindowConfig {
            seed: 1,
            fixed_period: p,
            window: Duration::from_millis(400),
            warmup: Duration::from_millis(60),
            leak_every: Duration::from_millis(1),
            deltas: (1..=20).map(Duration::from_millis).collect(),
            cycle_cost: Duration::from_micros(100),
        }
    }
}

/// One policy's measured outcome.
#[derive(Clone, Debug)]
pub struct PolicyOutcome {
    /// Policy label (`fixed`, `jittered`, `adaptive`).
    pub label: &'static str,
    /// Total completed cycles (hot + cold) — the CPU budget proxy.
    pub cycles: u64,
    /// Hot-module cycles.
    pub hot_cycles: u64,
    /// Modeled CPU spent (cycles × cycle cost).
    pub busy: Duration,
    /// Exposure window of every sampled leak, ns.
    pub windows_ns: Vec<u64>,
    /// Attack-duration grid, ns (mirrors `WindowConfig::deltas`).
    pub deltas_ns: Vec<u64>,
    /// Survival fraction per grid point.
    pub survival: Vec<f64>,
    /// Mean exposure window, ns.
    pub mean_exposure_ns: f64,
}

/// The three policies under test, budget-calibrated against `P`:
/// `Adaptive` is tuned so the hot module saturates at `2P/3` and the
/// cold module relaxes to `4P` — strictly *less* total budget than
/// `FixedPeriod(P)` over the same fleet (1.75 vs 2 cycles per `P`).
pub fn policies_under_test(p: Duration) -> Vec<(&'static str, Policy)> {
    vec![
        ("fixed", Policy::FixedPeriod(p)),
        (
            "jittered",
            Policy::Jittered {
                base: p,
                jitter: 0.5,
            },
        ),
        (
            "adaptive",
            Policy::Adaptive {
                min: p * 2 / 3,
                max: p * 4,
                rate_scale: 5_000.0,
                // Effectively disable the exposure term so the budget
                // calibration above is exact (the call-rate term alone
                // already saturates the hot module at `min`).
                exposure_scale: 1e12,
            },
        ),
    ]
}

/// Run one policy through the scenario and measure its survival curve.
///
/// # Panics
///
/// Panics if the scenario violates a layout invariant (oracle check) or
/// produces no hot-module cycles to measure against.
pub fn run_policy(label: &'static str, policy: Policy, cfg: &WindowConfig) -> PolicyOutcome {
    let mut sim = Sim::new(SimConfig {
        seed: cfg.seed,
        policy,
        cycle_cost: cfg.cycle_cost,
        modules: vec![ModuleProfile::hot("hot"), ModuleProfile::cold("cold")],
        ..SimConfig::default()
    });
    sim.run_for(cfg.window);
    sim.assert_modules_work();
    sim.verify(0).assert_clean();

    let timeline = sim.oracle.timeline_ns("hot");
    assert!(
        !timeline.is_empty(),
        "{label}: no hot-module cycles in the window"
    );
    let warmup_ns = cfg.warmup.as_nanos() as u64;
    let end_ns = cfg.window.as_nanos() as u64;
    let step_ns = cfg.leak_every.as_nanos() as u64;
    let leak_times: Vec<u64> = (0..)
        .map(|k| warmup_ns + k * step_ns)
        .take_while(|&t| t < end_ns)
        .collect();
    let windows_ns = exposure_windows(&leak_times, &timeline);
    let deltas_ns: Vec<u64> = cfg.deltas.iter().map(|d| d.as_nanos() as u64).collect();
    let survival = survival_curve(&windows_ns, &deltas_ns);
    let stats = sim.sched.stats();
    let hot_cycles = stats
        .modules
        .iter()
        .find(|m| m.name == "hot")
        .map_or(0, |m| m.cycles);
    PolicyOutcome {
        label,
        cycles: stats.cycles,
        hot_cycles,
        busy: stats.busy,
        mean_exposure_ns: mean_exposure_ns(&windows_ns),
        windows_ns,
        deltas_ns,
        survival,
    }
}

/// Run every policy under the same seed and scenario.
pub fn run_all(cfg: &WindowConfig) -> Vec<PolicyOutcome> {
    policies_under_test(cfg.fixed_period)
        .into_iter()
        .map(|(label, policy)| run_policy(label, policy, cfg))
        .collect()
}

/// The acceptance property: adaptive spends **no more** CPU budget than
/// fixed yet leaves a **strictly smaller** mean exposure window on the
/// module where leaks happen.
///
/// # Panics
///
/// Panics (with the numbers) when the property does not hold.
pub fn assert_adaptive_beats_fixed(fixed: &PolicyOutcome, adaptive: &PolicyOutcome) {
    assert!(
        adaptive.busy <= fixed.busy,
        "adaptive must not exceed fixed's CPU budget: {:?} vs {:?} ({} vs {} cycles)",
        adaptive.busy,
        fixed.busy,
        adaptive.cycles,
        fixed.cycles,
    );
    assert!(
        adaptive.mean_exposure_ns < fixed.mean_exposure_ns,
        "adaptive must strictly shrink the hot-module exposure window: \
         adaptive {:.0}ns vs fixed {:.0}ns (hot cycles {} vs {})",
        adaptive.mean_exposure_ns,
        fixed.mean_exposure_ns,
        adaptive.hot_cycles,
        fixed.hot_cycles,
    );
}
