//! The deterministic **fleet** simulation harness.
//!
//! [`FleetSim`] is [`Sim`](crate::Sim) scaled out: K seeded kernel
//! shards (a real [`Fleet`] over a
//! [`ShardedKernel`](adelie_kernel::ShardedKernel), modules placed
//! through the pluggable [`ShardPlacement`](adelie_core::ShardPlacement)
//! machinery) on **one virtual clock**, driven one fleet-wide scheduler
//! step at a time with per-shard traffic injected in proportion to
//! virtual time. Same config ⇒ byte-identical fleet timeline.
//!
//! Verification adds the cross-shard layer on top of the per-shard
//! [`LayoutOracle`]s (each with its own stale-translation witness TLB,
//! probing only its shard's timeline):
//!
//! * **window confinement** — every committed placement of shard `i`
//!   lands inside shard `i`'s VA window, checked at every step;
//! * **no cross-shard VA overlap** — live spans of distinct shards are
//!   pairwise disjoint at quiescence (windows are disjoint, so a
//!   violation means a placement escaped its window);
//! * **symbol integrity** — every module's exports and fixed-GOT slots
//!   resolve in exactly its owning shard;
//! * **cross-shard leak isolation** — the fleet attacker's leaks from
//!   shard A must *never* land in shard B, at any point in the run,
//!   even while they still land in A ([`FleetSim::attack_cross_shard`]).

use crate::oracle::{LayoutOracle, OracleReport};
use crate::{Attacker, FaultPlan, HookChain};
use adelie_core::{Fleet, LoadedModule, Pinned, RecoveryReport};
use adelie_kernel::{FleetConfig, KernelConfig, ReadPath, ShardedKernel};
use adelie_sched::{
    CycleReport, FleetScheduler, HealthState, Policy, SchedConfig, ShardSched, SimClock,
    SupervisionConfig,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

pub use crate::harness::{profile_spec, ModuleProfile};

/// A fleet scenario description.
#[derive(Clone, Debug)]
pub struct FleetSimConfig {
    /// Fleet seed (shard seeds derive from it).
    pub seed: u64,
    /// Number of kernel shards.
    pub shards: usize,
    /// Scheduling policy for every module in every shard.
    pub policy: Policy,
    /// Modeled randomizer-pool width *per shard group*.
    pub workers: usize,
    /// Modeled CPU cost charged per cycle on the virtual timeline.
    pub cycle_cost: Duration,
    /// Global (whole-fleet) CPU-budget cap.
    pub max_cpu_frac: f64,
    /// Module profiles replicated into each shard (module `p` of shard
    /// `i` is named `{p.name}_s{i}` and pinned there).
    pub modules_per_shard: Vec<ModuleProfile>,
    /// Translation read path for every shard kernel (the snapshot walk
    /// by default; `Locked` is the ablation baseline).
    pub read_path: ReadPath,
    /// Health state machine thresholds for every shard group.
    pub supervision: SupervisionConfig,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            seed: 1,
            shards: 2,
            policy: Policy::FixedPeriod(Duration::from_millis(10)),
            workers: 1,
            cycle_cost: Duration::from_micros(100),
            max_cpu_frac: f64::INFINITY,
            modules_per_shard: vec![ModuleProfile::hot("hot"), ModuleProfile::cold("cold")],
            read_path: ReadPath::Snapshot,
            supervision: SupervisionConfig::default(),
        }
    }
}

/// The assembled fleet scenario.
pub struct FleetSim {
    /// The fleet (shard kernels + registries + placement catalog).
    pub fleet: Fleet,
    /// The shared virtual timeline.
    pub clock: Arc<SimClock>,
    /// Per-shard stepped scheduler groups under one global budget.
    pub sched: FleetScheduler,
    /// Per-shard layout oracles (own witness TLB each).
    pub oracles: Vec<Arc<LayoutOracle>>,
    /// Per-shard fault injectors, chained ahead of each oracle.
    pub faults: Vec<Arc<FaultPlan>>,
    /// Per-shard profiles (names already shard-suffixed).
    profiles: Vec<Vec<ModuleProfile>>,
    /// Per-shard module handles, profile order.
    modules: Vec<Vec<Arc<LoadedModule>>>,
    /// Per-shard `(entry va, traffic cursor ns)`, profile order.
    traffic: Vec<Vec<(u64, u64)>>,
    /// Cross-shard violations observed during the run.
    violations: Vec<String>,
    /// Every `(shard, report)` the run stepped, in step order — the
    /// raw material for quarantine/probe invariants and recovery
    /// timing.
    reports: Vec<(usize, CycleReport)>,
    /// `(reports.len() at rebuild, shard)` for every crash recovery:
    /// a rebuilt shard's modules restart Healthy in a fresh group, so
    /// health state observed before the mark must not carry across it.
    recoveries: Vec<(usize, usize)>,
    /// The scenario config, kept for shard rebuilds.
    cfg: FleetSimConfig,
}

impl FleetSim {
    /// Assemble the fleet: boot K seeded shards, install each profile
    /// into its pinned shard through the real placement machinery,
    /// hook a [`LayoutOracle`] per shard, start one stepped scheduler
    /// group per shard under one global budget.
    ///
    /// # Panics
    ///
    /// Panics if a profile fails to transform, load, or land on its
    /// pinned shard.
    pub fn new(cfg: FleetSimConfig) -> FleetSim {
        assert!(cfg.shards > 0);
        let sharded = ShardedKernel::new(FleetConfig {
            shards: cfg.shards,
            base: KernelConfig {
                seed: cfg.seed,
                read_path: cfg.read_path,
                ..KernelConfig::default()
            },
        });
        let clock = SimClock::new();

        // Shard-suffixed profiles, pinned placement.
        let profiles: Vec<Vec<ModuleProfile>> = (0..cfg.shards)
            .map(|i| {
                cfg.modules_per_shard
                    .iter()
                    .map(|p| ModuleProfile {
                        name: format!("{}_s{i}", p.name),
                        ..p.clone()
                    })
                    .collect()
            })
            .collect();
        let mut pins = HashMap::new();
        for (i, shard_profiles) in profiles.iter().enumerate() {
            for p in shard_profiles {
                pins.insert(p.name.clone(), i);
            }
        }
        let fleet = Fleet::new(sharded, Box::new(Pinned::new(pins, 0)));

        let opts = adelie_plugin::TransformOptions::rerandomizable(true);
        let mut modules: Vec<Vec<Arc<LoadedModule>>> = Vec::new();
        for (i, shard_profiles) in profiles.iter().enumerate() {
            let mut shard_modules = Vec::new();
            for p in shard_profiles {
                let obj = adelie_plugin::transform(&profile_spec(p), &opts)
                    .expect("transform fleet profile");
                let (shard, module) = fleet.install(&obj, &opts).expect("install fleet profile");
                assert_eq!(shard, i, "pinned placement must honor the shard");
                shard_modules.push(module);
            }
            modules.push(shard_modules);
        }

        // One fault plan + one oracle per shard, chained in that order
        // (the injector denies a stage before the oracle would record
        // the commit that never happens).
        let faults: Vec<Arc<FaultPlan>> = (0..cfg.shards).map(|_| FaultPlan::new()).collect();
        let oracles: Vec<Arc<LayoutOracle>> = (0..cfg.shards)
            .map(|i| {
                let oracle = LayoutOracle::new(fleet.kernel(i).clone(), clock.clone());
                fleet
                    .registry(i)
                    .set_cycle_hooks(Arc::new(HookChain::new(vec![
                        faults[i].clone(),
                        oracle.clone(),
                    ])));
                oracle
            })
            .collect();

        let shard_scheds: Vec<ShardSched> = (0..cfg.shards)
            .map(|i| {
                let mods: Vec<(String, Policy)> = profiles[i]
                    .iter()
                    .map(|p| (p.name.clone(), cfg.policy.clone()))
                    .collect();
                (fleet.kernel(i).clone(), fleet.registry(i).clone(), mods)
            })
            .collect();
        let sched = FleetScheduler::spawn_stepped(
            shard_scheds,
            Self::sched_config(&cfg),
            clock.clone(),
            cfg.cycle_cost,
        );

        let traffic = modules
            .iter()
            .map(|shard_modules| {
                shard_modules
                    .iter()
                    .map(|m| {
                        let entry = m
                            .export(&format!("{}_entry", m.name))
                            .expect("fleet profile entry export");
                        (entry, 0u64)
                    })
                    .collect()
            })
            .collect();
        FleetSim {
            fleet,
            clock,
            sched,
            oracles,
            faults,
            profiles,
            modules,
            traffic,
            violations: Vec::new(),
            reports: Vec::new(),
            recoveries: Vec::new(),
            cfg,
        }
    }

    /// The scheduler group config the scenario runs under (also used
    /// verbatim for replacement groups after a shard rebuild).
    fn sched_config(cfg: &FleetSimConfig) -> SchedConfig {
        SchedConfig {
            workers: cfg.workers,
            policy: cfg.policy.clone(),
            max_cpu_frac: cfg.max_cpu_frac,
            supervision: cfg.supervision.clone(),
            ..SchedConfig::default()
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.modules.len()
    }

    /// Every `(shard, report)` stepped so far, in step order.
    pub fn reports(&self) -> &[(usize, CycleReport)] {
        &self.reports
    }

    /// The loaded module `name` (shard-suffixed) wherever it lives.
    ///
    /// # Panics
    ///
    /// Panics for names not in the scenario.
    pub fn module(&self, name: &str) -> &Arc<LoadedModule> {
        self.modules
            .iter()
            .flatten()
            .find(|m| &*m.name == name)
            .expect("module in fleet scenario")
    }

    /// Drive shard `i`'s traffic up to virtual time `to_ns` (the shared
    /// `harness::advance_profile_traffic` pacing, per shard).
    fn advance_traffic(&mut self, shard: usize, to_ns: u64) {
        let kernel = self.fleet.kernel(shard).clone();
        let mut vm = kernel.vm();
        crate::harness::advance_profile_traffic(
            self.clock.now_ns(),
            &self.profiles[shard],
            &mut self.traffic[shard],
            &mut vm,
            to_ns,
        );
    }

    /// Run the fleet for `dur` of virtual time: repeatedly pick the
    /// fleet-wide earliest deadline, inject every shard's traffic due
    /// before it, and step that shard's group. Every commit is checked
    /// for window confinement on the spot.
    pub fn run_for(&mut self, dur: Duration) {
        let end = self.clock.now_ns() + dur.as_nanos() as u64;
        while let Some((shard, deadline)) = self.sched.peek_deadline_ns() {
            if deadline > end {
                break;
            }
            for s in 0..self.shards() {
                self.advance_traffic(s, deadline);
            }
            if let Some((stepped_shard, report)) = self.sched.step() {
                debug_assert_eq!(stepped_shard, shard);
                if let Some(new_base) = report.new_base {
                    let (lo, hi) = self.fleet.sharded().window(stepped_shard);
                    if new_base < lo || new_base >= hi {
                        self.violations.push(format!(
                            "window escape: shard {stepped_shard}'s {} committed \
                             {new_base:#x} outside [{lo:#x}, {hi:#x})",
                            report.module
                        ));
                    }
                }
                self.reports.push((stepped_shard, report));
            }
        }
        for s in 0..self.shards() {
            self.advance_traffic(s, end);
        }
        self.clock.advance_to(end);
    }

    /// Crash-recover shard `shard` end to end: rebuild its modules
    /// from the fleet's install catalog ([`Fleet::recover_shard`] —
    /// force-unload, reload, old spans vacated), tell the shard's
    /// oracle each module was rebuilt out-of-band, refresh the
    /// harness's module handles and traffic entry points (keeping
    /// traffic cursors, so the virtual-time pacing is unbroken), and
    /// replace the shard's scheduler group with a fresh one over the
    /// rebuilt modules on the same clock and global budget.
    ///
    /// # Panics
    ///
    /// Panics if the fleet cannot rebuild every module of the shard
    /// (a failed rebuild leaves the harness's handles dangling).
    pub fn recover_shard(&mut self, shard: usize) -> RecoveryReport {
        let report = self.fleet.recover_shard(shard).expect("recover shard");
        assert!(
            report.failed.is_empty(),
            "shard {shard} rebuild left failures: {:?}",
            report.failed
        );
        for name in &report.rebuilt {
            self.oracles[shard].module_rebuilt(name);
        }
        // Fresh handles + entry VAs; traffic cursors survive the crash
        // (virtual time does not rewind for a rebuilt shard).
        let registry = self.fleet.registry(shard).clone();
        self.modules[shard] = self.profiles[shard]
            .iter()
            .map(|p| registry.get(&p.name).expect("rebuilt module"))
            .collect();
        for (j, m) in self.modules[shard].iter().enumerate() {
            let entry = m
                .export(&format!("{}_entry", m.name))
                .expect("rebuilt entry export");
            self.traffic[shard][j].0 = entry;
        }
        let mods: Vec<(String, Policy)> = self.profiles[shard]
            .iter()
            .map(|p| (p.name.clone(), self.cfg.policy.clone()))
            .collect();
        self.sched.replace_group_stepped(
            shard,
            self.fleet.kernel(shard).clone(),
            registry,
            &mods,
            Self::sched_config(&self.cfg),
            self.clock.clone(),
            self.cfg.cycle_cost,
        );
        // The replacement group starts every module Healthy: mark the
        // epoch so the quarantine-execution checker forgets pre-crash
        // health state for this shard.
        self.recoveries.push((self.reports.len(), shard));
        report
    }

    /// The quarantine-execution invariant: once a report leaves a
    /// module Quarantined, every later cycle of that module must be an
    /// un-quarantine probe (`probe == true`) until a report moves it
    /// out of Quarantined — a full-rate cycle in between means the
    /// state machine kept burning budget on a module it claimed to
    /// have benched. A crash recovery resets the slate for its shard:
    /// the rebuilt group starts every module Healthy, so a module
    /// Quarantined before the rebuild may run full-rate after it.
    /// Returns violations (empty = clean).
    pub fn check_quarantine_execution(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut last: HashMap<(usize, &str), HealthState> = HashMap::new();
        let mut recoveries = self.recoveries.iter().peekable();
        for (i, (shard, report)) in self.reports.iter().enumerate() {
            while let Some(&&(at, rebuilt)) = recoveries.peek() {
                if at > i {
                    break;
                }
                last.retain(|&(s, _), _| s != rebuilt);
                recoveries.next();
            }
            let key = (*shard, report.module.as_str());
            if last.get(&key) == Some(&HealthState::Quarantined) && !report.probe {
                violations.push(format!(
                    "quarantined module executed: shard {shard}'s {} ran a \
                     full-rate cycle while Quarantined (not a probe)",
                    report.module
                ));
            }
            last.insert(key, report.health);
        }
        violations
    }

    /// Check every module in every shard still computes correctly.
    ///
    /// # Panics
    ///
    /// Panics if any module's entry misbehaves.
    pub fn assert_modules_work(&self) {
        for shard in 0..self.shards() {
            let kernel = self.fleet.kernel(shard).clone();
            let mut vm = kernel.vm();
            for (j, m) in self.modules[shard].iter().enumerate() {
                let (entry, _) = self.traffic[shard][j];
                assert_eq!(
                    vm.call(entry, &[41]).expect("entry call"),
                    42,
                    "module {} broken after fleet scenario",
                    m.name
                );
            }
        }
    }

    /// The fleet attacker: leak a code address from every module of
    /// every shard and fire each leak at **every** shard. In the home
    /// shard the verdict depends on timing (that race is the
    /// single-kernel harness's subject); in any *other* shard a landed
    /// leak is unconditionally a violation — shard windows are
    /// disjoint, so shard A's layout must never resolve in shard B.
    /// Returns violations (empty = isolated).
    pub fn attack_cross_shard(&self, attacker_seed: u64) -> Vec<String> {
        let mut attacker = Attacker::new(attacker_seed);
        let mut violations = Vec::new();
        for src in 0..self.shards() {
            let src_kernel = self.fleet.kernel(src);
            for m in &self.modules[src] {
                let leak = attacker.leak_code(src_kernel, m, self.clock.now_ns());
                for dst in 0..self.shards() {
                    if dst == src {
                        continue;
                    }
                    let outcome = attacker.fire(self.fleet.kernel(dst), &leak);
                    if outcome.landed() {
                        violations.push(format!(
                            "cross-shard leak landed: {va:#x} leaked from {name} \
                             (shard {src}) resolves in shard {dst}",
                            va = leak.va,
                            name = m.name,
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Force quiescence and check **everything**: each shard's oracle
    /// (stale mappings, witness TLB, SMR and snapshot convergence),
    /// window confinement observed during the run, cross-shard span
    /// disjointness, symbol/GOT integrity, and cross-shard leak
    /// isolation. One combined report.
    pub fn verify(&self) -> OracleReport {
        let mut violations = self.violations.clone();

        // Per-shard oracle verdicts (prefix each with its shard).
        for shard in 0..self.shards() {
            let stats = self.sched.group(shard).stats();
            let report =
                self.oracles[shard].verify_quiesced(self.fleet.registry(shard), Some(&stats), 0);
            violations.extend(
                report
                    .violations
                    .into_iter()
                    .map(|v| format!("shard {shard}: {v}")),
            );
        }

        // Cross-shard: every live span confined to its owner's window,
        // all spans pairwise disjoint (the shared fleet checker).
        violations.extend(self.fleet.verify_layout());

        // Symbol + fixed-GOT integrity per owning shard.
        violations.extend(self.fleet.verify_symbol_integrity());

        // Leak isolation holds at quiescence too.
        violations.extend(self.attack_cross_shard(self.clock.now_ns() ^ 0xF1EE7));

        // Supervision: a quarantined module only ever probed.
        violations.extend(self.check_quarantine_execution());

        OracleReport { violations }
    }
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("shards", &self.shards())
            .field("cycles", &self.sched.cycles())
            .finish()
    }
}
