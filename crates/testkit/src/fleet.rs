//! The deterministic **fleet** simulation harness.
//!
//! [`FleetSim`] is [`Sim`](crate::Sim) scaled out: K seeded kernel
//! shards (a real [`Fleet`] over a
//! [`ShardedKernel`](adelie_kernel::ShardedKernel), modules placed
//! through the pluggable [`ShardPlacement`](adelie_core::ShardPlacement)
//! machinery) on **one virtual clock**, driven one fleet-wide scheduler
//! step at a time with per-shard traffic injected in proportion to
//! virtual time. Same config ⇒ byte-identical fleet timeline.
//!
//! Verification adds the cross-shard layer on top of the per-shard
//! [`LayoutOracle`]s (each with its own stale-translation witness TLB,
//! probing only its shard's timeline):
//!
//! * **window confinement** — every committed placement of shard `i`
//!   lands inside shard `i`'s VA window, checked at every step;
//! * **no cross-shard VA overlap** — live spans of distinct shards are
//!   pairwise disjoint at quiescence (windows are disjoint, so a
//!   violation means a placement escaped its window);
//! * **symbol integrity** — every module's exports and fixed-GOT slots
//!   resolve in exactly its owning shard;
//! * **cross-shard leak isolation** — the fleet attacker's leaks from
//!   shard A must *never* land in shard B, at any point in the run,
//!   even while they still land in A ([`FleetSim::attack_cross_shard`]).

use crate::oracle::{LayoutOracle, OracleReport};
use crate::Attacker;
use adelie_core::{Fleet, LoadedModule, Pinned};
use adelie_kernel::{FleetConfig, KernelConfig, ShardedKernel};
use adelie_sched::{FleetScheduler, Policy, SchedConfig, ShardSched, SimClock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

pub use crate::harness::{profile_spec, ModuleProfile};

/// A fleet scenario description.
#[derive(Clone, Debug)]
pub struct FleetSimConfig {
    /// Fleet seed (shard seeds derive from it).
    pub seed: u64,
    /// Number of kernel shards.
    pub shards: usize,
    /// Scheduling policy for every module in every shard.
    pub policy: Policy,
    /// Modeled randomizer-pool width *per shard group*.
    pub workers: usize,
    /// Modeled CPU cost charged per cycle on the virtual timeline.
    pub cycle_cost: Duration,
    /// Global (whole-fleet) CPU-budget cap.
    pub max_cpu_frac: f64,
    /// Module profiles replicated into each shard (module `p` of shard
    /// `i` is named `{p.name}_s{i}` and pinned there).
    pub modules_per_shard: Vec<ModuleProfile>,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            seed: 1,
            shards: 2,
            policy: Policy::FixedPeriod(Duration::from_millis(10)),
            workers: 1,
            cycle_cost: Duration::from_micros(100),
            max_cpu_frac: f64::INFINITY,
            modules_per_shard: vec![ModuleProfile::hot("hot"), ModuleProfile::cold("cold")],
        }
    }
}

/// The assembled fleet scenario.
pub struct FleetSim {
    /// The fleet (shard kernels + registries + placement catalog).
    pub fleet: Fleet,
    /// The shared virtual timeline.
    pub clock: Arc<SimClock>,
    /// Per-shard stepped scheduler groups under one global budget.
    pub sched: FleetScheduler,
    /// Per-shard layout oracles (own witness TLB each).
    pub oracles: Vec<Arc<LayoutOracle>>,
    /// Per-shard profiles (names already shard-suffixed).
    profiles: Vec<Vec<ModuleProfile>>,
    /// Per-shard module handles, profile order.
    modules: Vec<Vec<Arc<LoadedModule>>>,
    /// Per-shard `(entry va, traffic cursor ns)`, profile order.
    traffic: Vec<Vec<(u64, u64)>>,
    /// Cross-shard violations observed during the run.
    violations: Vec<String>,
}

impl FleetSim {
    /// Assemble the fleet: boot K seeded shards, install each profile
    /// into its pinned shard through the real placement machinery,
    /// hook a [`LayoutOracle`] per shard, start one stepped scheduler
    /// group per shard under one global budget.
    ///
    /// # Panics
    ///
    /// Panics if a profile fails to transform, load, or land on its
    /// pinned shard.
    pub fn new(cfg: FleetSimConfig) -> FleetSim {
        assert!(cfg.shards > 0);
        let sharded = ShardedKernel::new(FleetConfig {
            shards: cfg.shards,
            base: KernelConfig {
                seed: cfg.seed,
                ..KernelConfig::default()
            },
        });
        let clock = SimClock::new();

        // Shard-suffixed profiles, pinned placement.
        let profiles: Vec<Vec<ModuleProfile>> = (0..cfg.shards)
            .map(|i| {
                cfg.modules_per_shard
                    .iter()
                    .map(|p| ModuleProfile {
                        name: format!("{}_s{i}", p.name),
                        ..p.clone()
                    })
                    .collect()
            })
            .collect();
        let mut pins = HashMap::new();
        for (i, shard_profiles) in profiles.iter().enumerate() {
            for p in shard_profiles {
                pins.insert(p.name.clone(), i);
            }
        }
        let fleet = Fleet::new(sharded, Box::new(Pinned::new(pins, 0)));

        let opts = adelie_plugin::TransformOptions::rerandomizable(true);
        let mut modules: Vec<Vec<Arc<LoadedModule>>> = Vec::new();
        for (i, shard_profiles) in profiles.iter().enumerate() {
            let mut shard_modules = Vec::new();
            for p in shard_profiles {
                let obj = adelie_plugin::transform(&profile_spec(p), &opts)
                    .expect("transform fleet profile");
                let (shard, module) = fleet.install(&obj, &opts).expect("install fleet profile");
                assert_eq!(shard, i, "pinned placement must honor the shard");
                shard_modules.push(module);
            }
            modules.push(shard_modules);
        }

        // One oracle per shard, hooked into that shard's registry.
        let oracles: Vec<Arc<LayoutOracle>> = (0..cfg.shards)
            .map(|i| {
                let oracle = LayoutOracle::new(fleet.kernel(i).clone(), clock.clone());
                fleet.registry(i).set_cycle_hooks(oracle.clone());
                oracle
            })
            .collect();

        let shard_scheds: Vec<ShardSched> = (0..cfg.shards)
            .map(|i| {
                let mods: Vec<(String, Policy)> = profiles[i]
                    .iter()
                    .map(|p| (p.name.clone(), cfg.policy.clone()))
                    .collect();
                (fleet.kernel(i).clone(), fleet.registry(i).clone(), mods)
            })
            .collect();
        let sched = FleetScheduler::spawn_stepped(
            shard_scheds,
            SchedConfig {
                workers: cfg.workers,
                policy: cfg.policy.clone(),
                max_cpu_frac: cfg.max_cpu_frac,
                ..SchedConfig::default()
            },
            clock.clone(),
            cfg.cycle_cost,
        );

        let traffic = modules
            .iter()
            .map(|shard_modules| {
                shard_modules
                    .iter()
                    .map(|m| {
                        let entry = m
                            .export(&format!("{}_entry", m.name))
                            .expect("fleet profile entry export");
                        (entry, 0u64)
                    })
                    .collect()
            })
            .collect();
        FleetSim {
            fleet,
            clock,
            sched,
            oracles,
            profiles,
            modules,
            traffic,
            violations: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.modules.len()
    }

    /// The loaded module `name` (shard-suffixed) wherever it lives.
    ///
    /// # Panics
    ///
    /// Panics for names not in the scenario.
    pub fn module(&self, name: &str) -> &Arc<LoadedModule> {
        self.modules
            .iter()
            .flatten()
            .find(|m| &*m.name == name)
            .expect("module in fleet scenario")
    }

    /// Drive shard `i`'s traffic up to virtual time `to_ns` (the shared
    /// `harness::advance_profile_traffic` pacing, per shard).
    fn advance_traffic(&mut self, shard: usize, to_ns: u64) {
        let kernel = self.fleet.kernel(shard).clone();
        let mut vm = kernel.vm();
        crate::harness::advance_profile_traffic(
            self.clock.now_ns(),
            &self.profiles[shard],
            &mut self.traffic[shard],
            &mut vm,
            to_ns,
        );
    }

    /// Run the fleet for `dur` of virtual time: repeatedly pick the
    /// fleet-wide earliest deadline, inject every shard's traffic due
    /// before it, and step that shard's group. Every commit is checked
    /// for window confinement on the spot.
    pub fn run_for(&mut self, dur: Duration) {
        let end = self.clock.now_ns() + dur.as_nanos() as u64;
        while let Some((shard, deadline)) = self.sched.peek_deadline_ns() {
            if deadline > end {
                break;
            }
            for s in 0..self.shards() {
                self.advance_traffic(s, deadline);
            }
            if let Some((stepped_shard, report)) = self.sched.step() {
                debug_assert_eq!(stepped_shard, shard);
                if let Some(new_base) = report.new_base {
                    let (lo, hi) = self.fleet.sharded().window(stepped_shard);
                    if new_base < lo || new_base >= hi {
                        self.violations.push(format!(
                            "window escape: shard {stepped_shard}'s {} committed \
                             {new_base:#x} outside [{lo:#x}, {hi:#x})",
                            report.module
                        ));
                    }
                }
            }
        }
        for s in 0..self.shards() {
            self.advance_traffic(s, end);
        }
        self.clock.advance_to(end);
    }

    /// Check every module in every shard still computes correctly.
    ///
    /// # Panics
    ///
    /// Panics if any module's entry misbehaves.
    pub fn assert_modules_work(&self) {
        for shard in 0..self.shards() {
            let kernel = self.fleet.kernel(shard).clone();
            let mut vm = kernel.vm();
            for (j, m) in self.modules[shard].iter().enumerate() {
                let (entry, _) = self.traffic[shard][j];
                assert_eq!(
                    vm.call(entry, &[41]).expect("entry call"),
                    42,
                    "module {} broken after fleet scenario",
                    m.name
                );
            }
        }
    }

    /// The fleet attacker: leak a code address from every module of
    /// every shard and fire each leak at **every** shard. In the home
    /// shard the verdict depends on timing (that race is the
    /// single-kernel harness's subject); in any *other* shard a landed
    /// leak is unconditionally a violation — shard windows are
    /// disjoint, so shard A's layout must never resolve in shard B.
    /// Returns violations (empty = isolated).
    pub fn attack_cross_shard(&self, attacker_seed: u64) -> Vec<String> {
        let mut attacker = Attacker::new(attacker_seed);
        let mut violations = Vec::new();
        for src in 0..self.shards() {
            let src_kernel = self.fleet.kernel(src);
            for m in &self.modules[src] {
                let leak = attacker.leak_code(src_kernel, m, self.clock.now_ns());
                for dst in 0..self.shards() {
                    if dst == src {
                        continue;
                    }
                    let outcome = attacker.fire(self.fleet.kernel(dst), &leak);
                    if outcome.landed() {
                        violations.push(format!(
                            "cross-shard leak landed: {va:#x} leaked from {name} \
                             (shard {src}) resolves in shard {dst}",
                            va = leak.va,
                            name = m.name,
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Force quiescence and check **everything**: each shard's oracle
    /// (stale mappings, witness TLB, SMR and snapshot convergence),
    /// window confinement observed during the run, cross-shard span
    /// disjointness, symbol/GOT integrity, and cross-shard leak
    /// isolation. One combined report.
    pub fn verify(&self) -> OracleReport {
        let mut violations = self.violations.clone();

        // Per-shard oracle verdicts (prefix each with its shard).
        for shard in 0..self.shards() {
            let stats = self.sched.group(shard).stats();
            let report =
                self.oracles[shard].verify_quiesced(self.fleet.registry(shard), Some(&stats), 0);
            violations.extend(
                report
                    .violations
                    .into_iter()
                    .map(|v| format!("shard {shard}: {v}")),
            );
        }

        // Cross-shard: every live span confined to its owner's window,
        // all spans pairwise disjoint (the shared fleet checker).
        violations.extend(self.fleet.verify_layout());

        // Symbol + fixed-GOT integrity per owning shard.
        violations.extend(self.fleet.verify_symbol_integrity());

        // Leak isolation holds at quiescence too.
        violations.extend(self.attack_cross_shard(self.clock.now_ns() ^ 0xF1EE7));

        OracleReport { violations }
    }
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("shards", &self.shards())
            .field("cycles", &self.sched.cycles())
            .finish()
    }
}
