//! Deterministic fault injection over the re-randomization pipeline.
//!
//! A [`FaultPlan`] is a set of rules, each naming a module (or any
//! module), a [`CycleStage`], and a 0-based cycle *attempt* index. It
//! installs as [`CycleHooks`] on the registry (usually via
//! [`Sim`](crate::Sim), chained with the layout oracle) and denies the
//! matching stage of the matching attempt — which makes
//! `rerandomize_module` fail there through its normal typed-error and
//! rollback path, exactly as a real mmap/patch/callback failure would.
//! Every injection that actually fired is recorded so tests can assert
//! the plan ran as written.

use adelie_core::{CycleCommit, CycleHooks, CycleStage};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// One injection rule.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Target module, or `None` for "any module".
    pub module: Option<String>,
    /// Stage to deny.
    pub stage: CycleStage,
    /// Which cycle *attempt* of the module to hit (0-based; failed
    /// attempts count — that is what makes retry storms plannable).
    pub attempt: u64,
}

/// A rule that actually fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// Module the cycle belonged to.
    pub module: String,
    /// Stage that was denied.
    pub stage: CycleStage,
    /// The module's attempt index at the time.
    pub attempt: u64,
}

/// A deterministic stage-failure injector (see module docs).
#[derive(Default)]
pub struct FaultPlan {
    rules: Mutex<Vec<FaultRule>>,
    /// Cycle attempts seen per module (bumped when a cycle reaches its
    /// `Reserve` stage).
    attempts: Mutex<HashMap<String, u64>>,
    fired: Mutex<Vec<FiredFault>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until rules are added).
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Add a rule: deny `stage` on `module`'s `attempt`-th cycle.
    pub fn fail_at(&self, module: &str, stage: CycleStage, attempt: u64) {
        self.rules.lock().unwrap().push(FaultRule {
            module: Some(module.to_string()),
            stage,
            attempt,
        });
    }

    /// Add a rule matching any module.
    pub fn fail_any(&self, stage: CycleStage, attempt: u64) {
        self.rules.lock().unwrap().push(FaultRule {
            module: None,
            stage,
            attempt,
        });
    }

    /// Injections that actually fired, in order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().unwrap().clone()
    }

    /// Cycle attempts observed for `module`.
    pub fn attempts(&self, module: &str) -> u64 {
        self.attempts
            .lock()
            .unwrap()
            .get(module)
            .copied()
            .unwrap_or(0)
    }
}

impl CycleHooks for FaultPlan {
    fn allow(&self, module: &str, stage: CycleStage) -> bool {
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap();
            let n = attempts.entry(module.to_string()).or_insert(0);
            if stage == CycleStage::Reserve {
                *n += 1;
            }
            n.saturating_sub(1)
        };
        let denied = self.rules.lock().unwrap().iter().any(|r| {
            r.stage == stage
                && r.attempt == attempt
                && r.module.as_deref().is_none_or(|m| m == module)
        });
        if denied {
            self.fired.lock().unwrap().push(FiredFault {
                module: module.to_string(),
                stage,
                attempt,
            });
        }
        !denied
    }

    fn committed(&self, _commit: &CycleCommit<'_>) {}
}
