//! Deterministic fault injection over the re-randomization pipeline.
//!
//! A [`FaultPlan`] is a set of rules, each naming a module (or any
//! module), a [`CycleStage`], and a 0-based cycle *attempt* index. It
//! installs as [`CycleHooks`] on the registry (usually via
//! [`Sim`](crate::Sim), chained with the layout oracle) and denies the
//! matching stage of the matching attempt — which makes
//! `rerandomize_module` fail there through its normal typed-error and
//! rollback path, exactly as a real mmap/patch/callback failure would.
//! Every injection that actually fired is recorded so tests can assert
//! the plan ran as written.

use adelie_core::{CycleCommit, CycleHooks, CycleStage};
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// When a rule fires, expressed over a module's 0-based cycle
/// *attempt* index (failed attempts count — that is what makes retry
/// storms plannable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSchedule {
    /// A single attempt.
    At(u64),
    /// `count` consecutive attempts starting at `from` — a correlated
    /// burst (transient backend outage).
    Burst {
        /// First attempt hit.
        from: u64,
        /// Number of consecutive attempts hit.
        count: u64,
    },
    /// Every `period`-th attempt from `from` onward, forever — a
    /// sustained fault storm (`period = 1` fails every attempt).
    Every {
        /// First attempt hit.
        from: u64,
        /// Stride between hits (0 is treated as 1).
        period: u64,
    },
}

impl FaultSchedule {
    /// Whether `attempt` is on the schedule.
    pub fn matches(&self, attempt: u64) -> bool {
        match *self {
            FaultSchedule::At(at) => attempt == at,
            FaultSchedule::Burst { from, count } => attempt >= from && attempt - from < count,
            FaultSchedule::Every { from, period } => {
                attempt >= from && (attempt - from).is_multiple_of(period.max(1))
            }
        }
    }
}

/// One injection rule.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Target module, or `None` for "any module".
    pub module: Option<String>,
    /// Stage to deny.
    pub stage: CycleStage,
    /// Which cycle attempts of the module to hit.
    pub schedule: FaultSchedule,
}

/// A rule that actually fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// Module the cycle belonged to.
    pub module: String,
    /// Stage that was denied.
    pub stage: CycleStage,
    /// The module's attempt index at the time.
    pub attempt: u64,
}

/// A deterministic stage-failure injector (see module docs).
#[derive(Default)]
pub struct FaultPlan {
    rules: Mutex<Vec<FaultRule>>,
    /// Cycle attempts seen per module (bumped when a cycle reaches its
    /// `Reserve` stage).
    attempts: Mutex<HashMap<String, u64>>,
    fired: Mutex<Vec<FiredFault>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until rules are added).
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Add a rule: deny `stage` on `module`'s cycles per `schedule`.
    pub fn fail_on(&self, module: &str, stage: CycleStage, schedule: FaultSchedule) {
        self.rules.lock().unwrap().push(FaultRule {
            module: Some(module.to_string()),
            stage,
            schedule,
        });
    }

    /// Add a rule: deny `stage` on `module`'s `attempt`-th cycle.
    pub fn fail_at(&self, module: &str, stage: CycleStage, attempt: u64) {
        self.fail_on(module, stage, FaultSchedule::At(attempt));
    }

    /// Deny `stage` on `count` consecutive attempts of `module`
    /// starting at `from` — a correlated fault burst.
    pub fn fail_burst(&self, module: &str, stage: CycleStage, from: u64, count: u64) {
        self.fail_on(module, stage, FaultSchedule::Burst { from, count });
    }

    /// Deny `stage` on every `period`-th attempt of `module` from
    /// `from` onward — a sustained fault storm.
    pub fn fail_sustained(&self, module: &str, stage: CycleStage, from: u64, period: u64) {
        self.fail_on(module, stage, FaultSchedule::Every { from, period });
    }

    /// Add a rule matching any module.
    pub fn fail_any(&self, stage: CycleStage, attempt: u64) {
        self.rules.lock().unwrap().push(FaultRule {
            module: None,
            stage,
            schedule: FaultSchedule::At(attempt),
        });
    }

    /// Deny `stage` on `count` consecutive attempts of *any* module
    /// starting at `from`.
    pub fn fail_any_burst(&self, stage: CycleStage, from: u64, count: u64) {
        self.rules.lock().unwrap().push(FaultRule {
            module: None,
            stage,
            schedule: FaultSchedule::Burst { from, count },
        });
    }

    /// Injections that actually fired, in order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().unwrap().clone()
    }

    /// Cycle attempts observed for `module`.
    pub fn attempts(&self, module: &str) -> u64 {
        self.attempts
            .lock()
            .unwrap()
            .get(module)
            .copied()
            .unwrap_or(0)
    }
}

impl CycleHooks for FaultPlan {
    fn allow(&self, module: &str, stage: CycleStage) -> bool {
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap();
            let n = attempts.entry(module.to_string()).or_insert(0);
            if stage == CycleStage::Reserve {
                *n += 1;
            }
            n.saturating_sub(1)
        };
        let denied = self.rules.lock().unwrap().iter().any(|r| {
            r.stage == stage
                && r.schedule.matches(attempt)
                && r.module.as_deref().is_none_or(|m| m == module)
        });
        if denied {
            self.fired.lock().unwrap().push(FiredFault {
                module: module.to_string(),
                stage,
                attempt,
            });
        }
        !denied
    }

    fn committed(&self, _commit: &CycleCommit<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_cover_their_attempts() {
        assert!(FaultSchedule::At(3).matches(3));
        assert!(!FaultSchedule::At(3).matches(4));
        let burst = FaultSchedule::Burst { from: 2, count: 3 };
        let hits: Vec<u64> = (0..8).filter(|&a| burst.matches(a)).collect();
        assert_eq!(hits, vec![2, 3, 4]);
        let storm = FaultSchedule::Every { from: 1, period: 3 };
        let hits: Vec<u64> = (0..10).filter(|&a| storm.matches(a)).collect();
        assert_eq!(hits, vec![1, 4, 7]);
        // period 0 degrades to 1 (every attempt), not a div-by-zero.
        let every = FaultSchedule::Every { from: 5, period: 0 };
        assert!(every.matches(5) && every.matches(6));
        assert!(!every.matches(4));
    }
}
