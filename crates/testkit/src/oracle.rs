//! The cross-cycle layout oracle.
//!
//! Installed as [`CycleHooks`] (chained after the
//! [`FaultPlan`](crate::FaultPlan)), the oracle records the ground-truth
//! move timeline of every module — who moved, from where, to where,
//! when — and checks the global layout invariants the whole defence
//! rests on:
//!
//! 1. **no overlap** — at no commit did a module's new range overlap
//!    any other module's current range (the reservation allocator's
//!    contract, observed end-to-end rather than unit-tested);
//! 2. **no stale mappings** — once the system quiesces, every address
//!    range a module ever vacated is unmapped (a leaked pointer *must*
//!    fault);
//! 3. **no SMR leak** — retired ≥ freed converges to retired == freed
//!    at quiescence, for module ranges and rotated stacks alike;
//! 4. **no silent pointer-refresh drop** — the scheduler's
//!    `pointer_refresh_failures` matches what the test expected
//!    (usually zero);
//! 5. **no stale translation across a batch** — a *witness TLB*,
//!    deliberately warmed on every module's range at each commit, is
//!    probed against every vacated range: if the witness still serves a
//!    translation the address space has retired, the range-based
//!    shootdown (invalidation log / partial flush) is broken. The
//!    witness resynchronizes exactly like a real per-CPU TLB, so it
//!    exercises partial invalidation, epoch-merged slots, and the
//!    full-flush fallback across whatever interleaving the scenario
//!    produced;
//! 6. **no torn snapshot publication, no snapshot leak** — at every
//!    commit a reader probing *mid-publish* must find the new movable
//!    base already executable (the batch's snapshot swap is atomic: a
//!    concurrent reader sees the whole new layout or the whole old
//!    one, never a hole), and at quiescence the address space's
//!    snapshot-reclamation domain must have freed every retired
//!    page-table root (`snapshots_reclaimed == snapshot_publishes`,
//!    SMR delta 0) — a reader pinned forever or a lost retire would
//!    show up here. A second, batch-shaped probe rides along: a
//!    `translate_batch` spanning the vacated and the fresh base
//!    resolves against one snapshot root, so it may see either side
//!    of the publish (or the overlap while the retire-unmap drains)
//!    but never *both* unmapped — both-unmapped would mean one batch
//!    mixed two generations.
//! 7. **no stale PLT binding** — a lazily-bound PLT slot records the
//!    target it resolved to; after any commit, every bound slot must
//!    hold exactly the target's *current* address (checked by
//!    [`adelie_core::verify_plt_bindings`]), that address must still be
//!    executable, and at quiescence no bound slot may point into any
//!    range the run ever vacated. A slot that kept its pre-move value
//!    would be *callable into a retired range* — the exact bug class
//!    lazy binding introduces on top of eager GOT re-swinging. Enable
//!    with [`LayoutOracle::track_modules`];
//! 8. **no cross-ASID serve** — TLB entries are ASID-tagged and survive
//!    space switches (DESIGN.md §15), so the witness is additionally
//!    probed against a deliberately *empty* foreign address space (same
//!    ISA backend, its own ASID): an entry cached under the kernel
//!    space's ASID must never answer a translation for the foreign
//!    space, and — checked at quiescence, where it is deterministic —
//!    the kernel-space entry must still hit after the ASID round trip
//!    (tagged retention, not a silent flush-on-switch).
//!
//! `verify_quiesced` is deliberately *destructive reading*: it rotates
//! the stack pools and flushes the reclaimer to force quiescence, then
//! checks. Call it at the end of a scenario.

use adelie_core::{CycleCommit, CycleHooks, ModuleRegistry};
use adelie_kernel::Kernel;
use adelie_sched::{SchedStats, SimClock};
use adelie_vmem::{Access, AddressSpace, SpaceConfig, Tlb, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One observed, committed move.
#[derive(Clone, Debug)]
pub struct CommitRecord {
    /// Module that moved.
    pub module: String,
    /// Base it vacated.
    pub old_base: u64,
    /// Base it now runs at.
    pub new_base: u64,
    /// Movable-part span in bytes.
    pub span: u64,
    /// Module generation after the move.
    pub generation: u64,
    /// Virtual time of the commit.
    pub at_ns: u64,
}

/// Ground-truth recorder + invariant checker (see module docs).
pub struct LayoutOracle {
    kernel: Arc<Kernel>,
    clock: Arc<SimClock>,
    commits: Mutex<Vec<CommitRecord>>,
    /// Current `(base, span)` per module, as of the last commit.
    live: Mutex<HashMap<String, (u64, u64)>>,
    /// Invariant violations detected *during* the run (overlaps, stale
    /// TLB translations).
    violations: Mutex<Vec<String>>,
    /// The stale-translation witness: a TLB warmed on every committed
    /// range and probed against every vacated one (module docs, #5).
    witness: Mutex<Tlb>,
    /// A deliberately empty address space on the kernel's ISA backend
    /// with its own ASID — the probe target of the cross-ASID
    /// isolation invariant (module docs, #8).
    foreign: AddressSpace,
    /// Registry to audit bound PLT slots against at each commit
    /// (module docs, #7). Weak: the registry owns the oracle as its
    /// cycle hooks, so a strong edge here would leak both.
    registry: Mutex<Option<std::sync::Weak<ModuleRegistry>>>,
    /// `(module, base, span)` ranges vacated by out-of-band rebuilds
    /// ([`LayoutOracle::module_rebuilt`]) rather than by cycles — shard
    /// crash recovery tears a module down and reloads it outside the
    /// commit stream. Re-probed at `verify_quiesced`: no stale mapping
    /// may survive a shard rebuild.
    rebuilt_spans: Mutex<Vec<(String, u64, u64)>>,
    /// `(base, span)` ranges vacated by cold-tier eviction
    /// ([`LayoutOracle::module_evicted`]), keyed by module. Unlike
    /// `rebuilt_spans` these are *conditional*: an evicted module's
    /// spans must stay unmapped only until its first call demand-faults
    /// it back in ([`LayoutOracle::module_faulted_in`] clears them).
    /// Probed at eviction and re-probed at `verify_quiesced` for every
    /// module still evicted.
    evicted_spans: Mutex<HashMap<String, Vec<(u64, u64)>>>,
}

impl LayoutOracle {
    /// An oracle timestamping against `clock`.
    pub fn new(kernel: Arc<Kernel>, clock: Arc<SimClock>) -> Arc<LayoutOracle> {
        let arch = kernel.space.arch();
        Arc::new(LayoutOracle {
            clock,
            commits: Mutex::new(Vec::new()),
            live: Mutex::new(HashMap::new()),
            violations: Mutex::new(Vec::new()),
            witness: Mutex::new(Tlb::with_arch(arch)),
            foreign: AddressSpace::with_space_config(SpaceConfig {
                arch,
                ..SpaceConfig::new()
            }),
            registry: Mutex::new(None),
            rebuilt_spans: Mutex::new(Vec::new()),
            evicted_spans: Mutex::new(HashMap::new()),
            kernel,
        })
    }

    /// Tell the oracle `module` was rebuilt out-of-band (shard crash
    /// recovery: force-unloaded and reloaded from the install catalog,
    /// not moved by a cycle). Its last committed range is no longer
    /// live — the oracle probes it for staleness *right now* (witness
    /// TLB + direct translate) and again at `verify_quiesced`, and
    /// stops treating it as the module's current base. Commit history
    /// is kept: vacated-range checks still cover the pre-crash
    /// timeline.
    pub fn module_rebuilt(&self, module: &str) {
        let Some((base, span)) = self.live.lock().unwrap().remove(module) else {
            return; // never committed a move — nothing the oracle tracked
        };
        let mut violations = Vec::new();
        self.probe_vacated(base, span, "after shard rebuild", &mut violations);
        if self.kernel.space.translate(base, Access::Read).is_ok() {
            violations.push(format!(
                "stale mapping survives shard rebuild: {module}'s pre-crash base \
                 {base:#x} is still mapped after recovery"
            ));
        }
        if !violations.is_empty() {
            self.violations.lock().unwrap().append(&mut violations);
        }
        self.rebuilt_spans
            .lock()
            .unwrap()
            .push((module.to_string(), base, span));
    }

    /// Tell the oracle `module` was evicted by the cold tier: `spans`
    /// are the `(base, span)` ranges its parts vacated (from
    /// [`Fleet::evicted_spans`](adelie_core::Fleet::evicted_spans)).
    /// They are probed for staleness *right now* (witness TLB + direct
    /// translate) and at every `verify_quiesced` until
    /// [`LayoutOracle::module_faulted_in`] reports the module resident
    /// again — an evicted module's code must be genuinely gone, not
    /// merely forgotten by the catalog.
    pub fn module_evicted(&self, module: &str, spans: &[(u64, u64)]) {
        self.live.lock().unwrap().remove(module);
        let mut violations = Vec::new();
        for &(base, span) in spans {
            self.probe_vacated(base, span, "after cold-tier eviction", &mut violations);
            if self.kernel.space.translate(base, Access::Read).is_ok() {
                violations.push(format!(
                    "stale mapping survives eviction: {module}'s part base {base:#x} \
                     is still mapped after the cold tier unloaded it"
                ));
            }
        }
        if !violations.is_empty() {
            self.violations.lock().unwrap().append(&mut violations);
        }
        self.evicted_spans
            .lock()
            .unwrap()
            .insert(module.to_string(), spans.to_vec());
    }

    /// Tell the oracle `module` demand-faulted back in: its evicted
    /// spans stop being asserted-unmapped (the allocator is free to
    /// reuse them, including for the reload itself). The witness TLB is
    /// probed one last time — whatever the fault-in path mapped, the
    /// witness must not be serving translations the space has retired.
    pub fn module_faulted_in(&self, module: &str) {
        let Some(spans) = self.evicted_spans.lock().unwrap().remove(module) else {
            return; // never reported evicted — nothing the oracle tracked
        };
        let mut violations = Vec::new();
        for (base, span) in spans {
            self.probe_vacated(base, span, "after demand fault-in", &mut violations);
        }
        if !violations.is_empty() {
            self.violations.lock().unwrap().append(&mut violations);
        }
    }

    /// Audit bound PLT slots (module docs, #7) at every commit of the
    /// modules in `registry`. Without this the per-commit PLT check is
    /// skipped (`verify_quiesced` still audits whatever registry it is
    /// handed).
    pub fn track_modules(&self, registry: &Arc<ModuleRegistry>) {
        *self.registry.lock().unwrap() = Some(Arc::downgrade(registry));
    }

    /// Module docs, #7: every bound lazy-PLT slot of `module` must hold
    /// exactly its target's current address, and that address must be
    /// callable *right now* (`what` names the probe site).
    fn audit_plt(
        &self,
        module: &Arc<adelie_core::LoadedModule>,
        what: &str,
        out: &mut Vec<String>,
    ) {
        for v in adelie_core::verify_plt_bindings(&self.kernel, module) {
            out.push(format!("PLT audit {what}: {v}"));
        }
        for slot in module.lazy_plt.iter() {
            let bound = slot.bound.load(std::sync::atomic::Ordering::Acquire);
            // Kernel natives are dispatched by VA range, not mapped —
            // the translate probe only applies to module-space targets.
            if bound != 0
                && !adelie_kernel::layout::is_native(bound)
                && self.kernel.space.translate(bound, Access::Exec).is_err()
            {
                out.push(format!(
                    "stale PLT binding {what}: {}'s slot for `{}` holds {bound:#x}, \
                     which is not executable — a call through it would land in a \
                     retired range",
                    module.name, slot.symbol
                ));
            }
        }
    }

    /// Probe `[base, base+span)` through the witness TLB: any page the
    /// witness still translates but the address space has retired is a
    /// stale-translation violation (`what` names the probe site).
    ///
    /// Scenarios may retire ranges *concurrently* with this probe (a
    /// reclaimer drains a retire-unmap on another CPU between the two
    /// reads below), so a candidate hit is re-probed: a correct TLB
    /// drops the entry as soon as it resynchronizes against the newly
    /// published invalidation set, while a broken shootdown path keeps
    /// serving it across every resync — only the latter is a violation.
    fn probe_vacated(&self, base: u64, span: u64, what: &str, out: &mut Vec<String>) {
        let mut witness = self.witness.lock().unwrap_or_else(|e| e.into_inner());
        for page in 0..(span as usize / PAGE_SIZE) {
            let va = base + (page * PAGE_SIZE) as u64;
            if let Some(pte) = witness.lookup(va, &self.kernel.space) {
                if self.kernel.space.translate(va, Access::Read).is_err()
                    && self.confirm_stale(&mut witness, va)
                {
                    out.push(format!(
                        "stale translation served {what}: witness TLB still maps \
                         {va:#x} (pte {pte:?}) but the space has retired it"
                    ));
                    return; // one line per stale range is enough
                }
            }
        }
    }

    /// Re-probe a candidate stale hit (see [`LayoutOracle::probe_vacated`]):
    /// `true` only if the witness keeps serving a translation the space
    /// rejects across repeated resynchronizations.
    fn confirm_stale(&self, witness: &mut Tlb, va: u64) -> bool {
        for _ in 0..64 {
            std::thread::yield_now();
            if witness.lookup(va, &self.kernel.space).is_none() {
                return false; // benign race: the resync evicted it
            }
            if self.kernel.space.translate(va, Access::Read).is_ok() {
                return false; // the page is genuinely mapped again
            }
        }
        true
    }

    /// Module docs, #8: an entry the witness cached under the kernel
    /// space's ASID must never serve a translation for a different
    /// space — probed with the deliberately empty, same-arch `foreign`
    /// space. With `strict` the kernel-space entry must additionally
    /// survive the ASID round trip and hit again (tagged retention);
    /// that half is only deterministic once the run has quiesced, so
    /// per-commit probes pass `strict = false`.
    fn probe_cross_asid(&self, va: u64, what: &str, strict: bool, out: &mut Vec<String>) {
        let mut witness = self.witness.lock().unwrap_or_else(|e| e.into_inner());
        if witness.lookup(va, &self.kernel.space).is_none() {
            return; // nothing cached under the kernel ASID — nothing to leak
        }
        if let Some(pte) = witness.lookup(va, &self.foreign) {
            out.push(format!(
                "cross-ASID serve {what}: witness answered {va:#x} (pte {pte:?}) \
                 for a space that never mapped it — an ASID-tagged entry leaked \
                 across address spaces"
            ));
        }
        if strict && witness.lookup(va, &self.kernel.space).is_none() {
            out.push(format!(
                "tagged retention broke {what}: the witness entry for {va:#x} did \
                 not survive an ASID round trip in a quiesced system"
            ));
        }
    }

    /// Warm the witness TLB over `[base, base+span)` so the *next*
    /// batch that retires any of it has a cached entry to invalidate.
    fn warm_witness(&self, base: u64, span: u64) {
        let mut witness = self.witness.lock().unwrap_or_else(|e| e.into_inner());
        for page in 0..(span as usize / PAGE_SIZE) {
            let va = base + (page * PAGE_SIZE) as u64;
            if witness.lookup(va, &self.kernel.space).is_none() {
                if let Ok(t) = self.kernel.space.translate(va, Access::Read) {
                    witness.insert(&t);
                }
            }
        }
    }

    /// All committed moves, in commit order.
    pub fn commits(&self) -> Vec<CommitRecord> {
        self.commits.lock().unwrap().clone()
    }

    /// Commit times (ns) of one module, ascending — the re-randomization
    /// timeline the attack-window math consumes.
    pub fn timeline_ns(&self, module: &str) -> Vec<u64> {
        self.commits
            .lock()
            .unwrap()
            .iter()
            .filter(|c| c.module == module)
            .map(|c| c.at_ns)
            .collect()
    }

    /// Force quiescence (rotate stack pools, flush the reclaimer) and
    /// check every invariant. `expected_refresh_failures` is the number
    /// of pointer-refresh drops the scenario *planned* (0 for clean
    /// runs).
    pub fn verify_quiesced(
        &self,
        registry: &Arc<ModuleRegistry>,
        stats: Option<&SchedStats>,
        expected_refresh_failures: u64,
    ) -> OracleReport {
        let mut violations = self.violations.lock().unwrap().clone();
        registry.stacks.rotate(&self.kernel);
        self.kernel.reclaim.flush();

        // (3) SMR convergence: everything retired has been freed.
        let smr = self.kernel.reclaim.stats();
        if smr.delta() != 0 {
            violations.push(format!(
                "SMR leak at quiescence: retired {} vs freed {}",
                smr.retired, smr.freed
            ));
        }
        let st = registry.stacks.stats();
        if st.delta() != 0 {
            violations.push(format!(
                "stack leak at quiescence: allocated {} vs freed {}",
                st.allocated, st.freed
            ));
        }

        // (2) Every vacated range is unmapped; every current base is
        // mapped. A vacated page is only exempt if some module's
        // *current* range re-covers it (possible in principle with
        // random placement, never in a seeded test run).
        // (5) And the witness TLB — which followed every invalidation
        // set the run published — must agree: it may not translate
        // anything the space has retired, across any vacated range.
        let live: Vec<(u64, u64)> = self.live.lock().unwrap().values().copied().collect();
        let covered = |va: u64| live.iter().any(|&(b, s)| va >= b && va < b + s);
        for c in self.commits.lock().unwrap().iter() {
            self.probe_vacated(c.old_base, c.span, "at quiescence", &mut violations);
        }
        for c in self.commits.lock().unwrap().iter() {
            for page in 0..(c.span as usize / PAGE_SIZE) {
                let va = c.old_base + (page * PAGE_SIZE) as u64;
                if covered(va) {
                    continue;
                }
                if self.kernel.space.translate(va, Access::Read).is_ok() {
                    violations.push(format!(
                        "stale mapping survives: {} vacated {va:#x} (cycle at t={}ns) \
                         but it is still mapped",
                        c.module, c.at_ns
                    ));
                    break; // one line per stale range is enough
                }
            }
        }
        // Ranges vacated by out-of-band shard rebuilds get the same
        // treatment as cycle-vacated ones: unmapped at quiescence, and
        // the witness must have dropped them.
        for (module, base, span) in self.rebuilt_spans.lock().unwrap().iter() {
            self.probe_vacated(*base, *span, "at quiescence (rebuilt)", &mut violations);
            for page in 0..(*span as usize / PAGE_SIZE) {
                let va = base + (page * PAGE_SIZE) as u64;
                if covered(va) {
                    continue;
                }
                if self.kernel.space.translate(va, Access::Read).is_ok() {
                    violations.push(format!(
                        "stale mapping survives shard rebuild: {module} vacated \
                         {va:#x} at recovery but it is still mapped at quiescence"
                    ));
                    break;
                }
            }
        }
        // A module the cold tier evicted and that has NOT faulted back
        // in must still have every vacated page unmapped — an "evicted"
        // module whose code is still reachable defeats the tier's whole
        // point. Pages re-covered by some module's current range are
        // exempt (the allocator legitimately reuses freed windows).
        for (module, spans) in self.evicted_spans.lock().unwrap().iter() {
            for &(base, span) in spans {
                self.probe_vacated(base, span, "at quiescence (evicted)", &mut violations);
                for page in 0..(span as usize / PAGE_SIZE) {
                    let va = base + (page * PAGE_SIZE) as u64;
                    if covered(va) {
                        continue;
                    }
                    if self.kernel.space.translate(va, Access::Read).is_ok() {
                        violations.push(format!(
                            "evicted module still mapped: {module} vacated {va:#x} \
                             at eviction, never faulted back in, yet the page is \
                             mapped at quiescence"
                        ));
                        break;
                    }
                }
            }
        }
        for (module, &(base, span)) in self.live.lock().unwrap().iter() {
            if self.kernel.space.translate(base, Access::Exec).is_err() {
                violations.push(format!(
                    "current base of {module} ({base:#x}) is not executable"
                ));
                continue;
            }
            // (8) Cross-ASID isolation, strict at quiescence: warm the
            // live base under the kernel ASID, demand it never answers
            // for the foreign space, and demand it still hits after the
            // ASID round trip (tagged retention — nothing else can
            // invalidate it in a quiesced system).
            self.warm_witness(base, span.min(PAGE_SIZE as u64));
            self.probe_cross_asid(base, "at quiescence", true, &mut violations);
        }

        // (7) Bound-PLT staleness at quiescence: beyond the per-commit
        // audit, no bound slot of any still-loaded module may point
        // into any range the run ever vacated (unless a current range
        // legitimately re-covers it).
        for name in registry.list() {
            let Some(module) = registry.get(&name) else {
                continue;
            };
            self.audit_plt(&module, "at quiescence", &mut violations);
            for slot in module.lazy_plt.iter() {
                let bound = slot.bound.load(std::sync::atomic::Ordering::Acquire);
                if bound == 0 || covered(bound) {
                    continue;
                }
                if let Some(c) = self
                    .commits
                    .lock()
                    .unwrap()
                    .iter()
                    .find(|c| bound >= c.old_base && bound < c.old_base + c.span)
                {
                    violations.push(format!(
                        "stale PLT binding at quiescence: {name}'s slot for `{}` \
                         holds {bound:#x}, inside the range {} vacated at t={}ns",
                        slot.symbol, c.module, c.at_ns
                    ));
                }
            }
        }

        // (4) The silent-drop counter matches the plan.
        if let Some(stats) = stats {
            if stats.pointer_refresh_failures != expected_refresh_failures {
                violations.push(format!(
                    "pointer_refresh_failures = {} but the scenario expected {}",
                    stats.pointer_refresh_failures, expected_refresh_failures
                ));
            }
        }

        // (6) Snapshot reclamation converges: every page-table root the
        // run retired has been freed now that readers are quiescent. A
        // nonzero delta means a reader epoch never advanced (leaked
        // pin) or a retire was lost — either would eventually OOM a
        // production kernel under continuous re-randomization.
        self.kernel.space.flush_snapshots();
        let snap = self.kernel.space.snapshot_smr();
        if snap.delta() != 0 {
            violations.push(format!(
                "page-table snapshot leak at quiescence: retired {} vs freed {}",
                snap.retired, snap.freed
            ));
        }
        let sstats = self.kernel.space.stats();
        if sstats.snapshots_reclaimed != sstats.snapshot_publishes {
            violations.push(format!(
                "snapshot accounting skew: {} published but {} reclaimed",
                sstats.snapshot_publishes, sstats.snapshots_reclaimed
            ));
        }

        OracleReport { violations }
    }
}

impl CycleHooks for LayoutOracle {
    fn committed(&self, c: &CycleCommit<'_>) {
        // (5) Stale-translation check at the batch boundary: the range
        // just vacated was warmed into the witness at its own commit —
        // if its retirement (or any batch since) failed to invalidate
        // the witness, that surfaces right here. Then warm the witness
        // on the new range so the *next* cycle is checked the same way.
        // A module's *first* commit vacates its load-time range, which
        // no commit ever warmed: warm it now, before its retirement
        // drains, so even single-cycle scenarios exercise the check.
        if !self.live.lock().unwrap().contains_key(c.module) {
            self.warm_witness(c.old_base, c.span);
        }
        let mut stale = Vec::new();
        self.probe_vacated(c.old_base, c.span, "at commit", &mut stale);
        if !stale.is_empty() {
            self.violations.lock().unwrap().append(&mut stale);
        }
        // (6) Mid-publish torn-walk probe: this runs concurrently with
        // other cycles' batches, and the commit we are observing has
        // already swapped its snapshot in — a lock-free reader must see
        // the new base fully mapped and executable *right now*, not
        // after some settling. A hole here means a snapshot published
        // with missing siblings (torn copy-on-write).
        if self
            .kernel
            .space
            .translate(c.new_base, Access::Exec)
            .is_err()
        {
            self.violations.lock().unwrap().push(format!(
                "torn publication: {}'s new base {:#x} not executable at commit",
                c.module, c.new_base
            ));
        }
        // (6b) Mixed-generation batch probe: `translate_batch` resolves
        // every address against ONE snapshot root, so a batch spanning
        // the vacated and the freshly-published base may legitimately
        // see pre-publish state (old mapped), post-publish state (new
        // mapped), or the overlap where both are mapped (the old
        // range's retire-unmap drains later) — but never *neither*.
        // Both-unmapped would prove the batch stitched a post-retire
        // view of the old range to a pre-publish view of the new one:
        // two generations in one batch.
        let spanning = self
            .kernel
            .space
            .translate_batch(&[c.old_base, c.new_base], Access::Read);
        if spanning.iter().all(std::result::Result::is_err) {
            self.violations.lock().unwrap().push(format!(
                "mixed-generation batch: one translate_batch saw {}'s old base \
                 {:#x} and new base {:#x} both unmapped — no single snapshot \
                 root can produce that layout",
                c.module, c.old_base, c.new_base
            ));
        }
        self.warm_witness(c.new_base, c.span);
        // (8) Cross-ASID isolation at the commit boundary: the entry we
        // just warmed for the new base is tagged with the kernel
        // space's ASID — it must be invisible to any other space.
        let mut leaked = Vec::new();
        self.probe_cross_asid(c.new_base, "at commit", false, &mut leaked);
        if !leaked.is_empty() {
            self.violations.lock().unwrap().append(&mut leaked);
        }

        // (7) Bound-PLT staleness at the commit boundary: the re-swing
        // ran before publication, so *right now* every bound slot must
        // already hold its target's post-move address — an old value
        // surviving into this instant is the lazy-binding bug class.
        let tracked = self
            .registry
            .lock()
            .unwrap()
            .as_ref()
            .and_then(std::sync::Weak::upgrade);
        if let Some(module) = tracked.and_then(|r| r.get(c.module)) {
            let mut stale = Vec::new();
            self.audit_plt(&module, "at commit", &mut stale);
            if !stale.is_empty() {
                self.violations.lock().unwrap().append(&mut stale);
            }
        }

        // (1) Overlap check against every other module's current range,
        // at the moment of commit.
        let mut live = self.live.lock().unwrap();
        for (other, &(b, s)) in live.iter() {
            if other != c.module && c.new_base < b + s && b < c.new_base + c.span {
                self.violations.lock().unwrap().push(format!(
                    "overlap at commit: {} moved to {:#x}..{:#x} over {other}'s {:#x}..{:#x}",
                    c.module,
                    c.new_base,
                    c.new_base + c.span,
                    b,
                    b + s
                ));
            }
        }
        live.insert(c.module.to_string(), (c.new_base, c.span));
        drop(live);
        self.commits.lock().unwrap().push(CommitRecord {
            module: c.module.to_string(),
            old_base: c.old_base,
            new_base: c.new_base,
            span: c.span,
            generation: c.generation,
            at_ns: self.clock.now_ns(),
        });
    }
}

/// The oracle's verdict.
#[derive(Clone, Debug)]
pub struct OracleReport {
    /// Human-readable invariant violations (empty = clean).
    pub violations: Vec<String>,
}

impl OracleReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the full violation list unless clean.
    ///
    /// # Panics
    ///
    /// Panics if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "layout oracle found {} violation(s):\n  {}",
            self.violations.len(),
            self.violations.join("\n  ")
        );
    }
}
