//! The adversarial attacker model.
//!
//! Adelie's security argument is a *race*: an attacker leaks an address
//! at time `t`, spends `Δ` weaponizing it (scanning, building a chain,
//! delivering a payload), and fires at `t + Δ`. The defence wins iff
//! the module (or stack pool) re-randomized inside the window. This
//! module provides the leak-and-fire half of that race over the real
//! simulated kernel: leaks are actual virtual addresses read from the
//! live layout (a movable-text gadget, or a pooled kernel stack), and
//! firing consults the real page tables — a retired leak *faults*, a
//! live one lands.

use adelie_core::{LoadedModule, ModuleRegistry};
use adelie_gadget::{build_chain, scan, RopChain};
use adelie_kernel::{layout, Kernel};
use adelie_vmem::{Access, Fault, PteFlags, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What kind of address was leaked.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LeakKind {
    /// A movable-text code address (a gadget start).
    Code,
    /// A randomized kernel-stack address from a per-CPU pool.
    Stack,
}

/// A captured leak: the address and the layout generation it belongs to.
#[derive(Clone, Debug)]
pub struct Leak {
    /// Leaked virtual address.
    pub va: u64,
    /// Kind of address.
    pub kind: LeakKind,
    /// Module it was leaked from (code leaks).
    pub module: Option<String>,
    /// Module generation at leak time (code leaks).
    pub generation: u64,
    /// Virtual time of the leak, if the caller tracks one.
    pub at_ns: u64,
}

/// The result of firing a leak.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FireOutcome {
    /// The leaked address still resolves with the required access —
    /// the attack window was long enough.
    Lands,
    /// The leaked address faults — the layout it belonged to is gone.
    Dead(Fault),
}

impl FireOutcome {
    /// Whether the attack landed.
    pub fn landed(&self) -> bool {
        matches!(self, FireOutcome::Lands)
    }
}

/// A seeded attacker (deterministic leak choices per seed).
pub struct Attacker {
    rng: SmallRng,
}

impl Attacker {
    /// An attacker drawing leak choices from `seed`.
    pub fn new(seed: u64) -> Attacker {
        Attacker {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Leak a code pointer from `module`'s movable text: a uniformly
    /// chosen gadget start at the *current* base (what an info-leak
    /// primitive plus a JIT-ROP scan would yield). Falls back to the
    /// base itself for gadget-free text.
    pub fn leak_code(&mut self, kernel: &Arc<Kernel>, module: &LoadedModule, at_ns: u64) -> Leak {
        let _guard = module.move_lock.lock();
        let base = module.movable_base.load(Ordering::Acquire);
        let text = read_movable_text(kernel, module, base);
        let gadgets = scan(&text);
        let va = if gadgets.is_empty() {
            base
        } else {
            base + gadgets[self.rng.gen_range(0..gadgets.len())].offset as u64
        };
        Leak {
            va,
            kind: LeakKind::Code,
            module: Some(module.name.to_string()),
            generation: module.generation.load(Ordering::Relaxed),
            at_ns,
        }
    }

    /// Leak a randomized kernel-stack address from `cpu`'s pool (the
    /// §3.4 target: stack addresses go stale on the same cadence as
    /// code). Draws a pooled stack — allocating one if the pool is
    /// empty — and leaks an address inside it.
    ///
    /// # Errors
    ///
    /// Propagates the pool's allocation error when a fresh stack cannot
    /// be placed.
    pub fn leak_stack(
        &mut self,
        kernel: &Arc<Kernel>,
        registry: &Arc<ModuleRegistry>,
        cpu: usize,
        at_ns: u64,
    ) -> Result<Leak, String> {
        let top = match registry.stacks.pop(cpu) {
            0 => registry.stacks.alloc(kernel)?,
            t => t,
        };
        registry.stacks.push(cpu, top);
        Ok(Leak {
            va: top - 8,
            kind: LeakKind::Stack,
            module: None,
            generation: 0,
            at_ns,
        })
    }

    /// Fire a leak: consult the page tables with the access the attack
    /// needs (execute for code, write for a stack pivot).
    pub fn fire(&self, kernel: &Arc<Kernel>, leak: &Leak) -> FireOutcome {
        let access = match leak.kind {
            LeakKind::Code => Access::Exec,
            LeakKind::Stack => Access::Write,
        };
        match kernel.space.translate(leak.va, access) {
            Ok(_) => FireOutcome::Lands,
            Err(fault) => FireOutcome::Dead(fault),
        }
    }

    /// Build the full Table-2-style ROP chain from the module's current
    /// layout (leak → scan → chain), ready to fire with
    /// `vm.call(chain.words[0], ..)`. `None` when the module's gadget
    /// set cannot express the NX-disable chain.
    pub fn build_leaked_chain(kernel: &Arc<Kernel>, module: &LoadedModule) -> Option<RopChain> {
        let _guard = module.move_lock.lock();
        let base = module.movable_base.load(Ordering::Acquire);
        let text = read_movable_text(kernel, module, base);
        let gadgets = scan(&text);
        build_chain(&gadgets, base, [0x4000_0000, 1, 0], layout::NATIVE_BASE)
    }
}

/// Read the module's movable text pages at `base` (empty on any fault —
/// callers treat that as "no gadgets visible").
fn read_movable_text(kernel: &Arc<Kernel>, module: &LoadedModule, base: u64) -> Vec<u8> {
    let text_pages: usize = module
        .movable
        .groups
        .iter()
        .filter(|g| g.flags == PteFlags::TEXT)
        .map(|g| g.pages)
        .sum();
    let mut text = vec![0u8; text_pages * PAGE_SIZE];
    if kernel
        .space
        .read_bytes(&kernel.phys, base, &mut text)
        .is_err()
    {
        text.clear();
    }
    text
}
