//! # adelie-testkit — deterministic fault-injection + adversarial
//! attack-window harness
//!
//! Adelie's security claim is *temporal*: a leaked pointer must be
//! weaponized before the next re-randomization cycle retires the
//! layout it points into. Nothing about that claim is visible to unit
//! tests of individual crates — it lives in the interaction of the
//! loader, the VA allocator, the scheduler, the reclaimer, and the
//! kernel patching step. This crate is the standing verification
//! backbone for that interaction:
//!
//! * [`Sim`] — a **deterministic simulation harness**: the full
//!   pipeline on a seeded RNG and a virtual clock
//!   ([`SimClock`](adelie_sched::SimClock)), driven one scheduler step
//!   at a time with traffic injected in proportion to virtual time.
//!   Same config ⇒ byte-identical timeline.
//! * [`FaultPlan`] — **fault injection**: deny any pipeline stage
//!   ([`adelie_core::CycleStage`]) of any chosen cycle and
//!   watch the typed-rollback invariants hold (or, for the deliberately
//!   leaky `Retire` stage, watch the oracle catch the leak).
//! * [`Attacker`] — the **adversary**: leaks real code/stack addresses
//!   from the live layout at time `t` and fires them at `t + Δ`
//!   against the real page tables.
//! * [`LayoutOracle`] — the **cross-cycle invariant checker**: no
//!   overlapping placements, no stale mappings, no SMR or stack leaks,
//!   no silently dropped pointer-refresh failures — across any
//!   interleaving the explorer produces.
//! * [`window`] — the **attack-window experiment**: survival curves
//!   per scheduling policy, with the acceptance assertion that
//!   `Adaptive` strictly beats `FixedPeriod` on exposure at equal CPU
//!   budget.
//! * [`FleetSim`] — the **fleet-scale harness**: K seeded kernel
//!   shards (disjoint VA windows, real placement machinery, per-shard
//!   scheduler groups under one global budget) on one virtual clock,
//!   with per-shard oracles plus the cross-shard invariants — window
//!   confinement, no cross-shard VA overlap, symbol/GOT integrity,
//!   and a fleet attacker whose shard-A leaks must never land in
//!   shard B.
//!
//! # Example
//!
//! ```
//! use adelie_testkit::{Sim, SimConfig};
//! use std::time::Duration;
//!
//! let mut sim = Sim::new(SimConfig::default());
//! sim.run_for(Duration::from_millis(50));
//! assert!(!sim.reports().is_empty());
//! sim.assert_modules_work();
//! sim.verify(0).assert_clean();
//! ```

mod attacker;
mod fault;
mod fleet;
mod harness;
mod oracle;
pub mod window;
mod workload;

pub use attacker::{Attacker, FireOutcome, Leak, LeakKind};
pub use fault::{FaultPlan, FaultRule, FaultSchedule, FiredFault};
pub use fleet::{FleetSim, FleetSimConfig};
pub use harness::{profile_spec, ModuleProfile, Sim, SimConfig};
pub use oracle::{CommitRecord, LayoutOracle, OracleReport};
pub use workload::{Workload, WorkloadConfig, ZipfSampler};

use adelie_core::{CycleCommit, CycleHooks, CycleStage};
use std::sync::Arc;

/// Fan one registry hook slot out to several hook consumers (the fault
/// plan and the oracle always ride together). `allow` consults *every*
/// link — side effects like attempt counting must run even when an
/// earlier link already denied the stage — and denies if any link does.
pub struct HookChain {
    links: Vec<Arc<dyn CycleHooks>>,
}

impl HookChain {
    /// A chain over `links`, consulted in order.
    pub fn new(links: Vec<Arc<dyn CycleHooks>>) -> HookChain {
        HookChain { links }
    }
}

impl CycleHooks for HookChain {
    fn allow(&self, module: &str, stage: CycleStage) -> bool {
        let mut ok = true;
        for link in &self.links {
            ok &= link.allow(module, stage);
        }
        ok
    }

    fn committed(&self, commit: &CycleCommit<'_>) {
        for link in &self.links {
            link.committed(commit);
        }
    }
}
