//! Heavy-tailed, seeded workload generation for fleet-scale drivers.
//!
//! Module popularity in a large driver catalog is not uniform: a few
//! hot modules take almost all calls while the long tail sits idle —
//! exactly the regime the cold-module tier and the load-driven
//! autoscaler are built for. [`ZipfSampler`] draws ranks from a
//! discrete Zipf(θ) distribution via a precomputed cumulative table
//! and binary search (O(log n) per draw, no rejection loop), and
//! [`Workload`] maps those ranks onto a tenant-structured module
//! catalog with a seeded rank→module permutation so the hot set is
//! scattered across tenants rather than clustered at low indices.
//!
//! Everything is a pure function of the seed: the same
//! [`WorkloadConfig`] replays the same call sequence byte-for-byte,
//! which is what lets `bench/fleet_scale` assert determinism across
//! runs and lets proptest shrink failures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A discrete Zipf(θ) sampler over ranks `0..n`: rank `r` is drawn
/// with probability proportional to `1/(r+1)^θ`. `θ = 0` is uniform;
/// `θ ≈ 1` is the classic web/catalog skew; larger θ concentrates
/// harder.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative (unnormalized) weights; `cum[r]` = Σ_{i≤r} w_i.
    cum: Vec<f64>,
    rng: SmallRng,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `theta`, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64, seed: u64) -> ZipfSampler {
        assert!(n > 0, "zipf over an empty support");
        assert!(theta >= 0.0 && theta.is_finite(), "bad zipf exponent");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cum.push(acc);
        }
        ZipfSampler {
            cum,
            rng: SmallRng::seed_from_u64(seed ^ 0x21F0_5EED),
        }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True if the support is empty (it never is; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&mut self) -> usize {
        let total = *self.cum.last().expect("non-empty support");
        let u = self.rng.gen_range(0.0..total);
        // partition_point: first rank whose cumulative weight exceeds u.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }

    /// Fraction of the total probability mass carried by the hottest
    /// `k` ranks — how skewed this distribution actually is. Useful for
    /// sizing a resident cap: `mass(cap)` is the expected hot-set hit
    /// rate.
    pub fn mass(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let total = *self.cum.last().expect("non-empty support");
        self.cum[k.min(self.cum.len()) - 1] / total
    }
}

/// Shape of a generated module catalog + call stream.
#[derive(Copy, Clone, Debug)]
pub struct WorkloadConfig {
    /// Catalog size (10^5..10^6 is the regime the cold tier targets).
    pub modules: usize,
    /// Tenants the catalog is striped across; module `i` belongs to
    /// tenant `i % tenants` and is named `t{tenant}_m{i}`.
    pub tenants: usize,
    /// Zipf exponent for call popularity (see [`ZipfSampler`]).
    pub theta: f64,
    /// Seed for both the popularity permutation and the call stream.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            modules: 1_000,
            tenants: 8,
            theta: 1.1,
            seed: 42,
        }
    }
}

/// A tenant-structured catalog with a heavy-tailed call stream.
///
/// Popularity rank `r` maps to module `perm[r]` through a seeded
/// Fisher–Yates permutation, so the hot set lands on arbitrary
/// tenants — a tenant-pinned static placement therefore concentrates
/// hot modules on whichever shards the hot tenants hash to, which is
/// precisely the imbalance the autoscaler must detect and undo.
#[derive(Clone, Debug)]
pub struct Workload {
    names: Vec<String>,
    tenants: Vec<usize>,
    perm: Vec<usize>,
    zipf: ZipfSampler,
}

impl Workload {
    /// Build the catalog and the sampler from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.modules` or `cfg.tenants` is zero.
    pub fn new(cfg: WorkloadConfig) -> Workload {
        assert!(cfg.tenants > 0, "workload needs at least one tenant");
        let mut names = Vec::with_capacity(cfg.modules);
        let mut tenants = Vec::with_capacity(cfg.modules);
        for i in 0..cfg.modules {
            let t = i % cfg.tenants;
            names.push(format!("t{t}_m{i}"));
            tenants.push(t);
        }
        let mut perm: Vec<usize> = (0..cfg.modules).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5CA7_7E12);
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        Workload {
            names,
            tenants,
            perm,
            zipf: ZipfSampler::new(cfg.modules, cfg.theta, cfg.seed),
        }
    }

    /// Every module name, in catalog (install) order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Tenant owning module index `i`.
    pub fn tenant(&self, i: usize) -> usize {
        self.tenants[i]
    }

    /// Draw the next call target's catalog index.
    pub fn next_index(&mut self) -> usize {
        self.perm[self.zipf.sample()]
    }

    /// Draw the next call target's name.
    pub fn next_name(&mut self) -> &str {
        let i = self.next_index();
        &self.names[i]
    }

    /// The `k` hottest module indices (popularity ranks 0..k through
    /// the permutation) — the working set a resident cap should hold.
    pub fn hot_set(&self, k: usize) -> Vec<usize> {
        self.perm[..k.min(self.perm.len())].to_vec()
    }

    /// See [`ZipfSampler::mass`].
    pub fn mass(&self, k: usize) -> f64 {
        self.zipf.mass(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_heavy_tailed_and_seeded() {
        let mut a = ZipfSampler::new(1_000, 1.1, 7);
        let mut b = ZipfSampler::new(1_000, 1.1, 7);
        let draws_a: Vec<usize> = (0..10_000).map(|_| a.sample()).collect();
        let draws_b: Vec<usize> = (0..10_000).map(|_| b.sample()).collect();
        assert_eq!(draws_a, draws_b, "same seed must replay the same stream");

        // With θ=1.1 over 1000 ranks the top 32 ranks carry the clear
        // majority of the mass — check both the analytic table and the
        // empirical draw agree.
        assert!(a.mass(32) > 0.5, "analytic top-32 mass {}", a.mass(32));
        let hot = draws_a.iter().filter(|&&r| r < 32).count();
        assert!(hot * 2 > draws_a.len(), "empirical top-32 hits {hot}/10000");

        // Uniform (θ=0) is flat: top-32 of 1000 carries ~3.2%.
        let flat = ZipfSampler::new(1_000, 0.0, 7);
        assert!(flat.mass(32) < 0.05);
    }

    #[test]
    fn workload_names_are_tenant_structured_and_permuted() {
        let mut w = Workload::new(WorkloadConfig {
            modules: 100,
            tenants: 4,
            theta: 1.2,
            seed: 9,
        });
        assert_eq!(w.names().len(), 100);
        assert_eq!(w.names()[6], "t2_m6");
        assert_eq!(w.tenant(6), 2);

        // The hot set is scattered by the permutation, not the prefix.
        let hot = w.hot_set(8);
        assert_ne!(hot, (0..8).collect::<Vec<_>>());

        // Stream replays under the same config.
        let mut w2 = Workload::new(WorkloadConfig {
            modules: 100,
            tenants: 4,
            theta: 1.2,
            seed: 9,
        });
        let s1: Vec<String> = (0..500).map(|_| w.next_name().to_string()).collect();
        let s2: Vec<String> = (0..500).map(|_| w2.next_name().to_string()).collect();
        assert_eq!(s1, s2);
    }
}
