//! The deterministic simulation harness.
//!
//! [`Sim`] assembles the full pipeline — kernel, loader, VA allocator,
//! scheduler, reclaimer, kernel patching — on a **virtual clock** with
//! a seeded RNG, then drives it one scheduler step at a time. Traffic
//! (real interpreted calls through module wrappers) is injected between
//! steps in proportion to virtual time, so the adaptive policy's
//! call-rate telemetry sees a deterministic load. Two runs with the
//! same [`SimConfig`] produce identical cycle timelines, placements,
//! and stats — which is what lets the fault-injection and
//! attack-window suites assert exact properties instead of sleeping
//! and hoping.

use crate::fault::FaultPlan;
use crate::oracle::{LayoutOracle, OracleReport};
use crate::HookChain;
use adelie_core::{CycleHooks, LoadedModule, ModuleRegistry};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{CycleReport, Policy, SchedConfig, Scheduler, SimClock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// One synthetic module in a scenario: how hot it is and how
/// gadget-rich its movable text looks to a scanner.
#[derive(Clone, Debug)]
pub struct ModuleProfile {
    /// Module name.
    pub name: String,
    /// Wrapper calls injected per *virtual* millisecond (0 = idle).
    pub calls_per_ms: u64,
    /// Repetitions of the pop/ret gadget pattern planted in a
    /// never-called static function (raises scanner-visible exposure
    /// and gives the attacker material to leak).
    pub gadget_units: usize,
    /// Whether the module registers an `update_pointers` callback
    /// (required to exercise the post-commit failure stage).
    pub update_pointers: bool,
}

impl ModuleProfile {
    /// A busy, gadget-rich module (the attacker's preferred target).
    pub fn hot(name: &str) -> ModuleProfile {
        ModuleProfile {
            name: name.to_string(),
            calls_per_ms: 50,
            gadget_units: 12,
            update_pointers: true,
        }
    }

    /// An idle, gadget-poor module.
    pub fn cold(name: &str) -> ModuleProfile {
        ModuleProfile {
            name: name.to_string(),
            calls_per_ms: 0,
            gadget_units: 1,
            update_pointers: false,
        }
    }
}

/// Build the module spec for a profile.
///
/// The exported `{name}_entry(x)` returns `x + 1` (safe to hammer from
/// the traffic driver); `{name}_gadget_farm` is a never-called static
/// function stuffed with classic pop/ret material for the scanner; the
/// pointer table gives the re-randomizer adjust slots to exercise; the
/// optional `{name}_refresh` is a no-op `update_pointers` callback.
pub fn profile_spec(profile: &ModuleProfile) -> ModuleSpec {
    let name = &profile.name;
    let mut spec = ModuleSpec::new(name);
    spec.funcs.push(FuncSpec::exported(
        &format!("{name}_entry"),
        vec![
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            MOp::Insn(Insn::AluImm {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 1,
            }),
            MOp::Ret,
        ],
    ));
    if profile.gadget_units > 0 {
        let mut farm = Vec::new();
        for i in 0..profile.gadget_units {
            // An unintended-gadget constant: its little-endian bytes
            // decode (misaligned) to `pop rdi; ret` / `pop rdx; ret` /
            // `pop rsi; ret` — clean chain material the return-address
            // encryption epilogue cannot poison, the way real-world
            // chains are mined from immediates.
            farm.push(MOp::Insn(Insn::MovImm64(Reg::Rcx, 0xC35F_C35E_C35A_C35F)));
            // Vary the pattern so the scanner sees distinct gadgets.
            match i % 3 {
                0 => {
                    farm.push(MOp::Insn(Insn::Pop(Reg::Rdi)));
                    farm.push(MOp::Ret);
                }
                1 => {
                    farm.push(MOp::Insn(Insn::Pop(Reg::Rsi)));
                    farm.push(MOp::Insn(Insn::Pop(Reg::Rdx)));
                    farm.push(MOp::Ret);
                }
                _ => {
                    farm.push(MOp::Insn(Insn::Pop(Reg::Rax)));
                    farm.push(MOp::Insn(Insn::MovRR {
                        dst: Reg::Rdi,
                        src: Reg::Rax,
                    }));
                    farm.push(MOp::Ret);
                }
            }
        }
        farm.push(MOp::Ret);
        spec.funcs
            .push(FuncSpec::local(&format!("{name}_gadget_farm"), farm));
    }
    spec.data.push(DataSpec {
        name: format!("{name}_ops"),
        readonly: false,
        init: DataInit::PtrTable(vec![format!("{name}_entry")]),
    });
    if profile.update_pointers {
        spec.funcs.push(FuncSpec::exported(
            &format!("{name}_refresh"),
            vec![MOp::Ret],
        ));
        spec.update_pointers = Some(format!("{name}_refresh"));
    }
    spec
}

/// Drive profiled traffic up to virtual time `to_ns`: for each profile
/// with a nonzero call rate, inject the wrapper calls due since its
/// cursor (real interpreted calls, deterministic count). `traffic` is
/// the per-profile `(entry va, cursor ns)` state, index-aligned with
/// `profiles`. Shared by [`Sim`] and [`crate::FleetSim`] (per shard),
/// so the pacing arithmetic cannot drift between the two harnesses.
pub(crate) fn advance_profile_traffic(
    now_ns: u64,
    profiles: &[ModuleProfile],
    traffic: &mut [(u64, u64)],
    vm: &mut adelie_kernel::Vm<'_>,
    to_ns: u64,
) {
    for (i, profile) in profiles.iter().enumerate() {
        if profile.calls_per_ms == 0 {
            continue;
        }
        let (entry, ref mut cursor) = traffic[i];
        if *cursor == 0 {
            *cursor = now_ns.min(to_ns);
        }
        // `max(1)`: a (pathological) rate above one call per virtual
        // nanosecond must tick the cursor, not loop forever.
        let ns_per_call = (1_000_000 / profile.calls_per_ms).max(1);
        while *cursor + ns_per_call <= to_ns {
            *cursor += ns_per_call;
            let x = (*cursor / ns_per_call) & 0xFFFF;
            let got = vm.call(entry, &[x]).expect("traffic call");
            assert_eq!(got, x + 1, "{}_entry corrupted", profile.name);
        }
    }
}

/// A full scenario description.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Kernel RNG seed (placement, keys, jitter — the whole timeline).
    pub seed: u64,
    /// Scheduling policy for every module.
    pub policy: Policy,
    /// Modeled randomizer-pool width (bounds step reordering).
    pub workers: usize,
    /// Modeled CPU cost charged per cycle on the virtual timeline.
    pub cycle_cost: Duration,
    /// CPU-budget cap (fraction of the modeled machine).
    pub max_cpu_frac: f64,
    /// Gadget-exposure rescan interval in cycles (0 = startup only).
    pub exposure_refresh: u64,
    /// The module fleet.
    pub modules: Vec<ModuleProfile>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            policy: Policy::FixedPeriod(Duration::from_millis(10)),
            workers: 1,
            cycle_cost: Duration::from_micros(100),
            max_cpu_frac: f64::INFINITY,
            exposure_refresh: 0,
            modules: vec![ModuleProfile::hot("hot"), ModuleProfile::cold("cold")],
        }
    }
}

/// The assembled scenario: full pipeline on a virtual clock.
pub struct Sim {
    /// The simulated kernel.
    pub kernel: Arc<Kernel>,
    /// The module registry (hooks installed).
    pub registry: Arc<ModuleRegistry>,
    /// The virtual timeline everything runs on.
    pub clock: Arc<SimClock>,
    /// The stepped scheduler.
    pub sched: Scheduler,
    /// The fault injector (empty plan unless rules are added).
    pub fault: Arc<FaultPlan>,
    /// The layout oracle.
    pub oracle: Arc<LayoutOracle>,
    profiles: Vec<ModuleProfile>,
    modules: Vec<Arc<LoadedModule>>,
    /// Per-module `(entry va, traffic cursor ns)`.
    traffic: Vec<(u64, u64)>,
    rng: SmallRng,
    reports: Vec<CycleReport>,
}

impl Sim {
    /// Assemble the scenario: boot a seeded kernel, load every profiled
    /// module re-randomizable, install fault + oracle hooks, start a
    /// stepped scheduler.
    ///
    /// # Panics
    ///
    /// Panics if a profile's module fails to transform or load.
    pub fn new(cfg: SimConfig) -> Sim {
        let kernel = Kernel::new(KernelConfig {
            seed: cfg.seed,
            ..KernelConfig::default()
        });
        let registry = ModuleRegistry::new(&kernel);
        let opts = TransformOptions::rerandomizable(true);
        let modules: Vec<Arc<LoadedModule>> = cfg
            .modules
            .iter()
            .map(|p| {
                let obj = transform(&profile_spec(p), &opts).expect("transform profile module");
                registry.load(&obj, &opts).expect("load profile module")
            })
            .collect();
        let clock = SimClock::new();
        let oracle = LayoutOracle::new(kernel.clone(), clock.clone());
        let fault = FaultPlan::new();
        registry.set_cycle_hooks(Arc::new(HookChain::new(vec![
            fault.clone() as Arc<dyn CycleHooks>,
            oracle.clone() as Arc<dyn CycleHooks>,
        ])));
        let with_policies: Vec<(&str, Policy)> = cfg
            .modules
            .iter()
            .map(|p| (p.name.as_str(), cfg.policy.clone()))
            .collect();
        let sched = Scheduler::spawn_stepped(
            kernel.clone(),
            registry.clone(),
            &with_policies,
            SchedConfig {
                workers: cfg.workers,
                policy: cfg.policy.clone(),
                max_cpu_frac: cfg.max_cpu_frac,
                exposure_refresh: cfg.exposure_refresh,
                ..SchedConfig::default()
            },
            clock.clone(),
            cfg.cycle_cost,
        );
        let traffic = modules
            .iter()
            .map(|m| {
                let entry = m
                    .export(&format!("{}_entry", m.name))
                    .expect("profile entry export");
                (entry, 0u64)
            })
            .collect();
        Sim {
            kernel,
            registry,
            clock,
            sched,
            fault,
            oracle,
            profiles: cfg.modules,
            modules,
            traffic,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x7E57_1D17),
            reports: Vec::new(),
        }
    }

    /// The loaded module for `name`.
    ///
    /// # Panics
    ///
    /// Panics for names not in the scenario.
    pub fn module(&self, name: &str) -> &Arc<LoadedModule> {
        self.modules
            .iter()
            .find(|m| &*m.name == name)
            .expect("module in scenario")
    }

    /// Cycle reports collected so far, in execution order.
    pub fn reports(&self) -> &[CycleReport] {
        &self.reports
    }

    /// Drive every module's traffic up to virtual time `to_ns` (real
    /// interpreted wrapper calls, deterministic count per module).
    fn advance_traffic(&mut self, vm: &mut adelie_kernel::Vm<'_>, to_ns: u64) {
        advance_profile_traffic(
            self.clock.now_ns(),
            &self.profiles,
            &mut self.traffic,
            vm,
            to_ns,
        );
    }

    /// Run one scheduler step (earliest deadline), injecting the
    /// traffic due before it. `None` when no deadline is pending.
    pub fn step(&mut self) -> Option<CycleReport> {
        self.step_ranked(0)
    }

    /// Like [`step`](Sim::step) but with an explicit reorder rank (see
    /// [`Scheduler::step_choice`]).
    pub fn step_ranked(&mut self, rank: usize) -> Option<CycleReport> {
        let deadline = self.sched.peek_deadline_ns()?;
        let kernel = self.kernel.clone();
        let mut vm = kernel.vm();
        self.advance_traffic(&mut vm, deadline);
        let report = self.sched.step_choice(rank)?;
        self.reports.push(report.clone());
        Some(report)
    }

    /// Run the scenario for `dur` of virtual time, stepping every due
    /// deadline in order.
    pub fn run_for(&mut self, dur: Duration) {
        let end = self.clock.now_ns() + dur.as_nanos() as u64;
        let kernel = self.kernel.clone();
        let mut vm = kernel.vm();
        while let Some(d) = self.sched.peek_deadline_ns() {
            if d > end {
                break;
            }
            self.advance_traffic(&mut vm, d);
            if let Some(report) = self.sched.step() {
                self.reports.push(report);
            }
        }
        self.advance_traffic(&mut vm, end);
        self.clock.advance_to(end);
    }

    /// Run for `dur` of virtual time exploring worker-pool
    /// interleavings: each step picks a seeded-random entry among those
    /// a `workers`-wide pool could legally run next.
    pub fn run_explored(&mut self, dur: Duration) {
        let end = self.clock.now_ns() + dur.as_nanos() as u64;
        let kernel = self.kernel.clone();
        let mut vm = kernel.vm();
        while let Some(d) = self.sched.peek_deadline_ns() {
            if d > end {
                break;
            }
            self.advance_traffic(&mut vm, d);
            let rank = self.rng.gen_range(0..64usize);
            if let Some(report) = self.sched.step_choice(rank) {
                self.reports.push(report);
            }
        }
        self.advance_traffic(&mut vm, end);
        self.clock.advance_to(end);
    }

    /// Check every module still computes correctly at its current base.
    ///
    /// # Panics
    ///
    /// Panics if any module's entry misbehaves.
    pub fn assert_modules_work(&self) {
        let mut vm = self.kernel.vm();
        for (i, m) in self.modules.iter().enumerate() {
            let (entry, _) = self.traffic[i];
            assert_eq!(
                vm.call(entry, &[41]).expect("entry call"),
                42,
                "module {} broken after scenario",
                m.name
            );
        }
    }

    /// Run the oracle's quiescence check against the scheduler's stats.
    pub fn verify(&self, expected_refresh_failures: u64) -> OracleReport {
        self.oracle.verify_quiesced(
            &self.registry,
            Some(&self.sched.stats()),
            expected_refresh_failures,
        )
    }
}
