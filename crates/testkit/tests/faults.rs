//! Fault-injection suite: every pipeline stage fails on a chosen cycle
//! and the typed-rollback invariants hold — or, for the deliberately
//! leaky stages, the oracle provably catches the damage.

use adelie_core::CycleStage;
use adelie_sched::Policy;
use adelie_testkit::{Sim, SimConfig};
use std::time::Duration;

fn sim_with_fault(seed: u64, stage: CycleStage, attempt: u64) -> Sim {
    let sim = Sim::new(SimConfig {
        seed,
        policy: Policy::FixedPeriod(Duration::from_millis(5)),
        ..SimConfig::default()
    });
    sim.fault.fail_at("hot", stage, attempt);
    sim
}

/// Pre-publish stages: the failed cycle must roll back completely —
/// the module has not moved, keeps working, and nothing leaks.
#[test]
fn pre_publish_stage_failures_roll_back_completely() {
    let stages = [
        (CycleStage::Reserve, "no free"),
        (CycleStage::AliasMap, "alias remap failed: injected fault"),
        (CycleStage::MovableGot, "local GOT remap failed"),
        (
            CycleStage::ImmovableGotSwap,
            "immovable GOT swap remap failed",
        ),
        (CycleStage::AdjustSlots, "adjust-slots remap failed"),
    ];
    for (stage, want) in stages {
        let mut sim = sim_with_fault(11, stage, 1);
        sim.run_for(Duration::from_millis(60));

        let fired = sim.fault.fired();
        assert_eq!(fired.len(), 1, "{stage}: exactly one injection");
        assert_eq!(fired[0].stage, stage);
        assert_eq!(fired[0].attempt, 1);

        // The failed attempt surfaced as a typed error in the report
        // stream, with the stage-specific message.
        let failed: Vec<_> = sim
            .reports()
            .iter()
            .filter(|r| r.module == "hot" && !r.ok())
            .collect();
        assert_eq!(failed.len(), 1, "{stage}: one failed cycle");
        let err = failed[0].error.as_ref().unwrap();
        let msg = err.to_string();
        assert!(msg.contains(want), "{stage}: `{msg}` lacks `{want}`");

        // Rollback: the failed attempt committed nothing — every other
        // attempt did (the scheduler retried and the module kept its
        // protection cadence).
        let hot_commits = sim.oracle.timeline_ns("hot").len() as u64;
        assert_eq!(
            hot_commits,
            sim.fault.attempts("hot") - 1,
            "{stage}: exactly the injected attempt must be missing"
        );
        let stats = sim.sched.stats();
        assert_eq!(stats.failures, 1, "{stage}");
        assert_eq!(stats.pointer_refresh_failures, 0, "{stage}");

        // The module is fully functional and the layout quiesces clean.
        sim.assert_modules_work();
        sim.verify(0).assert_clean();
    }
}

/// `update_pointers` failure: the move itself has committed (the old
/// layout is retired — no rollback), and the previously-silent drop is
/// now counted in `SchedStats::pointer_refresh_failures`.
#[test]
fn update_pointers_failure_is_counted_not_dropped() {
    let mut sim = sim_with_fault(12, CycleStage::UpdatePointers, 1);
    sim.run_for(Duration::from_millis(60));

    assert_eq!(sim.fault.fired().len(), 1);
    let stats = sim.sched.stats();
    assert_eq!(stats.failures, 1);
    assert_eq!(
        stats.pointer_refresh_failures, 1,
        "the silent-drop path must be visible in SchedStats"
    );
    let hot = stats.modules.iter().find(|m| m.name == "hot").unwrap();
    assert_eq!(hot.pointer_refresh_failures, 1);

    // Unlike pre-publish failures, the injected attempt *did* move the
    // module: every attempt has a commit.
    assert_eq!(
        sim.oracle.timeline_ns("hot").len() as u64,
        sim.fault.attempts("hot"),
        "update_pointers failures commit the move"
    );
    sim.assert_modules_work();
    // The oracle is told one refresh failure was planned.
    sim.verify(1).assert_clean();
}

/// A dropped retirement leaks the vacated range — and the oracle's
/// stale-mapping sweep must catch exactly that.
#[test]
fn oracle_catches_an_injected_retirement_leak() {
    let mut sim = sim_with_fault(13, CycleStage::Retire, 1);
    sim.run_for(Duration::from_millis(60));

    assert_eq!(sim.fault.fired().len(), 1);
    sim.assert_modules_work();
    let report = sim.verify(0);
    assert!(
        !report.is_clean(),
        "a leaked old range must fail verification"
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("stale mapping survives")),
        "violations: {:?}",
        report.violations
    );
}

/// Suppressed stack rotation: cycles keep completing but pooled stacks
/// are never retired — observable in the stack counters.
#[test]
fn suppressed_stack_rotation_pins_pooled_stacks() {
    let sim = Sim::new(SimConfig {
        seed: 14,
        policy: Policy::FixedPeriod(Duration::from_millis(5)),
        ..SimConfig::default()
    });
    for attempt in 0..64 {
        sim.fault.fail_any(CycleStage::StackRotate, attempt);
    }
    let mut sim = sim;
    sim.run_for(Duration::from_millis(60));
    assert!(sim.sched.cycles() > 0);
    let st = sim.registry.stacks.stats();
    assert!(st.allocated > 0, "traffic must have pooled stacks");
    assert_eq!(st.freed, 0, "no rotation ⇒ nothing retired");

    // Once the injection plan stops matching (attempts ≥ 64), rotation
    // resumes and the system drains back to a clean quiescent state.
    sim.run_for(Duration::from_millis(400));
    sim.verify(0).assert_clean();
}

/// The whole fault suite is deterministic: identical plans on identical
/// seeds produce identical failure timelines.
#[test]
fn injection_runs_are_reproducible() {
    let run = || {
        let mut sim = sim_with_fault(15, CycleStage::AliasMap, 2);
        sim.run_for(Duration::from_millis(50));
        sim.reports()
            .iter()
            .map(|r| (r.module.clone(), r.deadline_ns, r.ok()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
