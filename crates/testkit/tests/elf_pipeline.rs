//! The ELF-ingestion acceptance pipeline, end to end: a module that
//! arrived as a real ELF64 relocatable object (emitted by
//! `adelie_elf::emit`, parsed back by `adelie_elf::parse`) must survive
//!
//!   load → lazy PLT first-call bind → ≥3 re-randomization cycles →
//!   fleet migration → unload
//!
//! with zero [`LayoutOracle`] violations, and the oracle's bound-slot
//! staleness audit (invariant #7) must stay green at every commit. A
//! companion test tampers a recorded binding to prove the audit
//! actually catches the bug class it exists for.

use adelie_core::{rerandomize_module, Fleet, ModuleRegistry, Pinned};
use adelie_isa::{Insn, Reg};
use adelie_kernel::{FleetConfig, Kernel, KernelConfig, ShardedKernel};
use adelie_plugin::{transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::SimClock;
use adelie_testkit::LayoutOracle;
use std::collections::HashMap;
use std::sync::atomic::Ordering;

const ELFMOD_MINOR: u32 = 51;

/// A chardev driver whose *ioctl path* calls kernel imports: init binds
/// `register_chrdev` eagerly (it runs at load), but `kmalloc`/`kfree`
/// stay unbound until the first ioctl arrives — the lazy first-call
/// bind the pipeline must exercise.
fn elfmod_spec() -> ModuleSpec {
    let mut spec = ModuleSpec::new("elfmod");
    spec.funcs.push(FuncSpec::exported(
        "elfmod_ioctl",
        vec![
            MOp::Insn(Insn::MovImm32(Reg::Rdi, 64)),
            MOp::CallKernel("kmalloc".into()),
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rax,
            }),
            MOp::CallKernel("kfree".into()),
            MOp::Insn(Insn::MovImm32(Reg::Rax, 1234)),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "elfmod_init",
        vec![
            MOp::Insn(Insn::MovImm32(Reg::Rdi, ELFMOD_MINOR as i32)),
            MOp::LoadLocalSym(Reg::Rsi, "elfmod_ioctl".into()),
            MOp::Insn(Insn::MovImm32(Reg::Rdx, 0)),
            MOp::Insn(Insn::MovImm32(Reg::Rcx, 0)),
            MOp::LoadLocalSym(Reg::R8, "elfmod_name".into()),
            MOp::CallKernel("register_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "elfmod_exit",
        vec![
            MOp::Insn(Insn::MovImm32(Reg::Rdi, ELFMOD_MINOR as i32)),
            MOp::CallKernel("unregister_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.data.push(DataSpec {
        name: "elfmod_name".into(),
        readonly: true,
        init: DataInit::Bytes(b"elfmod\0".to_vec()),
    });
    spec.init = Some("elfmod_init".into());
    spec.exit = Some("elfmod_exit".into());
    spec
}

/// Transform to the PIC object, serialize to ELF64, parse back — the
/// ingestion path under test.
fn elf_ingested_object(opts: &TransformOptions) -> adelie_obj::ObjectFile {
    let direct = transform(&elfmod_spec(), opts).expect("transform");
    let bytes = adelie_elf::emit(&direct);
    assert_eq!(&bytes[..4], b"\x7fELF");
    adelie_elf::parse(&bytes).expect("emitted object parses back")
}

#[test]
fn elf_module_survives_bind_rerand_migrate_unload_with_clean_oracle() {
    let opts = TransformOptions::rerandomizable(true).with_lazy_plt();
    let obj = elf_ingested_object(&opts);

    let sharded = ShardedKernel::new(FleetConfig {
        shards: 2,
        base: KernelConfig {
            seed: 0xE1F6,
            retpoline: true,
            ..KernelConfig::default()
        },
    });
    let fleet = Fleet::new(sharded, Box::new(Pinned::new(HashMap::new(), 0)));
    let clock = SimClock::new();
    let oracle = LayoutOracle::new(fleet.kernel(0).clone(), clock.clone());
    fleet.registry(0).set_cycle_hooks(oracle.clone());
    oracle.track_modules(fleet.registry(0));

    // Load. Init ran (chardev registered), so init-path slots are
    // bound, but the ioctl path's `kmalloc`/`kfree` must still be lazy.
    let (shard, module) = fleet.install(&obj, &opts).expect("install");
    assert_eq!(shard, 0);
    assert!(!module.lazy_plt.is_empty(), "lazy PLT slots expected");
    let unbound_at_load = module
        .lazy_plt
        .iter()
        .filter(|s| s.bound.load(Ordering::Acquire) == 0)
        .count();
    assert!(
        unbound_at_load > 0,
        "ioctl-path slots must still be unbound after load"
    );

    // First call: the ioctl traverses the PLT, the binder fires, and
    // the slots record their targets.
    let binds_before = module.plt_binds.load(Ordering::Relaxed);
    let mut vm = fleet.kernel(0).vm();
    assert_eq!(
        fleet
            .kernel(0)
            .ioctl(&mut vm, ELFMOD_MINOR, 0, 7)
            .expect("first ioctl"),
        1234
    );
    assert!(
        module.plt_binds.load(Ordering::Relaxed) > binds_before,
        "first call must bind lazily"
    );
    assert!(adelie_core::verify_plt_bindings(fleet.kernel(0), &module).is_empty());

    // ≥3 re-randomization cycles, each audited by the oracle at commit
    // (invariant #7) and each followed by a live call through the
    // re-swung bindings.
    for cycle in 0..3 {
        clock.advance(std::time::Duration::from_millis(10));
        rerandomize_module(fleet.kernel(0), fleet.registry(0), &module)
            .unwrap_or_else(|e| panic!("cycle {cycle}: {e}"));
        let mut vm = fleet.kernel(0).vm();
        assert_eq!(
            fleet
                .kernel(0)
                .ioctl(&mut vm, ELFMOD_MINOR, 0, cycle)
                .expect("post-cycle ioctl"),
            1234
        );
    }
    assert!(
        module.plt_reswings.load(Ordering::Relaxed) > 0,
        "bound slots must have been re-swung across cycles"
    );
    assert_eq!(oracle.commits().len(), 3);
    oracle
        .verify_quiesced(fleet.registry(0), None, 0)
        .assert_clean();

    // Fleet migration: the catalog replays the *ELF-ingested* object on
    // the destination shard; bindings there must resolve against the
    // destination kernel.
    let oracle1 = LayoutOracle::new(fleet.kernel(1).clone(), clock.clone());
    fleet.registry(1).set_cycle_hooks(oracle1.clone());
    oracle1.track_modules(fleet.registry(1));
    let migrated = fleet.migrate("elfmod", 1).expect("migrate");
    let mut vm = fleet.kernel(1).vm();
    assert_eq!(
        fleet
            .kernel(1)
            .ioctl(&mut vm, ELFMOD_MINOR, 0, 9)
            .expect("post-migration ioctl"),
        1234
    );
    assert!(adelie_core::verify_plt_bindings(fleet.kernel(1), &migrated).is_empty());
    assert!(fleet.verify_symbol_integrity().is_empty());

    // One more cycle on the destination, then unload everything.
    clock.advance(std::time::Duration::from_millis(10));
    rerandomize_module(fleet.kernel(1), fleet.registry(1), &migrated).expect("dst cycle");
    let mut vm = fleet.kernel(1).vm();
    assert_eq!(
        fleet
            .kernel(1)
            .ioctl(&mut vm, ELFMOD_MINOR, 0, 11)
            .expect("post-dst-cycle ioctl"),
        1234
    );
    oracle1
        .verify_quiesced(fleet.registry(1), None, 0)
        .assert_clean();
    fleet.unload("elfmod").expect("unload");
    assert!(fleet.live_spans().is_empty());
    assert!(fleet.verify_symbol_integrity().is_empty());
}

/// Invariant #7 must have teeth: plant a binding that points into a
/// vacated range and the oracle has to report it — a stale bound slot
/// is exactly "callable into a retired range".
#[test]
fn oracle_flags_a_bound_slot_left_pointing_into_a_vacated_range() {
    let opts = TransformOptions::rerandomizable(true).with_lazy_plt();
    let obj = elf_ingested_object(&opts);
    let kernel = Kernel::new(KernelConfig {
        seed: 0xDEAD,
        retpoline: true,
        ..KernelConfig::default()
    });
    let registry = ModuleRegistry::new(&kernel);
    let clock = SimClock::new();
    let oracle = LayoutOracle::new(kernel.clone(), clock.clone());
    registry.set_cycle_hooks(oracle.clone());
    oracle.track_modules(&registry);

    let module = registry.load(&obj, &opts).expect("load");
    let mut vm = kernel.vm();
    assert_eq!(kernel.ioctl(&mut vm, ELFMOD_MINOR, 0, 1).unwrap(), 1234);
    rerandomize_module(&kernel, &registry, &module).expect("cycle");

    let slot = module
        .lazy_plt
        .iter()
        .find(|s| s.bound.load(Ordering::Acquire) != 0)
        .expect("a bound slot");
    let good = slot.bound.load(Ordering::Acquire);
    let vacated = oracle.commits()[0].old_base + 0x40;
    slot.bound.store(vacated, Ordering::Release);
    let report = oracle.verify_quiesced(&registry, None, 0);
    assert!(
        report.violations.iter().any(|v| v.contains("PLT")),
        "oracle must flag the stale binding, got: {:?}",
        report.violations
    );
    slot.bound.store(good, Ordering::Release);
    oracle.verify_quiesced(&registry, None, 0).assert_clean();
}
