//! ELF-ingestion differential suite: a module loaded from the
//! `ObjectBuilder` pipeline directly and the *same* module serialized
//! to an ELF64 relocatable object and parsed back must be
//! **indistinguishable** — byte-identical `PartImage`s at load (same
//! layout metadata, same frame contents), and identical observable
//! behavior (ioctl results, re-randomization commit timeline, oracle
//! verdict) across seeds.
//!
//! Any divergence means the ELF emitter/parser pair dropped or
//! reordered something the loader consumes — exactly the bug class a
//! byte-level diff catches and unit tests don't.

use adelie_core::{LoadedModule, PartImage};
use adelie_drivers::specs::DUMMY_MINOR;
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::TransformOptions;
use adelie_sched::SimClock;
use adelie_testkit::LayoutOracle;
use adelie_vmem::PAGE_SIZE;
use adelie_workloads::{DriverSet, Testbed};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Layout metadata plus a full byte dump of every frame of a part.
fn image_fingerprint(kernel: &Arc<Kernel>, img: &PartImage) -> String {
    let mut out = format!(
        "base={:#x} pages={} lgot@{:#x}x{} fgot@{:#x}x{} plt@{:#x}x{} fgot_names={:?} groups={}\n",
        img.base,
        img.total_pages,
        img.lgot_off,
        img.lgot_slots,
        img.fgot_off,
        img.fgot_slots,
        img.plt_off,
        img.plt_stubs,
        img.fgot_names,
        img.groups.len(),
    );
    let mut page = [0u8; PAGE_SIZE];
    for (i, &pfn) in img.frames.iter().enumerate() {
        kernel.phys.read(pfn, 0, &mut page);
        let _ = writeln!(out, "page {i}: {:?}", &page[..]);
    }
    out
}

fn module_fingerprint(kernel: &Arc<Kernel>, m: &LoadedModule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "stats {:?}", m.stats);
    let _ = writeln!(out, "movable:\n{}", image_fingerprint(kernel, &m.movable));
    if let Some(imm) = &m.immovable {
        let _ = writeln!(out, "immovable:\n{}", image_fingerprint(kernel, imm));
    }
    let _ = writeln!(
        out,
        "lazy_plt: {:?}",
        m.lazy_plt
            .iter()
            .map(|s| (&s.symbol, s.part, s.local, s.idx, s.target_off))
            .collect::<Vec<_>>()
    );
    out
}

/// Provision a dummy-driver testbed under `opts` with a fixed seed and
/// replay a seeded ioctl + re-randomization trace; return the
/// load-time module fingerprint and the behavior transcript.
fn run(opts: TransformOptions, seed: u64) -> (String, String) {
    let tb = Testbed::with_kernel_config(
        opts,
        DriverSet::dummy_only(),
        KernelConfig {
            seed,
            retpoline: opts.retpoline,
            ..KernelConfig::default()
        },
    );
    let module = tb.registry.get("dummy").expect("dummy module");
    let fingerprint = module_fingerprint(&tb.kernel, &module);

    let clock = SimClock::new();
    let oracle = LayoutOracle::new(tb.kernel.clone(), clock.clone());
    tb.registry.set_cycle_hooks(oracle.clone());
    let sched = tb.start_stepped_scheduler(clock.clone(), Duration::from_micros(100));
    let mut vm = tb.kernel.vm();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xE1F);
    let mut out = String::new();
    for step in 0..120u64 {
        let arg = rng.gen::<u64>() & 0xFFFF;
        let got = tb
            .kernel
            .ioctl(&mut vm, DUMMY_MINOR, 0, arg)
            .expect("trace ioctl");
        let _ = writeln!(out, "ioctl[{step}] {arg} -> {got}");
        clock.advance(Duration::from_millis(1));
        while sched
            .peek_deadline_ns()
            .is_some_and(|d| d <= clock.now_ns())
        {
            if let Some(report) = sched.step() {
                let _ = writeln!(
                    out,
                    "cycle {} @{} -> {:?}",
                    report.module, report.deadline_ns, report.new_base
                );
            }
        }
    }
    let stats = sched.stop();
    let _ = writeln!(out, "cycles {} failures {}", stats.cycles, stats.failures);
    for c in oracle.commits() {
        let _ = writeln!(
            out,
            "commit {} {:#x}->{:#x} gen{}",
            c.module, c.old_base, c.new_base, c.generation
        );
    }
    let _ = writeln!(
        out,
        "binds {} reswings {}",
        module.plt_binds.load(std::sync::atomic::Ordering::Relaxed),
        module
            .plt_reswings
            .load(std::sync::atomic::Ordering::Relaxed)
    );
    let report = oracle.verify_quiesced(&tb.registry, Some(&stats), 0);
    let _ = writeln!(out, "oracle {:?}", report.violations);
    report.assert_clean();
    (fingerprint, out)
}

fn assert_identical(opts: TransformOptions, seed: u64) {
    let (fp_direct, trace_direct) = run(opts, seed);
    let (fp_elf, trace_elf) = run(opts.with_elf_ingest(), seed);
    assert!(
        trace_direct.contains("cycle "),
        "trace must contain re-randomization cycles:\n{trace_direct}"
    );
    assert_eq!(
        fp_direct, fp_elf,
        "seed {seed}: PartImages must be byte-identical across ingestion paths"
    );
    assert_eq!(
        trace_direct, trace_elf,
        "seed {seed}: load/rerand/ioctl behavior must be identical across ingestion paths"
    );
}

#[test]
fn elf_ingested_modules_are_byte_identical_across_seeds() {
    for seed in [3u64, 77, 0xE1F0] {
        assert_identical(TransformOptions::rerandomizable(true), seed);
    }
}

#[test]
fn elf_ingested_lazy_plt_modules_are_byte_identical() {
    for seed in [3u64, 0xBEE] {
        assert_identical(TransformOptions::rerandomizable(true).with_lazy_plt(), seed);
    }
}
