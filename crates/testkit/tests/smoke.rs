//! Harness smoke suite: determinism of the virtual-clock pipeline and
//! the attacker's leak-and-fire ground truth.

use adelie_testkit::{Attacker, FireOutcome, Sim, SimConfig};
use adelie_vmem::Fault;
use std::time::Duration;

const SEEDS: [u64; 3] = [1, 7, 0xADE1];

fn timeline(seed: u64) -> Vec<(String, u64, u64, u64)> {
    let mut sim = Sim::new(SimConfig {
        seed,
        ..SimConfig::default()
    });
    sim.run_for(Duration::from_millis(120));
    sim.assert_modules_work();
    sim.verify(0).assert_clean();
    sim.oracle
        .commits()
        .into_iter()
        .map(|c| (c.module, c.old_base, c.new_base, c.at_ns))
        .collect()
}

#[test]
fn same_seed_same_timeline_different_seed_different_layout() {
    for seed in SEEDS {
        let a = timeline(seed);
        let b = timeline(seed);
        assert!(!a.is_empty(), "seed {seed}: no cycles in the window");
        assert_eq!(a, b, "seed {seed}: timeline must be reproducible");
    }
    // Distinct seeds place distinctly (the KASLR story).
    let bases: std::collections::HashSet<u64> = SEEDS
        .iter()
        .flat_map(|&s| timeline(s))
        .map(|c| c.2)
        .collect();
    assert!(
        bases.len() >= 2 * SEEDS.len(),
        "layouts must differ per seed"
    );
}

#[test]
fn virtual_clock_runs_are_instant_in_wall_time() {
    // 2 virtual seconds of fixed-period cycling — on the wall clock
    // this must be bounded by interpretation cost, not by sleeping.
    let t0 = std::time::Instant::now();
    let mut sim = Sim::new(SimConfig::default());
    sim.run_for(Duration::from_secs(2));
    assert!(sim.reports().len() >= 300, "{}", sim.reports().len());
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "virtual time must not be wall time"
    );
    sim.verify(0).assert_clean();
}

#[test]
fn leaked_code_pointer_dies_with_the_next_hot_cycle() {
    for seed in SEEDS {
        let mut sim = Sim::new(SimConfig {
            seed,
            ..SimConfig::default()
        });
        let mut attacker = Attacker::new(seed);
        let leak = attacker.leak_code(&sim.kernel, sim.module("hot"), sim.clock.now_ns());
        // Fired immediately (Δ ≈ 0): the layout is still live.
        assert!(attacker.fire(&sim.kernel, &leak).landed(), "seed {seed}");
        // Step until the hot module commits a move, then fire again.
        loop {
            let report = sim.step().expect("deadline pending");
            if report.module == "hot" && report.ok() {
                break;
            }
        }
        sim.kernel.reclaim.flush();
        match attacker.fire(&sim.kernel, &leak) {
            FireOutcome::Dead(Fault::Unmapped { .. }) => {}
            other => panic!("seed {seed}: stale code leak must fault, got {other:?}"),
        }
    }
}

#[test]
fn leaked_stack_pointer_dies_with_rotation() {
    let sim = Sim::new(SimConfig::default());
    let mut attacker = Attacker::new(3);
    let leak = attacker
        .leak_stack(&sim.kernel, &sim.registry, 0, 0)
        .expect("stack leak");
    assert!(attacker.fire(&sim.kernel, &leak).landed());
    sim.registry.stacks.rotate(&sim.kernel);
    sim.kernel.reclaim.flush();
    match attacker.fire(&sim.kernel, &leak) {
        FireOutcome::Dead(Fault::Unmapped { .. }) => {}
        other => panic!("stale stack leak must fault, got {other:?}"),
    }
}

#[test]
fn leaked_chain_first_hop_faults_after_move() {
    // The §6 JIT-ROP scenario driven through the harness: scan the hot
    // module's gadget farm, build the NX-disable chain, move the
    // module, fire — the first hop must hit unmapped memory.
    let mut sim = Sim::new(SimConfig::default());
    let chain = Attacker::build_leaked_chain(&sim.kernel, sim.module("hot"))
        .expect("hot module's gadget farm supports a chain");
    loop {
        let report = sim.step().expect("deadline pending");
        if report.module == "hot" && report.ok() {
            break;
        }
    }
    sim.kernel.reclaim.flush();
    let mut vm = sim.kernel.vm();
    match vm.call(chain.words[0], &[]) {
        Err(adelie_kernel::VmError::Fault(Fault::Unmapped { .. })) => {}
        other => panic!("chain should die on unmapped code, got {other:?}"),
    }
}
