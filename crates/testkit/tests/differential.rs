//! Differential read-path test: one seeded ioctl + re-randomization
//! trace replayed under `ReadPath::Locked` and `ReadPath::Snapshot`.
//!
//! The two read paths are *algorithmically different* implementations
//! of the same contract (the locked ablation takes a reader/writer
//! lock; the snapshot path walks immutable RCU snapshots under an
//! epoch pin) — so any drift in the snapshot protocol that the
//! concurrency proptests can't pin down (a publish that skips a
//! sibling, a sync plan that diverges, an extra or missing TLB flush)
//! shows up here as a byte-level mismatch between two traces that must
//! be identical: same ioctl results, same translation probes, same
//! per-module cycle counts, same commit timeline, same TLB counter
//! evolution, same oracle verdict.

use adelie_drivers::specs::DUMMY_MINOR;
use adelie_kernel::{ArchKind, KernelConfig, ReadPath};
use adelie_plugin::TransformOptions;
use adelie_sched::SimClock;
use adelie_testkit::LayoutOracle;
use adelie_vmem::Access;
use adelie_workloads::{DriverSet, Testbed};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Replay the seeded trace under `read_path` on `arch`; return the
/// full observable transcript.
fn run_trace_on(read_path: ReadPath, arch: ArchKind, seed: u64) -> String {
    let tb = Testbed::with_kernel_config(
        TransformOptions::rerandomizable(true),
        DriverSet::dummy_only(),
        KernelConfig {
            seed,
            read_path,
            arch,
            ..KernelConfig::default()
        },
    );
    let clock = SimClock::new();
    let oracle = LayoutOracle::new(tb.kernel.clone(), clock.clone());
    tb.registry.set_cycle_hooks(oracle.clone());
    let sched = tb.start_stepped_scheduler(clock.clone(), Duration::from_micros(100));
    let mut vm = tb.kernel.vm();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF);
    let mut out = String::new();

    for step in 0..250u64 {
        // One seeded ioctl, echoed through the dummy driver's wrapper
        // (stack checkout, GOT loads, return-address encryption — the
        // whole read path under traffic).
        let arg = rng.gen::<u64>() & 0xFFFF;
        let got = tb
            .kernel
            .ioctl(&mut vm, DUMMY_MINOR, 0, arg)
            .expect("trace ioctl");
        let _ = writeln!(out, "ioctl[{step}] {arg} -> {got}");
        // Periodically cross-check the batched translation path against
        // N independent single walks: `translate_pages` resolves the
        // whole span against ONE snapshot root, the singles re-walk the
        // table per page — under either read path both the PTEs and the
        // bytes read through them must agree exactly, and the checksum
        // line makes the *content* part of the cross-mode transcript.
        if step % 25 == 7 {
            let name = &tb.module_names[(step as usize / 25) % tb.module_names.len()];
            let m = tb.registry.get(name).expect("module");
            let base = m.movable_base.load(Ordering::Acquire);
            let pages = m.movable.total_pages.min(4);
            let batch = vm
                .translate_pages(base, pages, Access::Read)
                .expect("batched translate");
            for (k, t) in batch.iter().enumerate() {
                let single = tb
                    .kernel
                    .space
                    .translate(base + (k * adelie_vmem::PAGE_SIZE) as u64, Access::Read)
                    .expect("single translate");
                assert_eq!(
                    t.pte, single.pte,
                    "translate_pages diverged from single walks at {name} page {k}"
                );
            }
            let mut batched = vec![0u8; pages * adelie_vmem::PAGE_SIZE];
            vm.read_bytes(base, &mut batched).expect("batched read");
            let mut singles = vec![0u8; batched.len()];
            for (k, chunk) in singles.chunks_exact_mut(8).enumerate() {
                let v = tb
                    .kernel
                    .space
                    .read_u64(&tb.kernel.phys, base + (k * 8) as u64)
                    .expect("single read");
                chunk.copy_from_slice(&v.to_le_bytes());
            }
            assert_eq!(
                batched, singles,
                "batched read_bytes diverged from single-page reads at {name}"
            );
            let sum = batched.chunks_exact(8).fold(0u64, |a, c| {
                a.wrapping_add(u64::from_le_bytes(c.try_into().unwrap()))
            });
            let _ = writeln!(out, "batch[{step}] {name} pages {pages} sum {sum:#x}");
        }
        // Virtual time passes; every due re-randomization cycle runs.
        clock.advance(Duration::from_millis(1));
        while sched
            .peek_deadline_ns()
            .is_some_and(|d| d <= clock.now_ns())
        {
            if let Some(report) = sched.step() {
                let _ = writeln!(
                    out,
                    "cycle {} @{} -> {:?}",
                    report.module, report.deadline_ns, report.new_base
                );
            }
        }
    }

    // Translation probes over every module's live layout: base and a
    // few page offsets of both parts, as the page tables see them now.
    for name in &tb.module_names {
        let m = tb.registry.get(name).expect("module");
        let base = m.movable_base.load(Ordering::Acquire);
        for page in [0usize, 1, m.movable.total_pages - 1] {
            let va = base + (page * adelie_vmem::PAGE_SIZE) as u64;
            let _ = writeln!(
                out,
                "probe {name} mov+{page} {:?}",
                tb.kernel.space.translate(va, Access::Read).map(|t| t.pte)
            );
        }
        if let Some(imm) = &m.immovable {
            let _ = writeln!(
                out,
                "probe {name} imm {:?}",
                tb.kernel
                    .space
                    .translate(imm.base, Access::Exec)
                    .map(|t| t.pte)
            );
        }
        let _ = writeln!(out, "generation {name} {}", m.times_randomized());
    }

    // Cycle counts and the commit timeline.
    let stats = sched.stop();
    let _ = writeln!(out, "cycles {} failures {}", stats.cycles, stats.failures);
    for m in &stats.modules {
        let _ = writeln!(out, "module {} cycles {}", m.name, m.cycles);
    }
    for c in oracle.commits() {
        let _ = writeln!(
            out,
            "commit {} {:#x}->{:#x} gen{} @{}",
            c.module, c.old_base, c.new_base, c.generation, c.at_ns
        );
    }

    // TLB counter evolution of the traffic CPU: the partial/full flush
    // mix is part of the contract (a read path that silently
    // full-flushed more would hide stale-translation bugs *and* regress
    // the §4.3 cost story). `micro_hits` is deliberately excluded: only
    // the snapshot path runs the no-pin micro-TLB probe (the locked
    // ablation pins on every lookup by design), so the two modes differ
    // there on purpose.
    let t = vm.tlb_stats();
    let _ = writeln!(
        out,
        "tlb hits {} misses {} flushes {} partial {} invalidated {}",
        t.hits, t.misses, t.flushes, t.partial_flushes, t.entries_invalidated
    );

    // Oracle verdict — must be clean, and identically clean.
    let report = oracle.verify_quiesced(&tb.registry, Some(&stats), 0);
    let _ = writeln!(out, "oracle {:?}", report.violations);
    report.assert_clean();
    out
}

/// Replay on the default backend (what every pre-arch caller meant).
fn run_trace(read_path: ReadPath, seed: u64) -> String {
    run_trace_on(read_path, ArchKind::default(), seed)
}

/// The ISA backend changes how PTEs are *encoded* (hardware bit
/// layouts, ASID widths, cost models) but must never change what the
/// system *does*: the abstract `Pte` layer is arch-invisible, so the
/// same seeded trace — ioctl results, translation probes, commit
/// timeline, TLB counter evolution, oracle verdict — must be
/// byte-identical under x86_64 and riscv64 Sv48.
#[test]
fn arch_backends_replay_byte_identically() {
    for seed in [1u64, 0xA77ACC] {
        let x86 = run_trace_on(ReadPath::Snapshot, ArchKind::X86_64, seed);
        let rv = run_trace_on(ReadPath::Snapshot, ArchKind::Riscv64Sv48, seed);
        if x86 != rv {
            let diverge = x86
                .lines()
                .zip(rv.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            panic!(
                "arch backends diverged (seed {seed}) at {:?}\n\
                 x86_64 len {} vs riscv64 len {}",
                diverge,
                x86.len(),
                rv.len()
            );
        }
    }
}

#[test]
fn locked_and_snapshot_read_paths_are_observationally_identical() {
    for seed in [1u64, 42, 0xA77ACC] {
        let locked = run_trace(ReadPath::Locked, seed);
        let snapshot = run_trace(ReadPath::Snapshot, seed);
        assert!(
            locked.contains("cycle "),
            "trace must contain re-randomization cycles:\n{locked}"
        );
        if locked != snapshot {
            // Pinpoint the first divergence for the failure message.
            let diverge = locked
                .lines()
                .zip(snapshot.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b);
            panic!(
                "read paths diverged (seed {seed}) at {:?}\n\
                 locked len {} vs snapshot len {}",
                diverge,
                locked.len(),
                snapshot.len()
            );
        }
    }
}

#[test]
fn read_path_traces_replay_byte_identically_per_mode() {
    // The differential claim is only meaningful if each mode is itself
    // deterministic — pin that separately so a failure above is
    // attributable to the *cross-mode* diff, not flakiness.
    for read_path in [ReadPath::Locked, ReadPath::Snapshot] {
        let a = run_trace(read_path, 7);
        let b = run_trace(read_path, 7);
        assert_eq!(a, b, "{read_path:?} trace must replay identically");
    }
}
