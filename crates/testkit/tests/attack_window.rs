//! The acceptance experiment: survival curves per scheduling policy,
//! asserting (not just logging) that `Adaptive` yields a strictly
//! smaller exposure window than `FixedPeriod` at no more CPU budget —
//! deterministically, for three distinct seeds.

use adelie_testkit::window::{assert_adaptive_beats_fixed, run_all, WindowConfig};

#[test]
fn adaptive_strictly_beats_fixed_at_equal_budget_across_seeds() {
    for seed in [1, 42, 0xA77ACC] {
        let cfg = WindowConfig {
            seed,
            ..WindowConfig::default()
        };
        let outcomes = run_all(&cfg);
        let fixed = outcomes.iter().find(|o| o.label == "fixed").unwrap();
        let adaptive = outcomes.iter().find(|o| o.label == "adaptive").unwrap();
        let jittered = outcomes.iter().find(|o| o.label == "jittered").unwrap();

        assert_adaptive_beats_fixed(fixed, adaptive);

        // Survival curves are proper curves: in [0, 1], non-increasing.
        for o in &outcomes {
            assert!(!o.windows_ns.is_empty(), "{}: no leaks measured", o.label);
            assert!(o.survival.iter().all(|&s| (0.0..=1.0).contains(&s)));
            assert!(
                o.survival.windows(2).all(|w| w[0] >= w[1]),
                "{}: survival must be non-increasing: {:?}",
                o.label,
                o.survival
            );
        }

        // Jitter keeps the fixed policy's mean budget (same base
        // period) — sanity-bound its cycle count around fixed's.
        assert!(
            jittered.cycles as f64 > fixed.cycles as f64 * 0.5
                && (jittered.cycles as f64) < fixed.cycles as f64 * 2.0,
            "jittered {} vs fixed {}",
            jittered.cycles,
            fixed.cycles
        );

        // Fixed-period ground truth: no leak can outlive one period by
        // more than scheduling slack; bound it at 2P.
        let p_ns = cfg.fixed_period.as_nanos() as u64;
        let worst = fixed.windows_ns.iter().copied().max().unwrap();
        assert!(
            worst <= 2 * p_ns,
            "fixed: worst window {worst}ns exceeds 2×period"
        );
    }
}

#[test]
fn experiment_is_deterministic() {
    let cfg = WindowConfig::default();
    let a = run_all(&cfg);
    let b = run_all(&cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.windows_ns, y.windows_ns);
        assert_eq!(x.survival, y.survival);
    }
}
