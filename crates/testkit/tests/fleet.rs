//! Fleet-mode verification: K seeded shards on one virtual clock.
//!
//! The cross-shard invariants (window confinement, no cross-shard VA
//! overlap, symbol/GOT integrity per owning shard, leak isolation)
//! plus determinism of the whole fleet timeline.

use adelie_sched::Policy;
use adelie_testkit::{FleetSim, FleetSimConfig, ModuleProfile};
use std::time::Duration;

const RUN: Duration = Duration::from_millis(60);

#[test]
fn fleet_runs_clean_under_fixed_period() {
    let mut sim = FleetSim::new(FleetSimConfig {
        seed: 3,
        shards: 3,
        ..FleetSimConfig::default()
    });
    sim.run_for(RUN);
    assert!(sim.sched.cycles() > 0, "fleet must cycle");
    // Every shard's group did work.
    for shard in 0..sim.shards() {
        assert!(
            sim.sched.group(shard).cycles() > 0,
            "shard {shard} group never cycled"
        );
    }
    sim.assert_modules_work();
    sim.verify().assert_clean();
}

#[test]
fn fleet_runs_clean_under_adaptive_pools() {
    let mut sim = FleetSim::new(FleetSimConfig {
        seed: 11,
        shards: 4,
        workers: 2,
        policy: Policy::Adaptive {
            min: Duration::from_millis(2),
            max: Duration::from_millis(20),
            rate_scale: 500.0,
            exposure_scale: 20.0,
        },
        ..FleetSimConfig::default()
    });
    sim.run_for(RUN);
    assert!(sim.sched.cycles() > 0);
    assert_eq!(sim.sched.failures(), 0);
    sim.assert_modules_work();
    sim.verify().assert_clean();
}

#[test]
fn fleet_timeline_is_deterministic() {
    let run = |seed: u64| {
        let mut sim = FleetSim::new(FleetSimConfig {
            seed,
            shards: 3,
            workers: 2,
            ..FleetSimConfig::default()
        });
        sim.run_for(RUN);
        // The full observable timeline: per-shard cycle counts plus
        // every commit's (module, old, new, t) tuple.
        let mut dump = String::new();
        for shard in 0..sim.shards() {
            dump.push_str(&format!(
                "shard {shard}: cycles={}\n",
                sim.sched.group(shard).cycles()
            ));
            for c in sim.oracles[shard].commits() {
                dump.push_str(&format!(
                    "  {} {:#x}->{:#x} gen{} @{}\n",
                    c.module, c.old_base, c.new_base, c.generation, c.at_ns
                ));
            }
        }
        sim.verify().assert_clean();
        dump
    };
    let a = run(42);
    let b = run(42);
    assert!(a.contains("->"), "timeline must contain commits:\n{a}");
    assert_eq!(a, b, "same fleet seed must replay byte-identically");
    let c = run(43);
    assert_ne!(a, c, "different seeds must diverge");
}

#[test]
fn cross_shard_leaks_never_land_while_home_leaks_do() {
    let mut sim = FleetSim::new(FleetSimConfig {
        seed: 7,
        shards: 2,
        // Long periods: leaks stay live in their home shard for the
        // whole check, making the asymmetry sharp.
        policy: Policy::FixedPeriod(Duration::from_millis(500)),
        ..FleetSimConfig::default()
    });
    sim.run_for(Duration::from_millis(5));
    // Positive control: a leak fired at its *home* shard right away
    // lands (the layout is still live).
    let mut attacker = adelie_testkit::Attacker::new(99);
    let m = sim.module("hot_s0").clone();
    let home = sim.fleet.kernel(0);
    let leak = attacker.leak_code(home, &m, 0);
    assert!(
        attacker.fire(home, &leak).landed(),
        "home-shard leak must land before the next cycle"
    );
    // The same leak against the other shard is dead — and the full
    // sweep finds no cross-shard hit anywhere.
    assert!(!attacker.fire(sim.fleet.kernel(1), &leak).landed());
    assert_eq!(sim.attack_cross_shard(1234), Vec::<String>::new());
    // Still true after a burst of re-randomization everywhere.
    sim.run_for(RUN);
    assert_eq!(sim.attack_cross_shard(5678), Vec::<String>::new());
    sim.verify().assert_clean();
}

#[test]
fn global_budget_sees_every_shard() {
    let cycle_cost = Duration::from_micros(100);
    let mut sim = FleetSim::new(FleetSimConfig {
        seed: 5,
        shards: 3,
        cycle_cost,
        ..FleetSimConfig::default()
    });
    sim.run_for(RUN);
    let cycles = sim.sched.cycles();
    assert!(cycles > 0);
    assert_eq!(
        sim.sched.budget().spent(),
        cycle_cost * cycles as u32,
        "one global budget must account every shard's cycles"
    );
}

#[test]
fn capped_fleet_budget_throttles_every_shard() {
    // An aggressive fixed period under a tiny global cap: pressure is
    // global, so *every* shard's group must slow down, not just the
    // one that spent first.
    let run = |max_cpu_frac: f64| {
        let mut sim = FleetSim::new(FleetSimConfig {
            seed: 17,
            shards: 2,
            policy: Policy::FixedPeriod(Duration::from_micros(500)),
            cycle_cost: Duration::from_micros(400),
            max_cpu_frac,
            modules_per_shard: vec![ModuleProfile::hot("hot")],
            ..FleetSimConfig::default()
        });
        sim.run_for(RUN);
        let per_shard: Vec<u64> = (0..sim.shards())
            .map(|s| sim.sched.group(s).cycles())
            .collect();
        sim.verify().assert_clean();
        per_shard
    };
    let uncapped = run(f64::INFINITY);
    let capped = run(0.0001);
    for shard in 0..2 {
        assert!(
            capped[shard] < uncapped[shard],
            "shard {shard}: the global cap must throttle it \
             ({} capped vs {} uncapped)",
            capped[shard],
            uncapped[shard]
        );
    }
}
