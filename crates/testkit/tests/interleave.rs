//! Seeded scheduler-interleaving exploration: reorder the cycles a
//! multi-worker pool could legally run concurrently and check that no
//! stale pointer, SMR leak, or overlapping VA reservation survives any
//! interleaving.

use adelie_sched::Policy;
use adelie_testkit::{ModuleProfile, Sim, SimConfig};
use std::time::Duration;

fn fleet_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        policy: Policy::FixedPeriod(Duration::from_millis(5)),
        workers: 3,
        // A cycle cost comparable to the period spread keeps several
        // deadlines inside one pool window, so reordering really
        // happens.
        cycle_cost: Duration::from_millis(2),
        modules: vec![
            ModuleProfile::hot("alpha"),
            ModuleProfile::hot("beta"),
            ModuleProfile::cold("gamma"),
            ModuleProfile::cold("delta"),
        ],
        ..SimConfig::default()
    }
}

#[test]
fn explored_interleavings_preserve_every_layout_invariant() {
    for seed in 1..=6u64 {
        let mut sim = Sim::new(fleet_config(seed));
        sim.run_explored(Duration::from_millis(250));
        assert!(
            sim.sched.cycles() >= 20,
            "seed {seed}: pool barely ran ({})",
            sim.sched.cycles()
        );
        sim.assert_modules_work();
        sim.verify(0).assert_clean();
        assert_eq!(sim.sched.failures(), 0, "seed {seed}");
    }
}

#[test]
fn exploration_is_seeded_and_reproducible() {
    let run = |seed: u64| {
        let mut sim = Sim::new(fleet_config(seed));
        sim.run_explored(Duration::from_millis(120));
        sim.oracle
            .commits()
            .into_iter()
            .map(|c| (c.module, c.new_base, c.at_ns))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(9), run(9), "same seed ⇒ same interleaving");
    assert_ne!(run(9), run(10), "different seed ⇒ different exploration");
}

#[test]
fn reordering_actually_occurs() {
    // With rank exploration on, the commit order must at some point
    // deviate from strict deadline order (otherwise the explorer is a
    // no-op and the invariant test above proves nothing).
    let mut ordered = Sim::new(fleet_config(2));
    ordered.run_for(Duration::from_millis(120));
    let mut explored = Sim::new(fleet_config(2));
    explored.run_explored(Duration::from_millis(120));
    let seq = |sim: &Sim| {
        sim.reports()
            .iter()
            .map(|r| r.module.clone())
            .collect::<Vec<_>>()
    };
    assert_ne!(
        seq(&ordered),
        seq(&explored),
        "explorer produced the identity interleaving only"
    );
}
