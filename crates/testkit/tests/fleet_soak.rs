//! The seed-sweep fleet soak: 3 seeds × 4 shards × every paper
//! workload path, on a bounded virtual timeline, with the whole fleet
//! re-randomizing under stepped schedulers — and the determinism
//! regression gate: the same seed must yield **byte-identical**
//! `SpaceStats` / `SchedStats` dumps across independent runs.
//!
//! `#[ignore]` by default (it is a soak, not a unit test): CI runs it
//! as its own job with `cargo test -p adelie-testkit --test fleet_soak
//! -- --ignored`, and locally that same command reproduces exactly
//! what CI saw, seed for seed.

use adelie_plugin::TransformOptions;
use adelie_sched::SimClock;
use adelie_workloads::{run_soak_round, DriverSet, FleetTestbed};
use std::fmt::Write as _;
use std::time::Duration;

const SHARDS: usize = 4;
const SEEDS: [u64; 3] = [1, 42, 0xADE11E];
/// Bounded virtual time per run: 64 rounds × 1 virtual ms.
const ROUNDS: u64 = 64;

/// One soak run: all shards, all workload paths, stepped fleet
/// schedulers on one virtual clock. Returns the canonical stats dump.
fn soak(seed: u64) -> String {
    let ft = FleetTestbed::new(
        TransformOptions::rerandomizable(true),
        DriverSet::full(),
        SHARDS,
        seed,
    );
    let clock = SimClock::new();
    let sched = ft.start_stepped_schedulers(clock.clone(), Duration::from_micros(100));
    {
        let mut vms: Vec<_> = ft.shards.iter().map(|tb| tb.kernel.vm()).collect();
        for round in 0..ROUNDS {
            // All workloads, all shards, logically concurrent on the
            // virtual timeline (interleaved deterministically).
            for (shard, tb) in ft.shards.iter().enumerate() {
                let ops = run_soak_round(tb, &mut vms[shard], round);
                assert!(ops > 0, "shard {shard} round {round} did no work");
            }
            clock.advance(Duration::from_millis(1));
            while sched
                .peek_deadline_ns()
                .is_some_and(|(_, d)| d <= clock.now_ns())
            {
                sched.step();
            }
        }
    }
    assert!(
        sched.cycles() > 0,
        "the fleet must re-randomize while soaked"
    );
    assert_eq!(sched.failures(), 0, "no cycle may fail during the soak");

    // The canonical dump: per-shard SpaceStats + SchedStats, exactly as
    // Debug renders them. Any nondeterminism anywhere in the pipeline —
    // placement, traffic, scheduling, shootdown accounting, snapshot
    // reclamation — lands in these counters and breaks byte equality.
    let stats = sched.stop();
    let mut dump = String::new();
    for (shard, tb) in ft.shards.iter().enumerate() {
        tb.kernel.reclaim.flush();
        tb.kernel.space.flush_snapshots();
        let _ = writeln!(dump, "=== shard {shard} ===");
        // Placement digest: the KASLR draws make this seed-sensitive,
        // so the byte-equality gate covers layout determinism too (and
        // the seeds-diverge check below cannot pass vacuously).
        let mut names = tb.registry.list();
        names.sort();
        for name in &names {
            let m = tb.registry.get(name).expect("registry entry");
            let _ = writeln!(
                dump,
                "module {name} base {:#x} gen {}",
                m.movable_base.load(std::sync::atomic::Ordering::Acquire),
                m.times_randomized()
            );
        }
        let _ = writeln!(dump, "SpaceStats {:#?}", tb.kernel.space.stats());
        let _ = writeln!(dump, "SchedStats {:#?}", stats[shard]);
        let smr = tb.kernel.reclaim.stats();
        let _ = writeln!(dump, "smr delta {}", smr.delta());
        assert_eq!(smr.delta(), 0, "shard {shard} leaked SMR retirements");
    }
    dump
}

#[test]
#[ignore = "soak job: run explicitly (CI fleet job, or locally with --ignored)"]
fn fleet_soak_same_seed_is_byte_identical() {
    for seed in SEEDS {
        let a = soak(seed);
        let b = soak(seed);
        if a != b {
            let diverge = a
                .lines()
                .zip(b.lines())
                .enumerate()
                .find(|(_, (x, y))| x != y);
            panic!(
                "seed {seed}: soak dumps diverged at {diverge:?} — \
                 determinism regression"
            );
        }
        assert!(a.contains("SchedStats"), "dump must carry stats:\n{a}");
    }
}

#[test]
#[ignore = "soak job: run explicitly (CI fleet job, or locally with --ignored)"]
fn fleet_soak_seeds_diverge() {
    // The gate above would pass vacuously if the dump ignored the seed
    // entirely; different seeds must visibly diverge.
    let a = soak(SEEDS[0]);
    let b = soak(SEEDS[1]);
    assert_ne!(a, b, "distinct seeds must produce distinct timelines");
}
