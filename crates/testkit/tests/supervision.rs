//! Supervision under fault storms: quarantine entry and exit, zero
//! budget while benched, shard crash recovery, and same-seed
//! byte-identical determinism of the whole storm timeline.

use adelie_core::CycleStage;
use adelie_sched::{HealthState, SupervisionConfig};
use adelie_testkit::{FleetSim, FleetSimConfig};
use std::time::Duration;

/// Supervision thresholds tight enough that a short virtual run walks
/// the full Healthy → Degraded → Quarantined → Recovered arc.
fn tight_supervision() -> SupervisionConfig {
    SupervisionConfig {
        degrade_after: 1,
        quarantine_after: 3,
        backoff_max_exp: 3,
        ..SupervisionConfig::default()
    }
}

fn storm_sim(seed: u64) -> FleetSim {
    let sim = FleetSim::new(FleetSimConfig {
        seed,
        supervision: tight_supervision(),
        ..FleetSimConfig::default()
    });
    // A correlated burst on shard 0's hot module: attempts 1..=6 fail
    // at Reserve (attempt 0 seeds a healthy baseline). The streak
    // crosses quarantine_after = 3, the next attempts are failing
    // un-quarantine probes, and the first attempt past the burst is
    // the probe that recovers the module.
    sim.faults[0].fail_burst("hot_s0", CycleStage::Reserve, 1, 6);
    sim
}

/// The storm drives the hot module Quarantined and the supervision
/// machinery back out: the module recovers, never runs a full-rate
/// cycle while benched, and burns zero budget on probes.
#[test]
fn fault_storm_quarantines_then_recovers() {
    let mut sim = storm_sim(7);
    sim.run_for(Duration::from_secs(1));

    // The arc actually happened.
    let quarantined = sim
        .reports()
        .iter()
        .any(|(_, r)| r.module == "hot_s0" && r.health == HealthState::Quarantined);
    assert!(quarantined, "the burst must reach quarantine");
    assert_eq!(
        sim.sched.group(0).health_of("hot_s0"),
        Some(HealthState::Healthy),
        "the probe past the burst must recover the module"
    );
    let stats = sim.sched.group(0).stats();
    assert_eq!(stats.quarantines, 1, "one descent into quarantine");
    assert!(stats.probes >= 1, "at least one un-quarantine probe ran");
    assert_eq!(stats.recoveries, 1, "exactly one recovery");

    // Zero budget while quarantined: only non-probe cycles are
    // charged, so shard 0's busy time is exactly (its non-probe
    // cycles) × modeled cost — the probes ran for free.
    let cost = FleetSimConfig::default().cycle_cost.as_nanos() as u64;
    let non_probe = sim
        .reports()
        .iter()
        .filter(|(shard, r)| *shard == 0 && !r.probe)
        .count() as u64;
    assert_eq!(
        stats.busy,
        Duration::from_nanos(non_probe * cost),
        "probe cycles must not be charged to the budget"
    );
    assert!(
        sim.reports().iter().any(|(_, r)| r.probe),
        "the run must contain probe cycles"
    );

    // Quarantine-execution invariant + every layout invariant, clean.
    sim.assert_modules_work();
    sim.verify().assert_clean();
}

/// Crash-recover a shard mid-storm: the rebuilt modules serve, no
/// stale mapping survives the rebuild, and the whole fleet quiesces
/// clean — the oracle is told about the out-of-band rebuild and still
/// signs off.
#[test]
fn shard_crash_recovery_converges_clean() {
    let mut sim = storm_sim(11);
    sim.run_for(Duration::from_millis(300));
    let report = sim.recover_shard(1);
    assert_eq!(report.rebuilt.len(), 2, "both shard-1 modules rebuilt");
    assert!(!report.vacated.is_empty(), "old spans were vacated");
    sim.run_for(Duration::from_millis(300));
    sim.assert_modules_work();
    sim.verify().assert_clean();
}

/// Regression: crash-recovering the shard of a *currently quarantined*
/// module must not trip the quarantine-execution invariant — the
/// rebuilt group starts the module Healthy, so its first post-rebuild
/// full-rate cycle is legal, not a violation. (The checker used to
/// carry pre-crash health state across the group replacement.)
#[test]
fn recovery_of_a_quarantined_shard_resets_health_state() {
    let mut sim = storm_sim(5);
    // Step until the storm benches hot_s0.
    let mut waited_ms = 0u64;
    while sim.sched.group(0).health_of("hot_s0") != Some(HealthState::Quarantined) {
        sim.run_for(Duration::from_millis(20));
        waited_ms += 20;
        assert!(waited_ms < 2_000, "storm never quarantined hot_s0");
    }
    let mark = sim.reports().len();
    sim.recover_shard(0);
    assert_eq!(
        sim.sched.group(0).health_of("hot_s0"),
        Some(HealthState::Healthy),
        "the rebuilt group must start the module Healthy"
    );
    sim.run_for(Duration::from_millis(300));
    assert!(
        sim.reports()[mark..]
            .iter()
            .any(|(s, r)| *s == 0 && r.module == "hot_s0" && !r.probe),
        "the rebuilt module must cycle full-rate again"
    );
    sim.assert_modules_work();
    sim.verify().assert_clean();
}

/// The determinism contract survives the supervision layer: the same
/// seed replays the same storm — quarantines, probes, backoff jitter,
/// recoveries, suppressed logs — to byte-identical stats, across three
/// seeds, and every seed's run converges (recovers) and verifies clean.
#[test]
fn same_seed_storms_replay_byte_identically() {
    for seed in [1u64, 42, 0xA77A] {
        let dump = |seed| {
            let mut sim = storm_sim(seed);
            sim.run_for(Duration::from_secs(1));
            assert_eq!(
                sim.sched.group(0).health_of("hot_s0"),
                Some(HealthState::Healthy),
                "seed {seed}: storm must converge to recovery"
            );
            sim.verify().assert_clean();
            format!("{:?}", sim.sched.stats())
        };
        assert_eq!(
            dump(seed),
            dump(seed),
            "seed {seed}: storm not deterministic"
        );
    }
}
