//! Property tests for the object builder.

use adelie_isa::{Asm, Reg};
use adelie_obj::{Binding, ObjectBuilder, SectionKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Function symbols never overlap and all stay 16-byte aligned.
    #[test]
    fn function_layout(sizes in proptest::collection::vec(1usize..40, 1..12)) {
        let mut b = ObjectBuilder::new("m");
        for (i, n) in sizes.iter().enumerate() {
            let mut a = Asm::new();
            for _ in 0..*n {
                a.nop();
            }
            a.ret();
            b.add_function(&format!("f{i}"), &a, SectionKind::Text, Binding::Local).unwrap();
        }
        let obj = b.finish();
        let mut spans: Vec<(usize, usize)> = obj
            .symbols_in(SectionKind::Text)
            .map(|(s, off)| {
                let idx: usize = s.name[1..].parse().unwrap();
                (off, off + sizes[idx] + 1)
            })
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "functions overlap: {spans:?}");
        }
        for (off, _) in &spans {
            prop_assert_eq!(off % 16, 0);
        }
    }

    /// Every fixup lands inside the section and survives as a reloc.
    #[test]
    fn relocs_in_bounds(calls in 1usize..20) {
        let mut b = ObjectBuilder::new("m");
        let mut a = Asm::new();
        for i in 0..calls {
            a.call_got(&format!("import_{}", i % 5));
            a.load_got(Reg::Rax, &format!("import_{}", i % 3));
        }
        a.ret();
        b.add_function("f", &a, SectionKind::Text, Binding::Global).unwrap();
        let obj = b.finish();
        let sec = obj.section(SectionKind::Text).unwrap();
        prop_assert_eq!(sec.relocs.len(), calls * 2);
        for r in &sec.relocs {
            prop_assert!(r.offset + 4 <= sec.bytes.len());
        }
        // All imports recorded as undefined.
        prop_assert_eq!(obj.undefined_symbols().count(), 5.min(calls).max(3.min(calls)));
    }

    /// Payload size equals the sum of section sizes.
    #[test]
    fn payload_accounting(data_len in 1usize..512, bss_len in 1usize..512) {
        let mut b = ObjectBuilder::new("m");
        b.add_data("d", &vec![7u8; data_len], SectionKind::Data, Binding::Local).unwrap();
        b.add_bss("z", bss_len, Binding::Local).unwrap();
        let obj = b.finish();
        prop_assert!(obj.payload_size() >= data_len + bss_len);
    }
}
