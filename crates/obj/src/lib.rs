//! # adelie-obj — the relocatable module object format
//!
//! Adelie keeps Linux's *relocatable* module format and adapts it for PIC
//! (paper §4.1): relocations are finalized only at load time, which gives
//! the loader the flexibility to build GOTs and PLTs, patch local
//! references (Fig. 4), and split the module into movable and immovable
//! parts (Fig. 2b). This crate is the ELF-`.ko` analog:
//!
//! * [`SectionKind`] — `.text` (movable code), `.fixed.text` (immovable
//!   wrappers), `.data`, `.rodata` (immovable, §4.2), `.bss`,
//! * [`Symbol`] — defined (section + offset) or undefined (a kernel
//!   import, what `nm` would print as `U`),
//! * [`Reloc`] — PC32 / PLT32 / GOTPCREL / ABS64 / ABS32S records
//!   produced from assembler fixups,
//! * [`ObjectBuilder`] — assembles functions and data into an
//!   [`ObjectFile`].
//!
//! # Example
//!
//! ```
//! use adelie_isa::{Asm, Reg};
//! use adelie_obj::{ObjectBuilder, SectionKind, Binding};
//!
//! let mut b = ObjectBuilder::new("demo");
//! let mut f = Asm::new();
//! f.call_got("kmalloc");   // undefined → kernel import
//! f.ret();
//! b.add_function("demo_init", &f, SectionKind::Text, Binding::Global)?;
//! let obj = b.finish();
//! assert!(obj.undefined_symbols().any(|s| &*s.name == "kmalloc"));
//! # Ok::<(), adelie_obj::ObjError>(())
//! ```

pub use adelie_isa::FixupKind as RelocKind;
use adelie_isa::{Asm, AsmError};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// The five section kinds a re-randomizable module uses (paper Fig. 2b).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SectionKind {
    /// Movable code.
    Text,
    /// Immovable code: the kernel-facing wrappers (`.fixed.text`).
    FixedText,
    /// Movable initialized data.
    Data,
    /// Immovable read-only data (string literals handed to the kernel).
    Rodata,
    /// Movable zero-initialized data.
    Bss,
}

impl SectionKind {
    /// All section kinds in layout order.
    pub const ALL: [SectionKind; 5] = [
        SectionKind::Text,
        SectionKind::FixedText,
        SectionKind::Data,
        SectionKind::Rodata,
        SectionKind::Bss,
    ];

    /// Whether the section belongs to the *movable* part of the module —
    /// the part the re-randomizer relocates (paper §4.2 keeps
    /// `.fixed.text` and `.rodata` immovable).
    pub fn is_movable(self) -> bool {
        matches!(
            self,
            SectionKind::Text | SectionKind::Data | SectionKind::Bss
        )
    }

    /// Whether the section holds executable code.
    pub fn is_code(self) -> bool {
        matches!(self, SectionKind::Text | SectionKind::FixedText)
    }

    /// Conventional name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::FixedText => ".fixed.text",
            SectionKind::Data => ".data",
            SectionKind::Rodata => ".rodata",
            SectionKind::Bss => ".bss",
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Symbol binding.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Binding {
    /// Visible only within the module (a `static` function).
    Local,
    /// Visible to the linker across the module boundary.
    Global,
}

/// Where a symbol is defined.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SymbolDef {
    /// Inside this object, at `offset` within `section`.
    Defined {
        /// Containing section.
        section: SectionKind,
        /// Byte offset within the section.
        offset: usize,
    },
    /// Imported — resolved against the kernel symbol table at load time
    /// (what the paper calls addresses "marked as U (undefined)").
    Undefined,
}

/// A symbol-table entry.
///
/// Names are interned as `Arc<str>`: every [`Reloc`] against the symbol
/// shares one allocation, so cloning an [`ObjectFile`] (or keying loader
/// maps by name) copies pointers instead of reallocating strings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Symbol {
    /// Symbol name (interned).
    pub name: Arc<str>,
    /// Definition site.
    pub def: SymbolDef,
    /// Binding.
    pub binding: Binding,
}

impl Symbol {
    /// Whether the symbol is defined in this object.
    pub fn is_defined(&self) -> bool {
        matches!(self.def, SymbolDef::Defined { .. })
    }
}

/// A relocation record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reloc {
    /// Byte offset of the field within its section.
    pub offset: usize,
    /// Relocation kind.
    pub kind: RelocKind,
    /// Target symbol name (interned, shared with the [`Symbol`] entry).
    pub symbol: Arc<str>,
    /// Addend.
    pub addend: i64,
}

/// A section: bytes plus relocations.
#[derive(Clone, Default, Debug)]
pub struct Section {
    /// Contents (empty for `.bss`).
    pub bytes: Vec<u8>,
    /// Size in bytes (≥ `bytes.len()`; larger only for `.bss`).
    pub size: usize,
    /// Relocations against this section.
    pub relocs: Vec<Reloc>,
}

/// Errors from [`ObjectBuilder`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjError {
    /// The assembler failed (bad labels).
    Asm(AsmError),
    /// A symbol was defined twice.
    DuplicateSymbol(String),
    /// Data added to `.bss` must be all-zero.
    NonZeroBss(String),
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::Asm(e) => write!(f, "assembly failed: {e}"),
            ObjError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            ObjError::NonZeroBss(s) => write!(f, "non-zero bytes for .bss symbol `{s}`"),
        }
    }
}

impl std::error::Error for ObjError {}

impl From<AsmError> for ObjError {
    fn from(e: AsmError) -> Self {
        ObjError::Asm(e)
    }
}

/// A relocatable module object — the `.ko` analog.
#[derive(Clone, Debug)]
pub struct ObjectFile {
    /// Module name.
    pub name: String,
    /// Sections by kind.
    pub sections: BTreeMap<SectionKind, Section>,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Names of symbols exported to the kernel (the module's interface:
    /// init/exit entry points, registered ops, …).
    pub exports: Vec<String>,
    /// Module init entry point (called at load).
    pub init: Option<String>,
    /// Module exit entry point (called at unload).
    pub exit: Option<String>,
    /// Optional callback the re-randomizer invokes after each move so the
    /// module can refresh run-time function pointers (paper §4.2).
    pub update_pointers: Option<String>,
}

impl ObjectFile {
    /// Look up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| &*s.name == name)
    }

    /// The section of the given kind (empty section if never populated).
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.get(&kind)
    }

    /// Iterate over imported (undefined) symbols.
    pub fn undefined_symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter().filter(|s| !s.is_defined())
    }

    /// Iterate over defined symbols in a given section.
    pub fn symbols_in(&self, kind: SectionKind) -> impl Iterator<Item = (&Symbol, usize)> {
        self.symbols.iter().filter_map(move |s| match s.def {
            SymbolDef::Defined { section, offset } if section == kind => Some((s, offset)),
            _ => None,
        })
    }

    /// Total bytes of section payload (the non-GOT part of the module's
    /// memory footprint, Fig. 5a).
    pub fn payload_size(&self) -> usize {
        self.sections.values().map(|s| s.size).sum()
    }

    /// Count relocations of each kind (used by the Fig. 5a/§4.1 GOT
    /// pressure accounting).
    pub fn reloc_histogram(&self) -> BTreeMap<RelocKind, usize> {
        let mut h = BTreeMap::new();
        for s in self.sections.values() {
            for r in &s.relocs {
                *h.entry(r.kind).or_insert(0) += 1;
            }
        }
        h
    }
}

impl fmt::Display for ObjectFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} ({} bytes)", self.name, self.payload_size())?;
        for (kind, sec) in &self.sections {
            writeln!(
                f,
                "  {:<12} {:6} bytes, {:3} relocs",
                kind.name(),
                sec.size,
                sec.relocs.len()
            )?;
        }
        Ok(())
    }
}

/// Incrementally builds an [`ObjectFile`].
#[derive(Debug)]
pub struct ObjectBuilder {
    name: String,
    sections: BTreeMap<SectionKind, Section>,
    symbols: Vec<Symbol>,
    exports: Vec<String>,
    init: Option<String>,
    exit: Option<String>,
    update_pointers: Option<String>,
    /// Intern pool: one `Arc<str>` per distinct symbol name, shared by
    /// every [`Symbol`] and [`Reloc`] that mentions it.
    interned: HashSet<Arc<str>>,
}

/// Code alignment for function entries.
const FUNC_ALIGN: usize = 16;
/// Data object alignment.
const DATA_ALIGN: usize = 8;

impl ObjectBuilder {
    /// Start building a module named `name`.
    pub fn new(name: &str) -> ObjectBuilder {
        ObjectBuilder {
            name: name.to_string(),
            sections: BTreeMap::new(),
            symbols: Vec::new(),
            exports: Vec::new(),
            init: None,
            exit: None,
            update_pointers: None,
            interned: HashSet::new(),
        }
    }

    /// Return the interned `Arc<str>` for `name`, creating it on first
    /// use.
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(s) = self.interned.get(name) {
            return s.clone();
        }
        let s: Arc<str> = Arc::from(name);
        self.interned.insert(s.clone());
        s
    }

    /// Declare the init entry point (must also be exported).
    pub fn set_init(&mut self, name: &str) {
        self.init = Some(name.to_string());
    }

    /// Declare the exit entry point (must also be exported).
    pub fn set_exit(&mut self, name: &str) {
        self.exit = Some(name.to_string());
    }

    /// Declare the pointer-refresh callback the re-randomizer calls.
    pub fn set_update_pointers(&mut self, name: &str) {
        self.update_pointers = Some(name.to_string());
    }

    fn section_mut(&mut self, kind: SectionKind) -> &mut Section {
        self.sections.entry(kind).or_default()
    }

    fn define(&mut self, name: &str, def: SymbolDef, binding: Binding) -> Result<(), ObjError> {
        if self
            .symbols
            .iter()
            .any(|s| &*s.name == name && s.is_defined())
        {
            return Err(ObjError::DuplicateSymbol(name.to_string()));
        }
        // Upgrade a previously-recorded undefined reference.
        if let Some(existing) = self
            .symbols
            .iter_mut()
            .find(|s| &*s.name == name && !s.is_defined())
        {
            existing.def = def;
            existing.binding = binding;
            return Ok(());
        }
        let name = self.intern(name);
        self.symbols.push(Symbol { name, def, binding });
        Ok(())
    }

    fn align(&mut self, kind: SectionKind, align: usize) {
        let sec = self.section_mut(kind);
        let pad = (align - sec.size % align) % align;
        if kind != SectionKind::Bss {
            // Pad code with int3 (trap on stray execution), data with 0.
            let fill = if kind.is_code() { 0xCC } else { 0x00 };
            sec.bytes.extend(std::iter::repeat_n(fill, pad));
        }
        sec.size += pad;
    }

    /// Assemble `asm` and place it in `section` under symbol `name`.
    ///
    /// # Errors
    ///
    /// [`ObjError::Asm`] for unresolved labels, or
    /// [`ObjError::DuplicateSymbol`].
    pub fn add_function(
        &mut self,
        name: &str,
        asm: &Asm,
        section: SectionKind,
        binding: Binding,
    ) -> Result<(), ObjError> {
        debug_assert!(section.is_code(), "functions belong in code sections");
        let out = asm.assemble()?;
        self.align(section, FUNC_ALIGN);
        let base = self.section_mut(section).size;
        self.define(
            name,
            SymbolDef::Defined {
                section,
                offset: base,
            },
            binding,
        )?;
        let referenced: Vec<Arc<str>> = out.fixups.iter().map(|f| self.intern(&f.symbol)).collect();
        {
            let sec = self.section_mut(section);
            sec.bytes.extend_from_slice(&out.bytes);
            sec.size += out.bytes.len();
            for (fx, sym) in out.fixups.iter().zip(&referenced) {
                sec.relocs.push(Reloc {
                    offset: base + fx.offset,
                    kind: fx.kind,
                    symbol: sym.clone(),
                    addend: fx.addend,
                });
            }
        }
        for sym in referenced {
            self.reference(&sym);
        }
        Ok(())
    }

    /// Add a data object with initialized bytes.
    ///
    /// # Errors
    ///
    /// [`ObjError::DuplicateSymbol`]; [`ObjError::NonZeroBss`] for
    /// non-zero `.bss` contents.
    pub fn add_data(
        &mut self,
        name: &str,
        bytes: &[u8],
        section: SectionKind,
        binding: Binding,
    ) -> Result<(), ObjError> {
        debug_assert!(!section.is_code(), "data belongs in data sections");
        if section == SectionKind::Bss && bytes.iter().any(|&b| b != 0) {
            return Err(ObjError::NonZeroBss(name.to_string()));
        }
        self.align(section, DATA_ALIGN);
        let base = self.section_mut(section).size;
        self.define(
            name,
            SymbolDef::Defined {
                section,
                offset: base,
            },
            binding,
        )?;
        let sec = self.section_mut(section);
        if section != SectionKind::Bss {
            sec.bytes.extend_from_slice(bytes);
        }
        sec.size += bytes.len();
        Ok(())
    }

    /// Add a data object assembled from a data DSL stream (for
    /// function-pointer tables: use [`Asm::quad_sym`] per entry, which
    /// becomes an ABS64 relocation — the kind of static data the paper's
    /// §6 "Address Hijacking" analysis discusses).
    ///
    /// # Errors
    ///
    /// Same as [`ObjectBuilder::add_function`].
    pub fn add_data_asm(
        &mut self,
        name: &str,
        asm: &Asm,
        section: SectionKind,
        binding: Binding,
    ) -> Result<(), ObjError> {
        debug_assert!(!section.is_code());
        let out = asm.assemble()?;
        self.align(section, DATA_ALIGN);
        let base = self.section_mut(section).size;
        self.define(
            name,
            SymbolDef::Defined {
                section,
                offset: base,
            },
            binding,
        )?;
        let referenced: Vec<Arc<str>> = out.fixups.iter().map(|f| self.intern(&f.symbol)).collect();
        {
            let sec = self.section_mut(section);
            sec.bytes.extend_from_slice(&out.bytes);
            sec.size += out.bytes.len();
            for (fx, sym) in out.fixups.iter().zip(&referenced) {
                sec.relocs.push(Reloc {
                    offset: base + fx.offset,
                    kind: fx.kind,
                    symbol: sym.clone(),
                    addend: fx.addend,
                });
            }
        }
        for sym in referenced {
            self.reference(&sym);
        }
        Ok(())
    }

    /// Reserve `len` zeroed bytes in `.bss` under `name`.
    ///
    /// # Errors
    ///
    /// [`ObjError::DuplicateSymbol`].
    pub fn add_bss(&mut self, name: &str, len: usize, binding: Binding) -> Result<(), ObjError> {
        self.align(SectionKind::Bss, DATA_ALIGN);
        let base = self.section_mut(SectionKind::Bss).size;
        self.define(
            name,
            SymbolDef::Defined {
                section: SectionKind::Bss,
                offset: base,
            },
            binding,
        )?;
        self.section_mut(SectionKind::Bss).size += len;
        Ok(())
    }

    /// Record that `name` is referenced; creates an undefined entry if it
    /// is not (yet) defined here.
    pub fn reference(&mut self, name: &str) {
        if !self.symbols.iter().any(|s| &*s.name == name) {
            let name = self.intern(name);
            self.symbols.push(Symbol {
                name,
                def: SymbolDef::Undefined,
                binding: Binding::Global,
            });
        }
    }

    /// Mark a defined symbol as exported to the kernel.
    pub fn export(&mut self, name: &str) {
        if !self.exports.iter().any(|e| e == name) {
            self.exports.push(name.to_string());
        }
    }

    /// Finish and return the object.
    pub fn finish(self) -> ObjectFile {
        ObjectFile {
            name: self.name,
            sections: self.sections,
            symbols: self.symbols,
            exports: self.exports,
            init: self.init,
            exit: self.exit,
            update_pointers: self.update_pointers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::Reg;

    fn simple_fn() -> Asm {
        let mut a = Asm::new();
        a.mov_imm32(Reg::Rax, 7);
        a.ret();
        a
    }

    #[test]
    fn build_and_lookup() {
        let mut b = ObjectBuilder::new("m");
        b.add_function("f", &simple_fn(), SectionKind::Text, Binding::Global)
            .unwrap();
        b.add_data("tbl", &[1, 2, 3, 4], SectionKind::Data, Binding::Local)
            .unwrap();
        b.export("f");
        let obj = b.finish();
        let f = obj.symbol("f").unwrap();
        assert_eq!(
            f.def,
            SymbolDef::Defined {
                section: SectionKind::Text,
                offset: 0
            }
        );
        assert_eq!(obj.exports, vec!["f".to_string()]);
        assert_eq!(obj.section(SectionKind::Data).unwrap().size, 4);
    }

    #[test]
    fn functions_are_aligned() {
        let mut b = ObjectBuilder::new("m");
        b.add_function("a", &simple_fn(), SectionKind::Text, Binding::Local)
            .unwrap();
        b.add_function("b", &simple_fn(), SectionKind::Text, Binding::Local)
            .unwrap();
        let obj = b.finish();
        let (_, off) = obj
            .symbols_in(SectionKind::Text)
            .find(|(s, _)| &*s.name == "b")
            .unwrap();
        assert_eq!(off % 16, 0);
        // Padding between functions is int3 (0xCC).
        let text = obj.section(SectionKind::Text).unwrap();
        assert_eq!(text.bytes[off - 1], 0xCC);
    }

    #[test]
    fn undefined_reference_recorded() {
        let mut b = ObjectBuilder::new("m");
        let mut a = Asm::new();
        a.call_got("printk");
        a.ret();
        b.add_function("f", &a, SectionKind::Text, Binding::Global)
            .unwrap();
        let obj = b.finish();
        let u: Vec<_> = obj.undefined_symbols().map(|s| &*s.name).collect();
        assert_eq!(u, vec!["printk"]);
        let text = obj.section(SectionKind::Text).unwrap();
        assert_eq!(text.relocs.len(), 1);
        assert_eq!(text.relocs[0].kind, RelocKind::GotPcRel);
    }

    #[test]
    fn defining_after_reference_upgrades() {
        let mut b = ObjectBuilder::new("m");
        let mut a = Asm::new();
        a.call_plt("helper");
        a.ret();
        b.add_function("f", &a, SectionKind::Text, Binding::Global)
            .unwrap();
        b.add_function("helper", &simple_fn(), SectionKind::Text, Binding::Local)
            .unwrap();
        let obj = b.finish();
        assert!(obj.symbol("helper").unwrap().is_defined());
        assert_eq!(obj.undefined_symbols().count(), 0);
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let mut b = ObjectBuilder::new("m");
        b.add_function("f", &simple_fn(), SectionKind::Text, Binding::Global)
            .unwrap();
        let err = b
            .add_function("f", &simple_fn(), SectionKind::Text, Binding::Global)
            .unwrap_err();
        assert_eq!(err, ObjError::DuplicateSymbol("f".into()));
    }

    #[test]
    fn bss_holds_no_bytes() {
        let mut b = ObjectBuilder::new("m");
        b.add_bss("buffer", 4096, Binding::Local).unwrap();
        let obj = b.finish();
        let bss = obj.section(SectionKind::Bss).unwrap();
        assert_eq!(bss.size, 4096);
        assert!(bss.bytes.is_empty());
        assert_eq!(obj.payload_size(), 4096);
    }

    #[test]
    fn data_asm_pointer_table() {
        let mut b = ObjectBuilder::new("m");
        b.add_function("op_read", &simple_fn(), SectionKind::Text, Binding::Local)
            .unwrap();
        let mut tbl = Asm::new();
        tbl.quad_sym("op_read");
        tbl.quad_sym("op_write"); // undefined
        b.add_data_asm("file_ops", &tbl, SectionKind::Data, Binding::Global)
            .unwrap();
        let obj = b.finish();
        let data = obj.section(SectionKind::Data).unwrap();
        assert_eq!(data.size, 16);
        assert_eq!(data.relocs.len(), 2);
        assert!(data.relocs.iter().all(|r| r.kind == RelocKind::Abs64));
        assert!(obj.undefined_symbols().any(|s| &*s.name == "op_write"));
    }

    #[test]
    fn movable_split_matches_paper() {
        assert!(SectionKind::Text.is_movable());
        assert!(SectionKind::Data.is_movable());
        assert!(SectionKind::Bss.is_movable());
        assert!(!SectionKind::FixedText.is_movable());
        assert!(!SectionKind::Rodata.is_movable());
    }

    #[test]
    fn reloc_histogram_counts() {
        let mut b = ObjectBuilder::new("m");
        let mut a = Asm::new();
        a.call_got("kmalloc");
        a.call_got("kfree");
        a.lea_sym(Reg::Rdi, "msg");
        a.ret();
        b.add_function("f", &a, SectionKind::Text, Binding::Global)
            .unwrap();
        b.add_data("msg", b"hi\0", SectionKind::Rodata, Binding::Local)
            .unwrap();
        let obj = b.finish();
        let h = obj.reloc_histogram();
        assert_eq!(h[&RelocKind::GotPcRel], 2);
        assert_eq!(h[&RelocKind::Pc32], 1);
    }
}
