//! Offline stand-in for the subset of the `rand` API this workspace
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen` and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The generator is SplitMix64 — deterministic per seed, statistically
//! fine for layout randomization and synthetic corpora (nothing here is
//! cryptographic; the real paper uses the kernel's entropy pool, and
//! the simulation's determinism is a feature for reproducing runs).

use std::ops::Range;

/// Types that can be sampled uniformly from a generator.
pub trait RandValue {
    /// Draw one uniformly-distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly-distributed value of `T`.
    fn gen<T: RandValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly-distributed value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

/// Types drawable uniformly from a half-open range (mirrors
/// `rand::distributions::uniform::SampleUniform`). The blanket
/// `impl SampleRange<T> for Range<T>` hangs off this, which also ties
/// `gen_range`'s return type to the range's element type during
/// inference (so `arr[rng.gen_range(0..4)]` resolves to `usize`).
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[start, end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: &Self, end: &Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, &self.start, &self.end)
    }
}

/// Seeding trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs (mirrors `rand::rngs`).
pub mod rngs {
    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // Mix the seed once so small seeds don't start correlated.
            let mut rng = SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            use super::Rng;
            rng.next_u64();
            rng
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

macro_rules! impl_rand_int {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: &$t, end: &$t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = (*end as i128 - *start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (*start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_rand_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandValue for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl RandValue for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: &f64, end: &f64) -> f64 {
        assert!(start < end, "gen_range: empty range");
        start + f64::from_rng(rng) * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-4096..4096);
            assert!((-4096..4096).contains(&v));
            let u = rng.gen_range(0u64..3);
            assert!(u < 3);
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }
}
