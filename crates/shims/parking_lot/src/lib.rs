//! Offline stand-in for the subset of the `parking_lot` API this
//! workspace uses (`Mutex`, `RwLock` and their guards).
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the handful of third-party APIs it relies on as
//! thin shims over `std`. Semantics match `parking_lot` where it
//! matters to callers: `lock()`/`read()`/`write()` return guards
//! directly (no poisoning — a poisoned `std` lock is transparently
//! recovered), and `new` is `const`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (non-poisoning `lock()`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
