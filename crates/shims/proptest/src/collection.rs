//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` of `element`-generated values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
