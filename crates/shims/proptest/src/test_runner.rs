//! Config, error type, and the deterministic RNG behind the
//! [`proptest!`](crate::proptest) runner.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs — regenerate and retry.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }
}
