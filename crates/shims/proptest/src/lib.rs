//! Offline stand-in for the subset of the `proptest` API this
//! workspace's property tests use.
//!
//! Implements deterministic random generation (seeded per test name and
//! case index) without shrinking: a failing case panics with the inputs
//! already bound, and re-running reproduces it exactly. Covered surface:
//!
//! * the [`proptest!`] macro with optional `#![proptest_config(...)]`,
//! * [`Strategy`] with `prop_map`/`boxed`, ranges, tuples, [`Just`],
//! * [`any`](arbitrary::any) for primitive types,
//! * [`collection::vec`], the [`prop_oneof!`] union macro,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and
//!   [`TestCaseError`] for helper functions returning `Result`.

// The shim mirrors upstream proptest's module layout, where several
// names intentionally exist as both macro and item — keep rustdoc from
// flagging the resulting link ambiguities under `-D warnings`.
#![allow(rustdoc::broken_intra_doc_links)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case (counted separately, regenerated) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between heterogeneous strategies producing one value
/// type (each arm is boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut seed: u64 = 0xADE1_1E5A_D515_0000;
                for byte in stringify!($name).as_bytes() {
                    seed = seed.wrapping_mul(131).wrapping_add(u64::from(*byte));
                }
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(16).max(1024),
                        "proptest {}: too many rejected cases",
                        stringify!($name),
                    );
                    let mut rng =
                        $crate::test_runner::TestRng::new(seed ^ (u64::from(attempts) << 32));
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest {} failed at case {} (attempt {}): {}",
                            stringify!($name),
                            passed,
                            attempts,
                            msg,
                        ),
                    }
                }
            }
        )*
    };
}
