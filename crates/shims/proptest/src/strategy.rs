//! The [`Strategy`] trait and combinators (ranges, tuples, `Just`,
//! `prop_map`, boxing, unions).

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
