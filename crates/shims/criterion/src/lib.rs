//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_custom`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It runs a short warm-up plus a fixed, small number of timed
//! iterations and prints mean per-iteration time — enough to compare
//! configurations in CI without a statistics engine. Sample counts are
//! intentionally modest so `cargo bench` stays fast on small machines;
//! `sample_size`/`measurement_time` are accepted and used as hints.

use std::time::{Duration, Instant};

/// Timed-iteration driver handed to each bench closure.
pub struct Bencher {
    iters: u64,
    /// Total measured time, read by the harness after the closure runs.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = t0.elapsed();
    }

    /// Hand full timing control to the closure: `f` receives the
    /// iteration count and returns the elapsed time for all of them.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Hint: how many samples criterion-proper would collect. The shim
    /// derives its (small) iteration count from this.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Hint: target measurement window (accepted, unused by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Hint: warm-up window (accepted, unused by the shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finish the group (pairs with `benchmark_group`).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), 10, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Keep runs short: benches here are smoke/comparison tools, not a
    // statistics pipeline.
    let iters = (sample_size as u64).clamp(1, 10);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iters as u32).unwrap_or_default();
    println!("bench {label}: {per_iter:?}/iter ({iters} iters)");
}

/// Define a benchmark group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from a list of group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Opaque-to-the-optimizer value laundering (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
