//! # adelie-bench — benchmark harness shared helpers
//!
//! The Criterion benches (`benches/`) time the paper's workloads; the
//! figure binaries (`src/bin/fig*.rs`, `table2_chains`, `scalability`,
//! `security_analysis`) regenerate each table and figure of the
//! evaluation section as text tables, recorded in EXPERIMENTS.md.

use adelie_workloads::Measurement;
use std::time::Duration;

/// Measurement window for figure binaries; override with
/// `ADELIE_SECS=<float>` (default 0.5 s per data point).
pub fn point_duration() -> Duration {
    let secs: f64 = std::env::var("ADELIE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    Duration::from_secs_f64(secs)
}

/// Concurrency scale for the macro workloads; override with
/// `ADELIE_CONC` (default 8 — the interpreter is ~100× slower than
/// silicon, so the paper's 25–100 clients are scaled down; shapes, not
/// absolutes, carry over).
pub fn concurrency_levels() -> Vec<usize> {
    if let Ok(v) = std::env::var("ADELIE_CONC") {
        if let Ok(n) = v.parse::<usize>() {
            return vec![n];
        }
    }
    vec![2, 4, 8]
}

/// A formatted figure row.
pub fn print_row(label: &str, m: &Measurement, unit: Unit) {
    let value = match unit {
        Unit::OpsPerSec => format!("{:>12.0} ops/s", m.ops_per_sec()),
        Unit::MopsPerSec => format!("{:>12.3} Mops/s", m.ops_per_sec() / 1e6),
        Unit::MbPerSec => format!("{:>12.2} MB/s", m.mb_per_sec()),
        Unit::Seconds => format!("{:>12.3} s", m.wall.as_secs_f64()),
    };
    println!("{label:<44} {value}   cpu {:>5.1}%", m.cpu_percent());
}

/// Throughput unit for a row.
#[derive(Copy, Clone, Debug)]
pub enum Unit {
    /// Operations per second.
    OpsPerSec,
    /// Millions of operations per second (Fig. 9).
    MopsPerSec,
    /// Megabytes per second (Fig. 8).
    MbPerSec,
    /// Elapsed seconds (Fig. 5d).
    Seconds,
}

/// Print a figure header.
pub fn print_header(figure: &str, caption: &str) {
    println!("\n=== {figure}: {caption} ===");
}

/// Relative delta of `new` vs `base` in percent (positive = slower /
/// fewer ops).
pub fn overhead_pct(base: f64, new: f64) -> f64 {
    (base - new) / base * 100.0
}
