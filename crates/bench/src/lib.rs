//! # adelie-bench — benchmark harness shared helpers
//!
//! The Criterion benches (`benches/`) time the paper's workloads; the
//! figure binaries (`src/bin/fig*.rs`, `table2_chains`, `scalability`,
//! `security_analysis`) regenerate each table and figure of the
//! evaluation section as text tables, recorded in EXPERIMENTS.md.

use adelie_workloads::Measurement;
use std::time::Duration;

/// Measurement window for figure binaries; override with
/// `ADELIE_SECS=<float>` (default 0.5 s per data point).
pub fn point_duration() -> Duration {
    let secs: f64 = std::env::var("ADELIE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    Duration::from_secs_f64(secs)
}

/// Concurrency scale for the macro workloads; override with
/// `ADELIE_CONC` (default 8 — the interpreter is ~100× slower than
/// silicon, so the paper's 25–100 clients are scaled down; shapes, not
/// absolutes, carry over).
pub fn concurrency_levels() -> Vec<usize> {
    if let Ok(v) = std::env::var("ADELIE_CONC") {
        if let Ok(n) = v.parse::<usize>() {
            return vec![n];
        }
    }
    vec![2, 4, 8]
}

/// A formatted figure row.
pub fn print_row(label: &str, m: &Measurement, unit: Unit) {
    let value = match unit {
        Unit::OpsPerSec => format!("{:>12.0} ops/s", m.ops_per_sec()),
        Unit::MopsPerSec => format!("{:>12.3} Mops/s", m.ops_per_sec() / 1e6),
        Unit::MbPerSec => format!("{:>12.2} MB/s", m.mb_per_sec()),
        Unit::Seconds => format!("{:>12.3} s", m.wall.as_secs_f64()),
    };
    println!("{label:<44} {value}   cpu {:>5.1}%", m.cpu_percent());
}

/// Throughput unit for a row.
#[derive(Copy, Clone, Debug)]
pub enum Unit {
    /// Operations per second.
    OpsPerSec,
    /// Millions of operations per second (Fig. 9).
    MopsPerSec,
    /// Megabytes per second (Fig. 8).
    MbPerSec,
    /// Elapsed seconds (Fig. 5d).
    Seconds,
}

/// Print a figure header.
pub fn print_header(figure: &str, caption: &str) {
    println!("\n=== {figure}: {caption} ===");
}

/// Relative delta of `new` vs `base` in percent (positive = slower /
/// fewer ops).
pub fn overhead_pct(base: f64, new: f64) -> f64 {
    (base - new) / base * 100.0
}

/// Shared read-contention harness: `readers` simulated CPUs hammer a
/// module fleet's exports while a writer thread re-randomizes the
/// whole fleet back-to-back for the window. Used by both the
/// `translate_throughput` bin (which attaches a `LayoutOracle` and
/// asserts) and `rerand_ablation`'s contention axis (which prints the
/// comparison), so the two stay in lockstep.
pub mod contention {
    use adelie_core::{rerandomize_module, LoadedModule, ModuleRegistry};
    use adelie_isa::{AluOp, Insn, Reg};
    use adelie_kernel::Kernel;
    use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Argument the reader threads pass to every export.
    pub const CALC_ARG: u64 = 16;
    /// Expected return (`modN_calc(x) = x + 1`); anything else counts
    /// as a reader error.
    pub const CALC_RET: u64 = CALC_ARG + 1;

    /// What one contention window produced.
    #[derive(Clone, Copy, Debug)]
    pub struct Outcome {
        /// Total reader calls completed across all reader threads.
        pub calls: u64,
        /// Re-randomization cycles the writer completed meanwhile.
        pub cycles: u64,
        /// Cycles that failed (0 in a healthy run).
        pub failed_cycles: u64,
        /// Reader calls that faulted or returned the wrong value.
        pub reader_errors: u64,
        /// Reader threads actually spawned — consumers must report this
        /// next to whatever count they *asked* for, so a constrained
        /// host can never mislabel a 1-reader run as a 4-reader row.
        pub readers_spawned: usize,
        /// Kernel-wide TLB counter delta over the window (hits, misses,
        /// micro-TLB hits, flushes) summed across the reader CPUs.
        pub tlb: adelie_kernel::TlbStats,
    }

    /// Load `count` re-randomizable one-export modules
    /// (`mod{i}_calc(x) = x + 1`) — the fleet both consumers hammer.
    pub fn fleet(registry: &Arc<ModuleRegistry>, count: usize) -> Vec<Arc<LoadedModule>> {
        let opts = TransformOptions::rerandomizable(true);
        (0..count)
            .map(|i| {
                let mut spec = ModuleSpec::new(&format!("mod{i}"));
                spec.funcs.push(FuncSpec::exported(
                    &format!("mod{i}_calc"),
                    vec![
                        MOp::Insn(Insn::MovRR {
                            dst: Reg::Rax,
                            src: Reg::Rdi,
                        }),
                        MOp::Insn(Insn::AluImm {
                            op: AluOp::Add,
                            dst: Reg::Rax,
                            imm: 1,
                        }),
                        MOp::Ret,
                    ],
                ));
                let obj = transform(&spec, &opts).unwrap();
                registry.load(&obj, &opts).unwrap()
            })
            .collect()
    }

    /// Run one window: a nonstop re-randomization writer vs `readers`
    /// interpreter CPUs calling every export of `modules` in a loop.
    pub fn run(
        kernel: &Arc<Kernel>,
        registry: &Arc<ModuleRegistry>,
        modules: &[Arc<LoadedModule>],
        readers: usize,
        window: Duration,
    ) -> Outcome {
        run_window(kernel, registry, modules, readers, window, true)
    }

    /// Run one window of **steady** traffic: the same reader loop with
    /// no re-randomization writer, so generations stand still. This is
    /// the regime the micro-TLB hit-rate assertion measures — under
    /// steady ioctl-style traffic the hot path should be almost
    /// entirely micro-TLB hits.
    pub fn run_steady(
        kernel: &Arc<Kernel>,
        registry: &Arc<ModuleRegistry>,
        modules: &[Arc<LoadedModule>],
        readers: usize,
        window: Duration,
    ) -> Outcome {
        run_window(kernel, registry, modules, readers, window, false)
    }

    fn run_window(
        kernel: &Arc<Kernel>,
        registry: &Arc<ModuleRegistry>,
        modules: &[Arc<LoadedModule>],
        readers: usize,
        window: Duration,
        with_writer: bool,
    ) -> Outcome {
        let entries: Vec<u64> = modules
            .iter()
            .enumerate()
            .map(|(i, m)| m.export(&format!("mod{i}_calc")).unwrap())
            .collect();
        let stop = AtomicBool::new(false);
        let calls = AtomicU64::new(0);
        let reader_errors = AtomicU64::new(0);
        let cycles = AtomicU64::new(0);
        let failed = AtomicU64::new(0);
        let tlb_before = kernel.tlb_totals();
        std::thread::scope(|s| {
            if with_writer {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        for m in modules {
                            match rerandomize_module(kernel, registry, m) {
                                Ok(_) => cycles.fetch_add(1, Ordering::Relaxed),
                                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                    }
                });
            }
            for _ in 0..readers {
                s.spawn(|| {
                    let mut vm = kernel.vm();
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for &e in &entries {
                            match vm.call(e, &[CALC_ARG]) {
                                Ok(CALC_RET) => done += 1,
                                _ => {
                                    reader_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    calls.fetch_add(done, Ordering::Relaxed);
                });
            }
            std::thread::sleep(window);
            stop.store(true, Ordering::Relaxed);
        });
        Outcome {
            calls: calls.load(Ordering::Relaxed),
            cycles: cycles.load(Ordering::Relaxed),
            failed_cycles: failed.load(Ordering::Relaxed),
            reader_errors: reader_errors.load(Ordering::Relaxed),
            readers_spawned: readers,
            tlb: kernel.tlb_totals().delta_since(&tlb_before),
        }
    }
}
