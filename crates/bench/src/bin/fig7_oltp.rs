//! Fig. 7 — mySQL/OLTP transactions per second and CPU usage vs
//! concurrency, with E1000E + NVMe re-randomizing at 1/5 ms.

use adelie_bench::{concurrency_levels, point_duration, print_header, print_row, Unit};
use adelie_plugin::TransformOptions;
use adelie_workloads::{run_oltp, DriverSet, Testbed};
use std::time::Duration;

fn main() {
    print_header("Fig. 7", "OLTP transactions/s and CPU vs concurrency");
    let dur = point_duration();
    for conc in concurrency_levels() {
        println!("\nconcurrency {conc}:");
        let tb = Testbed::new(TransformOptions::vanilla(true), DriverSet::full());
        let m = run_oltp(&tb, conc, 2, dur);
        print_row("  linux", &m, Unit::OpsPerSec);
        for period_ms in [5u64, 1] {
            let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full());
            let rr = tb.start_rerand(Duration::from_millis(period_ms));
            let m = run_oltp(&tb, conc, 2, dur);
            rr.stop();
            print_row(&format!("  adelie {period_ms} ms"), &m, Unit::OpsPerSec);
        }
    }
    println!("\npaper shape: identical txn rate; <2% CPU increase before saturation");
}
