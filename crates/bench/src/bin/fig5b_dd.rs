//! Fig. 5b — the `dd` cached-read microbenchmark across the four
//! {vanilla, PIC} × {retpoline, no-retpoline} configurations.

use adelie_bench::{point_duration, print_header, print_row, Unit};
use adelie_workloads::{pic_matrix, run_dd, DriverSet, Testbed};

fn main() {
    print_header("Fig. 5b", "dd cached reads, PIC vs non-PIC modules");
    let dur = point_duration();
    for bs in [4 * 1024, 64 * 1024, 1024 * 1024] {
        println!("\nblock size {} KB:", bs / 1024);
        let mut base = None;
        for (label, opts) in pic_matrix() {
            let tb = Testbed::new(opts, DriverSet::storage());
            let m = run_dd(&tb, bs, dur);
            print_row(&format!("  {label}"), &m, Unit::MbPerSec);
            match base {
                None => base = Some(m.mb_per_sec()),
                Some(b) => {
                    let d = adelie_bench::overhead_pct(b, m.mb_per_sec());
                    if label == "pic+retpoline" {
                        println!("    → overhead vs plain linux: {d:.1}%");
                    }
                }
            }
        }
    }
    println!(
        "\npaper shape: PIC ≈ non-PIC without retpoline; small hit with retpoline (PLT stubs)"
    );
}
