//! Fig. 5a — module memory footprint: PIC vs non-PIC.
//!
//! The paper samples 16 named Ubuntu modules (4–100 KB). We generate
//! synthetic stand-ins with matching names and size classes through the
//! same plugin pipeline, load each under both code models, and report
//! the loaded footprint ("the overhead is negligible for all modules").

use adelie_bench::print_header;
use adelie_core::ModuleRegistry;
use adelie_gadget::synth_module;
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, TransformOptions};

/// The Fig. 5a module sample: (name, approximate non-PIC size in KB).
const MODULES: [(&str, usize); 16] = [
    ("sysimgblt", 4),
    ("dca", 6),
    ("async_memcpy", 6),
    ("iscsi_tcp", 12),
    ("acpi_power_meter", 12),
    ("intel_cstate", 14),
    ("ipmi_devintf", 14),
    ("wmi", 18),
    ("x_tables", 26),
    ("iw_cm", 30),
    ("ioatdma", 40),
    ("libiscsi", 44),
    ("snd_hda_core", 52),
    ("snd_pcm", 76),
    ("raid6_pq", 90),
    ("snd_hda_codec", 100),
];

fn main() {
    print_header("Fig. 5a", "module size, Linux (non-PIC) vs PIC");
    // The paper's metric is the module's byte footprint: section payload
    // plus (for PIC) GOT/PLT bytes. Page-rounded mapped size is shown
    // separately — our loader gives GOTs dedicated pages so they can be
    // remapped/sealed independently, which taxes small modules by a page.
    println!(
        "{:<18} {:>9} {:>9} {:>7}  {:>9} {:>6} {:>6} {:>5}",
        "module", "linux KB", "pic KB", "delta%", "mapped KB", "lGOT", "fGOT", "PLT"
    );
    let mut worst: f64 = 0.0;
    for (i, (name, kb)) in MODULES.iter().enumerate() {
        let spec = synth_module(name, kb * 1024, 0xF15A + i as u64);
        let mut bytes_row = Vec::new();
        let mut stats_pic = None;
        for opts in [
            TransformOptions::vanilla(false),
            TransformOptions::pic(true),
        ] {
            let kernel = Kernel::new(KernelConfig::default());
            let registry = ModuleRegistry::new(&kernel);
            let obj = transform(&spec, &opts).expect("transform");
            let module = registry.load(&obj, &opts).expect("load");
            bytes_row
                .push((module.stats.payload_bytes + module.stats.got_plt_bytes) as f64 / 1024.0);
            if opts.model == adelie_plugin::CodeModel::Pic {
                stats_pic = Some(module.stats);
            }
        }
        let delta = (bytes_row[1] - bytes_row[0]) / bytes_row[0] * 100.0;
        worst = worst.max(delta);
        let s = stats_pic.unwrap();
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>6.1}%  {:>9.1} {:>6} {:>6} {:>5}",
            name,
            bytes_row[0],
            bytes_row[1],
            delta,
            s.mapped_bytes as f64 / 1024.0,
            s.local_got_entries,
            s.fixed_got_entries,
            s.plt_stubs
        );
    }
    println!("\nworst-case PIC byte-footprint growth: {worst:.1}% (paper: \"negligible for all modules\")");
}
