//! Fig. 10 — ROP gadget distribution: kernel vs non-PIC modules vs PIC
//! modules, classified by instruction type.

use adelie_bench::print_header;
use adelie_core::ModuleRegistry;
use adelie_gadget::{classify::histogram, generate_corpus, scan, synth_kernel_text, GadgetClass};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::TransformOptions;
use adelie_vmem::PAGE_SIZE;

/// Scan the *loaded* image (relocations applied, PLT stubs emitted) —
/// what Ropper sees on a live system.
fn loaded_gadget_scan(
    obj: &adelie_obj::ObjectFile,
    opts: &TransformOptions,
) -> Vec<adelie_gadget::Gadget> {
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let module = registry.load(obj, opts).expect("load corpus module");
    let base = module
        .movable_base
        .load(std::sync::atomic::Ordering::Relaxed);
    let text_pages = module.movable.groups[0].pages;
    let mut text = vec![0u8; text_pages * PAGE_SIZE];
    kernel
        .space
        .read_bytes(&kernel.phys, base, &mut text)
        .expect("read text");
    scan(&text)
}

fn main() {
    print_header(
        "Fig. 10",
        "ROP gadget distribution (Ropper-style scan of loaded text)",
    );
    let modules: usize = std::env::var("ADELIE_CORPUS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    // The corpus stands in for Ubuntu's ~5,300 modules (DESIGN.md).
    let corpus = generate_corpus(modules, 4 * 1024, 64 * 1024, 0xF16);
    let kernel_text = synth_kernel_text(512 * 1024, 0xCAFE);

    let kernel_gadgets = scan(&kernel_text);
    let mut vanilla_all = Vec::new();
    let mut pic_all = Vec::new();
    for m in &corpus {
        vanilla_all.extend(loaded_gadget_scan(
            &m.vanilla,
            &TransformOptions::vanilla(false),
        ));
        pic_all.extend(loaded_gadget_scan(&m.pic, &TransformOptions::pic(true)));
    }
    let hk = histogram(&kernel_gadgets);
    let hv = histogram(&vanilla_all);
    let hp = histogram(&pic_all);
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "class", "kernel", "linux modules", "PIC modules"
    );
    for class in GadgetClass::ALL {
        println!(
            "{:<12} {:>10} {:>14} {:>12}",
            class.label(),
            hk.get(&class).copied().unwrap_or(0),
            hv.get(&class).copied().unwrap_or(0),
            hp.get(&class).copied().unwrap_or(0)
        );
    }
    let (k, v, p) = (kernel_gadgets.len(), vanilla_all.len(), pic_all.len());
    println!("{:<12} {:>10} {:>14} {:>12}", "total", k, v, p);
    let frac_kernel = k as f64 / (k + v) as f64 * 100.0;
    println!("\nkernel fraction of all (kernel + module) gadgets: {frac_kernel:.0}% (paper: ~15%)");
    println!(
        "PIC vs non-PIC module gadgets: {:+.1}% (paper: \"does increase…a good trade-off\")",
        (p as f64 - v as f64) / v as f64 * 100.0
    );
}
