//! The million-module-catalog benchmark: ops/sec and p99 call latency
//! vs shard count under heavy-tailed (Zipf) skew, static tenant-pinned
//! placement vs the load-driven autoscaler — emitted as
//! `BENCH_fleet_scale.json` (the CI artifact) plus a console table.
//!
//! The setup is the regime the cold tier and the autoscaler exist for:
//! 10^5 modules *registered* (catalog-only — nothing materializes at
//! registration), a Zipf(1.1) call stream whose hot set the seeded
//! permutation scatters across tenants, and a resident cap two orders
//! of magnitude below the catalog. Static placement pins tenants onto
//! half the booted shards; the autoscaled run starts from the *same*
//! placement and active set, then splits hot shards onto the parked
//! half via live-migration batches under admission control.
//!
//! Latency is modeled deterministically (M/D/1-style per-shard
//! `busy_until`, constant service time, a fixed penalty per cold
//! fault-in) on top of *real* machinery: every call demand-faults /
//! executes its module for real, evictions really unmap, and per-shard
//! [`LayoutOracle`]s audit evicted spans, stale translations, and GOT
//! integrity throughout. Assertions per seed:
//!
//! * autoscaled ops/sec ≥ static, autoscaled p99 ≤ static p99,
//! * residents ≤ cap after every cold tick, at 10^5 registered,
//! * zero oracle/layout/symbol violations in every configuration,
//! * the autoscaled run replays byte-identically (decision log, final
//!   catalog, latency profile) when run twice from the same seed.

use adelie_core::{AdmissionConfig, ColdTierConfig, Fleet, Pinned};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{FleetConfig, KernelConfig, ShardedKernel};
use adelie_obj::ObjectFile;
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{AutoscaleConfig, Autoscaler, ScaleDecision, SimClock};
use adelie_testkit::{LayoutOracle, Workload, WorkloadConfig};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
/// Catalog size: the 10^5-registered acceptance point.
const CATALOG: usize = 100_000;
const TENANTS: usize = 32;
const THETA: f64 = 1.1;
/// Booted shards; static placement only ever uses the first half.
const SHARDS: usize = 8;
const STATIC_SHARDS: usize = 4;
/// Hot working set the fleet may keep resident — ~0.5% of the catalog.
const MAX_RESIDENT: usize = 512;
const CALLS: usize = 12_000;
/// Deterministic open-loop arrivals: one call every 420 ns puts ~1.19
/// erlangs on 4 shards (static placement saturates) and ~0.59 on 8
/// (the autoscaled fleet has headroom once it spreads out).
const INTERARRIVAL_NS: u64 = 420;
const SERVICE_NS: u64 = 2_000;
/// Modeled cost of a cold fault-in on the call that triggers it.
const FAULT_PENALTY_NS: u64 = 25_000;
/// Cold-tick + autoscaler-eval cadence on the virtual clock.
const TICK_NS: u64 = 500_000;

/// A tiny driver: `{name}_calc(x) = x + 9`. Kept minimal so 10^5 of
/// them transform in seconds and the catalog stays cheap to clone.
fn tiny_spec(name: &str) -> ModuleSpec {
    let mut s = ModuleSpec::new(name);
    s.funcs.push(FuncSpec::exported(
        &format!("{name}_calc"),
        vec![
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            MOp::Insn(Insn::AluImm {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 9,
            }),
            MOp::Ret,
        ],
    ));
    s
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

struct Outcome {
    seed: u64,
    mode: &'static str,
    fault_ins: u64,
    evictions: u64,
    splits: u64,
    merges: u64,
    moves: u64,
    active_end: usize,
    resident_end: u64,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    violations: u64,
    /// FNV-1a over the decision log + final catalog + latency profile —
    /// the determinism fingerprint compared across replayed runs.
    digest: u64,
}

fn run(seed: u64, autoscale: bool, objs: &[ObjectFile], opts: &TransformOptions) -> Outcome {
    let wl_cfg = WorkloadConfig {
        modules: CATALOG,
        tenants: TENANTS,
        theta: THETA,
        seed,
    };
    let mut wl = Workload::new(wl_cfg);
    let pins: HashMap<String, usize> = (0..CATALOG)
        .map(|i| (wl.names()[i].clone(), wl.tenant(i) % STATIC_SHARDS))
        .collect();
    let sharded = ShardedKernel::new(FleetConfig {
        shards: SHARDS,
        base: KernelConfig {
            seed,
            ..KernelConfig::default()
        },
    });
    let fleet = Fleet::with_admission(
        sharded,
        Box::new(Pinned::new(pins, 0)),
        AdmissionConfig {
            max_modules_per_shard: 200_000,
            ..AdmissionConfig::default()
        },
    );
    fleet.enable_cold_tier(ColdTierConfig {
        idle_ns: 50_000_000,
        max_resident: MAX_RESIDENT,
    });
    for obj in objs {
        fleet.register(obj, opts).expect("register");
    }
    let oracles: Vec<Arc<LayoutOracle>> = (0..SHARDS)
        .map(|i| {
            let oracle = LayoutOracle::new(fleet.kernel(i).clone(), SimClock::new());
            fleet.registry(i).set_cycle_hooks(oracle.clone());
            oracle
        })
        .collect();
    let kernels: Vec<_> = (0..SHARDS).map(|s| fleet.kernel(s).clone()).collect();
    let mut vms: Vec<_> = kernels.iter().map(|k| k.vm()).collect();
    let mut scaler = autoscale.then(|| {
        Autoscaler::new(
            SHARDS,
            STATIC_SHARDS,
            AutoscaleConfig {
                eval_every_ns: TICK_NS,
                ..AutoscaleConfig::default()
            },
        )
    });

    // The modeled queue: per-shard busy-until horizon on the arrival
    // clock. `tracked` maps a sampled evicted module to the shard whose
    // oracle is watching its vacated spans.
    let mut busy = [0u64; SHARDS];
    let mut latencies: Vec<u64> = Vec::with_capacity(CALLS);
    let mut tracked: HashMap<String, usize> = HashMap::new();
    let mut now_ns = 0u64;
    let mut next_tick = TICK_NS;
    let (mut splits, mut merges, mut moves) = (0u64, 0u64, 0u64);
    for _ in 0..CALLS {
        now_ns += INTERARRIVAL_NS;
        while now_ns >= next_tick {
            for name in fleet.cold_tick(next_tick) {
                let shard = fleet.shard_of(&name).expect("evicted stays cataloged");
                if tracked.len() < 64 {
                    let spans = fleet.evicted_spans(&name).unwrap_or_default();
                    oracles[shard].module_evicted(&name, &spans);
                    tracked.insert(name, shard);
                }
            }
            let st = fleet.cold_stats();
            assert!(
                st.resident as u64 <= MAX_RESIDENT as u64,
                "seed {seed}: {} resident after a cold tick (cap {MAX_RESIDENT}, \
                 {CATALOG} registered)",
                st.resident
            );
            if let Some(sc) = scaler.as_mut() {
                for d in sc.tick(&fleet, next_tick) {
                    match d {
                        ScaleDecision::Split { moved, .. } => {
                            splits += 1;
                            moves += moved.len() as u64;
                        }
                        ScaleDecision::Merge { moved, .. } => {
                            merges += 1;
                            moves += moved.len() as u64;
                        }
                    }
                }
            }
            next_tick += TICK_NS;
        }
        let target = wl.next_index();
        let name = wl.names()[target].clone();
        let owner = fleet.shard_of(&name).expect("registered");
        let was_cold = fleet.registry(owner).get(&name).is_none();
        let (shard, module) = fleet.ensure_resident(&name).expect("fault-in");
        if was_cold {
            if let Some(oracle_shard) = tracked.remove(&name) {
                oracles[oracle_shard].module_faulted_in(&name);
            }
        }
        let entry = module.export(&format!("{name}_calc")).expect("export");
        assert_eq!(
            vms[shard].call(entry, &[33]).expect("call"),
            42,
            "{name} on shard {shard}"
        );
        let start = busy[shard].max(now_ns);
        let done = start + SERVICE_NS + if was_cold { FAULT_PENALTY_NS } else { 0 };
        busy[shard] = done;
        latencies.push(done - now_ns);
    }

    // Wind down: fault the still-watched evictees back in so their
    // spans stop being asserted-unmapped (the allocator may have reused
    // them for later fault-ins), then run every verifier.
    for (name, oracle_shard) in tracked.drain() {
        fleet.ensure_resident(&name).expect("fault-in at drain");
        oracles[oracle_shard].module_faulted_in(&name);
    }
    let mut violations = 0u64;
    for (i, oracle) in oracles.iter().enumerate() {
        let report = oracle.verify_quiesced(fleet.registry(i), None, 0);
        for v in &report.violations {
            eprintln!("oracle violation [seed {seed}/shard {i}]: {v}");
        }
        violations += report.violations.len() as u64;
    }
    for v in fleet.verify_layout() {
        eprintln!("layout violation [seed {seed}]: {v}");
        violations += 1;
    }
    for v in fleet.verify_symbol_integrity() {
        eprintln!("symbol integrity [seed {seed}]: {v}");
        violations += 1;
    }

    let makespan_ns = busy.iter().copied().max().unwrap_or(1).max(1);
    latencies.sort_unstable();
    let p50_ns = latencies[latencies.len() / 2];
    let p99_ns = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    let st = fleet.cold_stats();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    if let Some(sc) = &scaler {
        fnv1a(&mut digest, format!("{:?}", sc.decisions()).as_bytes());
    }
    for (name, shard) in fleet.modules() {
        fnv1a(&mut digest, name.as_bytes());
        fnv1a(&mut digest, &(shard as u64).to_le_bytes());
    }
    for l in &latencies {
        fnv1a(&mut digest, &l.to_le_bytes());
    }
    Outcome {
        seed,
        mode: if autoscale { "autoscaled" } else { "static" },
        fault_ins: st.fault_ins,
        evictions: st.evictions,
        splits,
        merges,
        moves,
        active_end: scaler.as_ref().map_or(STATIC_SHARDS, |s| s.active_count()),
        resident_end: st.resident as u64,
        ops_per_sec: CALLS as f64 / (makespan_ns as f64 / 1e9),
        p50_ns,
        p99_ns,
        violations,
        digest,
    }
}

fn outcome_json(o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {}, \"mode\": \"{}\", \"registered\": {CATALOG}, \
         \"resident_cap\": {MAX_RESIDENT}, \"active_end\": {}, \"resident_end\": {}, \
         \"fault_ins\": {}, \"evictions\": {}, \"splits\": {}, \"merges\": {}, \
         \"moves\": {}, \"ops_per_sec\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"oracle_violations\": {}, \"digest\": \"{:016x}\"}}",
        o.seed,
        o.mode,
        o.active_end,
        o.resident_end,
        o.fault_ins,
        o.evictions,
        o.splits,
        o.merges,
        o.moves,
        o.ops_per_sec,
        o.p50_ns,
        o.p99_ns,
        o.violations,
        o.digest,
    );
    s
}

fn main() {
    println!(
        "=== fleet scale: {CATALOG} registered, cap {MAX_RESIDENT} resident, \
         Zipf({THETA}) over {TENANTS} tenants, {STATIC_SHARDS}->{SHARDS} shards ==="
    );
    let t0 = Instant::now();
    let opts = TransformOptions::rerandomizable(true);
    // Transform the whole catalog once; every run re-registers the same
    // objects into a fresh fleet.
    let wl = Workload::new(WorkloadConfig {
        modules: CATALOG,
        tenants: TENANTS,
        theta: THETA,
        seed: SEEDS[0],
    });
    let objs: Vec<ObjectFile> = wl
        .names()
        .iter()
        .map(|n| transform(&tiny_spec(n), &opts).expect("transform"))
        .collect();
    println!("transformed {CATALOG} objects in {:?}", t0.elapsed());
    println!(
        "{:<10} {:<11} {:>7} {:>9} {:>7} {:>13} {:>10} {:>10} {:>5}",
        "seed", "mode", "active", "fault-ins", "moves", "ops/s", "p50", "p99", "viol"
    );
    let mut rows = Vec::new();
    for seed in SEEDS {
        let mut outcomes = Vec::new();
        for (autoscale, replay) in [(false, false), (true, false), (true, true)] {
            let o = run(seed, autoscale, &objs, &opts);
            println!(
                "{:<10} {:<11} {:>7} {:>9} {:>7} {:>13.0} {:>9}n {:>9}n {:>5}",
                o.seed,
                if replay { "auto/replay" } else { o.mode },
                o.active_end,
                o.fault_ins,
                o.moves,
                o.ops_per_sec,
                o.p50_ns,
                o.p99_ns,
                o.violations
            );
            assert_eq!(o.violations, 0, "seed {seed}/{}: violations", o.mode);
            if !replay {
                rows.push(outcome_json(&o));
            }
            outcomes.push(o);
        }
        let (stat, auto, replay) = (&outcomes[0], &outcomes[1], &outcomes[2]);
        // Determinism: same seed, same decisions, same catalog, same
        // latency profile — byte-identical replay.
        assert_eq!(
            auto.digest, replay.digest,
            "seed {seed}: autoscaled run did not replay deterministically"
        );
        assert_eq!(auto.p99_ns, replay.p99_ns);
        // The autoscaler must pay for itself: never worse than the
        // static pinning it started from, on both axes.
        assert!(
            auto.ops_per_sec >= stat.ops_per_sec * 0.999,
            "seed {seed}: autoscaled {:.0} ops/s < static {:.0}",
            auto.ops_per_sec,
            stat.ops_per_sec
        );
        assert!(
            auto.p99_ns <= stat.p99_ns,
            "seed {seed}: autoscaled p99 {}ns > static {}ns",
            auto.p99_ns,
            stat.p99_ns
        );
        println!(
            "  seed {seed}: autoscaled {:.2}x ops, p99 {}ns vs {}ns \
             ({} splits, {} moves, replay ok)",
            auto.ops_per_sec / stat.ops_per_sec.max(1.0),
            auto.p99_ns,
            stat.p99_ns,
            auto.splits,
            auto.moves
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"fleet_scale\",\n  \"registered\": {CATALOG},\n  \
         \"tenants\": {TENANTS},\n  \"theta\": {THETA},\n  \"shards\": {SHARDS},\n  \
         \"static_shards\": {STATIC_SHARDS},\n  \"resident_cap\": {MAX_RESIDENT},\n  \
         \"calls\": {CALLS},\n  \"interarrival_ns\": {INTERARRIVAL_NS},\n  \
         \"service_ns\": {SERVICE_NS},\n  \"fault_penalty_ns\": {FAULT_PENALTY_NS},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_fleet_scale.json", &json).expect("write BENCH_fleet_scale.json");
    println!(
        "wrote BENCH_fleet_scale.json ({} rows) in {:?}",
        rows.len(),
        t0.elapsed()
    );
}
