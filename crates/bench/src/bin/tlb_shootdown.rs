//! The TLB-shootdown benchmark: whole-TLB vs range-based invalidation
//! under the 4-worker adaptive scheduler, on the deterministic stepped
//! harness, emitted as `BENCH_tlb_shootdown.json` (the CI artifact)
//! plus a console table.
//!
//! For each seed the identical fleet + traffic + step schedule runs
//! twice: once with the invalidation log disabled (`tlb_inval_log: 0`,
//! the legacy whole-TLB regime — the *unbatched* publication cost) and
//! once with range-based shootdown enabled. A seeded rank stream
//! explores worker-pool interleavings via `step_choice`, and a
//! [`LayoutOracle`] — including its stale-translation witness TLB —
//! checks every invariant across them.
//!
//! The run *asserts* the headline property — with batching enabled the
//! traffic CPU's full-flush count per cycle strictly drops and partial
//! flushes appear, with zero oracle violations — so a regression fails
//! CI rather than shifting a curve nobody reads.

use adelie_core::{LoadedModule, ModuleRegistry};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{Policy, SchedConfig, Scheduler, SimClock};
use adelie_testkit::LayoutOracle;
use adelie_vmem::TlbStats;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
const MODULES: usize = 4;
const STEPS: usize = 200;
const CALLS_PER_STEP: u64 = 3;

struct Outcome {
    label: &'static str,
    cycles: u64,
    tlb: TlbStats,
    space_shootdowns: u64,
    coalesced: u64,
    violations: usize,
}

impl Outcome {
    fn full_per_cycle(&self) -> f64 {
        self.tlb.flushes as f64 / self.cycles.max(1) as f64
    }
}

fn fleet(registry: &Arc<ModuleRegistry>) -> Vec<Arc<LoadedModule>> {
    let opts = TransformOptions::rerandomizable(true);
    (0..MODULES)
        .map(|i| {
            let mut spec = ModuleSpec::new(&format!("mod{i}"));
            spec.funcs.push(FuncSpec::exported(
                &format!("mod{i}_calc"),
                vec![
                    MOp::Insn(Insn::MovRR {
                        dst: Reg::Rax,
                        src: Reg::Rdi,
                    }),
                    MOp::Insn(Insn::AluImm {
                        op: AluOp::Add,
                        dst: Reg::Rax,
                        imm: 1,
                    }),
                    MOp::Ret,
                ],
            ));
            let obj = transform(&spec, &opts).unwrap();
            registry.load(&obj, &opts).unwrap()
        })
        .collect()
}

/// One deterministic run: same seed, same fleet, same step-and-traffic
/// schedule; only the shootdown regime differs.
fn run(label: &'static str, seed: u64, inval_log: usize) -> Outcome {
    let kernel = Kernel::new(KernelConfig {
        seed,
        tlb_inval_log: inval_log,
        ..KernelConfig::default()
    });
    let registry = ModuleRegistry::new(&kernel);
    let modules = fleet(&registry);
    let clock = SimClock::new();
    let oracle = LayoutOracle::new(kernel.clone(), clock.clone());
    registry.set_cycle_hooks(oracle.clone());
    let with_policies: Vec<(&str, Policy)> = modules
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let name: &str = Box::leak(format!("mod{i}").into_boxed_str());
            (name, Policy::default_adaptive())
        })
        .collect();
    let sched = Scheduler::spawn_stepped(
        kernel.clone(),
        registry.clone(),
        &with_policies,
        SchedConfig {
            workers: 4,
            policy: Policy::default_adaptive(),
            ..SchedConfig::default()
        },
        clock.clone(),
        Duration::from_micros(100),
    );
    let entries: Vec<u64> = modules
        .iter()
        .enumerate()
        .map(|(i, m)| m.export(&format!("mod{i}_calc")).unwrap())
        .collect();
    let mut vm = kernel.vm();
    // Seeded rank stream: explores the reorderings a real 4-worker
    // pool could produce, identically in both regimes.
    let mut rank = seed | 1;
    for _ in 0..STEPS {
        rank = rank
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sched
            .step_choice((rank >> 33) as usize)
            .expect("heap never empties");
        for &e in &entries {
            for _ in 0..CALLS_PER_STEP {
                assert_eq!(vm.call(e, &[16]).unwrap(), 17);
            }
        }
    }
    let cycles = sched.cycles();
    assert_eq!(sched.failures(), 0, "{label}: no cycle may fail");
    drop(sched);
    let report = oracle.verify_quiesced(&registry, None, 0);
    let stats = kernel.space.stats();
    Outcome {
        label,
        cycles,
        tlb: vm.tlb_stats(),
        space_shootdowns: stats.shootdowns,
        coalesced: stats.coalesced_shootdowns,
        violations: report.violations.len(),
    }
}

fn outcome_json(seed: u64, o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {seed}, \"mode\": \"{}\", \"cycles\": {}, \"full_flushes\": {}, \
         \"partial_flushes\": {}, \"entries_invalidated\": {}, \"tlb_hits\": {}, \
         \"tlb_misses\": {}, \"space_shootdowns\": {}, \"coalesced_shootdowns\": {}, \
         \"full_flushes_per_cycle\": {:.4}, \"oracle_violations\": {}}}",
        o.label,
        o.cycles,
        o.tlb.flushes,
        o.tlb.partial_flushes,
        o.tlb.entries_invalidated,
        o.tlb.hits,
        o.tlb.misses,
        o.space_shootdowns,
        o.coalesced,
        o.full_per_cycle(),
        o.violations,
    );
    s
}

fn main() {
    let mut rows = Vec::new();
    println!("=== tlb shootdown: whole-TLB vs range-based invalidation (4-worker adaptive) ===");
    println!(
        "{:<10} {:<7} {:>7} {:>12} {:>14} {:>12} {:>10} {:>10}",
        "seed",
        "mode",
        "cycles",
        "full-flush",
        "partial-flush",
        "invalidated",
        "full/cyc",
        "coalesced"
    );
    for seed in SEEDS {
        let full = run("full", seed, 0);
        let range = run("range", seed, adelie_vmem::DEFAULT_INVAL_LOG);
        for o in [&full, &range] {
            println!(
                "{:<10} {:<7} {:>7} {:>12} {:>14} {:>12} {:>10.3} {:>10}",
                seed,
                o.label,
                o.cycles,
                o.tlb.flushes,
                o.tlb.partial_flushes,
                o.tlb.entries_invalidated,
                o.full_per_cycle(),
                o.coalesced,
            );
            assert_eq!(
                o.violations, 0,
                "seed {seed}/{}: layout-oracle violations (incl. stale translations)",
                o.label
            );
            rows.push(outcome_json(seed, o));
        }
        // The acceptance property: batching + range invalidation must
        // strictly cut whole-TLB flushes per cycle, and the partial
        // path must actually be exercised.
        assert!(
            range.tlb.partial_flushes > 0,
            "seed {seed}: range regime never took the partial-flush path"
        );
        assert!(
            range.full_per_cycle() < full.full_per_cycle(),
            "seed {seed}: range regime must flush strictly less per cycle \
             ({:.3} vs {:.3})",
            range.full_per_cycle(),
            full.full_per_cycle(),
        );
        println!(
            "  seed {seed}: full-flushes/cycle {:.3} → {:.3} ({:.0}% fewer), \
             {} entries partially invalidated",
            full.full_per_cycle(),
            range.full_per_cycle(),
            (1.0 - range.full_per_cycle() / full.full_per_cycle().max(f64::MIN_POSITIVE)) * 100.0,
            range.tlb.entries_invalidated,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"tlb_shootdown\",\n  \"modules\": {MODULES},\n  \
         \"steps\": {STEPS},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_tlb_shootdown.json", &json).expect("write BENCH_tlb_shootdown.json");
    println!("wrote BENCH_tlb_shootdown.json ({} rows)", rows.len());
}
