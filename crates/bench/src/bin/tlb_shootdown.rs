//! The TLB-shootdown benchmark: whole-TLB vs range-based invalidation
//! under the 4-worker adaptive scheduler, on the deterministic stepped
//! harness, emitted as `BENCH_tlb_shootdown.json` (the CI artifact)
//! plus a console table.
//!
//! For each seed the identical fleet + traffic + step schedule runs
//! twice: once with the invalidation log disabled (`tlb_inval_log: 0`,
//! the legacy whole-TLB regime — the *unbatched* publication cost) and
//! once with range-based shootdown enabled. A seeded rank stream
//! explores worker-pool interleavings via `step_choice`, and a
//! [`LayoutOracle`] — including its stale-translation witness TLB —
//! checks every invariant across them.
//!
//! The run *asserts* the headline property — with batching enabled the
//! traffic CPU's full-flush count per cycle strictly drops and partial
//! flushes appear, with zero oracle violations — so a regression fails
//! CI rather than shifting a curve nobody reads.
//!
//! Two arch-aware extensions ride along (DESIGN.md §15):
//!
//! * every row is priced under **both** ISA backends' invalidation
//!   cost models (invlpg/invpcid-style vs sfence.vma-style), so the
//!   counter mix translates into comparable modeled cycles per arch;
//! * a **fleet-churn phase** bounces one roaming TLB across the spaces
//!   of a 4-shard [`ShardedKernel`], tagged vs flush-on-switch, and
//!   asserts the ASID win exactly: with tagging on, space-switch full
//!   flushes are *zero* under shard churn (vs ≥ 1 per switch for the
//!   ablation), and warm entries hit again on every return.

use adelie_core::{LoadedModule, ModuleRegistry};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{FleetConfig, Kernel, KernelConfig, ShardedKernel};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{Policy, SchedConfig, Scheduler, SimClock};
use adelie_testkit::LayoutOracle;
use adelie_vmem::{Access, ArchKind, PteFlags, Tlb, TlbStats};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
const MODULES: usize = 4;
const STEPS: usize = 200;
const CALLS_PER_STEP: u64 = 3;

struct Outcome {
    label: &'static str,
    cycles: u64,
    tlb: TlbStats,
    space_shootdowns: u64,
    coalesced: u64,
    violations: usize,
}

impl Outcome {
    fn full_per_cycle(&self) -> f64 {
        self.tlb.flushes as f64 / self.cycles.max(1) as f64
    }
}

/// Price a counter mix under both backends' invalidation cost models
/// — the per-arch columns of the JSON artifact.
fn modeled_costs(t: &TlbStats) -> (u64, u64) {
    (
        ArchKind::X86_64.cost_model().modeled_cycles(t),
        ArchKind::Riscv64Sv48.cost_model().modeled_cycles(t),
    )
}

fn fleet(registry: &Arc<ModuleRegistry>) -> Vec<Arc<LoadedModule>> {
    let opts = TransformOptions::rerandomizable(true);
    (0..MODULES)
        .map(|i| {
            let mut spec = ModuleSpec::new(&format!("mod{i}"));
            spec.funcs.push(FuncSpec::exported(
                &format!("mod{i}_calc"),
                vec![
                    MOp::Insn(Insn::MovRR {
                        dst: Reg::Rax,
                        src: Reg::Rdi,
                    }),
                    MOp::Insn(Insn::AluImm {
                        op: AluOp::Add,
                        dst: Reg::Rax,
                        imm: 1,
                    }),
                    MOp::Ret,
                ],
            ));
            let obj = transform(&spec, &opts).unwrap();
            registry.load(&obj, &opts).unwrap()
        })
        .collect()
}

/// One deterministic run: same seed, same fleet, same step-and-traffic
/// schedule; only the shootdown regime differs.
fn run(label: &'static str, seed: u64, inval_log: usize) -> Outcome {
    let kernel = Kernel::new(KernelConfig {
        seed,
        tlb_inval_log: inval_log,
        ..KernelConfig::default()
    });
    let registry = ModuleRegistry::new(&kernel);
    let modules = fleet(&registry);
    let clock = SimClock::new();
    let oracle = LayoutOracle::new(kernel.clone(), clock.clone());
    registry.set_cycle_hooks(oracle.clone());
    let with_policies: Vec<(&str, Policy)> = modules
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let name: &str = Box::leak(format!("mod{i}").into_boxed_str());
            (name, Policy::default_adaptive())
        })
        .collect();
    let sched = Scheduler::spawn_stepped(
        kernel.clone(),
        registry.clone(),
        &with_policies,
        SchedConfig {
            workers: 4,
            policy: Policy::default_adaptive(),
            ..SchedConfig::default()
        },
        clock.clone(),
        Duration::from_micros(100),
    );
    let entries: Vec<u64> = modules
        .iter()
        .enumerate()
        .map(|(i, m)| m.export(&format!("mod{i}_calc")).unwrap())
        .collect();
    let mut vm = kernel.vm();
    // Seeded rank stream: explores the reorderings a real 4-worker
    // pool could produce, identically in both regimes.
    let mut rank = seed | 1;
    for _ in 0..STEPS {
        rank = rank
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sched
            .step_choice((rank >> 33) as usize)
            .expect("heap never empties");
        for &e in &entries {
            for _ in 0..CALLS_PER_STEP {
                assert_eq!(vm.call(e, &[16]).unwrap(), 17);
            }
        }
    }
    let cycles = sched.cycles();
    assert_eq!(sched.failures(), 0, "{label}: no cycle may fail");
    drop(sched);
    let report = oracle.verify_quiesced(&registry, None, 0);
    let stats = kernel.space.stats();
    Outcome {
        label,
        cycles,
        tlb: vm.tlb_stats(),
        space_shootdowns: stats.shootdowns,
        coalesced: stats.coalesced_shootdowns,
        violations: report.violations.len(),
    }
}

fn outcome_json(seed: u64, o: &Outcome) -> String {
    let (cost_x86, cost_rv) = modeled_costs(&o.tlb);
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {seed}, \"mode\": \"{}\", \"cycles\": {}, \"full_flushes\": {}, \
         \"horizon_flushes\": {}, \"partial_flushes\": {}, \"entries_invalidated\": {}, \
         \"tlb_hits\": {}, \"tlb_misses\": {}, \"space_shootdowns\": {}, \
         \"coalesced_shootdowns\": {}, \"full_flushes_per_cycle\": {:.4}, \
         \"modeled_cycles_x86_64\": {cost_x86}, \"modeled_cycles_riscv64sv48\": {cost_rv}, \
         \"oracle_violations\": {}}}",
        o.label,
        o.cycles,
        o.tlb.flushes,
        o.tlb.horizon_flushes,
        o.tlb.partial_flushes,
        o.tlb.entries_invalidated,
        o.tlb.hits,
        o.tlb.misses,
        o.space_shootdowns,
        o.coalesced,
        o.full_per_cycle(),
        o.violations,
    );
    s
}

const CHURN_SHARDS: usize = 4;
const CHURN_ROUNDS: usize = 200;

/// The fleet-churn phase: one roaming per-CPU TLB serves spaces across
/// a 4-shard fleet round-robin — exactly what a worker thread bouncing
/// between tenant shards does. One probe page is mapped per shard;
/// every round looks it up in the next shard's space and refills on a
/// miss. With ASID tagging, only the first visit to each shard may
/// miss; every switch after that keeps warm tagged entries. The
/// ablation flushes per switch and never gets warm.
fn churn(label: &'static str, seed: u64, tagged: bool) -> TlbStats {
    let fleet = ShardedKernel::new(FleetConfig::seeded(CHURN_SHARDS, seed));
    let arch = fleet.shard(0).config.arch;
    let mut tlb = if tagged {
        Tlb::with_arch(arch)
    } else {
        Tlb::flush_on_switch(arch)
    };
    let vas: Vec<u64> = (0..CHURN_SHARDS)
        .map(|i| {
            let va = fleet.window(i).0;
            let k = fleet.shard(i);
            k.space.map(va, k.phys.alloc(), PteFlags::DATA).unwrap();
            va
        })
        .collect();
    for round in 0..CHURN_ROUNDS {
        let i = round % CHURN_SHARDS;
        let space = &fleet.shard(i).space;
        if tlb.lookup(vas[i], space).is_none() {
            let t = space.translate(vas[i], Access::Read).unwrap();
            tlb.insert(&t);
        }
    }
    let t = tlb.stats();
    assert!(
        t.switches as usize >= CHURN_ROUNDS - CHURN_SHARDS,
        "{label}: churn must actually switch spaces ({} switches)",
        t.switches
    );
    if tagged {
        // The acceptance property (ISSUE 8): zero space-switch full
        // flushes under fleet shard churn with tagging on — and the
        // warm entries must actually be serving (only the first visit
        // to each shard misses).
        assert_eq!(
            t.switch_flushes, 0,
            "{label}: a tagged switch must never flush"
        );
        assert_eq!(t.flushes, 0, "{label}: nothing else may flush either");
        assert_eq!(
            t.misses as usize, CHURN_SHARDS,
            "{label}: only first-visit misses are allowed"
        );
        assert_eq!(t.hits as usize, CHURN_ROUNDS - CHURN_SHARDS);
    } else {
        // The ablation pays ≥ 1 full flush per switch (PR 5's regime).
        assert!(
            t.switch_flushes >= t.switches,
            "{label}: flush-on-switch must flush every switch \
             ({} flushes vs {} switches)",
            t.switch_flushes,
            t.switches
        );
        assert_eq!(t.hits, 0, "{label}: the ablation can never stay warm");
    }
    t
}

fn churn_json(seed: u64, label: &str, t: &TlbStats) -> String {
    let (cost_x86, cost_rv) = modeled_costs(t);
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {seed}, \"mode\": \"{label}\", \"switches\": {}, \
         \"switch_flushes\": {}, \"full_flushes\": {}, \"tlb_hits\": {}, \
         \"tlb_misses\": {}, \"modeled_cycles_x86_64\": {cost_x86}, \
         \"modeled_cycles_riscv64sv48\": {cost_rv}}}",
        t.switches, t.switch_flushes, t.flushes, t.hits, t.misses,
    );
    s
}

fn main() {
    let mut rows = Vec::new();
    println!("=== tlb shootdown: whole-TLB vs range-based invalidation (4-worker adaptive) ===");
    println!(
        "{:<10} {:<7} {:>7} {:>12} {:>14} {:>12} {:>10} {:>10}",
        "seed",
        "mode",
        "cycles",
        "full-flush",
        "partial-flush",
        "invalidated",
        "full/cyc",
        "coalesced"
    );
    for seed in SEEDS {
        let full = run("full", seed, 0);
        let range = run("range", seed, adelie_vmem::DEFAULT_INVAL_LOG);
        for o in [&full, &range] {
            println!(
                "{:<10} {:<7} {:>7} {:>12} {:>14} {:>12} {:>10.3} {:>10}",
                seed,
                o.label,
                o.cycles,
                o.tlb.flushes,
                o.tlb.partial_flushes,
                o.tlb.entries_invalidated,
                o.full_per_cycle(),
                o.coalesced,
            );
            assert_eq!(
                o.violations, 0,
                "seed {seed}/{}: layout-oracle violations (incl. stale translations)",
                o.label
            );
            rows.push(outcome_json(seed, o));
        }
        // The acceptance property: batching + range invalidation must
        // strictly cut whole-TLB flushes per cycle, and the partial
        // path must actually be exercised.
        assert!(
            range.tlb.partial_flushes > 0,
            "seed {seed}: range regime never took the partial-flush path"
        );
        assert!(
            range.full_per_cycle() < full.full_per_cycle(),
            "seed {seed}: range regime must flush strictly less per cycle \
             ({:.3} vs {:.3})",
            range.full_per_cycle(),
            full.full_per_cycle(),
        );
        println!(
            "  seed {seed}: full-flushes/cycle {:.3} → {:.3} ({:.0}% fewer), \
             {} entries partially invalidated",
            full.full_per_cycle(),
            range.full_per_cycle(),
            (1.0 - range.full_per_cycle() / full.full_per_cycle().max(f64::MIN_POSITIVE)) * 100.0,
            range.tlb.entries_invalidated,
        );
    }
    // Fleet-churn phase: the ASID-tagging win, measured and asserted.
    println!(
        "=== fleet churn: ASID-tagged vs flush-on-switch roaming TLB ({CHURN_SHARDS} shards) ==="
    );
    println!(
        "{:<10} {:<16} {:>9} {:>14} {:>8} {:>8} {:>12} {:>12}",
        "seed", "mode", "switches", "switch-flush", "hits", "misses", "cyc(x86_64)", "cyc(rv64)"
    );
    let mut churn_rows = Vec::new();
    for seed in SEEDS {
        let tagged = churn("churn_tagged", seed, true);
        let ablation = churn("churn_flush_on_switch", seed, false);
        for (label, t) in [
            ("churn_tagged", &tagged),
            ("churn_flush_on_switch", &ablation),
        ] {
            let (cx, cr) = modeled_costs(t);
            println!(
                "{:<10} {:<16} {:>9} {:>14} {:>8} {:>8} {:>12} {:>12}",
                seed,
                label.trim_start_matches("churn_"),
                t.switches,
                t.switch_flushes,
                t.hits,
                t.misses,
                cx,
                cr
            );
            churn_rows.push(churn_json(seed, label, t));
        }
        println!(
            "  seed {seed}: switch flushes {} → 0 with tagging \
             ({} round-trip hits recovered)",
            ablation.switch_flushes, tagged.hits
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"tlb_shootdown\",\n  \"modules\": {MODULES},\n  \
         \"steps\": {STEPS},\n  \"rows\": [\n{}\n  ],\n  \
         \"churn_shards\": {CHURN_SHARDS},\n  \"churn_rounds\": {CHURN_ROUNDS},\n  \
         \"churn_rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        churn_rows.join(",\n")
    );
    std::fs::write("BENCH_tlb_shootdown.json", &json).expect("write BENCH_tlb_shootdown.json");
    println!("wrote BENCH_tlb_shootdown.json ({} rows)", rows.len());
}
