//! §6 — the security-analysis arithmetic: brute-force entropy and the
//! JIT-ROP window race.

use adelie_bench::print_header;
use adelie_gadget::attack::{
    brute_force_success, expected_attempts, guess_probability, jit_rop_success,
    simulate_brute_force, simulate_jit_rop,
};
use adelie_kernel::layout;

fn main() {
    print_header("§6", "traditional ROP: brute-force entropy");
    let pic_bits = layout::pic_entropy_bits();
    let legacy_bits = layout::legacy_entropy_bits();
    println!("{:<34} {:>12} {:>14}", "", "32-bit KASLR", "Adelie (PIC)");
    println!(
        "{:<34} {:>12} {:>14}",
        "page-aligned entropy bits", legacy_bits, pic_bits
    );
    println!(
        "{:<34} {:>12.3e} {:>14.3e}",
        "per-guess success probability",
        guess_probability(legacy_bits),
        guess_probability(pic_bits)
    );
    println!(
        "{:<34} {:>12.3e} {:>14.3e}",
        "expected attempts",
        expected_attempts(legacy_bits),
        expected_attempts(pic_bits)
    );
    for attempts in [1u64 << 10, 512 * 1024, 1 << 30] {
        println!(
            "{:<34} {:>12.4} {:>14.3e}",
            format!("P(success) after {attempts} guesses"),
            brute_force_success(legacy_bits, attempts),
            brute_force_success(pic_bits, attempts)
        );
    }
    // Monte-Carlo sanity: the 19-bit window falls to a 512K budget.
    let mut wins = 0;
    for seed in 0..50 {
        if simulate_brute_force(legacy_bits, 512 * 1024, seed).is_some() {
            wins += 1;
        }
    }
    println!("\nMonte-Carlo: 32-bit KASLR fell in {wins}/50 trials with a 512K-guess budget");

    print_header("§6", "JIT ROP vs continuous re-randomization");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "attack duration", "1 ms", "5 ms", "20 ms"
    );
    for (label, attack) in [
        ("0.5 ms (hypothetical)", 0.0005),
        ("2 ms (hypothetical)", 0.002),
        ("1 s (fast JIT-ROP)", 1.0),
        ("several seconds (known)", 3.0),
    ] {
        print!("{label:<26}");
        for period in [0.001, 0.005, 0.020] {
            print!(" {:>9.1}%", jit_rop_success(attack, period) * 100.0);
        }
        println!();
    }
    let sim = simulate_jit_rop(0.002, 0.005, 100_000, 1);
    println!(
        "\nMonte-Carlo check (2 ms attack vs 5 ms period): {:.1}% vs analytic {:.1}%",
        sim * 100.0,
        jit_rop_success(0.002, 0.005) * 100.0
    );
    println!("paper: all known JIT-ROP attacks need seconds → success probability 0");
}
