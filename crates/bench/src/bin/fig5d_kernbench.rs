//! Fig. 5d — kernbench-style kernel-time comparison at three
//! concurrency levels.

use adelie_bench::{print_header, print_row, Unit};
use adelie_workloads::{pic_matrix, run_kernbench, DriverSet, Testbed};

fn main() {
    print_header("Fig. 5d", "kernbench: kernel time at 3 concurrency levels");
    let jobs: usize = std::env::var("ADELIE_JOBS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    for conc in [2usize, 4, 8] {
        println!("\nconcurrency {conc} ({jobs} jobs):");
        for (cfg, opts) in pic_matrix() {
            let tb = Testbed::new(opts, DriverSet::storage());
            let m = run_kernbench(&tb, conc, jobs);
            print_row(&format!("  {cfg}"), &m, Unit::Seconds);
        }
    }
    println!("\npaper shape: no substantial difference across configurations");
}
