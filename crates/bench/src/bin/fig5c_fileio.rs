//! Fig. 5c — sysbench file_io (cached) random/sequential reads.

use adelie_bench::{point_duration, print_header, print_row, Unit};
use adelie_workloads::{pic_matrix, run_fileio, DriverSet, FileIoMode, Testbed};

fn main() {
    print_header("Fig. 5c", "sysbench file_io on RAM-cached files");
    let dur = point_duration();
    for (mode, label) in [
        (FileIoMode::SeqRead, "seqrd"),
        (FileIoMode::RndRead, "rndrd"),
    ] {
        println!("\n{label}:");
        for (cfg, opts) in pic_matrix() {
            let tb = Testbed::new(opts, DriverSet::storage());
            let m = run_fileio(&tb, mode, dur);
            print_row(&format!("  {cfg}"), &m, Unit::MbPerSec);
        }
    }
    println!("\npaper shape: PIC and non-PIC nearly identical");
}
