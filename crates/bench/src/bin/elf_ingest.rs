//! ELF-ingestion benchmarks: serializer/parser throughput over the
//! synthetic module corpus, and the price of rerand-safe lazy PLT
//! binding — first-call (binder fires) vs warm-call latency, lazy vs
//! eager — emitted as `BENCH_elf_ingest.json` plus a console table.
//!
//! The run *asserts* the acceptance properties: every corpus object
//! must round-trip byte-stably (`emit ∘ parse ∘ emit` = `emit`), the
//! lazy module's first call must actually bind (the counter moves), and
//! warm lazy calls must not be slower than 10× the eager warm call —
//! lazy binding is a load-time win, not a steady-state tax.

use adelie_core::ModuleRegistry;
use adelie_gadget::corpus::synth_module;
use adelie_isa::{Insn, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::time::Instant;

const SIZES: [usize; 3] = [4096, 16384, 65536];
const CODEC_ITERS: u32 = 200;
const BIND_SAMPLES: usize = 32;

/// A module whose exported entry point calls kernel imports — nothing
/// binds at load (no init), so the first `touch` call pays the binder.
fn touch_spec() -> ModuleSpec {
    let mut spec = ModuleSpec::new("touch");
    spec.funcs.push(FuncSpec::exported(
        "touch",
        vec![
            MOp::Insn(Insn::MovImm32(Reg::Rdi, 64)),
            MOp::CallKernel("kmalloc".into()),
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rax,
            }),
            MOp::CallKernel("kfree".into()),
            MOp::Insn(Insn::MovImm32(Reg::Rax, 77)),
            MOp::Ret,
        ],
    ));
    spec
}

fn median(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// Median first-call and warm-call latency over `BIND_SAMPLES`
/// load/call/unload rounds of the ELF-ingested `touch` module.
fn bind_latency(opts: &TransformOptions) -> (u64, u64) {
    let obj = transform(&touch_spec(), opts).expect("transform");
    let obj = adelie_elf::parse(&adelie_elf::emit(&obj)).expect("round-trip");
    let kernel = Kernel::new(KernelConfig {
        seed: 7,
        retpoline: opts.retpoline,
        ..KernelConfig::default()
    });
    let registry = ModuleRegistry::new(&kernel);
    let (mut first, mut warm) = (Vec::new(), Vec::new());
    for _ in 0..BIND_SAMPLES {
        let module = registry.load(&obj, opts).expect("load");
        let entry = module.export("touch").expect("export");
        let mut vm = kernel.vm();
        let t0 = Instant::now();
        assert_eq!(vm.call(entry, &[]).expect("first call"), 77);
        first.push(t0.elapsed().as_nanos() as u64);
        if opts.lazy_plt {
            assert!(
                module.plt_binds.load(Ordering::Relaxed) > 0,
                "first call must bind lazily"
            );
        }
        let t1 = Instant::now();
        assert_eq!(vm.call(entry, &[]).expect("warm call"), 77);
        warm.push(t1.elapsed().as_nanos() as u64);
        registry.unload("touch").expect("unload");
    }
    (median(first), median(warm))
}

fn main() {
    let t0 = Instant::now();
    let mut rows = Vec::new();
    println!("=== ELF ingestion: codec throughput + lazy-bind latency ===");
    println!(
        "{:<12} {:>10} {:>14} {:>14}",
        "object", "bytes", "emit MB/s", "parse MB/s"
    );
    for (i, size) in SIZES.iter().enumerate() {
        let spec = synth_module(&format!("synth{i}"), *size, 0xE1F + i as u64);
        let obj = transform(&spec, &TransformOptions::pic(true)).expect("transform");
        let bytes = adelie_elf::emit(&obj);
        // Acceptance: byte-stable round-trip on every size class.
        let parsed = adelie_elf::parse(&bytes).expect("parse");
        assert_eq!(
            adelie_elf::emit(&parsed),
            bytes,
            "size {size}: emit ∘ parse must be byte-stable"
        );

        let te = Instant::now();
        for _ in 0..CODEC_ITERS {
            std::hint::black_box(adelie_elf::emit(std::hint::black_box(&obj)));
        }
        let emit_mbps =
            (bytes.len() as f64 * f64::from(CODEC_ITERS)) / te.elapsed().as_secs_f64() / 1e6;
        let tp = Instant::now();
        for _ in 0..CODEC_ITERS {
            std::hint::black_box(adelie_elf::parse(std::hint::black_box(&bytes)).unwrap());
        }
        let parse_mbps =
            (bytes.len() as f64 * f64::from(CODEC_ITERS)) / tp.elapsed().as_secs_f64() / 1e6;
        println!(
            "{:<12} {:>10} {:>14.1} {:>14.1}",
            format!("~{size}B text"),
            bytes.len(),
            emit_mbps,
            parse_mbps
        );
        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\"kind\": \"codec\", \"target_text_bytes\": {size}, \"elf_bytes\": {}, \
             \"emit_mb_per_sec\": {emit_mbps:.1}, \"parse_mb_per_sec\": {parse_mbps:.1}}}",
            bytes.len()
        );
        rows.push(s);
    }

    println!(
        "{:<12} {:>16} {:>16}",
        "binding", "first-call ns", "warm-call ns"
    );
    let lazy = TransformOptions::rerandomizable(true).with_lazy_plt();
    let eager = TransformOptions::rerandomizable(true);
    let (lazy_first, lazy_warm) = bind_latency(&lazy);
    let (eager_first, eager_warm) = bind_latency(&eager);
    for (mode, first, warm) in [
        ("lazy", lazy_first, lazy_warm),
        ("eager", eager_first, eager_warm),
    ] {
        println!("{mode:<12} {first:>16} {warm:>16}");
        let mut s = String::new();
        let _ = write!(
            s,
            "    {{\"kind\": \"bind_latency\", \"mode\": \"{mode}\", \
             \"first_call_ns\": {first}, \"warm_call_ns\": {warm}}}"
        );
        rows.push(s);
    }
    // Steady state must be unaffected by lazy binding: once bound, a
    // call takes the same PLT→GOT hop as the eager path. Generous 10×
    // bound — this guards against accidentally leaving the binder on
    // the hot path, not against noise.
    assert!(
        lazy_warm <= eager_warm.max(1) * 10,
        "warm lazy call ({lazy_warm} ns) must not dwarf eager ({eager_warm} ns)"
    );

    let json = format!(
        "{{\n  \"bench\": \"elf_ingest\",\n  \"codec_iters\": {CODEC_ITERS},\n  \
         \"bind_samples\": {BIND_SAMPLES},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_elf_ingest.json", &json).expect("write BENCH_elf_ingest.json");
    println!(
        "wrote BENCH_elf_ingest.json ({} rows) in {:?}",
        rows.len(),
        t0.elapsed()
    );
}
