//! Fig. 6 — NVMe 512-byte O_DIRECT read throughput under
//! re-randomization at 1 ms and 5 ms periods.

use adelie_bench::{point_duration, print_header, print_row, Unit};
use adelie_plugin::TransformOptions;
use adelie_workloads::{run_nvme_direct, DriverSet, Testbed};
use std::time::Duration;

fn main() {
    print_header("Fig. 6", "NVMe O_DIRECT 512B read throughput + CPU");
    let dur = point_duration();
    // Vanilla Linux.
    let tb = Testbed::new(TransformOptions::vanilla(true), DriverSet::storage());
    let base = run_nvme_direct(&tb, dur);
    print_row("linux (vanilla)", &base, Unit::OpsPerSec);
    // Re-randomizable modules, rerand off / 5 ms / 1 ms.
    let opts = TransformOptions::rerandomizable(true);
    let tb = Testbed::new(opts, DriverSet::storage());
    let m = run_nvme_direct(&tb, dur);
    print_row("adelie, no re-randomization", &m, Unit::OpsPerSec);
    for period_ms in [5u64, 1] {
        let tb = Testbed::new(opts, DriverSet::storage());
        let rr = tb.start_rerand(Duration::from_millis(period_ms));
        let m = run_nvme_direct(&tb, dur);
        let stats = rr.stop();
        print_row(
            &format!("adelie, {period_ms} ms period"),
            &m,
            Unit::OpsPerSec,
        );
        println!(
            "    cycles: {}  SMR delta: {}",
            stats.randomized,
            tb.kernel.reclaim.stats().delta()
        );
    }
    println!("\npaper shape: throughput unaffected; slight CPU increase at short periods");
}
