//! Generate the ELF fixture corpus CI archives: every driver spec and
//! a seeded slice of the synthetic corpus, transformed under both code
//! models, emitted as real `.o` files with a manifest. Each fixture is
//! parsed back and checked byte-stable before it is written — the
//! artifact is a set of objects any external ELF tool (readelf,
//! objdump) can be pointed at to audit what the loader consumes.

use adelie_drivers::specs;
use adelie_gadget::corpus::synth_module;
use adelie_plugin::{transform, ModuleSpec, TransformOptions};
use std::fmt::Write as _;
use std::path::Path;

fn fixture_specs() -> Vec<ModuleSpec> {
    let mut v = vec![
        specs::dummy_spec(),
        specs::nvme_spec(0xFEE0_0000),
        specs::nic_spec(specs::NicFlavor::E1000e, 0xFEB0_0000),
        specs::extfs_spec(),
        specs::xhci_spec(0xFEC0_0000),
        specs::fuse_spec(),
    ];
    for (i, size) in [4096usize, 16384, 65536].into_iter().enumerate() {
        v.push(synth_module(&format!("synth{i}"), size, 0xF1C + i as u64));
    }
    v
}

fn main() {
    let out = Path::new("elf-fixtures");
    std::fs::create_dir_all(out).expect("mkdir elf-fixtures");
    let mut manifest = String::from("name,flavor,bytes,sections,relocs,symbols\n");
    let mut count = 0usize;
    for spec in fixture_specs() {
        for (flavor, opts) in [
            ("pic", TransformOptions::pic(true)),
            ("rerand", TransformOptions::rerandomizable(true)),
        ] {
            let obj = transform(&spec, &opts)
                .unwrap_or_else(|e| panic!("{} {flavor}: transform: {e}", spec.name));
            let bytes = adelie_elf::emit(&obj);
            let parsed = adelie_elf::parse(&bytes)
                .unwrap_or_else(|e| panic!("{} {flavor}: parse: {e}", spec.name));
            assert_eq!(
                adelie_elf::emit(&parsed),
                bytes,
                "{} {flavor}: fixture must be byte-stable",
                spec.name
            );
            let relocs: usize = obj.sections.values().map(|s| s.relocs.len()).sum();
            let _ = writeln!(
                manifest,
                "{},{flavor},{},{},{relocs},{}",
                obj.name,
                bytes.len(),
                obj.sections.len(),
                obj.symbols.len()
            );
            let path = out.join(format!("{}.{flavor}.o", obj.name));
            std::fs::write(&path, &bytes).expect("write fixture");
            count += 1;
        }
    }
    std::fs::write(out.join("MANIFEST.csv"), &manifest).expect("write manifest");
    println!("wrote {count} fixtures + MANIFEST.csv to elf-fixtures/");
}
