//! The fault-storm recovery benchmark: time-to-reconverge and
//! fraction-of-traffic-served for a supervised fleet under an injected
//! fault storm plus a shard crash — emitted as `BENCH_recovery.json`
//! (the CI artifact, matrixed over `ADELIE_ARCH`) plus a console table.
//!
//! Per configuration (read path × seed) the deterministic fleet harness
//! runs three phases on one virtual timeline:
//!
//! 1. **baseline** — a clean warm-up establishing healthy cadence;
//! 2. **fault storm** — a correlated burst of Reserve failures on one
//!    hot module: the supervision layer must walk it Healthy →
//!    Degraded → Quarantined (budget-exempt probes only) and recover
//!    it on the first probe past the storm. *Time-to-reconverge* is
//!    the virtual time from the first injected failure to the
//!    recovering probe's commit;
//! 3. **shard crash** — a [`ShardWatchdog`] stops seeing beats from
//!    shard 1, declares it unhealthy, and the fleet rebuilds the whole
//!    shard from the install catalog
//!    ([`FleetSim::recover_shard`]): modules reload, old spans vacate,
//!    a fresh scheduler group joins the same budget and clock.
//!
//! Throughout, module entry points are probed every virtual slice —
//! the *fraction of traffic served* must stay ≥ 0.99 (a benched or
//! rebuilding module keeps serving at its old base; that is the whole
//! point of quarantine over unload). The run asserts, per read path
//! and per seed: the storm reconverges, traffic holds, the quarantined
//! module burned zero budget while benched, and the layout oracle
//! (stale mappings, witness TLB, snapshot SMR, quarantine-execution)
//! finds zero violations.

use adelie_core::{CycleStage, ShardWatchdog};
use adelie_kernel::ReadPath;
use adelie_sched::{HealthState, SupervisionConfig};
use adelie_testkit::{FleetSim, FleetSimConfig};
use adelie_vmem::ArchKind;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
/// Virtual slice between traffic probes and watchdog beats.
const SLICE: Duration = Duration::from_millis(10);
/// Burst length: attempts 1..=6 of the hot module fail (attempt 0
/// seeds a healthy baseline; quarantine_after = 3 puts the module in
/// quarantine mid-burst and the first attempt past it recovers).
const BURST: u64 = 6;
/// Watchdog deadline: a shard silent for 5 slices is declared dead.
const WATCHDOG_TIMEOUT: Duration = Duration::from_millis(50);

struct Outcome {
    mode: &'static str,
    seed: u64,
    reconverge_ns: u64,
    traffic_frac: f64,
    probed: u64,
    quarantines: u64,
    probes: u64,
    recoveries: u64,
    rebuilt: usize,
    violations: u64,
}

/// Probe every module's entry export once; returns (served, attempted).
fn probe_traffic(sim: &FleetSim) -> (u64, u64) {
    let mut served = 0u64;
    let mut attempted = 0u64;
    for shard in 0..sim.shards() {
        let kernel = sim.fleet.kernel(shard).clone();
        let mut vm = kernel.vm();
        for name in ["hot", "cold"] {
            let m = sim.module(&format!("{name}_s{shard}"));
            let entry = m
                .export(&format!("{}_entry", m.name))
                .expect("entry export");
            attempted += 1;
            if matches!(vm.call(entry, &[41]), Ok(42)) {
                served += 1;
            }
        }
    }
    (served, attempted)
}

fn run(mode: &'static str, read_path: ReadPath, seed: u64) -> Outcome {
    let mut sim = FleetSim::new(FleetSimConfig {
        seed,
        read_path,
        supervision: SupervisionConfig {
            degrade_after: 1,
            quarantine_after: 3,
            backoff_max_exp: 3,
            ..SupervisionConfig::default()
        },
        ..FleetSimConfig::default()
    });
    sim.faults[0].fail_burst("hot_s0", CycleStage::Reserve, 1, BURST);
    let dog = ShardWatchdog::new(sim.shards(), WATCHDOG_TIMEOUT.as_nanos() as u64);

    let mut served = 0u64;
    let mut attempted = 0u64;
    let mut slice = |sim: &mut FleetSim, beat_all: bool| {
        sim.run_for(SLICE);
        let now = sim.clock.now_ns();
        dog.beat(0, now);
        if beat_all {
            dog.beat(1, now);
        }
        let (s, a) = probe_traffic(sim);
        served += s;
        attempted += a;
    };

    // Phase 1+2: baseline cadence, then the burst fires on its own
    // (attempt-indexed) — run until the storm has reconverged, with a
    // hard cap so a broken supervision layer fails loudly instead of
    // spinning. Both shards beat the watchdog.
    let mut reconverged = false;
    for _ in 0..200 {
        slice(&mut sim, true);
        if sim.sched.group(0).stats().recoveries >= 1 {
            reconverged = true;
            break;
        }
    }
    assert!(
        reconverged,
        "[{mode}/seed {seed}] storm did not reconverge within the cap"
    );
    assert_eq!(
        sim.sched.group(0).health_of("hot_s0"),
        Some(HealthState::Healthy),
        "[{mode}/seed {seed}] recovered module must be Healthy"
    );

    // Time-to-reconverge on the virtual timeline: first injected
    // failure → the recovering probe's finish.
    let storm_start = sim
        .reports()
        .iter()
        .find(|(_, r)| r.module == "hot_s0" && r.error.is_some())
        .map(|(_, r)| r.finished_ns)
        .expect("storm fired");
    let recovered_at = sim
        .reports()
        .iter()
        .find(|(_, r)| r.module == "hot_s0" && r.probe && r.error.is_none())
        .map(|(_, r)| r.finished_ns)
        .expect("recovering probe in the report stream");
    let reconverge_ns = recovered_at.saturating_sub(storm_start);

    // Zero budget while benched: shard 0's busy time counts exactly
    // its non-probe cycles (the probes ran for free).
    let stats0 = sim.sched.group(0).stats();
    let cost = FleetSimConfig::default().cycle_cost.as_nanos() as u64;
    let non_probe = sim
        .reports()
        .iter()
        .filter(|(shard, r)| *shard == 0 && !r.probe)
        .count() as u64;
    assert_eq!(
        stats0.busy,
        Duration::from_nanos(non_probe * cost),
        "[{mode}/seed {seed}] quarantined module was charged budget"
    );

    // Phase 3: shard 1 goes silent — only shard 0 beats. The watchdog
    // trips after WATCHDOG_TIMEOUT and the fleet rebuilds the shard.
    let mut declared = Vec::new();
    for _ in 0..20 {
        slice(&mut sim, false);
        declared = dog.scan(sim.clock.now_ns());
        if !declared.is_empty() {
            break;
        }
    }
    assert_eq!(
        declared,
        vec![1],
        "[{mode}/seed {seed}] watchdog must single out the silent shard"
    );
    let report = sim.recover_shard(1);
    assert_eq!(report.rebuilt.len(), 2, "[{mode}/seed {seed}] rebuilt");
    dog.beat(1, sim.clock.now_ns()); // the rebuilt shard is alive again
    for _ in 0..10 {
        slice(&mut sim, true);
    }
    assert!(
        dog.scan(sim.clock.now_ns()).is_empty(),
        "[{mode}/seed {seed}] recovered fleet must be fully live"
    );
    sim.assert_modules_work();

    // Traffic held through storm, quarantine, crash, and rebuild.
    let traffic_frac = served as f64 / attempted as f64;
    assert!(
        traffic_frac >= 0.99,
        "[{mode}/seed {seed}] only {traffic_frac:.4} of traffic served"
    );

    // Every invariant (stale mappings, witness TLB, snapshot SMR,
    // cross-shard isolation, quarantine-execution) — zero violations.
    let verdict = sim.verify();
    for v in &verdict.violations {
        eprintln!("oracle violation [{mode}/seed {seed}]: {v}");
    }
    assert!(
        verdict.is_clean(),
        "[{mode}/seed {seed}] {} oracle violation(s)",
        verdict.violations.len()
    );

    let fleet_stats = sim.sched.stats();
    Outcome {
        mode,
        seed,
        reconverge_ns,
        traffic_frac,
        probed: attempted,
        quarantines: fleet_stats.iter().map(|s| s.quarantines).sum(),
        probes: fleet_stats.iter().map(|s| s.probes).sum(),
        recoveries: fleet_stats.iter().map(|s| s.recoveries).sum(),
        rebuilt: report.rebuilt.len(),
        violations: verdict.violations.len() as u64,
    }
}

fn outcome_json(o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"mode\": \"{}\", \"seed\": {}, \"time_to_reconverge_ns\": {}, \
         \"traffic_served_frac\": {:.6}, \"traffic_probes\": {}, \"quarantines\": {}, \
         \"unquarantine_probes\": {}, \"recoveries\": {}, \"modules_rebuilt\": {}, \
         \"oracle_violations\": {}}}",
        o.mode,
        o.seed,
        o.reconverge_ns,
        o.traffic_frac,
        o.probed,
        o.quarantines,
        o.probes,
        o.recoveries,
        o.rebuilt,
        o.violations,
    );
    s
}

fn main() {
    let arch = ArchKind::from_env();
    println!("=== fleet recovery under fault storms ({arch:?}) ===");
    println!(
        "{:<10} {:>10} {:>18} {:>10} {:>12} {:>8} {:>10} {:>10}",
        "mode",
        "seed",
        "reconverge(ms)",
        "traffic",
        "quarantines",
        "probes",
        "rebuilt",
        "violations"
    );
    let t0 = Instant::now();
    let mut rows = Vec::new();
    for (mode, read_path) in [
        ("locked", ReadPath::Locked),
        ("snapshot", ReadPath::Snapshot),
    ] {
        for seed in SEEDS {
            let o = run(mode, read_path, seed);
            println!(
                "{:<10} {:>10} {:>18.3} {:>10.4} {:>12} {:>8} {:>10} {:>10}",
                o.mode,
                o.seed,
                o.reconverge_ns as f64 / 1e6,
                o.traffic_frac,
                o.quarantines,
                o.probes,
                o.rebuilt,
                o.violations,
            );
            rows.push(outcome_json(&o));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"arch\": \"{arch:?}\",\n  \
         \"slice_ns\": {},\n  \"burst\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        SLICE.as_nanos(),
        BURST,
        rows.join(",\n"),
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!(
        "wrote BENCH_recovery.json ({} rows) in {:?}",
        rows.len(),
        t0.elapsed()
    );
}
