//! §5.4 — scalability: re-randomizer CPU cost vs module count at a
//! 20 ms period (with the paper's extrapolation to >950 modules), plus
//! the scheduler's worker-count axis: module-cycles completed by 1, 2,
//! and 4 workers over the same fleet in the same window.

use adelie_bench::print_header;
use adelie_core::ModuleRegistry;
use adelie_gadget::synth_module;
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, TransformOptions};
use adelie_sched::{Policy, SchedConfig, Scheduler};
use std::sync::Arc;
use std::time::Duration;

fn fleet(count: usize) -> (Arc<Kernel>, Arc<ModuleRegistry>, Vec<String>) {
    let opts = TransformOptions::rerandomizable(true);
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let mut names = Vec::new();
    for i in 0..count {
        let spec = synth_module(&format!("mod{i}"), 16 * 1024, i as u64);
        let obj = transform(&spec, &opts).expect("transform");
        registry.load(&obj, &opts).expect("load");
        names.push(format!("mod{i}"));
    }
    (kernel, registry, names)
}

fn main() {
    print_header("§5.4", "re-randomizer CPU vs module count @ 20 ms");
    let window = Duration::from_secs_f64(
        std::env::var("ADELIE_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0),
    );
    println!("{:>8} {:>14} {:>12}", "modules", "cycles", "thread CPU%");
    let mut per_module = 0.0;
    for count in [1usize, 5, 10, 20] {
        let (kernel, registry, names) = fleet(count);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let sched = Scheduler::spawn(
            kernel.clone(),
            registry.clone(),
            &refs,
            SchedConfig::serial(Duration::from_millis(20)),
        );
        std::thread::sleep(window);
        let stats = sched.stop();
        let cpu_pct = stats.busy.as_secs_f64() / window.as_secs_f64() * 100.0;
        per_module = cpu_pct / count as f64;
        println!("{:>8} {:>14} {:>11.2}%", count, stats.cycles, cpu_pct);
    }
    // Paper: 0.4% thread CPU at 20 ms; ~0.36% per 5 extra modules;
    // comfortably >950 modules. Extrapolate from our per-module cost
    // against a 100%-of-one-core randomizer budget.
    let supportable = (100.0 / per_module) as u64;
    println!("\nper-module randomizer cost: {per_module:.3}% of one core");
    println!("extrapolated capacity at one dedicated core: ~{supportable} modules (paper: >950)");

    // Worker-count axis: the same 10-module fleet under an aggressive
    // fixed period, cycled by pools of different widths.
    println!("\nworker-count axis (10 modules @ 1 ms, {window:?} window):");
    println!("{:>8} {:>14} {:>14}", "workers", "cycles", "missed");
    for workers in [1usize, 2, 4] {
        let (kernel, registry, names) = fleet(10);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let sched = Scheduler::spawn(
            kernel.clone(),
            registry.clone(),
            &refs,
            SchedConfig {
                workers,
                policy: Policy::FixedPeriod(Duration::from_millis(1)),
                ..SchedConfig::default()
            },
        );
        std::thread::sleep(window);
        let stats = sched.stop();
        println!(
            "{:>8} {:>14} {:>14}",
            workers, stats.cycles, stats.missed_deadlines
        );
    }
}
