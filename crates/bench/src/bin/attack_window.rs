//! The attack-window benchmark: leak-to-use survival curves per
//! scheduling policy on the deterministic testkit harness, emitted as
//! `BENCH_attack_window.json` (the CI artifact) plus a console table.
//!
//! For each seed the three policies (fixed / jittered / adaptive) run
//! the identical hot+cold scenario; a leak is sampled on the hot module
//! every virtual millisecond and its exposure window measured against
//! the oracle's ground-truth re-randomization timeline. The run
//! *asserts* the headline property — adaptive strictly shrinks the
//! hot-module exposure window at no more CPU budget than fixed — so a
//! regression fails CI rather than shifting a curve nobody reads.

use adelie_testkit::window::{assert_adaptive_beats_fixed, run_all, PolicyOutcome, WindowConfig};
use std::fmt::Write as _;

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn outcome_json(seed: u64, o: &PolicyOutcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {seed}, \"policy\": \"{}\", \"cycles\": {}, \"hot_cycles\": {}, \
         \"busy_ns\": {}, \"leaks\": {}, \"mean_exposure_ns\": {}, \"deltas_ns\": {:?}, \
         \"survival\": [{}]}}",
        o.label,
        o.cycles,
        o.hot_cycles,
        o.busy.as_nanos(),
        o.windows_ns.len(),
        json_f64(o.mean_exposure_ns),
        o.deltas_ns,
        o.survival
            .iter()
            .map(|&v| json_f64(v))
            .collect::<Vec<_>>()
            .join(", "),
    );
    s
}

fn main() {
    let mut rows = Vec::new();
    println!("=== attack window: leak-to-use survival per policy ===");
    println!(
        "{:<10} {:<10} {:>8} {:>10} {:>12} {:>16}",
        "seed", "policy", "cycles", "hot", "busy(ms)", "mean window(ms)"
    );
    for seed in SEEDS {
        let cfg = WindowConfig {
            seed,
            ..WindowConfig::default()
        };
        let outcomes = run_all(&cfg);
        for o in &outcomes {
            println!(
                "{:<10} {:<10} {:>8} {:>10} {:>12.2} {:>16.3}",
                seed,
                o.label,
                o.cycles,
                o.hot_cycles,
                o.busy.as_secs_f64() * 1e3,
                o.mean_exposure_ns / 1e6,
            );
            rows.push(outcome_json(seed, o));
        }
        let fixed = outcomes.iter().find(|o| o.label == "fixed").unwrap();
        let adaptive = outcomes.iter().find(|o| o.label == "adaptive").unwrap();
        assert_adaptive_beats_fixed(fixed, adaptive);
        println!(
            "  seed {seed}: adaptive shrinks the hot window {:.2}x at {:.2}x the budget",
            fixed.mean_exposure_ns / adaptive.mean_exposure_ns,
            adaptive.busy.as_secs_f64() / fixed.busy.as_secs_f64(),
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"attack_window\",\n  \"seeds\": {:?},\n  \"outcomes\": [\n{}\n  ]\n}}\n",
        SEEDS,
        rows.join(",\n"),
    );
    std::fs::write("BENCH_attack_window.json", &json).expect("write BENCH_attack_window.json");
    println!("wrote BENCH_attack_window.json ({} bytes)", json.len());
}
