//! The fleet-scaling benchmark: aggregate re-randomization + traffic
//! throughput of a sharded kernel fleet vs a single kernel, across
//! placement policies and seeds — emitted as `BENCH_fleet.json` (the
//! CI artifact) plus a console table.
//!
//! Per configuration (shards × placement × seed) the machine runs a
//! fixed thread budget (4 writer threads re-randomizing back-to-back,
//! 4 reader threads hammering module exports through the interpreter),
//! split evenly over the shards. One shard means every thread contends
//! on one address space's writer mutex, one VA allocator, and one
//! physical-memory allocator; four shards mean four of each — the
//! contention relief *is* the tentpole, so the run asserts it: on
//! multicore hosts, 4-shard aggregate throughput (reader calls +
//! rerand cycles per second) must reach ≥ 2.5× the single-shard
//! baseline per placement (mean over seeds), with zero layout-oracle
//! violations, zero cross-shard VA overlaps, zero failed cycles, and
//! intact symbol/GOT integrity across every run.

use adelie_core::{
    rerandomize_module, Fleet, LoadWeighted, LoadedModule, Pinned, RoundRobin, ShardPlacement,
};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{FleetConfig, KernelConfig, ShardedKernel};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::SimClock;
use adelie_testkit::LayoutOracle;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
const SHARD_COUNTS: [usize; 2] = [1, 4];
const MODULES: usize = 8;
const WRITER_THREADS: usize = 4;
const READER_THREADS: usize = 4;
const WINDOW: Duration = Duration::from_millis(150);
/// Traffic calls model real driver work (a bounded compute loop), not
/// a two-instruction stub: `mod{i}_calc(n)` sums `1..=n`.
const CALC_ARG: u64 = 64;
const CALC_RET: u64 = CALC_ARG * (CALC_ARG + 1) / 2;

fn placement(kind: &str, shards: usize) -> Box<dyn ShardPlacement> {
    match kind {
        "round-robin" => Box::new(RoundRobin::new()),
        "load-weighted" => Box::new(LoadWeighted::new()),
        _ => {
            let pins: HashMap<String, usize> = (0..MODULES)
                .map(|i| (format!("mod{i}"), i % shards))
                .collect();
            Box::new(Pinned::new(pins, 0))
        }
    }
}

struct Outcome {
    shards: usize,
    policy: &'static str,
    seed: u64,
    calls: u64,
    cycles: u64,
    failed_cycles: u64,
    reader_errors: u64,
    violations: u64,
    aggregate_per_sec: f64,
}

fn run(shards: usize, policy: &'static str, seed: u64) -> Outcome {
    let sharded = ShardedKernel::new(FleetConfig {
        shards,
        base: KernelConfig {
            seed,
            ..KernelConfig::default()
        },
    });
    let fleet = Fleet::new(sharded, placement(policy, shards));
    let opts = TransformOptions::rerandomizable(true);
    // The module fleet: mod{i}_calc(n) = sum(1..=n), placed by the
    // policy. The loop makes each traffic call a few hundred
    // interpreted instructions — the shape of a real driver entry.
    for i in 0..MODULES {
        let mut spec = ModuleSpec::new(&format!("mod{i}"));
        spec.funcs.push(FuncSpec::exported(
            &format!("mod{i}_calc"),
            vec![
                MOp::Insn(Insn::MovImm32(Reg::Rax, 0)),
                MOp::Insn(Insn::MovImm32(Reg::Rcx, 0)),
                MOp::Label("loop".into()),
                MOp::Insn(Insn::Alu {
                    op: AluOp::Cmp,
                    dst: Reg::Rcx,
                    src: Reg::Rdi,
                }),
                MOp::Jcc(adelie_isa::Cond::E, "done".into()),
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rcx,
                    imm: 1,
                }),
                MOp::Insn(Insn::Alu {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    src: Reg::Rcx,
                }),
                MOp::Jmp("loop".into()),
                MOp::Label("done".into()),
                MOp::Ret,
            ],
        ));
        let obj = transform(&spec, &opts).expect("transform");
        fleet.install(&obj, &opts).expect("install");
    }
    // Per-shard oracle (own stale-translation witness each).
    let oracles: Vec<Arc<LayoutOracle>> = (0..shards)
        .map(|i| {
            let oracle = LayoutOracle::new(fleet.kernel(i).clone(), SimClock::new());
            fleet.registry(i).set_cycle_hooks(oracle.clone());
            oracle
        })
        .collect();
    // Partition modules (and the thread budget) by shard.
    let mut per_shard: Vec<Vec<(Arc<LoadedModule>, u64)>> = vec![Vec::new(); shards];
    for (name, shard) in fleet.modules() {
        let m = fleet.registry(shard).get(&name).expect("module");
        let entry = m.export(&format!("{name}_calc")).expect("export");
        per_shard[shard].push((m, entry));
    }
    let writers_per_shard = (WRITER_THREADS / shards).max(1);
    let readers_per_shard = (READER_THREADS / shards).max(1);

    let stop = AtomicBool::new(false);
    let calls = AtomicU64::new(0);
    let cycles = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let reader_errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for (shard, modules) in per_shard.iter().enumerate() {
            let kernel = fleet.kernel(shard).clone();
            let registry = fleet.registry(shard).clone();
            for w in 0..writers_per_shard {
                let kernel = kernel.clone();
                let registry = registry.clone();
                let (stop, cycles, failed) = (&stop, &cycles, &failed);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for (i, (m, _)) in modules.iter().enumerate() {
                            if i % writers_per_shard != w {
                                continue;
                            }
                            match rerandomize_module(&kernel, &registry, m) {
                                Ok(_) => cycles.fetch_add(1, Ordering::Relaxed),
                                Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                            };
                        }
                    }
                });
            }
            for _ in 0..readers_per_shard {
                let kernel = kernel.clone();
                let (stop, calls, reader_errors) = (&stop, &calls, &reader_errors);
                s.spawn(move || {
                    let mut vm = kernel.vm();
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for (_, entry) in modules {
                            match vm.call(*entry, &[CALC_ARG]) {
                                Ok(CALC_RET) => done += 1,
                                _ => {
                                    reader_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    calls.fetch_add(done, Ordering::Relaxed);
                });
            }
        }
        std::thread::sleep(WINDOW);
        stop.store(true, Ordering::Relaxed);
    });

    // Verification: per-shard oracles, cross-shard layout, symbols.
    let mut violation_count = 0u64;
    for (i, oracle) in oracles.iter().enumerate() {
        let report = oracle.verify_quiesced(fleet.registry(i), None, 0);
        for v in &report.violations {
            eprintln!("oracle violation [{policy}/{shards}sh/seed {seed}/shard {i}]: {v}");
        }
        violation_count += report.violations.len() as u64;
    }
    for v in fleet.verify_layout() {
        eprintln!("layout violation [{policy}/{shards}sh/seed {seed}]: {v}");
        violation_count += 1;
    }
    for v in fleet.verify_symbol_integrity() {
        eprintln!("symbol integrity [{policy}/{shards}sh/seed {seed}]: {v}");
        violation_count += 1;
    }

    let (calls, cycles) = (
        calls.load(Ordering::Relaxed),
        cycles.load(Ordering::Relaxed),
    );
    Outcome {
        shards,
        policy,
        seed,
        calls,
        cycles,
        failed_cycles: failed.load(Ordering::Relaxed),
        reader_errors: reader_errors.load(Ordering::Relaxed),
        violations: violation_count,
        aggregate_per_sec: (calls + cycles) as f64 / WINDOW.as_secs_f64(),
    }
}

fn outcome_json(o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {}, \"placement\": \"{}\", \"shards\": {}, \"calls\": {}, \
         \"rerand_cycles\": {}, \"failed_cycles\": {}, \"aggregate_ops_per_sec\": {:.0}, \
         \"oracle_violations\": {}}}",
        o.seed,
        o.policy,
        o.shards,
        o.calls,
        o.cycles,
        o.failed_cycles,
        o.aggregate_per_sec,
        o.violations,
    );
    s
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("=== fleet scaling: sharded kernels vs one kernel ({cores} cores) ===");
    println!(
        "{:<10} {:<14} {:>6} {:>12} {:>8} {:>16} {:>10}",
        "seed", "placement", "shards", "calls", "cycles", "aggregate/s", "violations"
    );
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for policy in ["round-robin", "load-weighted", "pinned"] {
        let mut per_seed_ratio = Vec::new();
        for seed in SEEDS {
            let mut by_shards = Vec::new();
            for &shards in &SHARD_COUNTS {
                let o = run(shards, policy, seed);
                println!(
                    "{:<10} {:<14} {:>6} {:>12} {:>8} {:>16.0} {:>10}",
                    o.seed,
                    o.policy,
                    o.shards,
                    o.calls,
                    o.cycles,
                    o.aggregate_per_sec,
                    o.violations
                );
                assert_eq!(
                    o.violations, 0,
                    "{policy}/{shards} shards/seed {seed}: oracle or layout violations"
                );
                assert_eq!(
                    o.failed_cycles, 0,
                    "{policy}/{shards} shards/seed {seed}: failed cycles"
                );
                assert_eq!(
                    o.reader_errors, 0,
                    "{policy}/{shards} shards/seed {seed}: reader errors"
                );
                rows.push(outcome_json(&o));
                by_shards.push(o);
            }
            let (single, fleet4) = (&by_shards[0], &by_shards[1]);
            let ratio = fleet4.aggregate_per_sec / single.aggregate_per_sec.max(1.0);
            println!("  seed {seed}: 4-shard/1-shard aggregate = {ratio:.2}x");
            per_seed_ratio.push(ratio);
        }
        let mean = per_seed_ratio.iter().sum::<f64>() / per_seed_ratio.len() as f64;
        println!(
            "  {policy}: mean 4-shard speedup {mean:.2}x over {} seeds",
            SEEDS.len()
        );
        ratios.push((policy, mean));
        // Acceptance, tiered by real host parallelism (the pattern the
        // translate bench set): with >= 8 cores the fleet's 8 threads
        // all run concurrently and sharding must pay >= 2.5x; with
        // 4..8 cores partial parallelism must still show a clear win;
        // below that both configurations time-slice on the same
        // silicon and only correctness is asserted.
        if cores >= 8 {
            assert!(
                mean >= 2.5,
                "{policy}: 4-shard aggregate must reach >= 2.5x single-shard \
                 on a >=8-core host (got {mean:.2}x)"
            );
        } else if cores >= 4 {
            assert!(
                mean >= 1.3,
                "{policy}: 4-shard aggregate must beat single-shard on a \
                 multicore host (got {mean:.2}x)"
            );
        }
    }
    if cores < 4 {
        println!("  (host has {cores} cores: scaling assertions skipped)");
    }
    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"modules\": {MODULES},\n  \"window_ms\": {},\n  \
         \"writer_threads\": {WRITER_THREADS},\n  \"reader_threads\": {READER_THREADS},\n  \
         \"cores\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        WINDOW.as_millis(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!(
        "wrote BENCH_fleet.json ({} rows) in {:?}",
        rows.len(),
        t0.elapsed()
    );
}
