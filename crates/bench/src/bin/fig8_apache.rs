//! Fig. 8 — ApacheBench throughput/CPU at four block sizes, five
//! modules re-randomizing at 1/5/20 ms.

use adelie_bench::{concurrency_levels, point_duration, print_header, print_row, Unit};
use adelie_plugin::TransformOptions;
use adelie_workloads::{run_apache, DriverSet, Testbed};
use std::time::Duration;

fn main() {
    print_header(
        "Fig. 8",
        "ApacheBench MB/s and CPU, 5 modules re-randomizing",
    );
    let dur = point_duration();
    let conc = *concurrency_levels().last().unwrap();
    for bs in [512usize, 1024, 4096, 8192] {
        println!("\nblock {bs} B, concurrency {conc}:");
        let tb = Testbed::new(TransformOptions::vanilla(true), DriverSet::full());
        let m = run_apache(&tb, bs, conc, 2, dur);
        print_row("  linux", &m, Unit::MbPerSec);
        for period_ms in [20u64, 5, 1] {
            let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::full());
            let rr = tb.start_rerand(Duration::from_millis(period_ms));
            let m = run_apache(&tb, bs, conc, 2, dur);
            rr.stop();
            print_row(&format!("  adelie {period_ms:>2} ms"), &m, Unit::MbPerSec);
        }
    }
    println!("\npaper shape: throughput unaffected; ≈2% CPU at small blocks, less at 20 ms");
}
