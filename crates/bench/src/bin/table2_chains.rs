//! Table 2 — ROP chain categories: how many modules carry a gadget set
//! sufficient to disable NX.

use adelie_bench::print_header;
use adelie_gadget::{chain_verdict, generate_corpus, scan, ChainVerdict, CorpusModule};

fn main() {
    print_header("Table 2", "ROP chain categories over the module corpus");
    let count: usize = std::env::var("ADELIE_CORPUS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let corpus = generate_corpus(count, 4 * 1024, 64 * 1024, 0x7AB2);
    let tally = |pic: bool| -> (usize, usize, usize) {
        let (mut clean, mut side, mut none) = (0, 0, 0);
        for m in &corpus {
            let obj = if pic { &m.pic } else { &m.vanilla };
            let gadgets = scan(&CorpusModule::code_bytes(obj));
            match chain_verdict(&gadgets) {
                ChainVerdict::CleanChain => clean += 1,
                ChainVerdict::ChainWithSideEffects => side += 1,
                ChainVerdict::NoChain => none += 1,
            }
        }
        (clean, side, none)
    };
    let v = tally(false);
    let p = tally(true);
    println!("{:<38} {:>8} {:>8}", "", "Non-PIC", "PIC");
    println!(
        "{:<38} {:>8} {:>8}",
        "With ROP chain, no side-effect", v.0, p.0
    );
    println!(
        "{:<38} {:>8} {:>8}",
        "With ROP chain, with side-effect", v.1, p.1
    );
    println!("{:<38} {:>8} {:>8}", "Without ROP chain", v.2, p.2);
    println!("{:<38} {:>8} {:>8}", "Number of modules", count, count);
    println!(
        "\nfraction with a chain: non-PIC {:.0}%, PIC {:.0}% (paper: ~80% of 5,329)",
        (v.0 + v.1) as f64 / count as f64 * 100.0,
        (p.0 + p.1) as f64 / count as f64 * 100.0
    );
}
