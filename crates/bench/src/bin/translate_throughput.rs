//! The lock-free read-path benchmark: reader throughput under a
//! continuously re-randomizing writer, `locked` (the pre-snapshot
//! reader/writer-lock regime) vs `snapshot` (RCU-style immutable
//! page-table snapshots + epoch pins + the per-CPU micro-TLB), across
//! reader counts the host can actually run, over 3 seeds — emitted as
//! `BENCH_translate.json` (the CI artifact) plus a console table.
//!
//! The shared [`adelie_bench::contention`] harness drives it: each
//! reader thread owns a simulated CPU (`Kernel::vm`) and hammers the
//! module fleet's exports; every call fetches, decodes, and translates
//! through the per-CPU TLB and the kernel page tables — the exact path
//! the ROADMAP says must run "as fast as the hardware allows". The
//! writer thread runs `rerandomize_module` back-to-back over the whole
//! fleet, so the page tables churn for the entire window. A
//! [`LayoutOracle`] (with its stale-translation witness and
//! snapshot-SMR accounting) checks every invariant across the run.
//!
//! The run *asserts* the acceptance properties, and the binding ones
//! are **1-core honest** — they execute on every host:
//!
//! * snapshot mode strictly beats locked mode at **1 reader** (best of
//!   [`COMPARE_ROUNDS`] windows per mode, every seed) — no parallelism
//!   excuse: the micro-TLB hit path and the flattened snapshot walk
//!   must win even with zero contention,
//! * the micro-TLB serves > 90% of lookups under steady (writer-free)
//!   ioctl-style traffic,
//! * zero oracle violations and zero failed cycles everywhere.
//!
//! On multicore hosts the original 4+-reader cross-mode assertion runs
//! too. Reader counts the host cannot physically run are **skipped
//! with a logged reason** — never benched at a lower count and
//! reported under the requested label (the old gating bug).

use adelie_bench::contention;
use adelie_core::ModuleRegistry;
use adelie_kernel::{Kernel, KernelConfig, ReadPath};
use adelie_sched::SimClock;
use adelie_testkit::LayoutOracle;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const MODULES: usize = 4;
const WINDOW: Duration = Duration::from_millis(120);
/// Windows per mode for the 1-reader strict comparison (best-of).
const COMPARE_ROUNDS: usize = 3;

struct Outcome {
    mode: &'static str,
    threads: usize,
    window: contention::Outcome,
    calls_per_sec: f64,
    /// Reader-observed errors + layout-oracle violations.
    violations: u64,
}

fn run(mode: &'static str, read_path: ReadPath, seed: u64, threads: usize) -> Outcome {
    run_inner(mode, read_path, seed, threads, false)
}

/// A writer-free window: generations stand still, so the micro-TLB
/// should serve essentially every lookup.
fn run_steady(mode: &'static str, read_path: ReadPath, seed: u64, threads: usize) -> Outcome {
    run_inner(mode, read_path, seed, threads, true)
}

fn run_inner(
    mode: &'static str,
    read_path: ReadPath,
    seed: u64,
    threads: usize,
    steady: bool,
) -> Outcome {
    let kernel = Kernel::new(KernelConfig {
        seed,
        read_path,
        ..KernelConfig::default()
    });
    let registry = ModuleRegistry::new(&kernel);
    let modules = contention::fleet(&registry, MODULES);
    let oracle = LayoutOracle::new(kernel.clone(), SimClock::new());
    registry.set_cycle_hooks(oracle.clone());
    let window = if steady {
        contention::run_steady(&kernel, &registry, &modules, threads, WINDOW)
    } else {
        contention::run(&kernel, &registry, &modules, threads, WINDOW)
    };
    let report = oracle.verify_quiesced(&registry, None, 0);
    for v in &report.violations {
        eprintln!("oracle violation [{mode}/{threads}r/seed {seed}]: {v}");
    }
    Outcome {
        mode,
        threads,
        window,
        calls_per_sec: window.calls as f64 / WINDOW.as_secs_f64(),
        violations: window.reader_errors + report.violations.len() as u64,
    }
}

fn micro_hit_rate(o: &contention::Outcome) -> f64 {
    let lookups = o.tlb.hits + o.tlb.misses;
    if lookups == 0 {
        0.0
    } else {
        o.tlb.micro_hits as f64 / lookups as f64
    }
}

fn outcome_json(seed: u64, o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {seed}, \"mode\": \"{}\", \"reader_threads\": {}, \
         \"readers_spawned\": {}, \"calls\": {}, \"calls_per_sec\": {:.0}, \
         \"rerand_cycles\": {}, \"failed_cycles\": {}, \"oracle_violations\": {}, \
         \"tlb_hits\": {}, \"tlb_micro_hits\": {}, \"tlb_misses\": {}, \
         \"micro_hit_rate\": {:.4}}}",
        o.mode,
        o.threads,
        o.window.readers_spawned,
        o.window.calls,
        o.calls_per_sec,
        o.window.cycles,
        o.window.failed_cycles,
        o.violations,
        o.window.tlb.hits,
        o.window.tlb.micro_hits,
        o.window.tlb.misses,
        micro_hit_rate(&o.window),
    );
    s
}

fn check_row(seed: u64, o: &Outcome) {
    assert_eq!(
        o.violations, 0,
        "seed {seed}/{}/{} readers: reader errors or layout-oracle violations",
        o.mode, o.threads
    );
    assert_eq!(
        o.window.failed_cycles, 0,
        "seed {seed}/{}/{} readers: no cycle may fail",
        o.mode, o.threads
    );
    assert_eq!(
        o.window.readers_spawned, o.threads,
        "seed {seed}/{}: harness spawned {} readers for a {}-reader row — \
         constrained hosts must skip, never mislabel",
        o.mode, o.window.readers_spawned, o.threads
    );
}

fn print_row(seed: u64, o: &Outcome) {
    println!(
        "{:<10} {:<15} {:>8} {:>12} {:>14.0} {:>8} {:>7.1}% {:>10}",
        seed,
        o.mode,
        o.window.readers_spawned,
        o.window.calls,
        o.calls_per_sec,
        o.window.cycles,
        micro_hit_rate(&o.window) * 100.0,
        o.violations
    );
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    println!(
        "=== translate throughput: locked vs snapshot read path under a rerand writer \
         ({cores} cores) ==="
    );
    println!(
        "{:<10} {:<15} {:>8} {:>12} {:>14} {:>8} {:>8} {:>10}",
        "seed", "mode", "readers", "calls", "calls/sec", "cycles", "microhit", "violations"
    );
    // A row needs its readers plus the rerand writer actually running
    // in parallel to mean what its label claims; anything the host
    // cannot run is skipped loudly (satellite: no silent mislabeling).
    let runnable: Vec<usize> = THREADS
        .iter()
        .copied()
        .filter(|&t| {
            let ok = t == 1 || t < cores; // readers + the rerand writer fit
            if !ok {
                let reason = format!(
                    "skipped {t}-reader rows: host has {cores} cores, needs {} \
                     (readers + writer)",
                    t + 1
                );
                println!("  ({reason})");
                skipped.push(reason);
            }
            ok
        })
        .collect();
    let t0 = Instant::now();
    for seed in SEEDS {
        let mut by_threads: Vec<(Outcome, Outcome)> = Vec::new();
        for &threads in &runnable {
            let locked = run("locked", ReadPath::Locked, seed, threads);
            let snapshot = run("snapshot", ReadPath::Snapshot, seed, threads);
            for o in [&locked, &snapshot] {
                print_row(seed, o);
                check_row(seed, o);
                rows.push(outcome_json(seed, o));
            }
            by_threads.push((locked, snapshot));
        }

        // 1-core-honest acceptance #1: snapshot strictly beats locked
        // at ONE reader — best of COMPARE_ROUNDS windows per mode so a
        // scheduler hiccup can't fail the build, but no host ever gets
        // to skip it. The first round reuses the table rows above.
        let mut best_locked = by_threads[0].0.window.calls;
        let mut best_snapshot = by_threads[0].1.window.calls;
        for _ in 1..COMPARE_ROUNDS {
            let l = run("locked", ReadPath::Locked, seed, 1);
            let s = run("snapshot", ReadPath::Snapshot, seed, 1);
            check_row(seed, &l);
            check_row(seed, &s);
            best_locked = best_locked.max(l.window.calls);
            best_snapshot = best_snapshot.max(s.window.calls);
        }
        println!(
            "  seed {seed}: 1-reader best-of-{COMPARE_ROUNDS}: snapshot {best_snapshot} \
             vs locked {best_locked} calls ({:.2}x)",
            best_snapshot as f64 / best_locked.max(1) as f64
        );
        assert!(
            best_snapshot > best_locked,
            "seed {seed}: snapshot mode must beat locked mode at 1 reader \
             ({best_snapshot} vs {best_locked} calls, best of {COMPARE_ROUNDS})"
        );

        // 1-core-honest acceptance #2: under steady (writer-free)
        // traffic the micro-TLB serves > 90% of lookups.
        let steady = run_steady("snapshot-steady", ReadPath::Snapshot, seed, 1);
        print_row(seed, &steady);
        check_row(seed, &steady);
        let rate = micro_hit_rate(&steady.window);
        assert!(
            rate > 0.90,
            "seed {seed}: micro-TLB hit rate under steady traffic must exceed 90% \
             (got {:.1}% over {} lookups)",
            rate * 100.0,
            steady.window.tlb.hits + steady.window.tlb.misses
        );
        rows.push(outcome_json(seed, &steady));

        // Multicore acceptance: with 4+ readers contending against the
        // rerand writer, the lock-free snapshot path must strictly beat
        // the locked ablation on every seed. Requires actual hardware
        // parallelism — on a single-core host nothing ever runs
        // concurrently, so blocking costs no throughput; there the
        // 1-reader assertion above is the binding one.
        for (locked, snapshot) in &by_threads {
            if locked.threads >= 4 && cores >= 2 {
                assert!(
                    snapshot.window.calls > locked.window.calls,
                    "seed {seed}: snapshot mode must beat locked mode at {} readers \
                     ({} vs {})",
                    locked.threads,
                    snapshot.window.calls,
                    locked.window.calls
                );
            }
        }
        let (l1, s1) = &by_threads[0];
        if let Some((l4, s4)) = by_threads.iter().find(|(l, _)| l.threads == 4) {
            println!(
                "  seed {seed}: snapshot 1→4 readers {:.0} → {:.0} calls/s ({:.2}x), \
                 locked 1→4 readers {:.0} → {:.0} calls/s ({:.2}x), \
                 snapshot/locked @4 = {:.2}x",
                s1.calls_per_sec,
                s4.calls_per_sec,
                s4.calls_per_sec / s1.calls_per_sec.max(1.0),
                l1.calls_per_sec,
                l4.calls_per_sec,
                l4.calls_per_sec / l1.calls_per_sec.max(1.0),
                s4.calls_per_sec / l4.calls_per_sec.max(1.0),
            );
            // Scaling: snapshot-mode readers must gain from added
            // threads. Only asserted when the host has headroom for 4
            // readers plus the writer.
            if cores >= 6 {
                assert!(
                    s4.window.calls > s1.window.calls,
                    "seed {seed}: snapshot-mode throughput must scale with readers \
                     ({} @4 vs {} @1)",
                    s4.window.calls,
                    s1.window.calls
                );
            }
        }
    }
    let skipped_json: Vec<String> = skipped.iter().map(|r| format!("\"{r}\"")).collect();
    let json = format!(
        "{{\n  \"bench\": \"translate_throughput\",\n  \"modules\": {MODULES},\n  \
         \"window_ms\": {},\n  \"cores\": {cores},\n  \"compare_rounds\": {COMPARE_ROUNDS},\n  \
         \"skipped\": [{}],\n  \"rows\": [\n{}\n  ]\n}}\n",
        WINDOW.as_millis(),
        skipped_json.join(", "),
        rows.join(",\n")
    );
    std::fs::write("BENCH_translate.json", &json).expect("write BENCH_translate.json");
    println!(
        "wrote BENCH_translate.json ({} rows, {} skipped) in {:?}",
        rows.len(),
        skipped.len(),
        t0.elapsed()
    );
}
