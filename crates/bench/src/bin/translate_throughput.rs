//! The lock-free read-path benchmark: reader throughput under a
//! continuously re-randomizing writer, `locked` (the pre-snapshot
//! reader/writer-lock regime) vs `snapshot` (RCU-style immutable
//! page-table snapshots + epoch pins), across 1/2/4/8 reader threads
//! and 3 seeds — emitted as `BENCH_translate.json` (the CI artifact)
//! plus a console table.
//!
//! The shared [`adelie_bench::contention`] harness drives it: each
//! reader thread owns a simulated CPU (`Kernel::vm`) and hammers the
//! module fleet's exports; every call fetches, decodes, and translates
//! through the per-CPU TLB and the kernel page tables — the exact path
//! the ROADMAP says must run "as fast as the hardware allows". The
//! writer thread runs `rerandomize_module` back-to-back over the whole
//! fleet, so the page tables churn for the entire window. A
//! [`LayoutOracle`] (with its stale-translation witness and
//! snapshot-SMR accounting) checks every invariant across the run.
//!
//! The run *asserts* the acceptance properties — snapshot-mode reader
//! throughput strictly above locked mode at 4+ readers on every seed
//! (on multicore hosts; a single-core host has no concurrency for the
//! lock to destroy, so only correctness is asserted there), with zero
//! oracle violations and zero failed cycles — so a regression fails CI
//! rather than shifting a curve nobody reads.

use adelie_bench::contention;
use adelie_core::ModuleRegistry;
use adelie_kernel::{Kernel, KernelConfig, ReadPath};
use adelie_sched::SimClock;
use adelie_testkit::LayoutOracle;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SEEDS: [u64; 3] = [1, 42, 0xA77ACC];
const THREADS: [usize; 4] = [1, 2, 4, 8];
const MODULES: usize = 4;
const WINDOW: Duration = Duration::from_millis(120);

struct Outcome {
    mode: &'static str,
    threads: usize,
    window: contention::Outcome,
    calls_per_sec: f64,
    /// Reader-observed errors + layout-oracle violations.
    violations: u64,
}

fn run(mode: &'static str, read_path: ReadPath, seed: u64, threads: usize) -> Outcome {
    let kernel = Kernel::new(KernelConfig {
        seed,
        read_path,
        ..KernelConfig::default()
    });
    let registry = ModuleRegistry::new(&kernel);
    let modules = contention::fleet(&registry, MODULES);
    let oracle = LayoutOracle::new(kernel.clone(), SimClock::new());
    registry.set_cycle_hooks(oracle.clone());
    let window = contention::run(&kernel, &registry, &modules, threads, WINDOW);
    let report = oracle.verify_quiesced(&registry, None, 0);
    for v in &report.violations {
        eprintln!("oracle violation [{mode}/{threads}r/seed {seed}]: {v}");
    }
    Outcome {
        mode,
        threads,
        window,
        calls_per_sec: window.calls as f64 / WINDOW.as_secs_f64(),
        violations: window.reader_errors + report.violations.len() as u64,
    }
}

fn outcome_json(seed: u64, o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "    {{\"seed\": {seed}, \"mode\": \"{}\", \"reader_threads\": {}, \"calls\": {}, \
         \"calls_per_sec\": {:.0}, \"rerand_cycles\": {}, \"failed_cycles\": {}, \
         \"oracle_violations\": {}}}",
        o.mode,
        o.threads,
        o.window.calls,
        o.calls_per_sec,
        o.window.cycles,
        o.window.failed_cycles,
        o.violations,
    );
    s
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    println!(
        "=== translate throughput: locked vs snapshot read path under a rerand writer \
         ({cores} cores) ==="
    );
    println!(
        "{:<10} {:<9} {:>8} {:>12} {:>14} {:>8} {:>10}",
        "seed", "mode", "readers", "calls", "calls/sec", "cycles", "violations"
    );
    let t0 = Instant::now();
    for seed in SEEDS {
        let mut by_threads: Vec<(Outcome, Outcome)> = Vec::new();
        for &threads in &THREADS {
            let locked = run("locked", ReadPath::Locked, seed, threads);
            let snapshot = run("snapshot", ReadPath::Snapshot, seed, threads);
            for o in [&locked, &snapshot] {
                println!(
                    "{:<10} {:<9} {:>8} {:>12} {:>14.0} {:>8} {:>10}",
                    seed,
                    o.mode,
                    o.threads,
                    o.window.calls,
                    o.calls_per_sec,
                    o.window.cycles,
                    o.violations
                );
                assert_eq!(
                    o.violations, 0,
                    "seed {seed}/{}/{} readers: reader errors or layout-oracle violations",
                    o.mode, o.threads
                );
                assert_eq!(
                    o.window.failed_cycles, 0,
                    "seed {seed}/{}/{} readers: no cycle may fail",
                    o.mode, o.threads
                );
                rows.push(outcome_json(seed, o));
            }
            by_threads.push((locked, snapshot));
        }
        // Acceptance: with 4+ readers contending against the rerand
        // writer, the lock-free snapshot path must strictly beat the
        // locked ablation on every seed. Requires actual hardware
        // parallelism — on a single-core host nothing ever runs
        // concurrently, so blocking costs no throughput and both
        // regimes degenerate to the same serialized schedule; the
        // numbers are still emitted, but the comparison is asserted
        // only where it is meaningful.
        for (locked, snapshot) in &by_threads {
            if locked.threads >= 4 && cores >= 2 {
                assert!(
                    snapshot.window.calls > locked.window.calls,
                    "seed {seed}: snapshot mode must beat locked mode at {} readers \
                     ({} vs {})",
                    locked.threads,
                    snapshot.window.calls,
                    locked.window.calls
                );
            }
        }
        if cores < 2 {
            println!("  (single-core host: cross-mode throughput assertion skipped)");
        }
        let (s1, s4) = (&by_threads[0].1, &by_threads[2].1);
        let (l1, l4) = (&by_threads[0].0, &by_threads[2].0);
        println!(
            "  seed {seed}: snapshot 1→4 readers {:.0} → {:.0} calls/s ({:.2}x), \
             locked 1→4 readers {:.0} → {:.0} calls/s ({:.2}x), \
             snapshot/locked @4 = {:.2}x",
            s1.calls_per_sec,
            s4.calls_per_sec,
            s4.calls_per_sec / s1.calls_per_sec.max(1.0),
            l1.calls_per_sec,
            l4.calls_per_sec,
            l4.calls_per_sec / l1.calls_per_sec.max(1.0),
            s4.calls_per_sec / l4.calls_per_sec.max(1.0),
        );
        // Scaling: snapshot-mode readers must gain from added threads.
        // Only asserted when the host has headroom for 4 readers plus
        // the writer — on smaller CI boxes the numbers are printed but
        // the cross-mode assertion above is the binding one.
        if cores >= 6 {
            assert!(
                s4.window.calls > s1.window.calls,
                "seed {seed}: snapshot-mode throughput must scale with readers \
                 ({} @4 vs {} @1)",
                s4.window.calls,
                s1.window.calls
            );
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"translate_throughput\",\n  \"modules\": {MODULES},\n  \
         \"window_ms\": {},\n  \"cores\": {cores},\n  \"rows\": [\n{}\n  ]\n}}\n",
        WINDOW.as_millis(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_translate.json", &json).expect("write BENCH_translate.json");
    println!(
        "wrote BENCH_translate.json ({} rows) in {:?}",
        rows.len(),
        t0.elapsed()
    );
}
