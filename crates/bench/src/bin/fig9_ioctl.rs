//! Fig. 9 — the CPU-bound null-ioctl benchmark: wrapper cost (~4%) and
//! stack re-randomization cost (~6% more) isolated.

use adelie_bench::{overhead_pct, point_duration, print_header, print_row, Unit};
use adelie_plugin::TransformOptions;
use adelie_workloads::{run_ioctl, DriverSet, Testbed};
use std::time::Duration;

fn main() {
    print_header("Fig. 9", "null-ioctl throughput (Mops/s scale-model)");
    let dur = point_duration();
    let mut results: Vec<(String, f64)> = Vec::new();
    let mut run = |label: &str, opts: TransformOptions, period: Option<u64>| {
        let tb = Testbed::new(opts, DriverSet::dummy_only());
        let rr = period.map(|ms| tb.start_rerand(Duration::from_millis(ms)));
        let m = run_ioctl(&tb, dur);
        if let Some(rr) = rr {
            rr.stop();
        }
        print_row(label, &m, Unit::MopsPerSec);
        results.push((label.to_string(), m.ops_per_sec()));
    };
    run("linux (vanilla)", TransformOptions::vanilla(true), None);
    let mut wrappers_only = TransformOptions::rerandomizable(true);
    wrappers_only.stack_rerand = false;
    wrappers_only.encrypt_ret = false;
    run("wrappers only", wrappers_only, None);
    run(
        "wrappers + stack rerand + encryption",
        TransformOptions::rerandomizable(true),
        None,
    );
    run(
        "  + continuous rerand 5 ms",
        TransformOptions::rerandomizable(true),
        Some(5),
    );
    run(
        "  + continuous rerand 1 ms",
        TransformOptions::rerandomizable(true),
        Some(1),
    );
    let base = results[0].1;
    println!("\noverheads vs vanilla:");
    for (label, ops) in &results[1..] {
        println!("  {label:<40} {:>5.1}%", overhead_pct(base, *ops));
    }
    println!("paper: wrappers ≈4%, +stack randomization ≈6% more");
}
