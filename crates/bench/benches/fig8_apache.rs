//! Criterion bench for Fig. 8: ApacheBench-style serving with five
//! re-randomizing modules.

use adelie_plugin::TransformOptions;
use adelie_workloads::{run_apache, DriverSet, Testbed};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_apache(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_apache_1k_c4");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let cases: Vec<(&str, Option<u64>)> = vec![
        ("linux", None),
        ("adelie_20ms", Some(20)),
        ("adelie_5ms", Some(5)),
        ("adelie_1ms", Some(1)),
    ];
    for (label, period) in cases {
        let opts = if period.is_some() {
            TransformOptions::rerandomizable(true)
        } else {
            TransformOptions::vanilla(true)
        };
        let tb = Testbed::new(opts, DriverSet::full());
        let rr = period.map(|ms| tb.start_rerand(Duration::from_millis(ms)));
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters.max(1) {
                    run_apache(&tb, 1024, 4, 2, Duration::from_millis(50));
                }
                t0.elapsed()
            })
        });
        if let Some(rr) = rr {
            rr.stop();
        }
    }
    g.finish();
}

criterion_group!(benches, bench_apache);
criterion_main!(benches);
