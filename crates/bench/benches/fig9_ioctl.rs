//! Criterion bench for Fig. 9: per-ioctl cost across wrapper/stack
//! configurations — the paper's ~4% / ~6% ablation.

use adelie_drivers::specs::DUMMY_MINOR;
use adelie_plugin::TransformOptions;
use adelie_workloads::{DriverSet, Testbed};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_ioctl(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_ioctl");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut wrappers_only = TransformOptions::rerandomizable(true);
    wrappers_only.stack_rerand = false;
    wrappers_only.encrypt_ret = false;
    let cases: Vec<(&str, TransformOptions, Option<u64>)> = vec![
        ("linux", TransformOptions::vanilla(true), None),
        ("wrappers_only", wrappers_only, None),
        (
            "wrappers_stack_encrypt",
            TransformOptions::rerandomizable(true),
            None,
        ),
        (
            "rerand_1ms",
            TransformOptions::rerandomizable(true),
            Some(1),
        ),
    ];
    for (label, opts, period) in cases {
        let tb = Testbed::new(opts, DriverSet::dummy_only());
        let rr = period.map(|ms| tb.start_rerand(Duration::from_millis(ms)));
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut vm = tb.kernel.vm();
                // Warm the stack pool so allocation isn't in the loop.
                tb.kernel.ioctl(&mut vm, DUMMY_MINOR, 0, 0).unwrap();
                let t0 = Instant::now();
                for i in 0..iters {
                    tb.kernel.ioctl(&mut vm, DUMMY_MINOR, 0, i).unwrap();
                }
                t0.elapsed()
            })
        });
        if let Some(rr) = rr {
            rr.stop();
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ioctl);
criterion_main!(benches);
