//! The cost of one full re-randomization cycle (what the randomizer
//! thread pays every period), by module size and by reclaimer.

use adelie_core::{rerandomize_module, ModuleRegistry};
use adelie_gadget::synth_module;
use adelie_kernel::{Kernel, KernelConfig, ReclaimerKind};
use adelie_plugin::{transform, TransformOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("rerand_cycle");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    let opts = TransformOptions::rerandomizable(true);
    for (label, bytes) in [("module_8k", 8 * 1024), ("module_64k", 64 * 1024)] {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let spec = synth_module("m", bytes, 5);
        let obj = transform(&spec, &opts).unwrap();
        let module = registry.load(&obj, &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    rerandomize_module(&kernel, &registry, &module).unwrap();
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

fn bench_cycle_reclaimers(c: &mut Criterion) {
    let mut g = c.benchmark_group("rerand_cycle_reclaimer");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let opts = TransformOptions::rerandomizable(true);
    for (label, kind) in [("hyaline", ReclaimerKind::Hyaline), ("ebr", ReclaimerKind::Ebr)] {
        let kernel = Kernel::new(KernelConfig {
            reclaimer: kind,
            ..KernelConfig::default()
        });
        let registry = ModuleRegistry::new(&kernel);
        let spec = synth_module("m", 16 * 1024, 6);
        let obj = transform(&spec, &opts).unwrap();
        let module = registry.load(&obj, &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    rerandomize_module(&kernel, &registry, &module).unwrap();
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cycle, bench_cycle_reclaimers);
criterion_main!(benches);
