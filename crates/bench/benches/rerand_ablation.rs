//! The cost of one full re-randomization cycle (what the randomizer
//! pool pays per deadline), by module size, by reclaimer, by policy,
//! and by worker count — including the headline comparison: a 4-worker
//! `Adaptive` scheduler vs the serial `Rerandomizer` shim over the same
//! fleet and wall-clock window.

use adelie_core::{rerandomize_module, LoadedModule, ModuleRegistry};
use adelie_gadget::synth_module;
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{Kernel, KernelConfig, ReadPath, ReclaimerKind};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{Policy, SchedConfig, Scheduler, SimClock};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fleet like [`fleet`], but on an explicitly configured kernel.
fn fleet_on(
    config: KernelConfig,
    count: usize,
) -> (
    Arc<Kernel>,
    Arc<ModuleRegistry>,
    Vec<Arc<LoadedModule>>,
    Vec<String>,
) {
    let opts = TransformOptions::rerandomizable(true);
    let kernel = Kernel::new(config);
    let registry = ModuleRegistry::new(&kernel);
    let mut modules = Vec::new();
    let mut names = Vec::new();
    for i in 0..count {
        let mut spec = ModuleSpec::new(&format!("mod{i}"));
        spec.funcs.push(FuncSpec::exported(
            &format!("mod{i}_calc"),
            vec![
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rax,
                    src: Reg::Rdi,
                }),
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    imm: 1,
                }),
                MOp::Ret,
            ],
        ));
        let obj = transform(&spec, &opts).unwrap();
        modules.push(registry.load(&obj, &opts).unwrap());
        names.push(format!("mod{i}"));
    }
    (kernel, registry, modules, names)
}

/// A fleet of distinct re-randomizable modules whose single export is
/// safe to hammer from a traffic thread (`modN_calc(x) = x + 1`).
fn fleet(
    count: usize,
) -> (
    Arc<Kernel>,
    Arc<ModuleRegistry>,
    Vec<Arc<LoadedModule>>,
    Vec<String>,
) {
    fleet_on(KernelConfig::default(), count)
}

fn bench_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("rerand_cycle");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    let opts = TransformOptions::rerandomizable(true);
    for (label, bytes) in [("module_8k", 8 * 1024), ("module_64k", 64 * 1024)] {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        let spec = synth_module("m", bytes, 5);
        let obj = transform(&spec, &opts).unwrap();
        let module = registry.load(&obj, &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    rerandomize_module(&kernel, &registry, &module).unwrap();
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

fn bench_cycle_reclaimers(c: &mut Criterion) {
    let mut g = c.benchmark_group("rerand_cycle_reclaimer");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let opts = TransformOptions::rerandomizable(true);
    for (label, kind) in [
        ("hyaline", ReclaimerKind::Hyaline),
        ("ebr", ReclaimerKind::Ebr),
    ] {
        let kernel = Kernel::new(KernelConfig {
            reclaimer: kind,
            ..KernelConfig::default()
        });
        let registry = ModuleRegistry::new(&kernel);
        let spec = synth_module("m", 16 * 1024, 6);
        let obj = transform(&spec, &opts).unwrap();
        let module = registry.load(&obj, &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    rerandomize_module(&kernel, &registry, &module).unwrap();
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

/// Policy axis: module-cycles completed over a 3-module fleet in a
/// fixed window, per policy (single worker so only the policy varies).
fn bench_policies(c: &mut Criterion) {
    const WINDOW: Duration = Duration::from_millis(300);
    let mut g = c.benchmark_group("rerand_policy_cycles_per_window");
    g.sample_size(1); // each sample is a full wall-clock window
    let policies: Vec<(&str, Policy)> = vec![
        ("fixed_5ms", Policy::FixedPeriod(Duration::from_millis(5))),
        (
            "jittered_5ms",
            Policy::Jittered {
                base: Duration::from_millis(5),
                jitter: 0.5,
            },
        ),
        (
            "adaptive_1_50ms",
            Policy::Adaptive {
                min: Duration::from_millis(1),
                max: Duration::from_millis(50),
                rate_scale: 100.0,
                exposure_scale: 20.0,
            },
        ),
    ];
    for (label, policy) in policies {
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    let (kernel, registry, _modules, names) = fleet(3);
                    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                    let sched = Scheduler::spawn(
                        kernel.clone(),
                        registry,
                        &refs,
                        SchedConfig {
                            workers: 1,
                            policy: policy.clone(),
                            ..SchedConfig::default()
                        },
                    );
                    std::thread::sleep(WINDOW);
                    let stats = sched.stop();
                    println!("  {label}: {} cycles in {WINDOW:?}", stats.cycles);
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

/// Worker axis + the acceptance comparison: the serial `Rerandomizer`
/// shim at the artifact's 20 ms default vs scheduler pools of width
/// 1/2/4 under the adaptive policy, all over the same 3-module fleet
/// with driver traffic, same wall window. Prints module-cycles and the
/// adaptive-4w : serial ratio, and asserts the ≥2× claim plus zero
/// SMR/stack deltas after drain.
fn bench_workers_vs_serial_shim(c: &mut Criterion) {
    const WINDOW: Duration = Duration::from_millis(400);

    fn run(label: &str, width: Option<usize>) -> u64 {
        let (kernel, registry, modules, names) = fleet(3);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        enum Pool {
            #[allow(deprecated)]
            Serial(adelie_sched::Rerandomizer),
            Sched(Scheduler),
        }
        let pool = match width {
            None => {
                #[allow(deprecated)]
                let rr = adelie_sched::Rerandomizer::spawn(
                    kernel.clone(),
                    registry.clone(),
                    &refs,
                    Duration::from_millis(20),
                );
                Pool::Serial(rr)
            }
            Some(workers) => Pool::Sched(Scheduler::spawn(
                kernel.clone(),
                registry.clone(),
                &refs,
                SchedConfig {
                    workers,
                    policy: Policy::Adaptive {
                        min: Duration::from_millis(1),
                        max: Duration::from_millis(50),
                        rate_scale: 100.0,
                        exposure_scale: 20.0,
                    },
                    ..SchedConfig::default()
                },
            )),
        };
        // Driver traffic so the adaptive policy sees a call rate.
        let stop = AtomicBool::new(false);
        let cycles = std::thread::scope(|s| {
            s.spawn(|| {
                let mut vm = kernel.vm();
                let entries: Vec<u64> = modules
                    .iter()
                    .filter_map(|m| m.exports.first().map(|(_, va)| *va))
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    for &e in &entries {
                        let _ = vm.call(e, &[1]);
                    }
                }
            });
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
            match pool {
                Pool::Serial(rr) => rr.stop().randomized,
                Pool::Sched(sched) => sched.stop().cycles,
            }
        });
        registry.stacks.rotate(&kernel);
        kernel.reclaim.flush();
        assert_eq!(kernel.reclaim.stats().delta(), 0, "SMR delta after drain");
        assert_eq!(
            registry.stacks.stats().delta(),
            0,
            "stack delta after drain"
        );
        println!("  {label}: {cycles} module-cycles in {WINDOW:?}");
        cycles
    }

    let mut g = c.benchmark_group("rerand_workers_vs_serial");
    g.sample_size(1); // each sample sweeps four full windows
    g.bench_function("sweep", |b| {
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                let serial = run("serial_shim_20ms", None);
                let _w1 = run("adaptive_1_worker", Some(1));
                let _w2 = run("adaptive_2_workers", Some(2));
                let w4 = run("adaptive_4_workers", Some(4));
                println!(
                    "  adaptive_4w/serial ratio: {:.1}x",
                    w4 as f64 / serial.max(1) as f64
                );
                assert!(
                    w4 >= serial * 2,
                    "4-worker adaptive must double the serial shim: {w4} vs {serial}"
                );
            }
            t0.elapsed()
        })
    });
    g.finish();
}

/// Shootdown axis: the 4-worker adaptive pool over the same fleet,
/// traffic, and deterministic step schedule, under the legacy
/// whole-TLB regime (`tlb_inval_log: 0` — the unbatched publication
/// cost) vs range-based invalidation. Prints the traffic CPU's flush
/// counts and asserts the acceptance property: batching strictly cuts
/// whole-TLB flushes per cycle and the partial path is exercised.
fn bench_tlb_shootdown_regimes(c: &mut Criterion) {
    const STEPS: usize = 120;

    fn run(label: &str, inval_log: usize) -> (u64, u64, u64) {
        let (kernel, registry, modules, names) = fleet_on(
            KernelConfig {
                tlb_inval_log: inval_log,
                ..KernelConfig::default()
            },
            3,
        );
        let with_policies: Vec<(&str, Policy)> = names
            .iter()
            .map(|n| (n.as_str(), Policy::default_adaptive()))
            .collect();
        let clock = SimClock::new();
        let sched = Scheduler::spawn_stepped(
            kernel.clone(),
            registry.clone(),
            &with_policies,
            SchedConfig {
                workers: 4,
                policy: Policy::default_adaptive(),
                ..SchedConfig::default()
            },
            clock,
            Duration::from_micros(100),
        );
        let entries: Vec<u64> = modules
            .iter()
            .filter_map(|m| m.exports.first().map(|(_, va)| *va))
            .collect();
        let mut vm = kernel.vm();
        for _ in 0..STEPS {
            sched.step().expect("heap never empties");
            for &e in &entries {
                let _ = vm.call(e, &[1]).unwrap();
            }
        }
        let cycles = sched.cycles();
        drop(sched);
        let t = vm.tlb_stats();
        println!(
            "  {label}: {} full flushes, {} partial flushes, {} entries invalidated \
             over {cycles} cycles ({:.3} full/cycle)",
            t.flushes,
            t.partial_flushes,
            t.entries_invalidated,
            t.flushes as f64 / cycles.max(1) as f64
        );
        (t.flushes, t.partial_flushes, cycles)
    }

    let mut g = c.benchmark_group("rerand_tlb_shootdown");
    g.sample_size(1); // each sample is a full deterministic schedule
    g.bench_function("full_vs_range", |b| {
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                let (full_flushes, _, full_cycles) = run("whole_tlb", 0);
                let (range_flushes, partials, range_cycles) =
                    run("range_based", adelie_vmem::DEFAULT_INVAL_LOG);
                assert!(partials > 0, "partial-flush path must be exercised");
                assert!(
                    (range_flushes as f64 / range_cycles.max(1) as f64)
                        < (full_flushes as f64 / full_cycles.max(1) as f64),
                    "range-based shootdown must strictly cut full flushes per cycle"
                );
            }
            t0.elapsed()
        })
    });
    g.finish();
}

/// Contention axis: total reader calls completed while a rerand writer
/// churns the fleet non-stop, under the `locked` (pre-snapshot
/// reader/writer-lock) vs `snapshot` (RCU snapshots + epoch pins) read
/// path, with 4 reader threads. The numbers are printed for comparison;
/// the hard cross-mode assertion lives in the `translate_throughput`
/// bin (CI artifact `BENCH_translate.json`), which also runs the
/// layout oracle across the same contention pattern.
fn bench_read_contention(c: &mut Criterion) {
    const WINDOW: Duration = Duration::from_millis(200);
    const READERS: usize = 4;

    fn run(label: &str, read_path: ReadPath) -> adelie_bench::contention::Outcome {
        let kernel = Kernel::new(KernelConfig {
            read_path,
            ..KernelConfig::default()
        });
        let registry = ModuleRegistry::new(&kernel);
        let modules = adelie_bench::contention::fleet(&registry, 3);
        let o = adelie_bench::contention::run(&kernel, &registry, &modules, READERS, WINDOW);
        println!(
            "  {label}: {} reader calls / {} cycles in {WINDOW:?}",
            o.calls, o.cycles
        );
        o
    }

    let mut g = c.benchmark_group("rerand_read_contention");
    g.sample_size(1); // each sample runs two full windows
    g.bench_function("locked_vs_snapshot_4_readers", |b| {
        b.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                let locked = run("locked_read_path", ReadPath::Locked);
                let snapshot = run("snapshot_read_path", ReadPath::Snapshot);
                assert_eq!(locked.reader_errors + snapshot.reader_errors, 0);
                assert_eq!(locked.failed_cycles + snapshot.failed_cycles, 0);
                println!(
                    "  snapshot/locked reader throughput: {:.2}x",
                    snapshot.calls as f64 / locked.calls.max(1) as f64
                );
            }
            t0.elapsed()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cycle,
    bench_cycle_reclaimers,
    bench_policies,
    bench_workers_vs_serial_shim,
    bench_tlb_shootdown_regimes,
    bench_read_contention
);
criterion_main!(benches);
