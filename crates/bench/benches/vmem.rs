//! Substrate microbenches: page-table ops and the zero-copy-vs-copy
//! ablation (the paper's key design choice for cheap re-randomization).

use adelie_vmem::{AddressSpace, PhysMem, PteFlags, PAGE_SIZE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_map_unmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("vmem");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let phys = PhysMem::new();
    let space = AddressSpace::new();
    let pfn = phys.alloc();
    g.bench_function("map_unmap_page", |b| {
        b.iter(|| {
            space.map(0x10_0000_0000, pfn, PteFlags::DATA).unwrap();
            space.unmap(0x10_0000_0000).unwrap();
        })
    });
    space.map(0x20_0000_0000, pfn, PteFlags::DATA).unwrap();
    g.bench_function("translate_walk", |b| {
        b.iter(|| {
            space
                .translate(0x20_0000_1234 - 0x1234, adelie_vmem::Access::Read)
                .unwrap()
        })
    });
    g.finish();
}

/// The ablation: moving a 64-page module by aliasing frames (Adelie's
/// zero-copy) vs physically copying the bytes (the strawman the paper
/// rejects: "we completely avoid copying code and static data").
fn bench_move_module(c: &mut Criterion) {
    let mut g = c.benchmark_group("rerand_move_64_pages");
    g.sample_size(20).measurement_time(Duration::from_secs(3));
    const PAGES: usize = 64;
    let phys = PhysMem::new();
    let space = AddressSpace::new();
    let frames = phys.alloc_n(PAGES);
    space
        .map_range(0x30_0000_0000, &frames, PteFlags::TEXT)
        .unwrap();
    g.bench_function("zero_copy_remap", |b| {
        b.iter_custom(|iters| {
            let mut base = 0x40_0000_0000u64;
            let t0 = Instant::now();
            for _ in 0..iters {
                space.map_range(base, &frames, PteFlags::TEXT).unwrap();
                space.unmap_range(base, PAGES).unwrap();
                base += (PAGES * PAGE_SIZE) as u64 * 2;
            }
            t0.elapsed()
        })
    });
    g.bench_function("copy_move", |b| {
        b.iter_custom(|iters| {
            let mut base = 0x60_0000_0000u64;
            let t0 = Instant::now();
            for _ in 0..iters {
                // Allocate fresh frames, copy every byte, map, unmap+free.
                let new: Vec<_> = frames.iter().map(|&f| phys.clone_frame(f)).collect();
                space.map_range(base, &new, PteFlags::TEXT).unwrap();
                space.unmap_range(base, PAGES).unwrap();
                for f in new {
                    phys.free(f);
                }
                base += (PAGES * PAGE_SIZE) as u64 * 2;
            }
            t0.elapsed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_map_unmap, bench_move_module);
criterion_main!(benches);
