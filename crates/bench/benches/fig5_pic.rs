//! Criterion benches for Fig. 5b/5c/5d: the cost of the PIC model on
//! cached-I/O and syscall-heavy paths.

use adelie_workloads::{pic_matrix, DriverSet, FileIoMode, Testbed};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_dd(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_dd_64k");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (label, opts) in pic_matrix() {
        let tb = Testbed::new(opts, DriverSet::storage());
        let fd = tb.kernel.vfs.open("dd.dat", false).unwrap();
        let buf = tb
            .kernel
            .heap
            .kmalloc(&tb.kernel.space, &tb.kernel.phys, 64 * 1024);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let mut vm = tb.kernel.vm();
                let t0 = Instant::now();
                for i in 0..iters {
                    let off = (i % 32) * 64 * 1024;
                    tb.kernel
                        .vfs
                        .pread(&mut vm, fd, buf, 64 * 1024, off)
                        .unwrap();
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

fn bench_fileio(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5c_fileio_rndrd");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (label, opts) in [
        ("linux", adelie_plugin::TransformOptions::vanilla(true)),
        ("pic+retpoline", adelie_plugin::TransformOptions::pic(true)),
    ] {
        let tb = Testbed::new(opts, DriverSet::storage());
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters.max(1) {
                    adelie_workloads::run_fileio(
                        &tb,
                        FileIoMode::RndRead,
                        Duration::from_millis(20),
                    );
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

fn bench_kernbench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5d_kernbench_c4");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for (label, opts) in [
        ("linux", adelie_plugin::TransformOptions::vanilla(true)),
        ("pic+retpoline", adelie_plugin::TransformOptions::pic(true)),
    ] {
        let tb = Testbed::new(opts, DriverSet::storage());
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters.max(1) {
                    adelie_workloads::run_kernbench(&tb, 4, 8);
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dd, bench_fileio, bench_kernbench);
criterion_main!(benches);
