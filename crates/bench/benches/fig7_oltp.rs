//! Criterion bench for Fig. 7: OLTP transaction latency with
//! re-randomizing network + storage drivers.

use adelie_plugin::TransformOptions;
use adelie_workloads::{run_oltp, DriverSet, Testbed};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_oltp(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_oltp_c4");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let cases: Vec<(&str, Option<u64>)> = vec![
        ("linux", None),
        ("adelie_5ms", Some(5)),
        ("adelie_1ms", Some(1)),
    ];
    for (label, period) in cases {
        let opts = if period.is_some() {
            TransformOptions::rerandomizable(true)
        } else {
            TransformOptions::vanilla(true)
        };
        let tb = Testbed::new(opts, DriverSet::full());
        let rr = period.map(|ms| tb.start_rerand(Duration::from_millis(ms)));
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters.max(1) {
                    run_oltp(&tb, 4, 2, Duration::from_millis(50));
                }
                t0.elapsed()
            })
        });
        if let Some(rr) = rr {
            rr.stop();
        }
    }
    g.finish();
}

criterion_group!(benches, bench_oltp);
criterion_main!(benches);
