//! Criterion bench for Fig. 6: NVMe O_DIRECT reads under continuous
//! re-randomization.

use adelie_kernel::SECTOR_SIZE;
use adelie_plugin::TransformOptions;
use adelie_workloads::{DriverSet, Testbed};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn direct_read_batch(tb: &Testbed, iters: u64) -> Duration {
    let fd = tb.kernel.vfs.open("nvme.dat", true).unwrap();
    let buf = tb
        .kernel
        .heap
        .kmalloc(&tb.kernel.space, &tb.kernel.phys, SECTOR_SIZE);
    let mut vm = tb.kernel.vm();
    let t0 = Instant::now();
    for _ in 0..iters {
        tb.kernel
            .vfs
            .pread(&mut vm, fd, buf, SECTOR_SIZE, 0)
            .unwrap();
    }
    let d = t0.elapsed();
    tb.kernel.vfs.close(fd);
    d
}

fn bench_nvme(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_nvme_direct_512b");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    {
        let tb = Testbed::new(TransformOptions::vanilla(true), DriverSet::storage());
        g.bench_function("linux", |b| b.iter_custom(|n| direct_read_batch(&tb, n)));
    }
    {
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::storage());
        g.bench_function("adelie_no_rerand", |b| {
            b.iter_custom(|n| direct_read_batch(&tb, n))
        });
    }
    for period_ms in [5u64, 1] {
        let tb = Testbed::new(TransformOptions::rerandomizable(true), DriverSet::storage());
        let rr = tb.start_rerand(Duration::from_millis(period_ms));
        g.bench_function(format!("adelie_{period_ms}ms"), |b| {
            b.iter_custom(|n| direct_read_batch(&tb, n))
        });
        rr.stop();
    }
    g.finish();
}

criterion_group!(benches, bench_nvme);
criterion_main!(benches);
