//! Ablation: Hyaline vs EBR reclamation cost (the paper cites
//! "performance very similar to EBR" as part of why Hyaline was chosen;
//! the other part is context-agnosticism).

use adelie_reclaim::{Ebr, Hyaline, Reclaimer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

fn bench_enter_leave(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim_enter_leave");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    let hyaline = Hyaline::new(8);
    let ebr = Ebr::new(8);
    g.bench_function("hyaline", |b| {
        b.iter(|| {
            hyaline.enter(0);
            hyaline.leave(0);
        })
    });
    g.bench_function("ebr", |b| {
        b.iter(|| {
            ebr.enter(0);
            ebr.leave(0);
        })
    });
    g.finish();
}

fn bench_retire_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim_retire_under_load");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    fn run(dom: &dyn Reclaimer, iters: u64) -> Duration {
        let t0 = Instant::now();
        for _ in 0..iters {
            dom.enter(1);
            dom.retire(Box::new(|| {}));
            dom.leave(1);
            dom.flush();
        }
        t0.elapsed()
    }
    let hyaline = Hyaline::new(8);
    let ebr = Ebr::new(8);
    g.bench_function("hyaline", |b| b.iter_custom(|n| run(&hyaline, n)));
    g.bench_function("ebr", |b| b.iter_custom(|n| run(&ebr, n)));
    g.finish();
}

criterion_group!(benches, bench_enter_leave, bench_retire_drain);
criterion_main!(benches);
