//! Fleet scheduling: one randomizer worker group per kernel shard,
//! every group under **one global CPU budget**.
//!
//! A [`ShardedKernel`](adelie_kernel::ShardedKernel) fleet has no
//! shared deadline heap — sharing one would re-serialize exactly what
//! sharding un-serialized. Instead each shard gets its own
//! [`Scheduler`] (own heap, own workers, own call-rate observer on its
//! own kernel), and the only global object is the
//! [`BudgetController`]: every group records its cycle spend there, so
//! pressure and throttling reflect what the *whole machine* is burning
//! on re-randomization, and a hot shard automatically stretches every
//! shard's adaptive periods.
//!
//! Both scheduler modes compose: [`FleetScheduler::spawn`] runs
//! threaded worker groups on the wall clock (production / bench);
//! [`FleetScheduler::spawn_stepped`] puts every group on one shared
//! [`SimClock`] and lets a harness drive the whole fleet one
//! deterministic step at a time — the earliest due deadline *across
//! shards* runs next, exactly as a machine-global randomizer would
//! interleave.

use crate::budget::BudgetController;
use crate::policy::Policy;
use crate::scheduler::{CycleReport, SchedConfig, Scheduler};
use crate::stats::SchedStats;
use crate::SimClock;
use adelie_core::ModuleRegistry;
use adelie_kernel::Kernel;
use std::sync::Arc;
use std::time::Duration;

/// One shard's scheduling description: its kernel, its registry, and
/// the `(module, policy)` pairs its group drives.
pub type ShardSched = (Arc<Kernel>, Arc<ModuleRegistry>, Vec<(String, Policy)>);

/// Per-shard worker groups under one global budget.
pub struct FleetScheduler {
    groups: Vec<Scheduler>,
    budget: Arc<BudgetController>,
}

impl FleetScheduler {
    fn global_budget(shards: &[ShardSched], config: &SchedConfig) -> Arc<BudgetController> {
        // The modeled machine is the union of the shards: the global
        // cap is a fraction of *total* fleet CPUs.
        let total_cpus: usize = shards.iter().map(|(k, _, _)| k.config.cpus).sum();
        Arc::new(BudgetController::new(
            total_cpus.max(1),
            config.max_cpu_frac,
        ))
    }

    /// Start one threaded worker group per shard (production shape).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, a named module is missing or not
    /// re-randomizable, or `config.workers` is zero.
    pub fn spawn(shards: Vec<ShardSched>, config: SchedConfig) -> FleetScheduler {
        assert!(!shards.is_empty(), "fleet scheduler needs shards");
        let budget = FleetScheduler::global_budget(&shards, &config);
        let groups = shards
            .into_iter()
            .map(|(kernel, registry, modules)| {
                let with_policies: Vec<(&str, Policy)> = modules
                    .iter()
                    .map(|(n, p)| (n.as_str(), p.clone()))
                    .collect();
                Scheduler::spawn_with_policies_shared(
                    kernel,
                    registry,
                    &with_policies,
                    config.clone(),
                    Some(budget.clone()),
                )
            })
            .collect();
        FleetScheduler { groups, budget }
    }

    /// Start one **stepped** group per shard, all on `clock` — the
    /// deterministic fleet `adelie-testkit` verifies.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, a named module is missing or not
    /// re-randomizable, or `config.workers` is zero.
    pub fn spawn_stepped(
        shards: Vec<ShardSched>,
        config: SchedConfig,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
    ) -> FleetScheduler {
        assert!(!shards.is_empty(), "fleet scheduler needs shards");
        let budget = FleetScheduler::global_budget(&shards, &config);
        let groups = shards
            .into_iter()
            .map(|(kernel, registry, modules)| {
                let with_policies: Vec<(&str, Policy)> = modules
                    .iter()
                    .map(|(n, p)| (n.as_str(), p.clone()))
                    .collect();
                Scheduler::spawn_stepped_shared(
                    kernel,
                    registry,
                    &with_policies,
                    config.clone(),
                    clock.clone(),
                    cycle_cost,
                    Some(budget.clone()),
                )
            })
            .collect();
        FleetScheduler { groups, budget }
    }

    /// The shared global budget.
    pub fn budget(&self) -> &Arc<BudgetController> {
        &self.budget
    }

    /// Replace shard `shard`'s stepped group with a fresh one over
    /// `modules` — the scheduling half of crash recovery, after the
    /// fleet rebuilt the shard's modules from the install catalog. The
    /// old group is halted *first* (its kernel call observer is a
    /// single slot; the new group re-installs it), its telemetry is
    /// discarded with it, and the replacement joins the same global
    /// budget and the same virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, a named module is missing or
    /// not re-randomizable, or `config.workers` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn replace_group_stepped(
        &mut self,
        shard: usize,
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(String, Policy)],
        config: SchedConfig,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
    ) {
        self.groups[shard].halt();
        let with_policies: Vec<(&str, Policy)> = modules
            .iter()
            .map(|(n, p)| (n.as_str(), p.clone()))
            .collect();
        self.groups[shard] = Scheduler::spawn_stepped_shared(
            kernel,
            registry,
            &with_policies,
            config,
            clock,
            cycle_cost,
            Some(self.budget.clone()),
        );
    }

    /// Number of shard groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Never true (a fleet scheduler has ≥ 1 group).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Shard `i`'s group.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn group(&self, i: usize) -> &Scheduler {
        &self.groups[i]
    }

    /// The earliest pending deadline across all groups, as
    /// `(shard, deadline_ns)`. Ties go to the lowest shard index
    /// (deterministic).
    pub fn peek_deadline_ns(&self) -> Option<(usize, u64)> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.peek_deadline_ns().map(|d| (d, i)))
            .min()
            .map(|(d, i)| (i, d))
    }

    /// (Step mode) run the fleet-wide earliest due entry; returns the
    /// shard it belonged to and its report. `None` when every heap is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics when called on a threaded fleet.
    pub fn step(&self) -> Option<(usize, CycleReport)> {
        let (shard, _) = self.peek_deadline_ns()?;
        self.groups[shard].step().map(|r| (shard, r))
    }

    /// Completed cycles, summed over every shard group.
    pub fn cycles(&self) -> u64 {
        self.groups.iter().map(Scheduler::cycles).sum()
    }

    /// Failed cycles, summed over every shard group.
    pub fn failures(&self) -> u64 {
        self.groups.iter().map(Scheduler::failures).sum()
    }

    /// Per-shard telemetry snapshots, indexed by shard.
    pub fn stats(&self) -> Vec<SchedStats> {
        self.groups.iter().map(Scheduler::stats).collect()
    }

    /// Stop every group (waiting out in-flight cycles) and return the
    /// final per-shard snapshots.
    pub fn stop(self) -> Vec<SchedStats> {
        self.groups.into_iter().map(Scheduler::stop).collect()
    }
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("groups", &self.groups.len())
            .field("cycles", &self.cycles())
            .field("budget", &self.budget)
            .finish()
    }
}
