//! Fleet scheduling: one randomizer worker group per kernel shard,
//! every group under **one global CPU budget**.
//!
//! A [`ShardedKernel`](adelie_kernel::ShardedKernel) fleet has no
//! shared deadline heap — sharing one would re-serialize exactly what
//! sharding un-serialized. Instead each shard gets its own
//! [`Scheduler`] (own heap, own workers, own call-rate observer on its
//! own kernel), and the only global object is the
//! [`BudgetController`]: every group records its cycle spend there, so
//! pressure and throttling reflect what the *whole machine* is burning
//! on re-randomization, and a hot shard automatically stretches every
//! shard's adaptive periods.
//!
//! Both scheduler modes compose: [`FleetScheduler::spawn`] runs
//! threaded worker groups on the wall clock (production / bench);
//! [`FleetScheduler::spawn_stepped`] puts every group on one shared
//! [`SimClock`] and lets a harness drive the whole fleet one
//! deterministic step at a time — the earliest due deadline *across
//! shards* runs next, exactly as a machine-global randomizer would
//! interleave.

use crate::budget::BudgetController;
use crate::policy::Policy;
use crate::scheduler::{CycleReport, SchedConfig, Scheduler};
use crate::stats::SchedStats;
use crate::SimClock;
use adelie_core::{Fleet, FleetError, ModuleRegistry};
use adelie_kernel::Kernel;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One shard's scheduling description: its kernel, its registry, and
/// the `(module, policy)` pairs its group drives.
pub type ShardSched = (Arc<Kernel>, Arc<ModuleRegistry>, Vec<(String, Policy)>);

/// Per-shard worker groups under one global budget.
pub struct FleetScheduler {
    groups: Vec<Scheduler>,
    budget: Arc<BudgetController>,
}

impl FleetScheduler {
    fn global_budget(shards: &[ShardSched], config: &SchedConfig) -> Arc<BudgetController> {
        // The modeled machine is the union of the shards: the global
        // cap is a fraction of *total* fleet CPUs.
        let total_cpus: usize = shards.iter().map(|(k, _, _)| k.config.cpus).sum();
        Arc::new(BudgetController::new(
            total_cpus.max(1),
            config.max_cpu_frac,
        ))
    }

    /// Start one threaded worker group per shard (production shape).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, a named module is missing or not
    /// re-randomizable, or `config.workers` is zero.
    pub fn spawn(shards: Vec<ShardSched>, config: SchedConfig) -> FleetScheduler {
        assert!(!shards.is_empty(), "fleet scheduler needs shards");
        let budget = FleetScheduler::global_budget(&shards, &config);
        let groups = shards
            .into_iter()
            .map(|(kernel, registry, modules)| {
                let with_policies: Vec<(&str, Policy)> = modules
                    .iter()
                    .map(|(n, p)| (n.as_str(), p.clone()))
                    .collect();
                Scheduler::spawn_with_policies_shared(
                    kernel,
                    registry,
                    &with_policies,
                    config.clone(),
                    Some(budget.clone()),
                )
            })
            .collect();
        FleetScheduler { groups, budget }
    }

    /// Start one **stepped** group per shard, all on `clock` — the
    /// deterministic fleet `adelie-testkit` verifies.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, a named module is missing or not
    /// re-randomizable, or `config.workers` is zero.
    pub fn spawn_stepped(
        shards: Vec<ShardSched>,
        config: SchedConfig,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
    ) -> FleetScheduler {
        assert!(!shards.is_empty(), "fleet scheduler needs shards");
        let budget = FleetScheduler::global_budget(&shards, &config);
        let groups = shards
            .into_iter()
            .map(|(kernel, registry, modules)| {
                let with_policies: Vec<(&str, Policy)> = modules
                    .iter()
                    .map(|(n, p)| (n.as_str(), p.clone()))
                    .collect();
                Scheduler::spawn_stepped_shared(
                    kernel,
                    registry,
                    &with_policies,
                    config.clone(),
                    clock.clone(),
                    cycle_cost,
                    Some(budget.clone()),
                )
            })
            .collect();
        FleetScheduler { groups, budget }
    }

    /// The shared global budget.
    pub fn budget(&self) -> &Arc<BudgetController> {
        &self.budget
    }

    /// Replace shard `shard`'s stepped group with a fresh one over
    /// `modules` — the scheduling half of crash recovery, after the
    /// fleet rebuilt the shard's modules from the install catalog. The
    /// old group is halted *first* (its kernel call observer is a
    /// single slot; the new group re-installs it), its telemetry is
    /// discarded with it, and the replacement joins the same global
    /// budget and the same virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, a named module is missing or
    /// not re-randomizable, or `config.workers` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn replace_group_stepped(
        &mut self,
        shard: usize,
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(String, Policy)],
        config: SchedConfig,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
    ) {
        self.groups[shard].halt();
        let with_policies: Vec<(&str, Policy)> = modules
            .iter()
            .map(|(n, p)| (n.as_str(), p.clone()))
            .collect();
        self.groups[shard] = Scheduler::spawn_stepped_shared(
            kernel,
            registry,
            &with_policies,
            config,
            clock,
            cycle_cost,
            Some(self.budget.clone()),
        );
    }

    /// Number of shard groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Never true (a fleet scheduler has ≥ 1 group).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Shard `i`'s group.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn group(&self, i: usize) -> &Scheduler {
        &self.groups[i]
    }

    /// The earliest pending deadline across all groups, as
    /// `(shard, deadline_ns)`. Ties go to the lowest shard index
    /// (deterministic).
    pub fn peek_deadline_ns(&self) -> Option<(usize, u64)> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.peek_deadline_ns().map(|d| (d, i)))
            .min()
            .map(|(d, i)| (i, d))
    }

    /// (Step mode) run the fleet-wide earliest due entry; returns the
    /// shard it belonged to and its report. `None` when every heap is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics when called on a threaded fleet.
    pub fn step(&self) -> Option<(usize, CycleReport)> {
        let (shard, _) = self.peek_deadline_ns()?;
        self.groups[shard].step().map(|r| (shard, r))
    }

    /// Completed cycles, summed over every shard group.
    pub fn cycles(&self) -> u64 {
        self.groups.iter().map(Scheduler::cycles).sum()
    }

    /// Failed cycles, summed over every shard group.
    pub fn failures(&self) -> u64 {
        self.groups.iter().map(Scheduler::failures).sum()
    }

    /// Per-shard telemetry snapshots, indexed by shard.
    pub fn stats(&self) -> Vec<SchedStats> {
        self.groups.iter().map(Scheduler::stats).collect()
    }

    /// Stop every group (waiting out in-flight cycles) and return the
    /// final per-shard snapshots.
    pub fn stop(self) -> Vec<SchedStats> {
        self.groups.into_iter().map(Scheduler::stop).collect()
    }
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("groups", &self.groups.len())
            .field("cycles", &self.cycles())
            .field("budget", &self.budget)
            .finish()
    }
}

/// Load-driven autoscaler knobs. Thresholds are multiples of the fair
/// per-shard share of a window's calls — total calls divided by the
/// *booted* shard count, not the active count, so a saturated active
/// subset still reads as hot when parked capacity exists. Scale-free:
/// the same config works at 10^2 and 10^6 calls per window.
#[derive(Copy, Clone, Debug)]
pub struct AutoscaleConfig {
    /// Minimum ns between evaluations on the caller's clock (wall in
    /// production, the stepped [`SimClock`] under test).
    pub eval_every_ns: u64,
    /// An active shard carrying more than `split_busy` × the fair share
    /// of the window's calls is split: its load is spread onto a fresh
    /// (or the least-busy) shard via live migration.
    pub split_busy: f64,
    /// An active shard carrying less than `merge_busy` × the fair share
    /// is merged away: residents live-migrate and cold records retarget
    /// into the least-busy sibling, and the shard deactivates.
    pub merge_busy: f64,
    /// Never deactivate below this many active shards.
    pub min_active: usize,
    /// Most migrations (plus retargets, on merge) per decision — the
    /// rebalance batch size, bounding per-tick disruption.
    pub max_moves: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            eval_every_ns: 1_000_000,
            split_busy: 1.5,
            merge_busy: 0.25,
            min_active: 1,
            max_moves: 8,
        }
    }
}

/// One autoscaling action, with the modules it actually moved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// `from` was hot: `moved` migrated to `to` (freshly activated, or
    /// the least-busy active sibling).
    Split {
        /// The hot shard.
        from: usize,
        /// Where the load went.
        to: usize,
        /// Successfully migrated modules, in decision order.
        moved: Vec<String>,
    },
    /// `from` was cold: `moved` migrated/retargeted into `into`, and
    /// `from` deactivated (only if fully drained).
    Merge {
        /// The cold shard.
        from: usize,
        /// The absorbing shard.
        into: usize,
        /// Successfully moved modules, in decision order.
        moved: Vec<String>,
    },
}

/// Autoscaler counters.
#[derive(Copy, Clone, Debug, Default)]
pub struct AutoscaleStats {
    /// Evaluations that looked at a window of telemetry.
    pub evals: u64,
    /// Split decisions taken.
    pub splits: u64,
    /// Merge decisions that fully drained and deactivated a shard.
    pub merges: u64,
    /// Modules moved (migrations + retargets).
    pub moves: u64,
    /// Moves refused by admission control (`Overloaded` / `RetryAfter`)
    /// or failed in flight — the autoscaler backs off, never forces.
    pub refused: u64,
}

/// The load-driven autoscaler: watches per-shard call telemetry from
/// the fleet's cold tier and splits hot shards / merges cold ones by
/// driving [`Fleet::migrate`] / [`Fleet::retarget`] batches under the
/// fleet's own admission control.
///
/// Shard windows are carved at boot
/// ([`layout::shard_windows`](adelie_kernel::layout)), so "split" and
/// "merge" manage the *active subset* of a booted maximum fleet:
/// splitting activates a parked shard and spreads load onto it,
/// merging drains a shard and parks it again. Every decision is a pure
/// function of the call counters and the catalog, so a fleet driven on
/// the stepped clock replays byte-identically — the property
/// `autoscaler_decisions_are_deterministic` pins.
///
/// Requires [`Fleet::enable_cold_tier`] (the telemetry source).
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    active: Vec<bool>,
    next_eval_ns: u64,
    stats: AutoscaleStats,
    decisions: Vec<(u64, ScaleDecision)>,
}

impl Autoscaler {
    /// An autoscaler over `shards` total booted shards, the first
    /// `initial_active` of them active.
    ///
    /// # Panics
    ///
    /// Panics if `initial_active` is zero or exceeds `shards`.
    pub fn new(shards: usize, initial_active: usize, cfg: AutoscaleConfig) -> Autoscaler {
        assert!(initial_active >= 1 && initial_active <= shards);
        let mut active = vec![false; shards];
        active[..initial_active].fill(true);
        Autoscaler {
            cfg,
            active,
            next_eval_ns: 0,
            stats: AutoscaleStats::default(),
            decisions: Vec::new(),
        }
    }

    /// Which shards are currently active.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Number of active shards.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// Counters so far.
    pub fn stats(&self) -> AutoscaleStats {
        self.stats
    }

    /// Every decision taken, stamped with its evaluation time — the
    /// determinism gate compares these across replayed runs.
    pub fn decisions(&self) -> &[(u64, ScaleDecision)] {
        &self.decisions
    }

    /// Evaluate one telemetry window at `now_ns` and rebalance.
    /// Consumes the fleet's call counters (`take_shard_calls` /
    /// `take_module_calls`). At most one decision per evaluation (a
    /// split, else a merge), moving at most `max_moves` modules —
    /// gradual by design, so a mis-estimated window cannot thrash the
    /// fleet.
    pub fn tick(&mut self, fleet: &Fleet, now_ns: u64) -> Vec<ScaleDecision> {
        if now_ns < self.next_eval_ns {
            return Vec::new();
        }
        self.next_eval_ns = now_ns.saturating_add(self.cfg.eval_every_ns);
        self.stats.evals += 1;
        let shard_calls = fleet.take_shard_calls();
        let module_calls: HashMap<String, u64> = fleet.take_module_calls().into_iter().collect();
        let total: u64 = shard_calls
            .iter()
            .enumerate()
            .filter(|(s, _)| self.active[*s])
            .map(|(_, c)| *c)
            .sum();
        if total == 0 {
            return Vec::new();
        }
        // Fair share over the *booted* fleet: a saturated active subset
        // must still read as hot relative to the parked capacity, or two
        // fully-loaded shards of four could never split (their share of
        // the active total is exactly 1.0 by construction).
        let fair = total as f64 / self.active.len() as f64;
        let mut out = Vec::new();
        if let Some(d) = self.try_split(fleet, &shard_calls, &module_calls, fair, now_ns) {
            out.push(d);
        } else if let Some(d) = self.try_merge(fleet, &shard_calls, &module_calls, fair, now_ns) {
            out.push(d);
        }
        out
    }

    /// Residents of `shard` that the catalog also assigns to it (a
    /// half-migrated orphan is the repair queue's problem, not a
    /// rebalance candidate), hottest first, names breaking ties.
    fn movable_residents(
        fleet: &Fleet,
        module_calls: &HashMap<String, u64>,
        shard: usize,
    ) -> Vec<(String, u64)> {
        let mut residents: Vec<(String, u64)> = fleet
            .registry(shard)
            .list()
            .into_iter()
            .filter(|n| fleet.shard_of(n) == Some(shard))
            .map(|n| {
                let calls = module_calls.get(&n).copied().unwrap_or(0);
                (n, calls)
            })
            .collect();
        residents.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        residents
    }

    fn try_split(
        &mut self,
        fleet: &Fleet,
        shard_calls: &[u64],
        module_calls: &HashMap<String, u64>,
        fair: f64,
        now_ns: u64,
    ) -> Option<ScaleDecision> {
        // Hottest shard above the split threshold; ties go to the
        // lowest index.
        let (from, calls) = shard_calls
            .iter()
            .enumerate()
            .filter(|(s, _)| self.active[*s])
            .map(|(s, c)| (s, *c))
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))?;
        if (calls as f64) <= self.cfg.split_busy * fair {
            return None;
        }
        // Prefer activating a parked shard; otherwise spill onto the
        // least-busy active sibling.
        let to = match self.active.iter().position(|a| !*a) {
            Some(parked) => parked,
            None => shard_calls
                .iter()
                .enumerate()
                .filter(|(s, _)| self.active[*s] && *s != from)
                .map(|(s, c)| (s, *c))
                .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
                .map(|(s, _)| s)?,
        };
        if to == from {
            return None;
        }
        // Move every other hot resident (the 2nd, 4th, … hottest):
        // splits the shard's load roughly in half while leaving the
        // single hottest tenant undisturbed.
        let ranked = Autoscaler::movable_residents(fleet, module_calls, from);
        let movers: Vec<String> = ranked
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, (n, _))| n)
            .take(self.cfg.max_moves)
            .collect();
        if movers.is_empty() {
            return None;
        }
        let was_active = self.active[to];
        self.active[to] = true;
        let mut moved = Vec::new();
        for name in movers {
            match fleet.migrate(&name, to) {
                Ok(_) => {
                    self.stats.moves += 1;
                    moved.push(name);
                }
                Err(FleetError::RetryAfter { .. }) => {
                    self.stats.refused += 1;
                    break;
                }
                Err(_) => self.stats.refused += 1,
            }
        }
        if moved.is_empty() {
            self.active[to] = was_active;
            return None;
        }
        self.stats.splits += 1;
        let d = ScaleDecision::Split { from, to, moved };
        self.decisions.push((now_ns, d.clone()));
        Some(d)
    }

    fn try_merge(
        &mut self,
        fleet: &Fleet,
        shard_calls: &[u64],
        module_calls: &HashMap<String, u64>,
        fair: f64,
        now_ns: u64,
    ) -> Option<ScaleDecision> {
        if self.active_count() <= self.cfg.min_active {
            return None;
        }
        // Coldest active shard below the merge threshold; ties go to
        // the highest index (drain late shards first, so the active
        // set stays a prefix when loads are symmetric).
        let (from, calls) = shard_calls
            .iter()
            .enumerate()
            .filter(|(s, _)| self.active[*s])
            .map(|(s, c)| (s, *c))
            .min_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))?;
        if (calls as f64) >= self.cfg.merge_busy * fair {
            return None;
        }
        let into = shard_calls
            .iter()
            .enumerate()
            .filter(|(s, _)| self.active[*s] && *s != from)
            .map(|(s, c)| (s, *c))
            .min_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(s, _)| s)?;
        let mut budget = self.cfg.max_moves;
        let mut moved = Vec::new();
        let mut drained = true;
        // Residents live-migrate (coldest first — cheap state, and the
        // hot ones keep serving from `from` until a later tick).
        let mut residents = Autoscaler::movable_residents(fleet, module_calls, from);
        residents.reverse();
        for (name, _) in residents {
            if budget == 0 {
                drained = false;
                break;
            }
            match fleet.migrate(&name, into) {
                Ok(_) => {
                    self.stats.moves += 1;
                    moved.push(name);
                    budget -= 1;
                }
                Err(FleetError::RetryAfter { .. }) => {
                    self.stats.refused += 1;
                    drained = false;
                    break;
                }
                Err(_) => {
                    self.stats.refused += 1;
                    drained = false;
                }
            }
        }
        // Cold records retarget (a catalog edit each; they follow the
        // same admission gate on the absorbing shard).
        if drained {
            for (name, shard) in fleet.modules() {
                if shard != from || fleet.registry(from).get(&name).is_some() {
                    continue;
                }
                if budget == 0 {
                    drained = false;
                    break;
                }
                match fleet.retarget(&name, into) {
                    Ok(()) => {
                        self.stats.moves += 1;
                        moved.push(name);
                        budget -= 1;
                    }
                    Err(FleetError::RetryAfter { .. }) => {
                        self.stats.refused += 1;
                        drained = false;
                        break;
                    }
                    Err(_) => {
                        self.stats.refused += 1;
                        drained = false;
                    }
                }
            }
        }
        if moved.is_empty() && !drained {
            return None;
        }
        if drained {
            self.active[from] = false;
            self.stats.merges += 1;
        }
        let d = ScaleDecision::Merge { from, into, moved };
        self.decisions.push((now_ns, d.clone()));
        Some(d)
    }
}

#[cfg(test)]
mod autoscale_tests {
    use super::*;
    use adelie_core::{ColdTierConfig, Pinned};
    use adelie_isa::{AluOp, Insn, Reg};
    use adelie_kernel::{FleetConfig, ShardedKernel};
    use adelie_plugin::{
        transform, DataInit, DataSpec, FuncSpec, MOp, ModuleSpec, TransformOptions,
    };

    /// `{name}_calc(x) = x + 9` plus a pointer table (adjust slots).
    fn spec(name: &str) -> ModuleSpec {
        let mut s = ModuleSpec::new(name);
        s.funcs.push(FuncSpec::exported(
            &format!("{name}_calc"),
            vec![
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rax,
                    src: Reg::Rdi,
                }),
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    imm: 9,
                }),
                MOp::Ret,
            ],
        ));
        s.data.push(DataSpec {
            name: format!("{name}_ops"),
            readonly: false,
            init: DataInit::PtrTable(vec![format!("{name}_calc")]),
        });
        s
    }

    /// A 4-shard fleet with every module pinned to shard 0 and the cold
    /// tier (the autoscaler's telemetry source) enabled.
    fn hot_shard_fleet(modules: usize) -> Fleet {
        let mut pins = HashMap::new();
        for i in 0..modules {
            pins.insert(format!("m{i}"), 0);
        }
        let fleet = Fleet::new(
            ShardedKernel::new(FleetConfig::seeded(4, 11)),
            Box::new(Pinned::new(pins, 0)),
        );
        fleet.enable_cold_tier(ColdTierConfig {
            idle_ns: u64::MAX,
            max_resident: 1 << 20,
        });
        let opts = TransformOptions::rerandomizable(true);
        for i in 0..modules {
            let obj = transform(&spec(&format!("m{i}")), &opts).unwrap();
            fleet.install(&obj, &opts).unwrap();
        }
        fleet
    }

    /// Drive `calls` outermost calls against each named module.
    fn drive(fleet: &Fleet, names: &[&str], calls: usize) {
        for name in names {
            let (shard, module) = fleet.ensure_resident(name).unwrap();
            let entry = module.export(&format!("{name}_calc")).unwrap();
            let mut vm = fleet.kernel(shard).vm();
            for _ in 0..calls {
                assert_eq!(vm.call(entry, &[1]).unwrap(), 10);
            }
        }
    }

    #[test]
    fn splits_a_hot_shard_onto_a_parked_one() {
        let fleet = hot_shard_fleet(6);
        let mut scaler = Autoscaler::new(
            4,
            2,
            AutoscaleConfig {
                eval_every_ns: 1_000,
                max_moves: 8,
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(scaler.active_count(), 2);
        // All traffic lands on shard 0: far beyond 2× the fair share.
        drive(&fleet, &["m0", "m1", "m2", "m3", "m4", "m5"], 4);
        let decisions = scaler.tick(&fleet, 1_000);
        let [ScaleDecision::Split { from: 0, to, moved }] = decisions.as_slice() else {
            panic!("hot shard must split, got {decisions:?}");
        };
        assert_eq!(*to, 2, "lowest parked shard is activated");
        assert_eq!(moved.len(), 3, "every other hot resident moves");
        assert!(scaler.active()[2]);
        for name in moved {
            assert_eq!(fleet.shard_of(name), Some(2));
        }
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
        let stats = scaler.stats();
        assert_eq!(stats.splits, 1);
        assert_eq!(stats.moves, 3);
        assert_eq!(stats.refused, 0);
    }

    #[test]
    fn merges_an_idle_shard_and_parks_it() {
        let fleet = hot_shard_fleet(4);
        let mut scaler = Autoscaler::new(
            4,
            2,
            AutoscaleConfig {
                eval_every_ns: 1_000,
                split_busy: 100.0, // splits off for this test
                max_moves: 16,
                ..AutoscaleConfig::default()
            },
        );
        // Move one module to shard 1 by hand, then let it go idle
        // while shard 0 stays busy.
        fleet.migrate("m3", 1).unwrap();
        fleet.take_shard_calls();
        fleet.take_module_calls();
        drive(&fleet, &["m0", "m1", "m2"], 8);
        let decisions = scaler.tick(&fleet, 1_000);
        let [ScaleDecision::Merge {
            from: 1,
            into: 0,
            moved,
        }] = decisions.as_slice()
        else {
            panic!("idle shard must merge, got {decisions:?}");
        };
        assert_eq!(moved, &["m3".to_string()]);
        assert_eq!(fleet.shard_of("m3"), Some(0));
        assert_eq!(scaler.active_count(), 1);
        assert!(!scaler.active()[1]);
        assert_eq!(scaler.stats().merges, 1);
        assert!(fleet.verify_layout().is_empty());
        assert!(fleet.verify_symbol_integrity().is_empty());
        // min_active floors further merges.
        drive(&fleet, &["m0"], 4);
        assert!(scaler.tick(&fleet, 2_000).is_empty());
        assert_eq!(scaler.active_count(), 1);
    }

    /// The determinism gate: two fleets driven through the identical
    /// call script produce byte-identical decision logs and final
    /// placements.
    #[test]
    fn autoscaler_decisions_are_deterministic() {
        let run = || {
            let fleet = hot_shard_fleet(6);
            let mut scaler = Autoscaler::new(
                4,
                2,
                AutoscaleConfig {
                    eval_every_ns: 1_000,
                    ..AutoscaleConfig::default()
                },
            );
            for round in 1..=3u64 {
                drive(&fleet, &["m0", "m1", "m2"], 3);
                drive(&fleet, &["m3"], 1);
                scaler.tick(&fleet, round * 1_000);
            }
            (format!("{:?}", scaler.decisions()), fleet.modules())
        };
        let (log_a, mods_a) = run();
        let (log_b, mods_b) = run();
        assert_eq!(log_a, log_b, "decision log must replay");
        assert_eq!(mods_a, mods_b, "final placement must replay");
    }
}
