//! The scheduler's injectable timeline.
//!
//! Every deadline, period, and rate sample in `adelie-sched` is a
//! nanosecond offset on a [`Clock`]: either the wall clock (production —
//! `Instant`-backed, monotonic) or a [`SimClock`] (verification — a
//! counter that advances only when the test harness says so). The
//! virtual form is what makes `adelie-testkit` runs *deterministic*:
//! with a seeded kernel RNG and a virtual clock, two runs of the same
//! scenario produce byte-identical cycle timelines, placements, and
//! stats, so the fault-injection and attack-window suites can assert on
//! exact orderings instead of sleeping and hoping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A virtual nanosecond timeline. Time never moves on its own — only
/// [`advance`](SimClock::advance)/[`advance_to`](SimClock::advance_to)
/// move it, and never backwards.
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock::default())
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Move time forward by `d`; returns the new now.
    pub fn advance(&self, d: Duration) -> u64 {
        self.now_ns.fetch_add(d.as_nanos() as u64, Ordering::AcqRel) + d.as_nanos() as u64
    }

    /// Move time forward to `ns` (no-op if already past it).
    pub fn advance_to(&self, ns: u64) {
        self.now_ns.fetch_max(ns, Ordering::AcqRel);
    }
}

/// The timeline a scheduler runs on.
#[derive(Clone, Debug)]
pub enum Clock {
    /// Real time, as nanoseconds since the clock was created.
    Wall {
        /// t = 0 of this timeline.
        epoch: Instant,
    },
    /// Harness-driven virtual time.
    Virtual(Arc<SimClock>),
}

impl Clock {
    /// A wall clock whose t = 0 is now.
    pub fn wall() -> Clock {
        Clock::Wall {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since this clock's t = 0.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall { epoch } => epoch.elapsed().as_nanos() as u64,
            Clock::Virtual(sim) => sim.now_ns(),
        }
    }

    /// Whether this is a harness-driven virtual timeline.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }
}

impl From<Arc<SimClock>> for Clock {
    fn from(sim: Arc<SimClock>) -> Clock {
        Clock::Virtual(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_only_moves_when_told() {
        let sim = SimClock::new();
        let clock: Clock = sim.clone().into();
        assert_eq!(clock.now_ns(), 0);
        assert!(clock.is_virtual());
        sim.advance(Duration::from_millis(3));
        assert_eq!(clock.now_ns(), 3_000_000);
        sim.advance_to(2_000_000); // backwards: no-op
        assert_eq!(clock.now_ns(), 3_000_000);
        sim.advance_to(5_000_000);
        assert_eq!(clock.now_ns(), 5_000_000);
    }

    #[test]
    fn wall_clock_moves_on_its_own() {
        let clock = Clock::wall();
        assert!(!clock.is_virtual());
        let a = clock.now_ns();
        std::thread::sleep(Duration::from_millis(1));
        assert!(clock.now_ns() > a);
    }
}
