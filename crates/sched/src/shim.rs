//! Back-compatibility shim: the old `Rerandomizer` API as a thin layer
//! over a single-worker [`Scheduler`].

#![allow(deprecated)]

use crate::scheduler::{SchedConfig, Scheduler};
use adelie_core::ModuleRegistry;
use adelie_kernel::Kernel;
use std::sync::Arc;
use std::time::Duration;

/// Cycle counters (the dmesg block of the artifact appendix).
#[derive(Copy, Clone, Default, Debug)]
pub struct RerandStats {
    /// Completed re-randomization cycles (sum over modules).
    pub randomized: u64,
    /// Cycles that failed and were retried (always 0 for a healthy run).
    pub failed: u64,
    /// Cumulative wall time spent inside cycles.
    pub busy: Duration,
}

/// The legacy background randomizer thread — the `randmod` kernel
/// module of the artifact (`modprobe randmod module_names=e1000,nvme
/// rand_period=20`), now a thin shim over a single-worker
/// [`Scheduler`] with [`Policy::FixedPeriod`](crate::Policy).
///
/// Unlike the original, a failed cycle no longer kills the thread: it
/// is counted in [`RerandStats::failed`] and every module keeps
/// cycling.
#[deprecated(
    since = "0.2.0",
    note = "use adelie_sched::Scheduler: multi-worker, per-module policies, CPU budget"
)]
pub struct Rerandomizer {
    inner: Scheduler,
}

impl Rerandomizer {
    /// Start re-randomizing `module_names` every `period` on one worker.
    ///
    /// # Panics
    ///
    /// Panics if any named module is missing or not re-randomizable.
    pub fn spawn(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        module_names: &[&str],
        period: Duration,
    ) -> Rerandomizer {
        kernel.printk.log("Randomize: kthread started");
        Rerandomizer {
            inner: Scheduler::spawn(kernel, registry, module_names, SchedConfig::serial(period)),
        }
    }

    /// Completed module-cycles so far.
    pub fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RerandStats {
        let s = self.inner.stats();
        RerandStats {
            randomized: s.cycles,
            failed: s.failures,
            busy: s.busy,
        }
    }

    /// Stop the worker and wait for it.
    pub fn stop(self) -> RerandStats {
        let s = self.inner.stop();
        RerandStats {
            randomized: s.cycles,
            failed: s.failures,
            busy: s.busy,
        }
    }
}

impl std::fmt::Debug for Rerandomizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rerandomizer")
            .field("cycles", &self.cycles())
            .finish()
    }
}
