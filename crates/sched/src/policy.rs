//! Per-module re-randomization policies.
//!
//! The period between two moves of a module is the security knob of the
//! whole system: §6 of the paper bounds the JIT-ROP attacker by the
//! race between probe rate and re-randomization latency, so the value a
//! cycle buys depends on how *hot* and how *gadget-rich* the module is.
//! A fixed global period (the artifact's `rand_period=`) over-spends on
//! idle, clean modules and under-protects busy, gadget-dense ones.
//!
//! Three policies, selectable per module:
//!
//! * [`Policy::FixedPeriod`] — the paper's behavior, kept as baseline,
//! * [`Policy::Jittered`] — a fixed mean with uniform jitter, denying
//!   the attacker a predictable move schedule to race against,
//! * [`Policy::Adaptive`] — the period *tightens* with observed call
//!   rate (more externally-driven entries → more addresses leaking into
//!   stacks and telemetry) and with static gadget exposure (scanned via
//!   `adelie-gadget`), and *loosens* under CPU-budget pressure reported
//!   by the [`BudgetController`](crate::BudgetController).

use std::time::Duration;

/// The observations a policy turns into the next period.
#[derive(Copy, Clone, Debug)]
pub struct PolicyInputs {
    /// Outermost calls per second hitting the module since the last
    /// cycle (0 when unknown).
    pub calls_per_sec: f64,
    /// Gadget density of the movable text, in gadgets per KiB.
    pub exposure: f64,
    /// Budget pressure: ratio of modeled CPU spent re-randomizing to
    /// the configured cap (1.0 = exactly at budget, >1 over).
    pub pressure: f64,
    /// A uniform sample in `[0, 1)` for jitter (supplied by the caller
    /// from the kernel RNG so runs stay seed-deterministic).
    pub jitter_u: f64,
}

impl Default for PolicyInputs {
    fn default() -> Self {
        PolicyInputs {
            calls_per_sec: 0.0,
            exposure: 0.0,
            pressure: 0.0,
            jitter_u: 0.0,
        }
    }
}

/// How one module's next re-randomization deadline is computed.
#[derive(Clone, PartialEq, Debug)]
pub enum Policy {
    /// Move every `period`, exactly (paper §4.2 / `randmod`).
    FixedPeriod(Duration),
    /// Move every `base ± base·jitter`, uniformly — same mean cost,
    /// unpredictable schedule.
    Jittered {
        /// Mean period.
        base: Duration,
        /// Relative jitter amplitude in `[0, 1]` (0.25 → ±25%).
        jitter: f64,
    },
    /// Demand-driven period in `[min, max]`.
    ///
    /// `urgency = 1 + calls_per_sec/rate_scale + exposure/exposure_scale`
    /// and the period is `max / urgency`, clamped to `min` — then
    /// stretched by budget pressure above 1.0 (bounded, so a module is
    /// never starved forever).
    Adaptive {
        /// Floor — never move more often than this.
        min: Duration,
        /// Ceiling — a cold, clean module moves this often.
        max: Duration,
        /// Calls/sec adding one unit of urgency.
        rate_scale: f64,
        /// Gadgets/KiB adding one unit of urgency.
        exposure_scale: f64,
    },
}

/// How far budget pressure may stretch an adaptive period beyond `max`
/// (also the bound on the scheduler's graceful-degradation stretch for
/// policies that don't consume pressure themselves).
pub(crate) const MAX_PRESSURE_STRETCH: f64 = 16.0;

impl Policy {
    /// The artifact's default: a fixed 20 ms period
    /// (`modprobe randmod … rand_period=20`).
    pub fn default_fixed() -> Policy {
        Policy::FixedPeriod(Duration::from_millis(20))
    }

    /// A reasonable adaptive configuration: 1–50 ms, one urgency unit
    /// per 10k calls/sec, one per 20 gadgets/KiB.
    pub fn default_adaptive() -> Policy {
        Policy::Adaptive {
            min: Duration::from_millis(1),
            max: Duration::from_millis(50),
            rate_scale: 10_000.0,
            exposure_scale: 20.0,
        }
    }

    /// Whether this policy already folds budget pressure into its
    /// period (if not, the scheduler's graceful-degradation stretch
    /// applies pressure on top — exactly one of the two mechanisms
    /// stretches, never both).
    pub fn pressure_aware(&self) -> bool {
        matches!(self, Policy::Adaptive { .. })
    }

    /// Short label for telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::FixedPeriod(_) => "fixed",
            Policy::Jittered { .. } => "jittered",
            Policy::Adaptive { .. } => "adaptive",
        }
    }

    /// Compute the period to wait before the module's next cycle.
    pub fn next_period(&self, inputs: &PolicyInputs) -> Duration {
        match *self {
            Policy::FixedPeriod(period) => period,
            Policy::Jittered { base, jitter } => {
                let jitter = jitter.clamp(0.0, 1.0);
                let u = inputs.jitter_u.clamp(0.0, 1.0);
                let factor = 1.0 - jitter + 2.0 * jitter * u;
                base.mul_f64(factor.max(0.0))
            }
            Policy::Adaptive {
                min,
                max,
                rate_scale,
                exposure_scale,
            } => {
                let rate_urgency = if rate_scale > 0.0 {
                    (inputs.calls_per_sec / rate_scale).max(0.0)
                } else {
                    0.0
                };
                let exposure_urgency = if exposure_scale > 0.0 {
                    (inputs.exposure / exposure_scale).max(0.0)
                } else {
                    0.0
                };
                let urgency = 1.0 + rate_urgency + exposure_urgency;
                let mut period = max.div_f64(urgency).max(min);
                // Loosen under budget pressure: above 1.0 the controller
                // is over its cap and demand must yield — bounded so the
                // module still cycles eventually.
                if inputs.pressure > 1.0 {
                    period = period.mul_f64(inputs.pressure.min(MAX_PRESSURE_STRETCH));
                }
                period.min(max.mul_f64(MAX_PRESSURE_STRETCH))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(calls_per_sec: f64, exposure: f64, pressure: f64, jitter_u: f64) -> PolicyInputs {
        PolicyInputs {
            calls_per_sec,
            exposure,
            pressure,
            jitter_u,
        }
    }

    #[test]
    fn fixed_is_fixed() {
        let p = Policy::FixedPeriod(Duration::from_millis(20));
        assert_eq!(
            p.next_period(&inputs(1e9, 1e9, 1e9, 0.99)),
            Duration::from_millis(20),
            "fixed period ignores every input"
        );
    }

    #[test]
    fn jitter_stays_within_band_and_varies() {
        let p = Policy::Jittered {
            base: Duration::from_millis(10),
            jitter: 0.25,
        };
        let lo = p.next_period(&inputs(0.0, 0.0, 0.0, 0.0));
        let hi = p.next_period(&inputs(0.0, 0.0, 0.0, 0.999));
        assert_eq!(lo, Duration::from_micros(7_500));
        assert!(hi > Duration::from_micros(12_480) && hi <= Duration::from_micros(12_500));
        let mid = p.next_period(&inputs(0.0, 0.0, 0.0, 0.5));
        assert_eq!(mid, Duration::from_millis(10), "u=0.5 is the mean");
    }

    fn adaptive() -> Policy {
        Policy::Adaptive {
            min: Duration::from_millis(1),
            max: Duration::from_millis(50),
            rate_scale: 1_000.0,
            exposure_scale: 10.0,
        }
    }

    #[test]
    fn adaptive_idle_module_sits_at_max() {
        assert_eq!(
            adaptive().next_period(&inputs(0.0, 0.0, 0.0, 0.0)),
            Duration::from_millis(50)
        );
    }

    #[test]
    fn adaptive_tightens_with_call_rate() {
        let p = adaptive();
        let idle = p.next_period(&inputs(0.0, 0.0, 0.0, 0.0));
        let warm = p.next_period(&inputs(1_000.0, 0.0, 0.0, 0.0));
        let hot = p.next_period(&inputs(9_000.0, 0.0, 0.0, 0.0));
        assert!(warm < idle);
        assert_eq!(warm, Duration::from_millis(25), "one urgency unit halves");
        assert_eq!(hot, Duration::from_millis(5));
    }

    #[test]
    fn adaptive_tightens_with_gadget_exposure() {
        let p = adaptive();
        let clean = p.next_period(&inputs(0.0, 0.0, 0.0, 0.0));
        let dense = p.next_period(&inputs(0.0, 30.0, 0.0, 0.0));
        assert!(dense < clean);
        assert_eq!(dense, Duration::from_micros(12_500)); // 50ms / 4
    }

    #[test]
    fn adaptive_clamps_at_min() {
        let p = adaptive();
        assert_eq!(
            p.next_period(&inputs(1e12, 1e12, 0.0, 0.0)),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn adaptive_loosens_under_pressure_but_stays_live() {
        let p = adaptive();
        let nominal = p.next_period(&inputs(1_000.0, 0.0, 0.0, 0.0));
        let squeezed = p.next_period(&inputs(1_000.0, 0.0, 2.0, 0.0));
        assert_eq!(squeezed, nominal.mul_f64(2.0));
        // Pathological pressure is bounded: the module still cycles.
        let worst = p.next_period(&inputs(1_000.0, 0.0, 1e9, 0.0));
        assert!(worst <= Duration::from_millis(50).mul_f64(16.0));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::default_fixed().name(), "fixed");
        assert_eq!(adaptive().name(), "adaptive");
        assert_eq!(
            Policy::Jittered {
                base: Duration::from_millis(1),
                jitter: 0.1
            }
            .name(),
            "jittered"
        );
    }
}
