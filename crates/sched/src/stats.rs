//! Per-module scheduler telemetry: lock-free cycle-latency histograms,
//! missed-deadline and failure counters, and the aggregate
//! [`SchedStats`] snapshot surfaced next to the artifact's dmesg block.

use crate::health::HealthState;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds; 48 buckets cover ~3 days).
const BUCKETS: usize = 48;

/// A concurrent power-of-two latency histogram.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, sample: Duration) {
        let ns = (sample.as_nanos() as u64).max(1);
        let idx = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let percentile = |p: f64| -> Duration {
            if count == 0 {
                return Duration::ZERO;
            }
            let rank = ((count as f64 * p).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Upper bound of the bucket: pessimistic but stable.
                    return Duration::from_nanos(2u64.saturating_pow(i as u32 + 1));
                }
            }
            Duration::from_nanos(u64::MAX)
        };
        LatencySnapshot {
            count,
            mean: Duration::from_nanos(sum_ns.checked_div(count).unwrap_or(0)),
            p50: percentile(0.50),
            p90: percentile(0.90),
            p99: percentile(0.99),
            max: Duration::from_nanos(self.max_ns.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Summary of one histogram.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (bucket upper bound).
    pub p50: Duration,
    /// 90th percentile (bucket upper bound).
    pub p90: Duration,
    /// 99th percentile (bucket upper bound).
    pub p99: Duration,
    /// Largest sample, exact.
    pub max: Duration,
}

/// One module's view in a [`SchedStats`] snapshot.
#[derive(Clone, Debug)]
pub struct ModuleSchedStats {
    /// Module name.
    pub name: String,
    /// Policy label (`fixed`, `jittered`, `adaptive`).
    pub policy: &'static str,
    /// Completed cycles.
    pub cycles: u64,
    /// Failed cycles (module kept running at its old base).
    pub failures: u64,
    /// Cycles that started more than one period late.
    pub missed_deadlines: u64,
    /// Cycles whose `update_pointers` callback failed after the move
    /// committed: the module runs at its new base but may still hold
    /// run-time pointers into the retired layout (previously dropped
    /// silently; see `LoadedModule::pointer_refresh_failures`).
    pub pointer_refresh_failures: u64,
    /// Period the policy currently prescribes.
    pub current_period: Duration,
    /// Last measured call rate.
    pub calls_per_sec: f64,
    /// Last measured gadget density (gadgets/KiB of movable text).
    pub exposure: f64,
    /// Cycle-latency distribution.
    pub latency: LatencySnapshot,
    /// Supervision state (Healthy / Degraded / Quarantined).
    pub health: HealthState,
    /// Consecutive failed cycles right now (0 after any success).
    pub failure_streak: u32,
    /// Times this module entered quarantine.
    pub quarantines: u64,
    /// Un-quarantine probes attempted (budget-exempt cycles).
    pub probes: u64,
    /// Times a success pulled the module back to Healthy.
    pub recoveries: u64,
    /// Cycles whose period was stretched by graceful degradation.
    pub period_stretches: u64,
    /// Rate-limited "cycle failed" lines swallowed for this module.
    pub suppressed_logs: u64,
}

/// Aggregate scheduler counters (the `SchedStats` of the issue): what
/// [`log_stats`](crate::Scheduler::log_stats) prints and what benches
/// assert on.
#[derive(Clone, Debug)]
pub struct SchedStats {
    /// Completed module-cycles, summed over modules.
    pub cycles: u64,
    /// Failed cycles, summed over modules.
    pub failures: u64,
    /// Missed deadlines, summed over modules.
    pub missed_deadlines: u64,
    /// Committed moves whose pointer-refresh callback failed, summed
    /// over modules (0 for a healthy fleet).
    pub pointer_refresh_failures: u64,
    /// Cumulative wall time spent inside cycles (all workers).
    pub busy: Duration,
    /// Budget pressure at snapshot time (0 when uncapped).
    pub cpu_pressure: f64,
    /// Exposure refreshes answered from the gadget-scan content-hash
    /// cache (zero-copy moves never change the text, so steady-state
    /// refreshes should land here).
    pub exposure_scan_hits: u64,
    /// Exposure refreshes that had to run a full gadget scan (one per
    /// *distinct* module text in a healthy fleet).
    pub exposure_scan_misses: u64,
    /// Quarantine entries, summed over modules (0 for a healthy fleet).
    pub quarantines: u64,
    /// Un-quarantine probes, summed over modules.
    pub probes: u64,
    /// Recoveries back to Healthy, summed over modules.
    pub recoveries: u64,
    /// Graceful-degradation period stretches, summed over modules.
    pub period_stretches: u64,
    /// Rate-limited failure logs swallowed, summed over modules.
    pub suppressed_logs: u64,
    /// Per-module breakdown.
    pub modules: Vec<ModuleSchedStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 40, 80, 160, 320, 640, 1280, 2560, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, Duration::from_micros(100_000));
        assert!(s.p50 >= Duration::from_micros(80) && s.p50 <= Duration::from_micros(300));
        assert!(s.p99 >= Duration::from_micros(100_000));
        assert!(s.mean > Duration::from_micros(100) && s.mean < Duration::from_micros(100_000));
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.mean, Duration::ZERO);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 1..=1000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }
}
