//! The multi-worker re-randomization scheduler.
//!
//! A pool of `workers` randomizer threads shares one deadline heap.
//! Each entry is one module; when its deadline comes due, whichever
//! worker is free pops it, runs one [`rerandomize_module`] cycle
//! (placement is reservation-based in `adelie-core`, so cycles of
//! independent modules overlap), records telemetry, asks the module's
//! [`Policy`] for the next period, folds in the
//! [`BudgetController`]'s backpressure, and pushes the entry back.
//!
//! Because an entry is *out of the heap* while its cycle runs, a module
//! is never cycled by two workers at once — `move_lock` never sees pool
//! contention for the same module.
//!
//! Failures are non-fatal: a failed cycle is counted, logged to printk,
//! and the module simply keeps running at its current base until the
//! next deadline (the old single-thread `Rerandomizer` silently died on
//! the first error, taking every other module's protection with it).
//!
//! # Timelines and step mode
//!
//! All deadlines are nanosecond offsets on a [`Clock`]. Production
//! pools ([`Scheduler::spawn`]) run on the wall clock with real worker
//! threads. Verification pools ([`Scheduler::spawn_stepped`]) run on a
//! [`SimClock`] with **no threads at all**: the harness calls
//! [`Scheduler::step`] (or [`Scheduler::step_choice`], to explore
//! worker-pool interleavings) and each call pops one due entry,
//! advances virtual time to its deadline, runs the cycle inline on the
//! calling thread, charges a *modeled* cycle cost to the budget, and
//! reschedules. Same heap, same policies, same budget arithmetic —
//! byte-identical timelines for a given seed.

use crate::budget::BudgetController;
use crate::clock::{Clock, SimClock};
use crate::health::{CycleError, HealthEvent, HealthState, ModuleHealth, SupervisionConfig};
use crate::policy::{Policy, PolicyInputs, MAX_PRESSURE_STRETCH};
use crate::stats::{LatencyHistogram, ModuleSchedStats, SchedStats};
use adelie_core::{log_stats, rerandomize_module_epoch, LoadedModule, ModuleRegistry};
use adelie_gadget::ScanCache;
use adelie_kernel::Kernel;
use adelie_vmem::{PteFlags, PAGE_SIZE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler configuration (the `SchedConfig` knob workloads expose).
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Randomizer pool size (concurrent cycles of *distinct* modules).
    /// In step mode this is the *modeled* width: how many due entries
    /// may be reordered against each other by [`Scheduler::step_choice`].
    pub workers: usize,
    /// Default policy for every module (override per module via
    /// [`Scheduler::spawn_with_policies`]).
    pub policy: Policy,
    /// Cap on the fraction of modeled CPU the pool may consume
    /// (`f64::INFINITY` = uncapped).
    pub max_cpu_frac: f64,
    /// Re-scan gadget exposure every N completed cycles per module
    /// (0 = scan once at startup only).
    pub exposure_refresh: u64,
    /// Width of the *shared shootdown epoch*: cycles whose deadlines
    /// fall into the same window of this length receive the same epoch
    /// tag, so their page-table batches coalesce their TLB invalidation
    /// sets into one merged log slot (`adelie_vmem::Batch::epoch`). A
    /// lagging TLB then pays one partial invalidation pass for the
    /// whole group of same-deadline cycles. `Duration::ZERO` coalesces
    /// only exactly-equal deadlines.
    pub shootdown_epoch: Duration,
    /// Supervision thresholds: failure streaks before a module is
    /// degraded (exponential backoff) and then quarantined (probes
    /// only), plus the backoff cap and retry jitter.
    pub supervision: SupervisionConfig,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 2,
            policy: Policy::default_fixed(),
            max_cpu_frac: f64::INFINITY,
            exposure_refresh: 64,
            shootdown_epoch: Duration::from_millis(1),
            supervision: SupervisionConfig::default(),
        }
    }
}

impl SchedConfig {
    /// One worker, fixed period — the exact shape of the legacy
    /// randomizer kthread.
    pub fn serial(period: Duration) -> SchedConfig {
        SchedConfig {
            workers: 1,
            policy: Policy::FixedPeriod(period),
            ..SchedConfig::default()
        }
    }

    /// `workers` workers under the default adaptive policy.
    pub fn adaptive(workers: usize) -> SchedConfig {
        SchedConfig {
            workers,
            policy: Policy::default_adaptive(),
            ..SchedConfig::default()
        }
    }
}

/// What one scheduler step (or worker iteration) did — returned by
/// [`Scheduler::step`] so a deterministic harness can follow the cycle
/// timeline without scraping printk.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Module that was cycled.
    pub module: String,
    /// The deadline that triggered the cycle (clock ns).
    pub deadline_ns: u64,
    /// When the cycle actually started (clock ns).
    pub started_ns: u64,
    /// When the cycle finished (clock ns).
    pub finished_ns: u64,
    /// New movable base on success.
    pub new_base: Option<u64>,
    /// Typed error on failure — match on variants, not rendered text.
    pub error: Option<CycleError>,
    /// Period the policy chose for the next cycle, in ns (after any
    /// supervision backoff/stretch).
    pub period_ns: u64,
    /// The rescheduled deadline (clock ns).
    pub next_deadline_ns: u64,
    /// Whether this cycle was an un-quarantine probe (the module was
    /// Quarantined when it ran; probes are budget-exempt).
    pub probe: bool,
    /// The module's health state *after* this cycle's transition.
    pub health: HealthState,
}

impl CycleReport {
    /// Whether the cycle completed.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Per-module scheduling state.
struct ModuleEntry {
    module: Arc<LoadedModule>,
    /// Swappable mid-flight via [`Scheduler::set_policy`].
    policy: Mutex<Policy>,
    /// Outermost calls observed entering this module (bumped by the
    /// kernel call observer via the immovable-part range).
    calls: Arc<AtomicU64>,
    /// `(clock ns, calls)` at the last rate sample.
    rate_anchor: Mutex<(u64, u64)>,
    /// Last computed call rate (f64 bits).
    calls_per_sec: AtomicU64,
    /// Gadgets/KiB of movable text (f64 bits).
    exposure: AtomicU64,
    /// Current period in nanoseconds.
    period_ns: AtomicU64,
    cycles: AtomicU64,
    failures: AtomicU64,
    missed_deadlines: AtomicU64,
    latency: LatencyHistogram,
    /// Supervision record: failure streak, Healthy/Degraded/Quarantined
    /// state, probe/recovery counters. Uncontended in practice — the
    /// entry is out of the heap while its cycle runs.
    health: Mutex<ModuleHealth>,
    /// Cycles whose period was stretched by graceful degradation
    /// (budget pressure on a non-pressure-aware policy, or fault storm).
    period_stretches: AtomicU64,
    /// "cycle failed" printk lines swallowed by the rate limiter.
    suppressed_logs: AtomicU64,
}

impl ModuleEntry {
    fn load_f64(cell: &AtomicU64) -> f64 {
        f64::from_bits(cell.load(Ordering::Relaxed))
    }

    fn store_f64(cell: &AtomicU64, v: f64) {
        cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Scan the movable text for gadgets and update the exposure metric
    /// (gadgets per KiB). Takes `move_lock` so the base can't move
    /// mid-read. Zero-copy re-randomization never changes a byte of the
    /// text, so the scan is memoized by content hash in `cache`: a
    /// no-op cycle (nothing rewrote the module) costs one hash, zero
    /// rescans.
    fn refresh_exposure(&self, kernel: &Arc<Kernel>, cache: &ScanCache) {
        let _guard = self.module.move_lock.lock();
        let base = self.module.movable_base.load(Ordering::Acquire);
        let text_pages: usize = self
            .module
            .movable
            .groups
            .iter()
            .filter(|g| g.flags == PteFlags::TEXT)
            .map(|g| g.pages)
            .sum();
        if text_pages == 0 {
            return;
        }
        let mut text = vec![0u8; text_pages * PAGE_SIZE];
        if kernel
            .space
            .read_bytes(&kernel.phys, base, &mut text)
            .is_err()
        {
            return;
        }
        let gadgets = cache.gadget_count(&text);
        let kib = (text.len() as f64) / 1024.0;
        Self::store_f64(&self.exposure, gadgets as f64 / kib);
    }

    /// Sample call rate since the last cycle and assemble policy inputs.
    fn sample_inputs(&self, kernel: &Arc<Kernel>, now_ns: u64, pressure: f64) -> PolicyInputs {
        let calls_now = self.calls.load(Ordering::Relaxed);
        let mut anchor = self.rate_anchor.lock().unwrap_or_else(|e| e.into_inner());
        let dt_ns = now_ns.saturating_sub(anchor.0);
        if dt_ns >= 100_000 {
            let rate = (calls_now - anchor.1) as f64 / (dt_ns as f64 / 1e9);
            Self::store_f64(&self.calls_per_sec, rate);
            *anchor = (now_ns, calls_now);
        }
        drop(anchor);
        PolicyInputs {
            calls_per_sec: Self::load_f64(&self.calls_per_sec),
            exposure: Self::load_f64(&self.exposure),
            pressure,
            jitter_u: kernel.rng_below(1 << 20) as f64 / (1u64 << 20) as f64,
        }
    }

    fn stats(&self) -> ModuleSchedStats {
        let health = self.health.lock().unwrap_or_else(|e| e.into_inner());
        ModuleSchedStats {
            name: self.module.name.to_string(),
            policy: self.policy.lock().unwrap_or_else(|e| e.into_inner()).name(),
            cycles: self.cycles.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            missed_deadlines: self.missed_deadlines.load(Ordering::Relaxed),
            pointer_refresh_failures: self.module.pointer_refresh_failures.load(Ordering::Relaxed),
            current_period: Duration::from_nanos(self.period_ns.load(Ordering::Relaxed)),
            calls_per_sec: Self::load_f64(&self.calls_per_sec),
            exposure: Self::load_f64(&self.exposure),
            latency: self.latency.snapshot(),
            health: health.state,
            failure_streak: health.streak,
            quarantines: health.quarantines,
            probes: health.probes,
            recoveries: health.recoveries,
            period_stretches: self.period_stretches.load(Ordering::Relaxed),
            suppressed_logs: self.suppressed_logs.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the handle and the workers.
struct Shared {
    /// Min-heap of `(deadline ns, entry index)`. An entry being cycled
    /// is not in the heap.
    queue: Mutex<BinaryHeap<Reverse<(u64, usize)>>>,
    wakeup: Condvar,
    stop: AtomicBool,
    entries: Vec<Arc<ModuleEntry>>,
    busy_ns: AtomicU64,
    /// The timeline deadlines live on.
    clock: Clock,
    /// Modeled cost charged per cycle in step mode (wall-clock pools
    /// ignore it and charge measured real time instead).
    step_cost_ns: u64,
    /// Modeled pool width (bounds step-mode reordering).
    workers_model: usize,
    /// Shared-shootdown-epoch window in ns (see
    /// [`SchedConfig::shootdown_epoch`]).
    epoch_quantum_ns: u64,
    /// Content-hash memoization of gadget scans: the Adaptive policy's
    /// exposure refresh stops re-decoding unchanged module text every
    /// cycle (hit/miss counters surface in [`SchedStats`]).
    scan_cache: ScanCache,
    /// Supervision thresholds shared by every entry.
    supervision: SupervisionConfig,
    /// Modules currently not Healthy (Degraded or Quarantined). When a
    /// majority of the pool is unhealthy — a fault storm — remaining
    /// periods stretch instead of silently missing deadlines.
    unhealthy: AtomicUsize,
}

impl Shared {
    /// The shared shootdown-epoch tag for a cycle due at `deadline_ns`:
    /// same-deadline cycles (same window) get the same tag and their
    /// invalidation sets coalesce.
    fn epoch_of(&self, deadline_ns: u64) -> u64 {
        // Zero-width window ⇒ coalesce exactly-equal deadlines only.
        deadline_ns
            .checked_div(self.epoch_quantum_ns)
            .unwrap_or(deadline_ns)
    }
}

/// The randomizer pool: the subsystem replacing the paper artifact's
/// single `randmod` kthread.
///
/// Run at most one pool per kernel at a time: the kernel's per-call
/// observer is a single slot, so a second concurrently-spawned pool
/// would replace the first one's call-rate telemetry hook (cycling
/// itself would still be correct, but `Adaptive` call-rate inputs of
/// the first pool would freeze).
pub struct Scheduler {
    shared: Arc<Shared>,
    budget: Arc<BudgetController>,
    kernel: Arc<Kernel>,
    registry: Arc<ModuleRegistry>,
    workers: Vec<std::thread::JoinHandle<()>>,
    exposure_refresh: u64,
    /// Whether this pool installed the kernel call observer (and must
    /// therefore remove it on shutdown — never someone else's).
    installed_observer: bool,
}

impl Scheduler {
    /// Start a pool over `module_names`, all under `config.policy`.
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        module_names: &[&str],
        config: SchedConfig,
    ) -> Scheduler {
        let with_policies: Vec<(&str, Policy)> = module_names
            .iter()
            .map(|&n| (n, config.policy.clone()))
            .collect();
        Scheduler::spawn_with_policies(kernel, registry, &with_policies, config)
    }

    /// Start a pool with an explicit policy per module.
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn_with_policies(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(&str, Policy)],
        config: SchedConfig,
    ) -> Scheduler {
        Scheduler::spawn_with_policies_shared(kernel, registry, modules, config, None)
    }

    /// [`Scheduler::spawn_with_policies`] with an optional **shared**
    /// [`BudgetController`]: fleet mode runs one worker group per shard
    /// but all groups record spend into (and feel backpressure from)
    /// the same global budget — a hot shard's cycles stretch every
    /// shard's adaptive periods, keeping whole-machine randomizer CPU
    /// under one cap. `None` creates a private per-pool budget (the
    /// single-kernel shape).
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn_with_policies_shared(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(&str, Policy)],
        config: SchedConfig,
        budget: Option<Arc<BudgetController>>,
    ) -> Scheduler {
        let mut sched = Scheduler::build(
            kernel,
            registry,
            modules,
            &config,
            Clock::wall(),
            Duration::ZERO,
            budget,
        );
        let workers = (0..config.workers)
            .map(|w| {
                let shared = sched.shared.clone();
                let kernel = sched.kernel.clone();
                let registry = sched.registry.clone();
                let budget = sched.budget.clone();
                let refresh = config.exposure_refresh;
                std::thread::Builder::new()
                    .name(format!("randomizer-{w}"))
                    .spawn(move || worker_loop(shared, kernel, registry, budget, refresh))
                    .expect("spawn randomizer worker")
            })
            .collect();
        sched.workers = workers;
        sched
    }

    /// Build a **stepped** pool on a virtual clock: no worker threads
    /// are spawned; the caller drives cycles with [`Scheduler::step`] /
    /// [`Scheduler::step_choice`]. Each cycle charges the modeled
    /// `cycle_cost` (not real time) to the CPU budget and the virtual
    /// timeline, so runs are deterministic for a given kernel seed.
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn_stepped(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(&str, Policy)],
        config: SchedConfig,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
    ) -> Scheduler {
        Scheduler::spawn_stepped_shared(kernel, registry, modules, config, clock, cycle_cost, None)
    }

    /// [`Scheduler::spawn_stepped`] with an optional shared global
    /// [`BudgetController`] (see
    /// [`Scheduler::spawn_with_policies_shared`]) — the stepped fleet
    /// shape `adelie-testkit`'s `FleetSim` drives.
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn_stepped_shared(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(&str, Policy)],
        config: SchedConfig,
        clock: Arc<SimClock>,
        cycle_cost: Duration,
        budget: Option<Arc<BudgetController>>,
    ) -> Scheduler {
        Scheduler::build(
            kernel,
            registry,
            modules,
            &config,
            Clock::Virtual(clock),
            cycle_cost,
            budget,
        )
    }

    fn build(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(&str, Policy)],
        config: &SchedConfig,
        clock: Clock,
        cycle_cost: Duration,
        budget: Option<Arc<BudgetController>>,
    ) -> Scheduler {
        assert!(config.workers > 0, "scheduler needs at least one worker");
        let entries: Vec<Arc<ModuleEntry>> = modules
            .iter()
            .map(|(name, policy)| {
                let module = registry
                    .get(name)
                    .unwrap_or_else(|| panic!("sched: no module `{name}`"));
                assert!(
                    module.rerandomizable,
                    "sched: `{name}` is not re-randomizable"
                );
                let initial = policy.next_period(&PolicyInputs::default());
                Arc::new(ModuleEntry {
                    module,
                    policy: Mutex::new(policy.clone()),
                    calls: Arc::new(AtomicU64::new(0)),
                    rate_anchor: Mutex::new((clock.now_ns(), 0)),
                    calls_per_sec: AtomicU64::new(0f64.to_bits()),
                    exposure: AtomicU64::new(0f64.to_bits()),
                    period_ns: AtomicU64::new(initial.as_nanos() as u64),
                    cycles: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    missed_deadlines: AtomicU64::new(0),
                    latency: LatencyHistogram::new(),
                    health: Mutex::new(ModuleHealth::default()),
                    period_stretches: AtomicU64::new(0),
                    suppressed_logs: AtomicU64::new(0),
                })
            })
            .collect();

        // Install the call-rate observer: outermost entries resolve to a
        // module through its immovable part (wrappers and exports live
        // there, and it never moves).
        let mut ranges: Vec<(u64, u64, Arc<AtomicU64>)> = entries
            .iter()
            .filter_map(|e| {
                e.module.immovable.as_ref().map(|imm| {
                    (
                        imm.base,
                        imm.base + (imm.total_pages * PAGE_SIZE) as u64,
                        e.calls.clone(),
                    )
                })
            })
            .collect();
        ranges.sort_by_key(|&(start, _, _)| start);
        let installed_observer = !ranges.is_empty();
        if installed_observer {
            let hook_ranges = Arc::new(ranges);
            kernel.set_call_observer(Arc::new(move |entry_va| {
                let i = hook_ranges.partition_point(|&(start, _, _)| start <= entry_va);
                if i > 0 {
                    let (_, end, ref counter) = hook_ranges[i - 1];
                    if entry_va < end {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }

        // Initial gadget-exposure scan, so the adaptive policy has a
        // signal from the very first deadline. Scans are memoized by
        // content hash from the start — a fleet of identical-text
        // modules pays one decode, not one per module.
        let scan_cache = ScanCache::new();
        for e in &entries {
            e.refresh_exposure(&kernel, &scan_cache);
        }

        let now_ns = clock.now_ns();
        let mut heap = BinaryHeap::new();
        for (i, e) in entries.iter().enumerate() {
            // Stagger initial deadlines so a fresh pool doesn't thundering-
            // herd its first cycles.
            let period = e.period_ns.load(Ordering::Relaxed);
            let frac = (period as u128 * (i + 1) as u128 / entries.len() as u128) as u64;
            heap.push(Reverse((now_ns + frac, i)));
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(heap),
            wakeup: Condvar::new(),
            stop: AtomicBool::new(false),
            entries,
            busy_ns: AtomicU64::new(0),
            clock,
            step_cost_ns: cycle_cost.as_nanos() as u64,
            workers_model: config.workers,
            epoch_quantum_ns: config.shootdown_epoch.as_nanos() as u64,
            scan_cache,
            supervision: config.supervision.clone(),
            unhealthy: AtomicUsize::new(0),
        });
        let budget = budget.unwrap_or_else(|| {
            Arc::new(BudgetController::new(
                kernel.config.cpus,
                config.max_cpu_frac,
            ))
        });
        kernel.printk.log(format!(
            "sched: pool started ({} workers, {} modules, policy={}{})",
            config.workers,
            shared.entries.len(),
            config.policy.name(),
            if shared.clock.is_virtual() {
                ", stepped"
            } else {
                ""
            },
        ));
        Scheduler {
            shared,
            budget,
            kernel,
            registry,
            workers: Vec::new(),
            exposure_refresh: config.exposure_refresh,
            installed_observer,
        }
    }

    /// Current time on the scheduler's clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.shared.clock.now_ns()
    }

    /// Deadline of the next pending entry (clock ns), if any.
    pub fn peek_deadline_ns(&self) -> Option<u64> {
        let queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.peek().map(|&Reverse((d, _))| d)
    }

    /// (Step mode) run the next due entry: advance virtual time to its
    /// deadline, cycle it inline, charge the modeled cost, reschedule.
    /// Returns `None` when the heap is empty.
    ///
    /// # Panics
    ///
    /// Panics when called on a wall-clock (threaded) scheduler.
    pub fn step(&self) -> Option<CycleReport> {
        self.step_choice(0)
    }

    /// (Step mode) like [`step`](Scheduler::step), but choose among the
    /// entries a `workers`-wide pool could legally run next: all entries
    /// whose deadline falls within one modeled pool window
    /// (`cycle_cost × workers`) of the earliest. `rank` indexes that
    /// eligible set (wrapped), so a seeded explorer passing arbitrary
    /// ranks enumerates exactly the reorderings real worker races could
    /// produce.
    ///
    /// # Panics
    ///
    /// Panics when called on a wall-clock (threaded) scheduler.
    pub fn step_choice(&self, rank: usize) -> Option<CycleReport> {
        let sim = match &self.shared.clock {
            Clock::Virtual(sim) => sim.clone(),
            Clock::Wall { .. } => panic!("step() on a wall-clock scheduler; use spawn_stepped"),
        };
        let (deadline_ns, idx) = {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let Reverse((min_d, _)) = *queue.peek()?;
            let slack = self
                .shared
                .step_cost_ns
                .saturating_mul(self.shared.workers_model as u64);
            // Entries a pool of `workers` could have in flight together.
            let mut eligible = Vec::new();
            while let Some(&Reverse((d, i))) = queue.peek() {
                if d > min_d.saturating_add(slack) || eligible.len() >= self.shared.workers_model {
                    break;
                }
                queue.pop();
                eligible.push((d, i));
            }
            let pick = rank % eligible.len();
            let chosen = eligible.swap_remove(pick);
            for (d, i) in eligible {
                queue.push(Reverse((d, i)));
            }
            chosen
        };
        sim.advance_to(deadline_ns);
        let report = execute_cycle(
            &self.shared,
            &self.kernel,
            &self.registry,
            &self.budget,
            self.exposure_refresh,
            idx,
            deadline_ns,
        );
        Some(report)
    }

    /// Swap `module`'s policy mid-flight; takes effect when the module's
    /// current deadline fires. Returns `false` if the module is not in
    /// this pool.
    pub fn set_policy(&self, module: &str, policy: Policy) -> bool {
        for e in &self.shared.entries {
            if &*e.module.name == module {
                *e.policy.lock().unwrap_or_else(|p| p.into_inner()) = policy;
                return true;
            }
        }
        false
    }

    /// Completed module-cycles so far (sum over modules).
    pub fn cycles(&self) -> u64 {
        self.shared
            .entries
            .iter()
            .map(|e| e.cycles.load(Ordering::Relaxed))
            .sum()
    }

    /// Failed cycles so far (sum over modules).
    pub fn failures(&self) -> u64 {
        self.shared
            .entries
            .iter()
            .map(|e| e.failures.load(Ordering::Relaxed))
            .sum()
    }

    /// Full telemetry snapshot.
    pub fn stats(&self) -> SchedStats {
        let modules: Vec<ModuleSchedStats> =
            self.shared.entries.iter().map(|e| e.stats()).collect();
        SchedStats {
            cycles: modules.iter().map(|m| m.cycles).sum(),
            failures: modules.iter().map(|m| m.failures).sum(),
            missed_deadlines: modules.iter().map(|m| m.missed_deadlines).sum(),
            pointer_refresh_failures: modules.iter().map(|m| m.pointer_refresh_failures).sum(),
            busy: Duration::from_nanos(self.shared.busy_ns.load(Ordering::Relaxed)),
            cpu_pressure: self
                .budget
                .pressure_at(Duration::from_nanos(self.shared.clock.now_ns())),
            exposure_scan_hits: self.shared.scan_cache.hits(),
            exposure_scan_misses: self.shared.scan_cache.misses(),
            quarantines: modules.iter().map(|m| m.quarantines).sum(),
            probes: modules.iter().map(|m| m.probes).sum(),
            recoveries: modules.iter().map(|m| m.recoveries).sum(),
            period_stretches: modules.iter().map(|m| m.period_stretches).sum(),
            suppressed_logs: modules.iter().map(|m| m.suppressed_logs).sum(),
            modules,
        }
    }

    /// Health of `module` in this pool, or `None` if it isn't here.
    pub fn health_of(&self, module: &str) -> Option<HealthState> {
        self.shared
            .entries
            .iter()
            .find(|e| &*e.module.name == module)
            .map(|e| e.health.lock().unwrap_or_else(|h| h.into_inner()).state)
    }

    /// Modules currently Degraded or Quarantined.
    pub fn unhealthy(&self) -> usize {
        self.shared.unhealthy.load(Ordering::Relaxed)
    }

    /// Stop the pool in place (waiting out in-flight cycles and
    /// releasing the kernel call observer) without consuming the
    /// handle — the fleet's crash-recovery path halts a shard's old
    /// group *before* building the replacement, because the observer
    /// slot is single-occupancy per kernel.
    pub fn halt(&mut self) {
        self.shutdown();
    }

    /// Print the artifact-style stats block plus one line per module to
    /// the kernel log.
    pub fn log_stats(&self) {
        let stats = self.stats();
        log_stats(&self.kernel, stats.cycles, &self.registry.stacks);
        for m in &stats.modules {
            self.kernel.printk.log(format!(
                "sched: {} policy={} cycles={} failed={} missed={} stale-ptr={} period={:?} \
                 rate={:.0}/s exposure={:.1}g/KiB p50={:?} p99={:?}",
                m.name,
                m.policy,
                m.cycles,
                m.failures,
                m.missed_deadlines,
                m.pointer_refresh_failures,
                m.current_period,
                m.calls_per_sec,
                m.exposure,
                m.latency.p50,
                m.latency.p99,
            ));
        }
    }

    fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.wakeup.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if self.installed_observer {
            self.kernel.clear_call_observer();
        }
    }

    /// Stop all workers, wait for in-flight cycles, and return the final
    /// snapshot.
    pub fn stop(mut self) -> SchedStats {
        self.shutdown();
        self.stats()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("stepped", &self.shared.clock.is_virtual())
            .field("cycles", &self.cycles())
            .field("failures", &self.failures())
            .finish()
    }
}

/// Run one cycle of `entries[idx]` (deadline already popped), account
/// it, and push the entry back with its next deadline. Shared between
/// the threaded worker loop and the stepped driver.
fn execute_cycle(
    shared: &Arc<Shared>,
    kernel: &Arc<Kernel>,
    registry: &Arc<ModuleRegistry>,
    budget: &Arc<BudgetController>,
    exposure_refresh: u64,
    idx: usize,
    deadline_ns: u64,
) -> CycleReport {
    let entry = &shared.entries[idx];
    let supervision = &shared.supervision;
    let cpu = kernel.percpu.current();
    let started_ns = shared.clock.now_ns();
    let wall_t0 = Instant::now();
    // A cycle of a Quarantined module is an *un-quarantine probe*: it
    // still runs the real move (success is the only proof of health),
    // but it is budget-exempt — a quarantined module burns zero budget.
    let probe = {
        let mut health = entry.health.lock().unwrap_or_else(|e| e.into_inner());
        let is_probe = health.state == HealthState::Quarantined;
        if is_probe {
            health.probes += 1;
        }
        is_probe
    };
    // Same-deadline cycles share a shootdown epoch: their invalidation
    // sets merge into one log slot, so TLBs pay one partial pass for
    // the whole group instead of one per module.
    let epoch = shared.epoch_of(deadline_ns);
    let outcome = rerandomize_module_epoch(kernel, registry, &entry.module, Some(epoch));
    // Step mode charges the modeled cost (deterministic); wall mode
    // charges what the cycle really took.
    let spent = if shared.clock.is_virtual() {
        let cost = Duration::from_nanos(shared.step_cost_ns);
        if let Clock::Virtual(sim) = &shared.clock {
            sim.advance(cost);
        }
        cost
    } else {
        wall_t0.elapsed()
    };
    if !probe {
        kernel.percpu.account(cpu, spent);
        budget.record(spent);
        shared
            .busy_ns
            .fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
        entry.latency.record(spent);
    }
    let period = entry.period_ns.load(Ordering::Relaxed);
    if started_ns.saturating_sub(deadline_ns) > period {
        entry.missed_deadlines.fetch_add(1, Ordering::Relaxed);
    }
    let (new_base, error, health_state, backoff) = match &outcome {
        Ok(base) => {
            let done = entry.cycles.fetch_add(1, Ordering::Relaxed) + 1;
            if exposure_refresh > 0 && done.is_multiple_of(exposure_refresh) {
                entry.refresh_exposure(kernel, &shared.scan_cache);
            }
            let event = {
                let mut health = entry.health.lock().unwrap_or_else(|e| e.into_inner());
                health.on_success()
            };
            if event == HealthEvent::Recovered {
                shared.unhealthy.fetch_sub(1, Ordering::Relaxed);
                let suppressed = entry.suppressed_logs.load(Ordering::Relaxed);
                kernel.printk.log(format!(
                    "sched: {} recovered (healthy again; {suppressed} failure logs suppressed)",
                    entry.module.name
                ));
            }
            (Some(*base), None, HealthState::Healthy, 1u64)
        }
        Err(err) => {
            // Non-fatal: count, feed the health state machine, keep
            // every module cycling (on a backed-off schedule).
            entry.failures.fetch_add(1, Ordering::Relaxed);
            let (event, state, streak, backoff) = {
                let mut health = entry.health.lock().unwrap_or_else(|e| e.into_inner());
                let was_healthy = health.state == HealthState::Healthy;
                let event = health.on_failure(supervision);
                if was_healthy && health.state != HealthState::Healthy {
                    shared.unhealthy.fetch_add(1, Ordering::Relaxed);
                }
                (
                    event,
                    health.state,
                    health.streak,
                    health.backoff(supervision),
                )
            };
            match event {
                HealthEvent::Degraded => kernel.printk.log(format!(
                    "sched: {} degraded after {streak} consecutive failures (backoff x{backoff})",
                    entry.module.name
                )),
                HealthEvent::Quarantined => kernel.printk.log(format!(
                    "sched: {} quarantined after {streak} consecutive failures \
                     (probing at x{backoff} period, budget-exempt)",
                    entry.module.name
                )),
                _ => {}
            }
            // The per-period retry line is rate-limited per module:
            // emit on the 1st, 2nd, 4th, 8th, … repetition, count the
            // rest (a persistently failing module used to log every
            // single period, unbounded).
            let emitted = kernel.printk.log_limited(
                &format!("sched-cycle-failed:{}", entry.module.name),
                format!(
                    "sched: {} cycle failed ({err}); retrying with backoff x{backoff}",
                    entry.module.name
                ),
            );
            if !emitted {
                entry.suppressed_logs.fetch_add(1, Ordering::Relaxed);
            }
            (None, Some(CycleError::from(err)), state, backoff)
        }
    };

    // Next deadline: policy period, stretched by the supervision
    // backoff (failure streaks), decorrelated with jitter on failure
    // paths only (clean runs draw an unchanged RNG stream), then
    // stretched again under graceful degradation, plus any hard budget
    // throttle.
    let finished_ns = shared.clock.now_ns();
    let wall = Duration::from_nanos(finished_ns);
    let pressure = budget.pressure_at(wall);
    let inputs = entry.sample_inputs(kernel, finished_ns, pressure);
    let (next_period, pressure_aware) = {
        let policy = entry.policy.lock().unwrap_or_else(|e| e.into_inner());
        (policy.next_period(&inputs), policy.pressure_aware())
    };
    let mut next_period_ns = next_period.as_nanos() as u64;
    if backoff > 1 {
        next_period_ns = next_period_ns.saturating_mul(backoff);
        let jitter = supervision.backoff_jitter.clamp(0.0, 1.0);
        if jitter > 0.0 {
            let u = kernel.rng_below(1 << 20) as f64 / (1u64 << 20) as f64;
            let factor = 1.0 + jitter * (2.0 * u - 1.0);
            next_period_ns = ((next_period_ns as f64) * factor) as u64;
        }
    }
    // Graceful degradation: instead of silently missing deadlines,
    // stretch the period — under sustained budget pressure (for
    // policies that don't already consume pressure) and under fault
    // storms (a majority of the pool unhealthy).
    let unhealthy = shared.unhealthy.load(Ordering::Relaxed);
    let stretch = degradation_stretch(pressure_aware, pressure, unhealthy, shared.entries.len());
    if stretch > 1.0 {
        entry.period_stretches.fetch_add(1, Ordering::Relaxed);
        next_period_ns = ((next_period_ns as f64) * stretch) as u64;
    }
    entry.period_ns.store(next_period_ns, Ordering::Relaxed);
    let next_deadline_ns =
        finished_ns + next_period_ns + budget.throttle_at(wall).as_nanos() as u64;
    {
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push(Reverse((next_deadline_ns, idx)));
    }
    shared.wakeup.notify_one();
    CycleReport {
        module: entry.module.name.to_string(),
        deadline_ns,
        started_ns,
        finished_ns,
        new_base,
        error,
        period_ns: next_period_ns,
        next_deadline_ns,
        probe,
        health: health_state,
    }
}

/// The graceful-degradation stretch for one reschedule: budget
/// pressure (for policies that don't already consume pressure
/// themselves), doubled under a fault storm (a majority of the pool
/// unhealthy) — with the *total* bounded by [`MAX_PRESSURE_STRETCH`],
/// per `policy.rs`'s contract.
fn degradation_stretch(pressure_aware: bool, pressure: f64, unhealthy: usize, pool: usize) -> f64 {
    let mut stretch = if pressure_aware {
        1.0
    } else {
        pressure.clamp(1.0, MAX_PRESSURE_STRETCH)
    };
    if unhealthy > 0 && unhealthy * 2 >= pool {
        stretch = (stretch * 2.0).min(MAX_PRESSURE_STRETCH);
    }
    stretch
}

fn worker_loop(
    shared: Arc<Shared>,
    kernel: Arc<Kernel>,
    registry: Arc<ModuleRegistry>,
    budget: Arc<BudgetController>,
    exposure_refresh: u64,
) {
    loop {
        // Pop the next due entry, sleeping until its deadline.
        let (deadline_ns, idx) = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                match queue.peek().copied() {
                    Some(Reverse((deadline_ns, idx))) => {
                        let now_ns = shared.clock.now_ns();
                        if deadline_ns <= now_ns {
                            queue.pop();
                            break (deadline_ns, idx);
                        }
                        let (q, _) = shared
                            .wakeup
                            .wait_timeout(queue, Duration::from_nanos(deadline_ns - now_ns))
                            .unwrap_or_else(|e| e.into_inner());
                        queue = q;
                    }
                    None => {
                        let q = shared.wakeup.wait(queue).unwrap_or_else(|e| e.into_inner());
                        queue = q;
                    }
                }
            }
        };
        execute_cycle(
            &shared,
            &kernel,
            &registry,
            &budget,
            exposure_refresh,
            idx,
            deadline_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::{degradation_stretch, MAX_PRESSURE_STRETCH};

    /// Regression: the fault-storm doubling used to be applied *after*
    /// the pressure clamp, letting the total stretch reach
    /// 2×MAX_PRESSURE_STRETCH — contradicting the documented bound.
    #[test]
    fn degradation_stretch_is_bounded() {
        // No pressure, no storm: no stretch.
        assert_eq!(degradation_stretch(false, 0.5, 0, 4), 1.0);
        // Pressure alone clamps at the bound.
        assert_eq!(degradation_stretch(false, 1e9, 0, 4), MAX_PRESSURE_STRETCH);
        // The storm doubling applies below the bound...
        assert_eq!(degradation_stretch(false, 3.0, 2, 4), 6.0);
        assert_eq!(degradation_stretch(true, 1e9, 2, 4), 2.0);
        // ...but never pushes the total past it.
        assert_eq!(degradation_stretch(false, 1e9, 4, 4), MAX_PRESSURE_STRETCH);
        assert_eq!(
            degradation_stretch(false, MAX_PRESSURE_STRETCH - 1.0, 2, 4),
            MAX_PRESSURE_STRETCH
        );
        // A minority of unhealthy modules is not a storm.
        assert_eq!(degradation_stretch(false, 0.0, 1, 4), 1.0);
    }
}
