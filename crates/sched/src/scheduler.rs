//! The multi-worker re-randomization scheduler.
//!
//! A pool of `workers` randomizer threads shares one deadline heap.
//! Each entry is one module; when its deadline comes due, whichever
//! worker is free pops it, runs one [`rerandomize_module`] cycle
//! (placement is reservation-based in `adelie-core`, so cycles of
//! independent modules overlap), records telemetry, asks the module's
//! [`Policy`] for the next period, folds in the
//! [`BudgetController`]'s backpressure, and pushes the entry back.
//!
//! Because an entry is *out of the heap* while its cycle runs, a module
//! is never cycled by two workers at once — `move_lock` never sees pool
//! contention for the same module.
//!
//! Failures are non-fatal: a failed cycle is counted, logged to printk,
//! and the module simply keeps running at its current base until the
//! next deadline (the old single-thread `Rerandomizer` silently died on
//! the first error, taking every other module's protection with it).

use crate::budget::BudgetController;
use crate::policy::{Policy, PolicyInputs};
use crate::stats::{LatencyHistogram, ModuleSchedStats, SchedStats};
use adelie_core::{log_stats, rerandomize_module, LoadedModule, ModuleRegistry};
use adelie_kernel::Kernel;
use adelie_vmem::{PteFlags, PAGE_SIZE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler configuration (the `SchedConfig` knob workloads expose).
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Randomizer pool size (concurrent cycles of *distinct* modules).
    pub workers: usize,
    /// Default policy for every module (override per module via
    /// [`Scheduler::spawn_with_policies`]).
    pub policy: Policy,
    /// Cap on the fraction of modeled CPU the pool may consume
    /// (`f64::INFINITY` = uncapped).
    pub max_cpu_frac: f64,
    /// Re-scan gadget exposure every N completed cycles per module
    /// (0 = scan once at startup only).
    pub exposure_refresh: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 2,
            policy: Policy::default_fixed(),
            max_cpu_frac: f64::INFINITY,
            exposure_refresh: 64,
        }
    }
}

impl SchedConfig {
    /// One worker, fixed period — the exact shape of the legacy
    /// randomizer kthread.
    pub fn serial(period: Duration) -> SchedConfig {
        SchedConfig {
            workers: 1,
            policy: Policy::FixedPeriod(period),
            ..SchedConfig::default()
        }
    }

    /// `workers` workers under the default adaptive policy.
    pub fn adaptive(workers: usize) -> SchedConfig {
        SchedConfig {
            workers,
            policy: Policy::default_adaptive(),
            ..SchedConfig::default()
        }
    }
}

/// Per-module scheduling state.
struct ModuleEntry {
    module: Arc<LoadedModule>,
    policy: Policy,
    /// Outermost calls observed entering this module (bumped by the
    /// kernel call observer via the immovable-part range).
    calls: Arc<AtomicU64>,
    /// `(instant, calls)` at the last rate sample.
    rate_anchor: Mutex<(Instant, u64)>,
    /// Last computed call rate (f64 bits).
    calls_per_sec: AtomicU64,
    /// Gadgets/KiB of movable text (f64 bits).
    exposure: AtomicU64,
    /// Current period in nanoseconds.
    period_ns: AtomicU64,
    cycles: AtomicU64,
    failures: AtomicU64,
    missed_deadlines: AtomicU64,
    latency: LatencyHistogram,
}

impl ModuleEntry {
    fn load_f64(cell: &AtomicU64) -> f64 {
        f64::from_bits(cell.load(Ordering::Relaxed))
    }

    fn store_f64(cell: &AtomicU64, v: f64) {
        cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Scan the movable text for gadgets and update the exposure metric
    /// (gadgets per KiB). Takes `move_lock` so the base can't move
    /// mid-read.
    fn refresh_exposure(&self, kernel: &Arc<Kernel>) {
        let _guard = self.module.move_lock.lock();
        let base = self.module.movable_base.load(Ordering::Acquire);
        let text_pages: usize = self
            .module
            .movable
            .groups
            .iter()
            .filter(|g| g.flags == PteFlags::TEXT)
            .map(|g| g.pages)
            .sum();
        if text_pages == 0 {
            return;
        }
        let mut text = vec![0u8; text_pages * PAGE_SIZE];
        if kernel
            .space
            .read_bytes(&kernel.phys, base, &mut text)
            .is_err()
        {
            return;
        }
        let gadgets = adelie_gadget::scan(&text).len();
        let kib = (text.len() as f64) / 1024.0;
        Self::store_f64(&self.exposure, gadgets as f64 / kib);
    }

    /// Sample call rate since the last cycle and assemble policy inputs.
    fn sample_inputs(&self, kernel: &Arc<Kernel>, pressure: f64) -> PolicyInputs {
        let now = Instant::now();
        let calls_now = self.calls.load(Ordering::Relaxed);
        let mut anchor = self.rate_anchor.lock().unwrap_or_else(|e| e.into_inner());
        let dt = now.duration_since(anchor.0);
        if dt >= Duration::from_micros(100) {
            let rate = (calls_now - anchor.1) as f64 / dt.as_secs_f64();
            Self::store_f64(&self.calls_per_sec, rate);
            *anchor = (now, calls_now);
        }
        drop(anchor);
        PolicyInputs {
            calls_per_sec: Self::load_f64(&self.calls_per_sec),
            exposure: Self::load_f64(&self.exposure),
            pressure,
            jitter_u: kernel.rng_below(1 << 20) as f64 / (1u64 << 20) as f64,
        }
    }

    fn stats(&self) -> ModuleSchedStats {
        ModuleSchedStats {
            name: self.module.name.clone(),
            policy: self.policy.name(),
            cycles: self.cycles.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            missed_deadlines: self.missed_deadlines.load(Ordering::Relaxed),
            current_period: Duration::from_nanos(self.period_ns.load(Ordering::Relaxed)),
            calls_per_sec: Self::load_f64(&self.calls_per_sec),
            exposure: Self::load_f64(&self.exposure),
            latency: self.latency.snapshot(),
        }
    }
}

/// State shared between the handle and the workers.
struct Shared {
    /// Min-heap of `(deadline, entry index)`. An entry being cycled is
    /// not in the heap.
    queue: Mutex<BinaryHeap<Reverse<(Instant, usize)>>>,
    wakeup: Condvar,
    stop: AtomicBool,
    entries: Vec<Arc<ModuleEntry>>,
    busy_ns: AtomicU64,
}

/// The randomizer pool: the subsystem replacing the paper artifact's
/// single `randmod` kthread.
///
/// Run at most one pool per kernel at a time: the kernel's per-call
/// observer is a single slot, so a second concurrently-spawned pool
/// would replace the first one's call-rate telemetry hook (cycling
/// itself would still be correct, but `Adaptive` call-rate inputs of
/// the first pool would freeze).
pub struct Scheduler {
    shared: Arc<Shared>,
    budget: Arc<BudgetController>,
    kernel: Arc<Kernel>,
    registry: Arc<ModuleRegistry>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Whether this pool installed the kernel call observer (and must
    /// therefore remove it on shutdown — never someone else's).
    installed_observer: bool,
}

impl Scheduler {
    /// Start a pool over `module_names`, all under `config.policy`.
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        module_names: &[&str],
        config: SchedConfig,
    ) -> Scheduler {
        let with_policies: Vec<(&str, Policy)> = module_names
            .iter()
            .map(|&n| (n, config.policy.clone()))
            .collect();
        Scheduler::spawn_with_policies(kernel, registry, &with_policies, config)
    }

    /// Start a pool with an explicit policy per module.
    ///
    /// # Panics
    ///
    /// Panics if a named module is missing or not re-randomizable, or if
    /// `config.workers` is zero.
    pub fn spawn_with_policies(
        kernel: Arc<Kernel>,
        registry: Arc<ModuleRegistry>,
        modules: &[(&str, Policy)],
        config: SchedConfig,
    ) -> Scheduler {
        assert!(config.workers > 0, "scheduler needs at least one worker");
        let entries: Vec<Arc<ModuleEntry>> = modules
            .iter()
            .map(|(name, policy)| {
                let module = registry
                    .get(name)
                    .unwrap_or_else(|| panic!("sched: no module `{name}`"));
                assert!(
                    module.rerandomizable,
                    "sched: `{name}` is not re-randomizable"
                );
                let initial = policy.next_period(&PolicyInputs::default());
                Arc::new(ModuleEntry {
                    module,
                    policy: policy.clone(),
                    calls: Arc::new(AtomicU64::new(0)),
                    rate_anchor: Mutex::new((Instant::now(), 0)),
                    calls_per_sec: AtomicU64::new(0f64.to_bits()),
                    exposure: AtomicU64::new(0f64.to_bits()),
                    period_ns: AtomicU64::new(initial.as_nanos() as u64),
                    cycles: AtomicU64::new(0),
                    failures: AtomicU64::new(0),
                    missed_deadlines: AtomicU64::new(0),
                    latency: LatencyHistogram::new(),
                })
            })
            .collect();

        // Install the call-rate observer: outermost entries resolve to a
        // module through its immovable part (wrappers and exports live
        // there, and it never moves).
        let mut ranges: Vec<(u64, u64, Arc<AtomicU64>)> = entries
            .iter()
            .filter_map(|e| {
                e.module.immovable.as_ref().map(|imm| {
                    (
                        imm.base,
                        imm.base + (imm.total_pages * PAGE_SIZE) as u64,
                        e.calls.clone(),
                    )
                })
            })
            .collect();
        ranges.sort_by_key(|&(start, _, _)| start);
        let installed_observer = !ranges.is_empty();
        if installed_observer {
            let hook_ranges = Arc::new(ranges);
            kernel.set_call_observer(Arc::new(move |entry_va| {
                let i = hook_ranges.partition_point(|&(start, _, _)| start <= entry_va);
                if i > 0 {
                    let (_, end, ref counter) = hook_ranges[i - 1];
                    if entry_va < end {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }

        // Initial gadget-exposure scan, so the adaptive policy has a
        // signal from the very first deadline.
        for e in &entries {
            e.refresh_exposure(&kernel);
        }

        let now = Instant::now();
        let mut heap = BinaryHeap::new();
        for (i, e) in entries.iter().enumerate() {
            // Stagger initial deadlines so a fresh pool doesn't thundering-
            // herd its first cycles.
            let period = Duration::from_nanos(e.period_ns.load(Ordering::Relaxed));
            heap.push(Reverse((
                now + period.mul_f64((i + 1) as f64 / entries.len() as f64),
                i,
            )));
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(heap),
            wakeup: Condvar::new(),
            stop: AtomicBool::new(false),
            entries,
            busy_ns: AtomicU64::new(0),
        });
        let budget = Arc::new(BudgetController::new(
            kernel.config.cpus,
            config.max_cpu_frac,
        ));
        kernel.printk.log(format!(
            "sched: pool started ({} workers, {} modules, policy={})",
            config.workers,
            shared.entries.len(),
            config.policy.name(),
        ));
        let workers = (0..config.workers)
            .map(|w| {
                let shared = shared.clone();
                let kernel = kernel.clone();
                let registry = registry.clone();
                let budget = budget.clone();
                let refresh = config.exposure_refresh;
                std::thread::Builder::new()
                    .name(format!("randomizer-{w}"))
                    .spawn(move || worker_loop(shared, kernel, registry, budget, refresh))
                    .expect("spawn randomizer worker")
            })
            .collect();
        Scheduler {
            shared,
            budget,
            kernel,
            registry,
            workers,
            installed_observer,
        }
    }

    /// Completed module-cycles so far (sum over modules).
    pub fn cycles(&self) -> u64 {
        self.shared
            .entries
            .iter()
            .map(|e| e.cycles.load(Ordering::Relaxed))
            .sum()
    }

    /// Failed cycles so far (sum over modules).
    pub fn failures(&self) -> u64 {
        self.shared
            .entries
            .iter()
            .map(|e| e.failures.load(Ordering::Relaxed))
            .sum()
    }

    /// Full telemetry snapshot.
    pub fn stats(&self) -> SchedStats {
        let modules: Vec<ModuleSchedStats> =
            self.shared.entries.iter().map(|e| e.stats()).collect();
        SchedStats {
            cycles: modules.iter().map(|m| m.cycles).sum(),
            failures: modules.iter().map(|m| m.failures).sum(),
            missed_deadlines: modules.iter().map(|m| m.missed_deadlines).sum(),
            busy: Duration::from_nanos(self.shared.busy_ns.load(Ordering::Relaxed)),
            cpu_pressure: self.budget.pressure(),
            modules,
        }
    }

    /// Print the artifact-style stats block plus one line per module to
    /// the kernel log.
    pub fn log_stats(&self) {
        let stats = self.stats();
        log_stats(&self.kernel, stats.cycles, &self.registry.stacks);
        for m in &stats.modules {
            self.kernel.printk.log(format!(
                "sched: {} policy={} cycles={} failed={} missed={} period={:?} rate={:.0}/s \
                 exposure={:.1}g/KiB p50={:?} p99={:?}",
                m.name,
                m.policy,
                m.cycles,
                m.failures,
                m.missed_deadlines,
                m.current_period,
                m.calls_per_sec,
                m.exposure,
                m.latency.p50,
                m.latency.p99,
            ));
        }
    }

    fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.wakeup.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if self.installed_observer {
            self.kernel.clear_call_observer();
        }
    }

    /// Stop all workers, wait for in-flight cycles, and return the final
    /// snapshot.
    pub fn stop(mut self) -> SchedStats {
        self.shutdown();
        self.stats()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .field("cycles", &self.cycles())
            .field("failures", &self.failures())
            .finish()
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    kernel: Arc<Kernel>,
    registry: Arc<ModuleRegistry>,
    budget: Arc<BudgetController>,
    exposure_refresh: u64,
) {
    // Claim a simulated CPU for accounting (sticky per thread).
    let cpu = kernel.percpu.current();
    loop {
        // Pop the next due entry, sleeping until its deadline.
        let (deadline, idx) = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                match queue.peek().copied() {
                    Some(Reverse((deadline, idx))) => {
                        let now = Instant::now();
                        if deadline <= now {
                            queue.pop();
                            break (deadline, idx);
                        }
                        let (q, _) = shared
                            .wakeup
                            .wait_timeout(queue, deadline - now)
                            .unwrap_or_else(|e| e.into_inner());
                        queue = q;
                    }
                    None => {
                        let q = shared.wakeup.wait(queue).unwrap_or_else(|e| e.into_inner());
                        queue = q;
                    }
                }
            }
        };

        let entry = &shared.entries[idx];
        let t0 = Instant::now();
        let outcome = rerandomize_module(&kernel, &registry, &entry.module);
        let spent = t0.elapsed();
        kernel.percpu.account(cpu, spent);
        budget.record(spent);
        shared
            .busy_ns
            .fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
        entry.latency.record(spent);
        let period = Duration::from_nanos(entry.period_ns.load(Ordering::Relaxed));
        if t0.saturating_duration_since(deadline) > period {
            entry.missed_deadlines.fetch_add(1, Ordering::Relaxed);
        }
        match outcome {
            Ok(_) => {
                let done = entry.cycles.fetch_add(1, Ordering::Relaxed) + 1;
                if exposure_refresh > 0 && done.is_multiple_of(exposure_refresh) {
                    entry.refresh_exposure(&kernel);
                }
            }
            Err(err) => {
                // Non-fatal: count, log, keep every module cycling.
                entry.failures.fetch_add(1, Ordering::Relaxed);
                kernel.printk.log(format!(
                    "sched: {} cycle failed ({err}); retrying next period",
                    entry.module.name
                ));
            }
        }

        // Next deadline: policy period plus any hard budget throttle.
        let inputs = entry.sample_inputs(&kernel, budget.pressure());
        let next_period = entry.policy.next_period(&inputs);
        entry
            .period_ns
            .store(next_period.as_nanos() as u64, Ordering::Relaxed);
        let next_deadline = Instant::now() + next_period + budget.throttle();
        {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push(Reverse((next_deadline, idx)));
        }
        shared.wakeup.notify_one();
    }
}
