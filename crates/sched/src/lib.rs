//! # adelie-sched — adaptive, concurrent re-randomization scheduling
//!
//! The paper's artifact drives re-randomization with one kthread that
//! walks every module serially on a single fixed period (§4.2,
//! `modprobe randmod … rand_period=20`). That shape can't navigate the
//! actual trade-off — re-randomization latency vs. attacker probe rate
//! vs. CPU burned — so this crate replaces it with a real subsystem:
//!
//! * [`Scheduler`] — a **multi-worker randomizer pool** over a shared
//!   deadline heap; cycles of independent modules overlap (placement in
//!   `adelie-core` is reservation-based and per-module `move_lock`s
//!   serialize same-module cycles),
//! * [`Policy`] — **per-module policies**: `FixedPeriod` (the paper's
//!   baseline), `Jittered` (unpredictable schedule, same mean cost),
//!   and `Adaptive` (period tightens with observed call rate and with
//!   gadget exposure measured by `adelie-gadget::scan`, loosens under
//!   budget pressure),
//! * [`BudgetController`] — a **global CPU budget**: caps the fraction
//!   of modeled CPU (`kernel.percpu`) the pool may spend and applies
//!   backpressure through deadlines and the adaptive policy,
//! * [`SchedStats`] — **per-module telemetry**: cycle-latency
//!   histograms, missed-deadline counts, pointer-refresh failure
//!   counts, per-policy period/rate/exposure readouts, printed next to
//!   the artifact's dmesg block by [`Scheduler::log_stats`],
//! * [`Clock`]/[`SimClock`] — an **injectable timeline**: production
//!   pools run threaded on the wall clock; verification pools
//!   ([`Scheduler::spawn_stepped`]) run threadless on a virtual clock,
//!   driven one deterministic [`Scheduler::step`] at a time by
//!   `adelie-testkit`.
//!
//! The old API survives as [`Rerandomizer`], a deprecated thin shim
//! over a single-worker `Scheduler`. See DESIGN.md §6 for the
//! architecture.
//!
//! # Example
//!
//! ```
//! use adelie_core::ModuleRegistry;
//! use adelie_kernel::{Kernel, KernelConfig};
//! use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
//! use adelie_sched::{Policy, SchedConfig, Scheduler};
//!
//! let kernel = Kernel::new(KernelConfig::default());
//! let registry = ModuleRegistry::new(&kernel);
//! let mut spec = ModuleSpec::new("noop");
//! spec.funcs.push(FuncSpec::exported("noop_run", vec![MOp::Ret]));
//! let opts = TransformOptions::rerandomizable(true);
//! let obj = transform(&spec, &opts).unwrap();
//! let module = registry.load(&obj, &opts).unwrap();
//!
//! let sched = Scheduler::spawn(
//!     kernel.clone(),
//!     registry.clone(),
//!     &["noop"],
//!     SchedConfig {
//!         workers: 2,
//!         policy: Policy::default_adaptive(),
//!         ..SchedConfig::default()
//!     },
//! );
//! let entry = module.export("noop_run").unwrap();
//! let mut vm = kernel.vm();
//! vm.call(entry, &[]).unwrap();
//! let stats = sched.stop();
//! assert_eq!(stats.failures, 0);
//! ```

mod budget;
mod clock;
mod fleet;
mod health;
mod policy;
mod scheduler;
mod shim;
mod stats;

pub use budget::BudgetController;
pub use clock::{Clock, SimClock};
pub use fleet::{
    AutoscaleConfig, AutoscaleStats, Autoscaler, FleetScheduler, ScaleDecision, ShardSched,
};
pub use health::{
    backoff_multiplier, CycleError, HealthEvent, HealthState, ModuleHealth, SupervisionConfig,
};
pub use policy::{Policy, PolicyInputs};
pub use scheduler::{CycleReport, SchedConfig, Scheduler};
pub use shim::RerandStats;
#[allow(deprecated)]
pub use shim::Rerandomizer;
pub use stats::{LatencyHistogram, LatencySnapshot, ModuleSchedStats, SchedStats};
