//! Per-module supervision: the health state machine behind quarantine.
//!
//! Every module the pool drives carries a [`ModuleHealth`] record.
//! Typed cycle failures ([`CycleError`]) feed a streak counter; the
//! streak drives Healthy → Degraded → Quarantined transitions with
//! deterministic exponential backoff on the retry period. A quarantined
//! module is *not* cycled on its policy schedule any more: the pool
//! only sends periodic **un-quarantine probes** (cheap, budget-exempt
//! attempts) whose success snaps the module back to Healthy.
//!
//! The transition functions are pure (no clocks, no RNG) so they can be
//! property-tested exhaustively; jitter is applied by the scheduler on
//! top of the deterministic [`backoff_multiplier`], drawn from the
//! kernel's seeded RNG only on failure paths so clean runs consume an
//! unchanged RNG stream (the fleet soak's byte-identity gate).

use adelie_core::RerandError;
use std::fmt;
use std::sync::Arc;

/// Supervision state of one module in the pool.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Cycling normally on its policy schedule.
    Healthy,
    /// A short failure streak: still cycling, but on exponentially
    /// backed-off periods.
    Degraded,
    /// A sustained failure streak: removed from normal scheduling.
    /// Only budget-exempt probes run, at the maximum backoff period.
    Quarantined,
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
        })
    }
}

/// Why one cycle failed, as the scheduler records it — a typed mirror
/// of [`RerandError`] that is `Clone + PartialEq`, so quarantine
/// decisions and tests match on variants instead of rendered strings.
///
/// (`RerandError` itself carries live `Fault`/`VmError` sources and is
/// deliberately not `Clone`; the scheduler keeps the variant structure
/// and renders the underlying fault into `detail`.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CycleError {
    /// The module was not built re-randomizable.
    NotRerandomizable {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
    },
    /// No free virtual range of the required size.
    NoSpace {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
        /// Pages requested.
        pages: usize,
    },
    /// Mapping or swapping pages at the new base failed (pre-commit:
    /// the move rolled back).
    Remap {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
        /// Which remap step failed (alias, local GOT, immovable GOT).
        what: &'static str,
        /// Rendered page-table fault.
        detail: String,
    },
    /// The `update_pointers` callback failed (post-commit: the move
    /// itself landed).
    UpdatePointers {
        /// Module name (shared id — no per-error allocation).
        module: Arc<str>,
        /// Rendered interpreter error.
        detail: String,
    },
}

impl From<&RerandError> for CycleError {
    fn from(err: &RerandError) -> CycleError {
        match err {
            RerandError::NotRerandomizable { module } => CycleError::NotRerandomizable {
                module: module.clone(),
            },
            RerandError::NoSpace { module, pages } => CycleError::NoSpace {
                module: module.clone(),
                pages: *pages,
            },
            RerandError::Remap {
                module,
                what,
                fault,
            } => CycleError::Remap {
                module: module.clone(),
                what,
                detail: fault.to_string(),
            },
            RerandError::UpdatePointers { module, source } => CycleError::UpdatePointers {
                module: module.clone(),
                detail: source.to_string(),
            },
        }
    }
}

// Renders identically to the corresponding `RerandError` so existing
// log-scraping expectations keep matching.
impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::NotRerandomizable { module } => {
                write!(f, "module {module} is not re-randomizable")
            }
            CycleError::NoSpace { module, pages } => {
                write!(f, "no free {pages}-page range to move {module} into")
            }
            CycleError::Remap {
                module,
                what,
                detail,
            } => write!(f, "{module}: {what} remap failed: {detail}"),
            CycleError::UpdatePointers { module, detail } => {
                write!(f, "{module}: update_pointers failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// Supervision knobs, carried on `SchedConfig`.
#[derive(Clone, Debug)]
pub struct SupervisionConfig {
    /// Consecutive failures before Healthy → Degraded (and backoff
    /// starts doubling).
    pub degrade_after: u32,
    /// Consecutive failures before Degraded → Quarantined.
    pub quarantine_after: u32,
    /// Cap on the backoff exponent: the retry period multiplier never
    /// exceeds `2^backoff_max_exp`.
    pub backoff_max_exp: u32,
    /// Jitter fraction applied on top of the deterministic backoff
    /// (`period ± period × jitter × u`, `u` drawn from the kernel's
    /// seeded RNG on failure paths only). Decorrelates retry storms of
    /// many modules quarantined by one fault burst.
    pub backoff_jitter: f64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            degrade_after: 2,
            quarantine_after: 5,
            backoff_max_exp: 6,
            backoff_jitter: 0.25,
        }
    }
}

/// Deterministic exponential backoff: the factor the next retry period
/// is stretched by at a failure streak of `streak`.
///
/// Below `degrade_after` the module retries at its normal period
/// (factor 1). From there each further failure doubles the factor,
/// saturating at `2^backoff_max_exp` — monotone non-decreasing in
/// `streak` (property-tested).
pub fn backoff_multiplier(cfg: &SupervisionConfig, streak: u32) -> u64 {
    if streak < cfg.degrade_after {
        return 1;
    }
    let exp = (streak - cfg.degrade_after + 1).min(cfg.backoff_max_exp);
    1u64 << exp.min(63)
}

/// What a health transition did, so the scheduler can log entry/exit
/// edges exactly once instead of re-deriving them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HealthEvent {
    /// No state change.
    None,
    /// Entered Degraded (first backoff).
    Degraded,
    /// Entered Quarantined.
    Quarantined,
    /// Left Degraded or Quarantined for Healthy on a success.
    Recovered,
}

/// The per-module supervision record (pure state machine — the
/// scheduler holds it under the entry's own mutex).
#[derive(Clone, Debug)]
pub struct ModuleHealth {
    /// Current state.
    pub state: HealthState,
    /// Consecutive failed cycles (0 after any success).
    pub streak: u32,
    /// Times this module entered Quarantined.
    pub quarantines: u64,
    /// Un-quarantine probes attempted.
    pub probes: u64,
    /// Times a success pulled the module out of Degraded/Quarantined.
    pub recoveries: u64,
}

impl Default for ModuleHealth {
    fn default() -> Self {
        ModuleHealth {
            state: HealthState::Healthy,
            streak: 0,
            quarantines: 0,
            probes: 0,
            recoveries: 0,
        }
    }
}

impl ModuleHealth {
    /// Record a successful cycle: any streak resets, and a non-Healthy
    /// module recovers.
    pub fn on_success(&mut self) -> HealthEvent {
        self.streak = 0;
        if self.state == HealthState::Healthy {
            return HealthEvent::None;
        }
        self.state = HealthState::Healthy;
        self.recoveries += 1;
        HealthEvent::Recovered
    }

    /// Record a failed cycle: the streak grows and may cross the
    /// Degraded / Quarantined thresholds.
    pub fn on_failure(&mut self, cfg: &SupervisionConfig) -> HealthEvent {
        self.streak = self.streak.saturating_add(1);
        let next = if self.streak >= cfg.quarantine_after {
            HealthState::Quarantined
        } else if self.streak >= cfg.degrade_after {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        if next == self.state {
            return HealthEvent::None;
        }
        self.state = next;
        match next {
            HealthState::Degraded => HealthEvent::Degraded,
            HealthState::Quarantined => {
                self.quarantines += 1;
                HealthEvent::Quarantined
            }
            HealthState::Healthy => unreachable!("failures never improve health"),
        }
    }

    /// The backoff factor for this module's next deadline, given its
    /// current streak. Quarantined modules always wait the maximum.
    pub fn backoff(&self, cfg: &SupervisionConfig) -> u64 {
        match self.state {
            HealthState::Quarantined => 1u64 << cfg.backoff_max_exp.min(63),
            _ => backoff_multiplier(cfg, self.streak),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_drive_the_state_machine() {
        let cfg = SupervisionConfig::default();
        let mut h = ModuleHealth::default();
        assert_eq!(h.on_failure(&cfg), HealthEvent::None); // streak 1
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.on_failure(&cfg), HealthEvent::Degraded); // streak 2
        assert_eq!(h.on_failure(&cfg), HealthEvent::None); // streak 3
        assert_eq!(h.on_failure(&cfg), HealthEvent::None); // streak 4
        assert_eq!(h.on_failure(&cfg), HealthEvent::Quarantined); // streak 5
        assert_eq!(h.state, HealthState::Quarantined);
        assert_eq!(h.quarantines, 1);
        assert_eq!(h.on_failure(&cfg), HealthEvent::None); // stays put
        assert_eq!(h.on_success(), HealthEvent::Recovered);
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.streak, 0);
        assert_eq!(h.recoveries, 1);
    }

    #[test]
    fn success_from_healthy_is_a_noop_event() {
        let mut h = ModuleHealth::default();
        assert_eq!(h.on_success(), HealthEvent::None);
        assert_eq!(h.recoveries, 0);
    }

    #[test]
    fn backoff_doubles_then_saturates() {
        let cfg = SupervisionConfig::default();
        assert_eq!(backoff_multiplier(&cfg, 0), 1);
        assert_eq!(backoff_multiplier(&cfg, 1), 1);
        assert_eq!(backoff_multiplier(&cfg, 2), 2);
        assert_eq!(backoff_multiplier(&cfg, 3), 4);
        assert_eq!(backoff_multiplier(&cfg, 4), 8);
        assert_eq!(backoff_multiplier(&cfg, 5), 16);
        assert_eq!(backoff_multiplier(&cfg, 6), 32);
        assert_eq!(backoff_multiplier(&cfg, 7), 64);
        assert_eq!(backoff_multiplier(&cfg, 100), 64);
    }

    #[test]
    fn cycle_error_renders_like_rerand_error() {
        let module: Arc<str> = Arc::from("edac");
        let err = CycleError::NoSpace { module, pages: 7 };
        assert_eq!(err.to_string(), "no free 7-page range to move edac into");
    }
}
