//! The global CPU-budget controller.
//!
//! Continuous re-randomization trades CPU for security (the paper's
//! Fig. 5–9 overhead story). When many modules cycle aggressively, the
//! randomizer pool can eat a real fraction of the machine. The
//! controller caps the fraction of *modeled* CPU (the `kernel.percpu`
//! machine of `cpus` cores) the pool may spend, and applies two forms
//! of backpressure:
//!
//! * **throttle** — after a cycle, the worker pushes the module's next
//!   deadline out far enough that cumulative spend falls back under the
//!   cap (a hard bound),
//! * **pressure** — the spend/budget ratio is fed into [`Policy::
//!   Adaptive`](crate::Policy::Adaptive), which stretches periods
//!   *before* the hard bound engages (a soft, anticipatory signal).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tracks randomizer-pool CPU spend against a budget.
pub struct BudgetController {
    cpus: usize,
    /// Cap as a fraction of total modeled CPU (`cpus` cores);
    /// `f64::INFINITY` disables the budget.
    max_frac: f64,
    start: Instant,
    spent_ns: AtomicU64,
}

impl BudgetController {
    /// A controller for a `cpus`-core machine capping randomizer spend
    /// at `max_frac` of total CPU (`0.05` = 5% of the machine). Pass
    /// `f64::INFINITY` (or anything non-finite / non-positive) for
    /// "uncapped".
    pub fn new(cpus: usize, max_frac: f64) -> BudgetController {
        let max_frac = if max_frac.is_finite() && max_frac > 0.0 {
            max_frac
        } else {
            f64::INFINITY
        };
        BudgetController {
            cpus: cpus.max(1),
            max_frac,
            start: Instant::now(),
            spent_ns: AtomicU64::new(0),
        }
    }

    /// Whether a cap is configured at all.
    pub fn is_capped(&self) -> bool {
        self.max_frac.is_finite()
    }

    /// Account one cycle's CPU time.
    pub fn record(&self, spent: Duration) {
        self.spent_ns
            .fetch_add(spent.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total randomizer CPU spent so far.
    pub fn spent(&self) -> Duration {
        Duration::from_nanos(self.spent_ns.load(Ordering::Relaxed))
    }

    /// Spend/budget ratio at wall-time `wall` (1.0 = exactly at cap;
    /// 0.0 when uncapped).
    pub fn pressure_at(&self, wall: Duration) -> f64 {
        if !self.is_capped() {
            return 0.0;
        }
        let budget = wall.as_secs_f64() * self.cpus as f64 * self.max_frac;
        if budget <= 0.0 {
            // No time has passed: any spend is infinite pressure, none
            // is none.
            return if self.spent_ns.load(Ordering::Relaxed) > 0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.spent().as_secs_f64() / budget
    }

    /// Spend/budget ratio now.
    pub fn pressure(&self) -> f64 {
        self.pressure_at(self.start.elapsed())
    }

    /// How long the pool must stay idle, measured from wall-time `wall`,
    /// for cumulative spend to drop back to the cap. Zero while under
    /// budget.
    pub fn throttle_at(&self, wall: Duration) -> Duration {
        if !self.is_capped() {
            return Duration::ZERO;
        }
        // Find the wall time at which `spent == wall · cpus · max_frac`.
        let needed_wall = Duration::from_secs_f64(
            self.spent().as_secs_f64() / (self.cpus as f64 * self.max_frac),
        );
        needed_wall.saturating_sub(wall)
    }

    /// How long the pool must stay idle from *now* to return under the
    /// cap.
    pub fn throttle(&self) -> Duration {
        self.throttle_at(self.start.elapsed())
    }
}

impl std::fmt::Debug for BudgetController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetController")
            .field("cpus", &self.cpus)
            .field("max_frac", &self.max_frac)
            .field("spent", &self.spent())
            .field("pressure", &self.pressure())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_never_pushes_back() {
        let b = BudgetController::new(4, f64::INFINITY);
        b.record(Duration::from_secs(1000));
        assert_eq!(b.pressure_at(Duration::from_millis(1)), 0.0);
        assert_eq!(b.throttle_at(Duration::from_millis(1)), Duration::ZERO);
        let zero = BudgetController::new(4, 0.0);
        assert!(!zero.is_capped(), "non-positive caps mean uncapped");
    }

    #[test]
    fn pressure_is_spend_over_budget() {
        // 2 CPUs at a 25% cap: budget = 0.5 CPU-seconds per wall second.
        let b = BudgetController::new(2, 0.25);
        b.record(Duration::from_millis(250));
        // After 1 s of wall time the budget is 500 ms: half used.
        assert!((b.pressure_at(Duration::from_secs(1)) - 0.5).abs() < 1e-9);
        // After 250 ms of wall time the budget is 125 ms: 2× over.
        assert!((b.pressure_at(Duration::from_millis(250)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throttle_returns_exactly_to_cap() {
        let b = BudgetController::new(1, 0.5);
        b.record(Duration::from_millis(400));
        // 400 ms spent at a 0.5 cap needs 800 ms of wall time.
        assert_eq!(
            b.throttle_at(Duration::from_millis(300)),
            Duration::from_millis(500)
        );
        // Already past the break-even point: no throttle.
        assert_eq!(b.throttle_at(Duration::from_secs(1)), Duration::ZERO);
    }
}
