//! Integration tests for the randomizer pool: concurrency, resilience,
//! budget, and the adaptive-vs-serial throughput claim.

use adelie_core::{LoadedModule, ModuleRegistry};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{Policy, SchedConfig, Scheduler};
use adelie_vmem::PAGE_SIZE;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `mod{i}_calc(x) = x + 26`.
fn calc_spec(i: usize) -> ModuleSpec {
    let mut spec = ModuleSpec::new(&format!("mod{i}"));
    spec.funcs.push(FuncSpec::exported(
        &format!("mod{i}_calc"),
        vec![
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            MOp::Insn(Insn::AluImm {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 26,
            }),
            MOp::Ret,
        ],
    ));
    spec
}

fn boot_n(n: usize) -> (Arc<Kernel>, Arc<ModuleRegistry>, Vec<Arc<LoadedModule>>) {
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let opts = TransformOptions::rerandomizable(true);
    let modules = (0..n)
        .map(|i| {
            let obj = transform(&calc_spec(i), &opts).unwrap();
            registry.load(&obj, &opts).unwrap()
        })
        .collect();
    (kernel, registry, modules)
}

/// Call every module's export in a loop until `stop` is raised.
fn traffic(kernel: &Arc<Kernel>, modules: &[Arc<LoadedModule>], stop: &AtomicBool) -> u64 {
    let mut vm = kernel.vm();
    let entries: Vec<u64> = modules
        .iter()
        .enumerate()
        .map(|(i, m)| m.export(&format!("mod{i}_calc")).unwrap())
        .collect();
    let mut calls = 0u64;
    while !stop.load(Ordering::Relaxed) {
        for &e in &entries {
            assert_eq!(vm.call(e, &[16]).unwrap(), 42);
            calls += 1;
        }
    }
    calls
}

#[test]
fn scheduler_drives_cycles_and_logs_stats() {
    let (kernel, registry, modules) = boot_n(1);
    let sched = Scheduler::spawn(
        kernel.clone(),
        registry.clone(),
        &["mod0"],
        SchedConfig::serial(Duration::from_millis(1)),
    );
    let calc = modules[0].export("mod0_calc").unwrap();
    let mut vm = kernel.vm();
    let t0 = Instant::now();
    let mut calls = 0u64;
    while t0.elapsed() < Duration::from_millis(100) {
        assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
        calls += 1;
    }
    sched.log_stats();
    let stats = sched.stop();
    assert!(stats.cycles >= 5, "cycles: {}", stats.cycles);
    assert_eq!(stats.failures, 0);
    assert!(calls > 100, "driver kept serving during rerand: {calls}");
    assert_eq!(kernel.reclaim.stats().delta(), 0, "all old ranges freed");
    assert!(!kernel.printk.grep("Randomized").is_empty());
    assert!(!kernel.printk.grep("sched: mod0 policy=fixed").is_empty());
    // Telemetry populated: the module saw traffic and cycle latencies.
    let m = &stats.modules[0];
    assert!(m.latency.count >= stats.cycles);
    assert!(m.calls_per_sec > 0.0, "call-rate hook fired: {m:?}");
}

#[test]
fn concurrent_callers_survive_scheduling() {
    let (kernel, registry, modules) = boot_n(2);
    let sched = Scheduler::spawn(
        kernel.clone(),
        registry.clone(),
        &["mod0", "mod1"],
        SchedConfig {
            workers: 2,
            policy: Policy::Jittered {
                base: Duration::from_millis(1),
                jitter: 0.5,
            },
            ..SchedConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| traffic(&kernel, &modules, &stop));
        }
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });
    let stats = sched.stop();
    assert!(stats.cycles >= 10, "cycles: {}", stats.cycles);
    assert_eq!(stats.failures, 0);
    kernel.reclaim.flush();
    assert_eq!(kernel.reclaim.stats().delta(), 0);
}

/// The issue's stress scenario: vm.call traffic on 3 modules while a
/// 4-worker pool re-randomizes them concurrently. Asserts no
/// cross-module VA-range overlap at any sampled instant, and SMR/stack
/// deltas of 0 after drain.
#[test]
fn stress_four_workers_three_modules_under_traffic() {
    let (kernel, registry, modules) = boot_n(3);
    let sched = Scheduler::spawn(
        kernel.clone(),
        registry.clone(),
        &["mod0", "mod1", "mod2"],
        SchedConfig {
            workers: 4,
            policy: Policy::Adaptive {
                min: Duration::from_micros(500),
                max: Duration::from_millis(20),
                rate_scale: 100.0,
                exposure_scale: 20.0,
            },
            ..SchedConfig::default()
        },
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            s.spawn(|| traffic(&kernel, &modules, &stop));
        }
        // Sampler: no two modules' current movable ranges may ever
        // overlap. A module may move between two reads, so a snapshot
        // only counts when no generation changed while taking it.
        let t0 = Instant::now();
        let mut validated = 0u32;
        while t0.elapsed() < Duration::from_millis(400) {
            let gens: Vec<u64> = modules
                .iter()
                .map(|m| m.generation.load(Ordering::Acquire))
                .collect();
            let ranges: Vec<(u64, u64)> = modules
                .iter()
                .map(|m| {
                    let b = m.movable_base.load(Ordering::Acquire);
                    (b, b + (m.movable.total_pages * PAGE_SIZE) as u64)
                })
                .collect();
            let stable = modules
                .iter()
                .zip(&gens)
                .all(|(m, &g)| m.generation.load(Ordering::Acquire) == g);
            if stable {
                validated += 1;
                for (i, &(ab, ae)) in ranges.iter().enumerate() {
                    for &(bb, be) in ranges.iter().skip(i + 1) {
                        assert!(
                            ae <= bb || be <= ab,
                            "modules overlap: {ab:#x}..{ae:#x} vs {bb:#x}..{be:#x}"
                        );
                    }
                }
            }
        }
        assert!(validated > 100, "got {validated} clean snapshots");
        stop.store(true, Ordering::Relaxed);
    });
    let stats = sched.stop();
    assert_eq!(stats.failures, 0, "{stats:?}");
    assert!(stats.cycles >= 30, "4-worker pool cycled: {}", stats.cycles);
    for m in &stats.modules {
        assert!(m.cycles > 0, "every module cycled: {m:?}");
        assert!(m.exposure > 0.0, "gadget exposure measured: {m:?}");
    }
    // Drain: rotate the last stacks out, flush retirements.
    registry.stacks.rotate(&kernel);
    kernel.reclaim.flush();
    assert_eq!(kernel.reclaim.stats().delta(), 0, "SMR delta");
    assert_eq!(registry.stacks.stats().delta(), 0, "stack delta");
}

/// A failing cycle must be counted and retried, never fatal — and other
/// modules keep cycling (the old kthread died on first error).
#[test]
fn failed_cycles_are_counted_not_fatal() {
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let opts = TransformOptions::rerandomizable(true);
    // `bad` (mis)declares a *local, movable* function as its
    // update_pointers callback. Its resolved address is the load-time
    // one, so from the second cycle on the callback faults on the
    // unmapped old range — every later cycle fails in step (5), after
    // the move has committed.
    let mut bad = calc_spec(0);
    bad.name = "bad".into();
    bad.funcs
        .push(FuncSpec::local("bad_update", vec![MOp::Ret]));
    bad.update_pointers = Some("bad_update".into());
    let obj = transform(&bad, &opts).unwrap();
    let bad_module = registry.load(&obj, &opts).unwrap();
    let good_obj = transform(&calc_spec(1), &opts).unwrap();
    registry.load(&good_obj, &opts).unwrap();

    let sched = Scheduler::spawn(
        kernel.clone(),
        registry.clone(),
        &["bad", "mod1"],
        SchedConfig::serial(Duration::from_millis(1)),
    );
    std::thread::sleep(Duration::from_millis(80));
    let stats = sched.stop();
    let bad_stats = stats.modules.iter().find(|m| m.name == "bad").unwrap();
    let good_stats = stats.modules.iter().find(|m| m.name == "mod1").unwrap();
    assert!(bad_stats.failures >= 2, "failures counted: {bad_stats:?}");
    assert!(
        good_stats.cycles >= 2,
        "healthy module kept cycling despite its neighbor failing: {good_stats:?}"
    );
    assert!(
        !kernel.printk.grep("cycle failed").is_empty(),
        "failure logged"
    );
    // Failing cycles must not leak: an UpdatePointers failure commits
    // the move and *still* retires the old range and the replaced GOT
    // frames.
    registry.stacks.rotate(&kernel);
    kernel.reclaim.flush();
    assert_eq!(kernel.reclaim.stats().delta(), 0, "SMR delta after drain");
    let frames_before = kernel.phys.stats().frames_live;
    for _ in 0..10 {
        let before = bad_module.movable_base.load(Ordering::Acquire);
        let err = adelie_core::rerandomize_module(&kernel, &registry, &bad_module).unwrap_err();
        assert!(matches!(
            err,
            adelie_core::RerandError::UpdatePointers { .. }
        ));
        kernel.reclaim.flush();
        assert!(
            kernel
                .space
                .translate(before, adelie_vmem::Access::Read)
                .is_err(),
            "old range retired despite the callback failure"
        );
    }
    registry.stacks.rotate(&kernel);
    kernel.reclaim.flush();
    assert_eq!(kernel.reclaim.stats().delta(), 0, "SMR drained");
    // Each cycle pays one 8-page Vm stack for the callback attempt
    // (never freed — the kernel.vm() contract); any growth beyond that
    // would be leaked module pages or GOT frames.
    let growth = kernel.phys.stats().frames_live - frames_before;
    assert!(
        growth <= 10 * 8,
        "failed cycles leaked frames beyond the vm stacks: {growth}"
    );
    // The failing module is still fully functional.
    let calc = bad_module.export("mod0_calc").unwrap();
    let mut vm = kernel.vm();
    assert_eq!(vm.call(calc, &[16]).unwrap(), 42);
}

/// The CPU budget caps pool spend: an aggressive policy under a tiny
/// budget must cycle far less than the same policy uncapped, and
/// pressure must register.
#[test]
fn budget_applies_backpressure() {
    let run = |max_cpu_frac: f64| {
        let (kernel, registry, _modules) = boot_n(2);
        let sched = Scheduler::spawn(
            kernel.clone(),
            registry,
            &["mod0", "mod1"],
            SchedConfig {
                workers: 2,
                policy: Policy::FixedPeriod(Duration::from_micros(200)),
                max_cpu_frac,
                ..SchedConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(300));
        sched.stop()
    };
    let uncapped = run(f64::INFINITY);
    // 0.01% of a 20-CPU machine: a few hundred µs of cycle work per
    // second.
    let capped = run(0.0001);
    assert!(
        capped.cycles * 4 <= uncapped.cycles.max(4),
        "budget throttled the pool: capped={} uncapped={}",
        capped.cycles,
        uncapped.cycles
    );
    assert_eq!(uncapped.cpu_pressure, 0.0, "no cap, no pressure");
}

/// The acceptance claim: a 4-worker Adaptive scheduler over 3 busy
/// modules completes ≥ 2× the module-cycles of the serial fixed-period
/// `Rerandomizer` shim (at the artifact's default 20 ms period) in the
/// same wall time — because it tightens periods where call rate and
/// gadget exposure demand it instead of sleeping a fixed schedule.
#[test]
fn adaptive_four_workers_doubles_serial_shim_cycles() {
    const WINDOW: Duration = Duration::from_millis(500);

    let serial = {
        let (kernel, registry, modules) = boot_n(3);
        #[allow(deprecated)]
        let rr = adelie_sched::Rerandomizer::spawn(
            kernel.clone(),
            registry.clone(),
            &["mod0", "mod1", "mod2"],
            Duration::from_millis(20),
        );
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| traffic(&kernel, &modules, &stop));
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
        });
        let stats = rr.stop();
        kernel.reclaim.flush();
        assert_eq!(kernel.reclaim.stats().delta(), 0);
        stats.randomized
    };

    let adaptive = {
        let (kernel, registry, modules) = boot_n(3);
        let sched = Scheduler::spawn(
            kernel.clone(),
            registry.clone(),
            &["mod0", "mod1", "mod2"],
            SchedConfig {
                workers: 4,
                policy: Policy::Adaptive {
                    min: Duration::from_millis(1),
                    max: Duration::from_millis(50),
                    rate_scale: 100.0,
                    exposure_scale: 20.0,
                },
                ..SchedConfig::default()
            },
        );
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| traffic(&kernel, &modules, &stop));
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Relaxed);
        });
        let stats = sched.stop();
        registry.stacks.rotate(&kernel);
        kernel.reclaim.flush();
        assert_eq!(kernel.reclaim.stats().delta(), 0, "SMR delta");
        assert_eq!(registry.stacks.stats().delta(), 0, "stack delta");
        assert_eq!(stats.failures, 0);
        stats.cycles
    };

    assert!(
        adaptive >= serial * 2,
        "adaptive pool should at least double the serial shim: {adaptive} vs {serial}"
    );
}

/// Same-deadline cycles share a shootdown epoch: their retire/GOT
/// batches coalesce invalidation-log slots, measurably (the vmem
/// `coalesced_shootdowns` counter), and the pool stays correct.
#[test]
fn same_deadline_cycles_coalesce_shootdown_epochs() {
    use adelie_sched::SimClock;
    let (kernel, registry, modules) = boot_n(4);
    let with_policies: Vec<(&str, Policy)> = modules
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let name: &str = Box::leak(format!("mod{i}").into_boxed_str());
            (name, Policy::FixedPeriod(Duration::from_millis(10)))
        })
        .collect();
    let clock = SimClock::new();
    let sched = Scheduler::spawn_stepped(
        kernel.clone(),
        registry.clone(),
        &with_policies,
        SchedConfig {
            workers: 4,
            policy: Policy::FixedPeriod(Duration::from_millis(10)),
            // Identical fixed periods stagger within one period; a
            // window that wide makes each wave one shared epoch.
            shootdown_epoch: Duration::from_millis(10),
            ..SchedConfig::default()
        },
        clock.clone(),
        Duration::from_micros(10),
    );
    let before = kernel.space.stats().coalesced_shootdowns;
    for _ in 0..16 {
        sched.step().expect("heap never empties");
    }
    assert_eq!(sched.cycles(), 16);
    assert_eq!(sched.failures(), 0);
    let after = kernel.space.stats().coalesced_shootdowns;
    assert!(
        after > before,
        "same-epoch cycles must coalesce invalidation slots ({before} → {after})"
    );
    // Every module still works after coalesced cycling.
    let mut vm = kernel.vm();
    for (i, m) in modules.iter().enumerate() {
        let e = m.export(&format!("mod{i}_calc")).unwrap();
        assert_eq!(vm.call(e, &[16]).unwrap(), 42);
    }
    drop(sched);
}
