//! Edge-case suite over the stepped scheduler: heap behavior at equal
//! deadlines, budget throttle release, and mid-flight policy swaps.

use adelie_core::{LoadedModule, ModuleRegistry};
use adelie_isa::{AluOp, Insn, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_plugin::{transform, FuncSpec, MOp, ModuleSpec, TransformOptions};
use adelie_sched::{Policy, SchedConfig, Scheduler, SimClock};
use std::sync::Arc;
use std::time::Duration;

fn calc_spec(i: usize) -> ModuleSpec {
    let mut spec = ModuleSpec::new(&format!("mod{i}"));
    spec.funcs.push(FuncSpec::exported(
        &format!("mod{i}_calc"),
        vec![
            MOp::Insn(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            MOp::Insn(Insn::AluImm {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 26,
            }),
            MOp::Ret,
        ],
    ));
    spec
}

fn boot_n(n: usize) -> (Arc<Kernel>, Arc<ModuleRegistry>, Vec<Arc<LoadedModule>>) {
    let kernel = Kernel::new(KernelConfig::default());
    let registry = ModuleRegistry::new(&kernel);
    let opts = TransformOptions::rerandomizable(true);
    let modules = (0..n)
        .map(|i| {
            let obj = transform(&calc_spec(i), &opts).unwrap();
            registry.load(&obj, &opts).unwrap()
        })
        .collect();
    (kernel, registry, modules)
}

fn stepped(
    kernel: &Arc<Kernel>,
    registry: &Arc<ModuleRegistry>,
    n: usize,
    policy: Policy,
    max_cpu_frac: f64,
    cycle_cost: Duration,
) -> (Scheduler, Arc<SimClock>) {
    let names: Vec<String> = (0..n).map(|i| format!("mod{i}")).collect();
    let with_policies: Vec<(&str, Policy)> =
        names.iter().map(|s| (s.as_str(), policy.clone())).collect();
    let clock = SimClock::new();
    let sched = Scheduler::spawn_stepped(
        kernel.clone(),
        registry.clone(),
        &with_policies,
        SchedConfig {
            workers: 1,
            policy,
            max_cpu_frac,
            exposure_refresh: 0,
            ..SchedConfig::default()
        },
        clock.clone(),
        cycle_cost,
    );
    (sched, clock)
}

/// A zero-period fleet makes every deadline *equal* (the staggered
/// start collapses to one instant). The heap must resolve the tie
/// deterministically by entry index and stay fair — every module keeps
/// cycling, none is starved by a lower-indexed twin.
#[test]
fn equal_deadlines_round_robin_in_index_order_without_starvation() {
    let (kernel, registry, _modules) = boot_n(3);
    let (sched, _clock) = stepped(
        &kernel,
        &registry,
        3,
        Policy::FixedPeriod(Duration::ZERO),
        f64::INFINITY,
        Duration::from_micros(10),
    );
    let first: Vec<String> = (0..3).map(|_| sched.step().unwrap().module).collect();
    assert_eq!(
        first,
        vec!["mod0", "mod1", "mod2"],
        "equal deadlines must pop in stable index order"
    );
    for _ in 0..30 {
        sched.step().unwrap();
    }
    let stats = sched.stop();
    assert_eq!(stats.failures, 0);
    for m in &stats.modules {
        assert!(
            (10..=12).contains(&m.cycles),
            "{}: {} cycles — zero-period fleet must stay fair",
            m.name,
            m.cycles
        );
    }
}

/// Over-budget cycling throttles deadlines out; once the fleet idles
/// and wall time amortizes the spend, pressure falls below 1 and the
/// throttle releases — deadlines return to the bare policy period.
#[test]
fn budget_throttle_releases_after_pressure_drops() {
    let (kernel, registry, _modules) = boot_n(1);
    let period = Duration::from_millis(1);
    // 1 ms of modeled cost per 1 ms period on a 20-CPU machine capped at
    // 0.1% ⇒ pressure far above 1 immediately.
    let (sched, clock) = stepped(
        &kernel,
        &registry,
        1,
        Policy::FixedPeriod(period),
        0.001,
        Duration::from_millis(1),
    );
    let report = sched.step().unwrap();
    let stats = sched.stats();
    assert!(
        stats.cpu_pressure > 1.0,
        "one 1ms cycle under a 0.1% cap must over-pressure: {}",
        stats.cpu_pressure
    );
    let throttled_gap = report.next_deadline_ns - report.finished_ns;
    assert!(
        throttled_gap > 10 * period.as_nanos() as u64,
        "throttle must push the deadline well past the period: {throttled_gap}ns"
    );

    // Let virtual wall time amortize the spend (no cycles run).
    clock.advance(Duration::from_secs(100));
    let stats = sched.stats();
    assert!(
        stats.cpu_pressure < 1.0,
        "pressure must decay with idle wall time: {}",
        stats.cpu_pressure
    );
    // The next cycle reschedules at the bare period again.
    let report = sched.step().unwrap();
    let released_gap = report.next_deadline_ns - report.finished_ns;
    assert_eq!(
        released_gap,
        period.as_nanos() as u64,
        "throttle must fully release once spend is back under the cap"
    );
}

/// Swapping FixedPeriod → Adaptive mid-flight takes effect on the next
/// completed cycle: the prescribed period leaves the fixed value and
/// lands in the adaptive range (an idle module relaxes toward `max`).
#[test]
fn policy_transition_fixed_to_adaptive_mid_flight() {
    let (kernel, registry, _modules) = boot_n(2);
    let fixed = Duration::from_millis(10);
    let (sched, _clock) = stepped(
        &kernel,
        &registry,
        2,
        Policy::FixedPeriod(fixed),
        f64::INFINITY,
        Duration::from_micros(100),
    );
    for _ in 0..4 {
        let r = sched.step().unwrap();
        assert_eq!(r.period_ns, fixed.as_nanos() as u64, "still fixed");
    }
    let adaptive = Policy::Adaptive {
        min: Duration::from_millis(1),
        max: Duration::from_millis(40),
        rate_scale: 1_000.0,
        exposure_scale: 1e12,
    };
    assert!(sched.set_policy("mod0", adaptive));
    assert!(
        !sched.set_policy("nonexistent", Policy::default_fixed()),
        "unknown modules are rejected"
    );
    let mut saw_mod0 = false;
    for _ in 0..6 {
        let r = sched.step().unwrap();
        if r.module == "mod0" {
            saw_mod0 = true;
            assert_eq!(
                r.period_ns,
                Duration::from_millis(40).as_nanos() as u64,
                "idle module under the new adaptive policy must relax to max"
            );
        } else {
            assert_eq!(r.period_ns, fixed.as_nanos() as u64, "mod1 keeps fixed");
        }
    }
    assert!(saw_mod0, "mod0 must have cycled after the swap");
    let stats = sched.stop();
    let m0 = stats.modules.iter().find(|m| m.name == "mod0").unwrap();
    assert_eq!(m0.policy, "adaptive", "stats must reflect the live policy");
    assert_eq!(stats.failures, 0);
}

/// Satellite regression: zero-copy moves never change module text, so
/// the Adaptive exposure refresh must stop rescanning unchanged bytes.
/// With `exposure_refresh: 1` (refresh after every completed cycle),
/// the content-hash cache must answer every post-initial refresh — a
/// no-op cycle costs **zero** rescans.
#[test]
fn noop_cycles_cost_zero_gadget_rescans() {
    let (kernel, registry, _modules) = boot_n(1);
    let names = [("mod0", Policy::default_adaptive())];
    let clock = SimClock::new();
    let sched = Scheduler::spawn_stepped(
        kernel.clone(),
        registry.clone(),
        &names,
        SchedConfig {
            workers: 1,
            policy: Policy::default_adaptive(),
            exposure_refresh: 1, // re-scan after every cycle
            ..SchedConfig::default()
        },
        clock,
        Duration::from_micros(50),
    );
    // The boot-time scan is the only decode this fleet ever pays.
    let s0 = sched.stats();
    assert_eq!(s0.exposure_scan_misses, 1, "one distinct text, one scan");
    for _ in 0..6 {
        sched.step().expect("heap never empties");
    }
    let s1 = sched.stats();
    assert_eq!(
        s1.exposure_scan_misses, s0.exposure_scan_misses,
        "re-randomizing unchanged text must not rescan it"
    );
    assert!(
        s1.exposure_scan_hits >= 6,
        "every per-cycle refresh must be a cache hit (got {})",
        s1.exposure_scan_hits
    );
    // The exposure signal itself still updates (non-zero for code with
    // rets in it), so the Adaptive policy loses nothing.
    assert!(s1.modules[0].exposure > 0.0);
}
