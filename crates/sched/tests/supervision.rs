//! Property tests for the module health state machine (DESIGN.md §16):
//! backoff monotonicity, guaranteed un-quarantine probes, and streak
//! reset on success — over arbitrary supervision configs and
//! failure/success histories.

use adelie_sched::{backoff_multiplier, HealthEvent, HealthState, ModuleHealth, SupervisionConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SupervisionConfig> {
    (1u32..5, 0u32..8, 1u32..10).prop_map(|(degrade_after, extra, backoff_max_exp)| {
        SupervisionConfig {
            degrade_after,
            quarantine_after: degrade_after + extra,
            backoff_max_exp,
            ..SupervisionConfig::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Backoff never shrinks as the failure streak grows, starts at 1
    /// for sub-threshold streaks, and saturates at `2^backoff_max_exp`
    /// — a longer streak can only mean equal-or-rarer retries, and the
    /// retry period stays bounded (every module keeps getting probed).
    #[test]
    fn backoff_is_monotone_and_saturates(cfg in arb_config(), streak in 0u32..64) {
        let here = backoff_multiplier(&cfg, streak);
        let next = backoff_multiplier(&cfg, streak.saturating_add(1));
        prop_assert!(here <= next, "backoff shrank: x{here} then x{next}");
        prop_assert!(here >= 1);
        prop_assert!(here <= 1u64 << cfg.backoff_max_exp.min(63));
        if streak < cfg.degrade_after {
            prop_assert_eq!(here, 1, "sub-threshold streaks must run at full rate");
        }
        if streak >= cfg.degrade_after + cfg.backoff_max_exp {
            prop_assert_eq!(here, 1u64 << cfg.backoff_max_exp.min(63), "saturated");
        }
    }

    /// Drive the state machine with an arbitrary failure run: the
    /// state always matches the thresholds, quarantine is reached
    /// exactly when the streak crosses `quarantine_after`, and the
    /// quarantined backoff is finite — so the next probe deadline is
    /// always bounded and the un-quarantine probe eventually fires.
    #[test]
    fn failures_descend_the_states_and_probes_stay_scheduled(
        cfg in arb_config(),
        failures in 1u32..64,
    ) {
        let mut health = ModuleHealth::default();
        for i in 1..=failures {
            let event = health.on_failure(&cfg);
            prop_assert_eq!(health.streak, i);
            let want = if i >= cfg.quarantine_after {
                HealthState::Quarantined
            } else if i >= cfg.degrade_after {
                HealthState::Degraded
            } else {
                HealthState::Healthy
            };
            prop_assert_eq!(health.state, want, "after {} failures", i);
            if i == cfg.quarantine_after {
                prop_assert_eq!(event, HealthEvent::Quarantined);
            }
            // Whatever the state, the next attempt is a finite number
            // of base periods away: nothing is benched forever.
            let backoff = health.backoff(&cfg);
            prop_assert!(backoff >= 1);
            prop_assert!(backoff <= 1u64 << cfg.backoff_max_exp.min(63));
        }
        prop_assert_eq!(health.quarantines, u64::from(failures >= cfg.quarantine_after));
    }

    /// One success from any point in a failure history resets the
    /// streak and returns the module to Healthy (emitting `Recovered`
    /// iff it had left Healthy) — and the post-success backoff is back
    /// to full rate.
    #[test]
    fn one_success_resets_the_streak(cfg in arb_config(), failures in 0u32..64) {
        let mut health = ModuleHealth::default();
        for _ in 0..failures {
            health.on_failure(&cfg);
        }
        let was_unhealthy = health.state != HealthState::Healthy;
        let event = health.on_success();
        prop_assert_eq!(health.state, HealthState::Healthy);
        prop_assert_eq!(health.streak, 0);
        prop_assert_eq!(
            event,
            if was_unhealthy { HealthEvent::Recovered } else { HealthEvent::None }
        );
        prop_assert_eq!(health.recoveries, u64::from(was_unhealthy));
        prop_assert_eq!(health.backoff(&cfg), 1, "recovered modules run at full rate");
    }

    /// Interleaved histories: replay an arbitrary success/failure
    /// sequence against a reference model of the thresholds — the
    /// machine is a pure function of the current streak.
    #[test]
    fn state_is_a_pure_function_of_the_streak(
        cfg in arb_config(),
        ops in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut health = ModuleHealth::default();
        let mut streak = 0u32;
        for ok in ops {
            if ok {
                health.on_success();
                streak = 0;
            } else {
                health.on_failure(&cfg);
                streak += 1;
            }
            let want = if streak >= cfg.quarantine_after {
                HealthState::Quarantined
            } else if streak >= cfg.degrade_after {
                HealthState::Degraded
            } else {
                HealthState::Healthy
            };
            prop_assert_eq!(health.state, want);
            prop_assert_eq!(health.streak, streak);
        }
    }
}
