//! # adelie-plugin — the GCC-plugin analog (module transformer)
//!
//! The paper's GCC plugin (≈1400 LoC) automatically converts existing
//! kernel modules into re-randomizable modules: it detects functions and
//! variables exposed to the kernel, renames them, emits wrappers into
//! the immovable part, and injects the return-address
//! encryption prologue/epilogue into every function (paper §4, Fig. 3).
//!
//! This crate performs the same transformation on our compiler-IR
//! analog: a [`ModuleSpec`] describes a driver in mid-level ops
//! ([`MOp`]) that are *code-model agnostic*; [`transform`] lowers them
//! to concrete instructions for a chosen [`CodeModel`] and applies the
//! Adelie rewrites:
//!
//! * **exported functions** are renamed `{name}__real` and a wrapper
//!   with the original name is emitted into `.fixed.text`; the wrapper
//!   brackets the call with `mr_start`/`mr_finish` and switches to a
//!   stack from the per-CPU pool (Fig. 3a/3b),
//! * **every function** in the movable part gets its return address
//!   encrypted: `mov key@GOT, %r11; xor %r11, (%rsp); xor %r11, %r11`
//!   on entry and before every `ret` (the static-function variant
//!   recycles `%rbp` instead of `%r11`, Fig. 3b),
//! * kernel calls lower to `call *sym@GOTPCREL(%rip)` (PIC), to
//!   `call sym@PLT` (PIC + retpoline), or to direct `call` relocations
//!   (the non-PIC vanilla baseline).

use adelie_isa::{Asm, Cond, Insn, Reg};
use adelie_obj::{Binding, ObjError, ObjectBuilder, ObjectFile, SectionKind};

/// The GOT slot holding the per-module XOR key (paper §3.4: "the
/// encryption key is randomly generated and stored in the local GOT").
/// The loader recognizes this name and reserves a local-GOT slot whose
/// *content* is the key value rather than a symbol address.
pub const KEY_SYMBOL: &str = "__adelie_key";

/// How module code is generated.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CodeModel {
    /// Position-independent: GOT/PLT, loadable anywhere in the 57-bit
    /// space (the paper's contribution).
    Pic,
    /// The vanilla-Linux baseline: absolute relocations, confined to the
    /// legacy 2 GiB window.
    Legacy,
}

/// Transformation switches (each maps to a paper configuration).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TransformOptions {
    /// Code model.
    pub model: CodeModel,
    /// Spectre-V2 retpoline mitigation: global calls go through PLT
    /// stubs with speculation-safe thunks (§4.1).
    pub retpoline: bool,
    /// Produce a re-randomizable module: wrappers + movable/immovable
    /// split. Off = plain PIC module (still 64-bit KASLR).
    pub rerandomize: bool,
    /// Wrapper stack switching (Fig. 3b); requires `rerandomize`.
    pub stack_rerand: bool,
    /// Return-address encryption; requires `rerandomize`.
    pub encrypt_ret: bool,
    /// Lazy PLT binding: PLT-routed slots start at a binder trampoline
    /// and resolve on first call (ELF `.ko` semantics; MARDU-style).
    /// Only meaningful with `model == Pic` and `retpoline` (the
    /// configurations that emit PLT stubs); ignored otherwise.
    pub lazy_plt: bool,
    /// Ingest the transformed object through the ELF64 pipeline
    /// (`adelie_elf::emit` → `adelie_elf::parse`) before loading, the
    /// way a real `.ko` arrives — exercised by the driver installers;
    /// the transform itself ignores it.
    pub elf_ingest: bool,
}

impl TransformOptions {
    /// Vanilla Linux: non-PIC, no wrappers.
    pub fn vanilla(retpoline: bool) -> TransformOptions {
        TransformOptions {
            model: CodeModel::Legacy,
            retpoline,
            rerandomize: false,
            stack_rerand: false,
            encrypt_ret: false,
            lazy_plt: false,
            elf_ingest: false,
        }
    }

    /// Plain PIC module (contribution 1: 64-bit KASLR only).
    pub fn pic(retpoline: bool) -> TransformOptions {
        TransformOptions {
            model: CodeModel::Pic,
            retpoline,
            rerandomize: false,
            stack_rerand: false,
            encrypt_ret: false,
            lazy_plt: false,
            elf_ingest: false,
        }
    }

    /// Fully re-randomizable module (contributions 2+3).
    pub fn rerandomizable(retpoline: bool) -> TransformOptions {
        TransformOptions {
            model: CodeModel::Pic,
            retpoline,
            rerandomize: true,
            stack_rerand: true,
            encrypt_ret: true,
            lazy_plt: false,
            elf_ingest: false,
        }
    }

    /// The same options with lazy PLT binding switched on.
    pub fn with_lazy_plt(mut self) -> TransformOptions {
        self.lazy_plt = true;
        self
    }

    /// The same options with ELF ingestion switched on: driver
    /// installers serialize the object to ELF64 and parse it back
    /// before loading.
    pub fn with_elf_ingest(mut self) -> TransformOptions {
        self.elf_ingest = true;
        self
    }
}

/// Mid-level operations — what driver authors write. Code-model
/// agnostic: symbolic references lower differently per [`CodeModel`].
#[derive(Clone, Debug)]
pub enum MOp {
    /// A concrete instruction (register moves, ALU, stack ops, …).
    Insn(Insn),
    /// Define a local label.
    Label(String),
    /// Unconditional jump to a local label.
    Jmp(String),
    /// Conditional jump to a local label.
    Jcc(Cond, String),
    /// Call an exported kernel symbol (kmalloc, printk, register_*…).
    CallKernel(String),
    /// Call another function in this module.
    CallLocal(String),
    /// Load the address of a kernel symbol into a register.
    LoadKernelSym(Reg, String),
    /// Load the address of a module-local symbol into a register.
    LoadLocalSym(Reg, String),
    /// Return (the transformer injects the decryption epilogue here).
    Ret,
    /// Raw bytes (lookup tables embedded in text, padding…).
    Bytes(Vec<u8>),
}

/// A function in the module IR.
#[derive(Clone, Debug)]
pub struct FuncSpec {
    /// Name (the kernel-visible name if exported).
    pub name: String,
    /// Exposed to the kernel → gets wrapped when re-randomizable.
    pub exported: bool,
    /// `static` in the C sense: the prologue recycles `%rbp` because
    /// custom calling conventions may use `%r11` (paper Fig. 3b).
    pub is_static: bool,
    /// Body.
    pub body: Vec<MOp>,
}

impl FuncSpec {
    /// A new exported function.
    pub fn exported(name: &str, body: Vec<MOp>) -> FuncSpec {
        FuncSpec {
            name: name.to_string(),
            exported: true,
            is_static: false,
            body,
        }
    }

    /// A new module-internal (static) function.
    pub fn local(name: &str, body: Vec<MOp>) -> FuncSpec {
        FuncSpec {
            name: name.to_string(),
            exported: false,
            is_static: true,
            body,
        }
    }
}

/// Initialized data in the module IR.
#[derive(Clone, Debug)]
pub enum DataInit {
    /// Plain bytes.
    Bytes(Vec<u8>),
    /// A table of 8-byte pointers to module symbols (like
    /// `ext4_file_inode_operations` — the §6 static-data case).
    PtrTable(Vec<String>),
    /// `len` zero bytes (placed in `.bss`).
    Zero(usize),
}

/// A data object in the module IR.
#[derive(Clone, Debug)]
pub struct DataSpec {
    /// Symbol name.
    pub name: String,
    /// Read-only? (`.rodata`, immovable.)
    pub readonly: bool,
    /// Contents.
    pub init: DataInit,
}

/// The module IR handed to [`transform`] — the analog of a driver's
/// source tree entering the plugin-augmented compiler.
#[derive(Clone, Debug, Default)]
pub struct ModuleSpec {
    /// Module name.
    pub name: String,
    /// Functions.
    pub funcs: Vec<FuncSpec>,
    /// Data objects.
    pub data: Vec<DataSpec>,
    /// Init entry point (must name an exported function).
    pub init: Option<String>,
    /// Exit entry point.
    pub exit: Option<String>,
    /// Pointer-refresh callback for the re-randomizer.
    pub update_pointers: Option<String>,
}

impl ModuleSpec {
    /// An empty module.
    pub fn new(name: &str) -> ModuleSpec {
        ModuleSpec {
            name: name.to_string(),
            ..ModuleSpec::default()
        }
    }
}

fn real_name(name: &str) -> String {
    format!("{name}__real")
}

/// Lower a kernel call per the code model (the three Fig. 4 shapes).
fn lower_kernel_call(a: &mut Asm, sym: &str, opts: &TransformOptions) {
    match (opts.model, opts.retpoline) {
        (CodeModel::Legacy, _) => {
            // Vanilla module: direct call into the kernel (±2 GiB away).
            a.call_pc32(sym);
        }
        (CodeModel::Pic, false) => {
            // Inline indirect call through the GOT.
            a.call_got(sym);
        }
        (CodeModel::Pic, true) => {
            // Through a retpoline-safe PLT stub the loader builds.
            a.call_plt(sym);
        }
    }
}

fn lower_local_call(a: &mut Asm, sym: &str, opts: &TransformOptions) {
    match opts.model {
        CodeModel::Legacy => {
            a.call_pc32(sym);
        }
        CodeModel::Pic => {
            // The compiler can't know the symbol stays local to the
            // part, so it emits the general form; the loader patches it
            // into a direct call (Fig. 4 "local calls").
            if opts.retpoline {
                a.call_plt(sym);
            } else {
                a.call_got(sym);
            }
        }
    }
}

fn lower_sym_load(a: &mut Asm, reg: Reg, sym: &str, local: bool, opts: &TransformOptions) {
    match opts.model {
        CodeModel::Legacy => {
            a.movabs_sym(reg, sym);
        }
        CodeModel::Pic => {
            // GOT load; the loader relaxes it to `lea` for same-part
            // symbols (Fig. 4 "local symbols").
            let _ = local;
            a.load_got(reg, sym);
        }
    }
}

/// Emit the return-address encryption/decryption sequence (Fig. 3b).
/// `xor (%rsp), key` both encrypts and decrypts.
fn emit_crypt(a: &mut Asm, is_static: bool) {
    use adelie_isa::{AluOp, Mem};
    if !is_static {
        // mov key@GOTPCREL(%rip), %r11 ; xor %r11, (%rsp) ; xor %r11,%r11
        a.load_got(Reg::R11, KEY_SYMBOL);
        a.alu_store(AluOp::Xor, Mem::base(Reg::Rsp), Reg::R11);
        a.alu(AluOp::Xor, Reg::R11, Reg::R11); // avoid key leakage
    } else {
        // Static functions may use custom conventions where %r11 is
        // live; recycle %rbp instead (push/pop around it).
        a.push(Reg::Rbp);
        a.load_got(Reg::Rbp, KEY_SYMBOL);
        a.alu_store(AluOp::Xor, Mem::base_disp(Reg::Rsp, 8), Reg::Rbp);
        a.pop(Reg::Rbp);
    }
}

/// Lower one function body to assembly. `renamed` holds the names of
/// functions the transformer renamed (exported ones, when
/// re-randomizing) so intra-module calls target the real code.
fn lower_body(
    f: &FuncSpec,
    opts: &TransformOptions,
    encrypt: bool,
    renamed: &std::collections::HashSet<String>,
) -> Asm {
    let mut a = Asm::new();
    if encrypt {
        emit_crypt(&mut a, f.is_static);
    }
    for op in &f.body {
        match op {
            MOp::Insn(i) => {
                debug_assert!(
                    !matches!(i, Insn::Ret),
                    "use MOp::Ret so the epilogue can be injected"
                );
                a.insn(*i);
            }
            MOp::Label(l) => {
                a.label(l);
            }
            MOp::Jmp(l) => {
                a.jmp_label(l);
            }
            MOp::Jcc(c, l) => {
                a.jcc_label(*c, l);
            }
            MOp::CallKernel(sym) => lower_kernel_call(&mut a, sym, opts),
            MOp::CallLocal(sym) => {
                // Intra-module calls to a *renamed* (exported) function
                // target the real code in the movable part, not the
                // wrapper.
                let target = if renamed.contains(sym) {
                    real_name(sym)
                } else {
                    sym.clone()
                };
                lower_local_call(&mut a, &target, opts)
            }
            MOp::LoadKernelSym(r, sym) => lower_sym_load(&mut a, *r, sym, false, opts),
            MOp::LoadLocalSym(r, sym) => lower_sym_load(&mut a, *r, sym, true, opts),
            MOp::Ret => {
                if encrypt {
                    emit_crypt(&mut a, f.is_static);
                }
                a.ret();
            }
            MOp::Bytes(b) => {
                a.bytes(b);
            }
        }
    }
    a
}

/// Emit the immovable wrapper for an exported function (Fig. 3a + 3b).
fn emit_wrapper(name: &str, opts: &TransformOptions) -> Asm {
    let mut a = Asm::new();
    let kcall = |a: &mut Asm, sym: &str| {
        if opts.retpoline {
            a.call_plt(sym);
        } else {
            a.call_got(sym);
        }
    };
    // mr_start(): lifetime-control bracket (natives preserve all
    // registers except %rax, so argument registers survive).
    kcall(&mut a, "mr_start");
    if opts.stack_rerand {
        // get_new_stack: %rbp = %rsp; stk = pop_stack_this_cpu();
        // if (!stk) stk = alloc_stack(); %rsp = stk;
        a.push(Reg::Rbp);
        a.mov_rr(Reg::Rbp, Reg::Rsp);
        kcall(&mut a, "pop_stack_this_cpu");
        a.test(Reg::Rax, Reg::Rax);
        a.jcc_label(Cond::Ne, "__have_stack");
        kcall(&mut a, "alloc_stack");
        a.label("__have_stack");
        a.mov_rr(Reg::Rsp, Reg::Rax);
    }
    // Call the real (movable) function through the immovable-part local
    // GOT — the slot the re-randomizer updates every period.
    if opts.retpoline {
        a.call_plt(&real_name(name));
    } else {
        a.call_got(&real_name(name));
    }
    // Preserve the return value across the teardown natives.
    a.mov_rr(Reg::R10, Reg::Rax);
    if opts.stack_rerand {
        // return_old_stack: stk = %rsp; %rsp = %rbp; push_stack(stk).
        a.mov_rr(Reg::Rdi, Reg::Rsp);
        a.mov_rr(Reg::Rsp, Reg::Rbp);
        a.pop(Reg::Rbp);
        kcall(&mut a, "push_stack_this_cpu");
    }
    kcall(&mut a, "mr_finish");
    a.mov_rr(Reg::Rax, Reg::R10);
    a.ret();
    a
}

/// Run the transformation: [`ModuleSpec`] → [`ObjectFile`].
///
/// # Errors
///
/// Propagates assembler/object errors (bad labels, duplicate symbols).
pub fn transform(spec: &ModuleSpec, opts: &TransformOptions) -> Result<ObjectFile, ObjError> {
    debug_assert!(
        opts.rerandomize || (!opts.stack_rerand && !opts.encrypt_ret),
        "stack re-randomization and encryption require a re-randomizable module"
    );
    debug_assert!(
        opts.model == CodeModel::Pic || !opts.rerandomize,
        "re-randomization requires the PIC model"
    );
    let mut b = ObjectBuilder::new(&spec.name);
    let renamed: std::collections::HashSet<String> = if opts.rerandomize {
        spec.funcs
            .iter()
            .filter(|f| f.exported)
            .map(|f| f.name.clone())
            .collect()
    } else {
        Default::default()
    };
    for f in &spec.funcs {
        if opts.rerandomize && f.exported {
            // Renamed real function in movable .text …
            let body = lower_body(f, opts, opts.encrypt_ret, &renamed);
            b.add_function(
                &real_name(&f.name),
                &body,
                SectionKind::Text,
                Binding::Local,
            )?;
            // … and the kernel-visible wrapper in immovable .fixed.text.
            let wrapper = emit_wrapper(&f.name, opts);
            b.add_function(&f.name, &wrapper, SectionKind::FixedText, Binding::Global)?;
            b.export(&f.name);
        } else {
            let encrypt = opts.encrypt_ret;
            let body = lower_body(f, opts, encrypt, &renamed);
            let binding = if f.exported {
                Binding::Global
            } else {
                Binding::Local
            };
            b.add_function(&f.name, &body, SectionKind::Text, binding)?;
            if f.exported {
                b.export(&f.name);
            }
        }
    }
    for d in &spec.data {
        match &d.init {
            DataInit::Bytes(bytes) => {
                let section = if d.readonly {
                    SectionKind::Rodata
                } else {
                    SectionKind::Data
                };
                b.add_data(&d.name, bytes, section, Binding::Local)?;
            }
            DataInit::Zero(len) => {
                b.add_bss(&d.name, *len, Binding::Local)?;
            }
            DataInit::PtrTable(syms) => {
                let mut t = Asm::new();
                for s in syms {
                    // Pointer tables reference the movable real function
                    // when re-randomizing — these are exactly the
                    // "adjusted during re-randomization" pointers of §6.
                    let target = if opts.rerandomize
                        && spec.funcs.iter().any(|f| f.name == *s && f.exported)
                    {
                        real_name(s)
                    } else {
                        s.clone()
                    };
                    t.quad_sym(&target);
                }
                let section = if d.readonly {
                    SectionKind::Rodata
                } else {
                    SectionKind::Data
                };
                b.add_data_asm(&d.name, &t, section, Binding::Local)?;
            }
        }
    }
    if let Some(init) = &spec.init {
        b.set_init(init);
    }
    if let Some(exit) = &spec.exit {
        b.set_exit(exit);
    }
    if let Some(up) = &spec.update_pointers {
        b.set_update_pointers(up);
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::AluOp;
    use adelie_obj::RelocKind;

    fn demo_spec() -> ModuleSpec {
        let mut spec = ModuleSpec::new("demo");
        spec.funcs.push(FuncSpec::exported(
            "demo_ioctl",
            vec![
                MOp::Insn(Insn::MovRR {
                    dst: Reg::Rax,
                    src: Reg::Rdi,
                }),
                MOp::CallLocal("helper".into()),
                MOp::Ret,
            ],
        ));
        spec.funcs.push(FuncSpec::local(
            "helper",
            vec![
                MOp::Insn(Insn::AluImm {
                    op: AluOp::Add,
                    dst: Reg::Rax,
                    imm: 1,
                }),
                MOp::Ret,
            ],
        ));
        spec.data.push(DataSpec {
            name: "demo_ops".into(),
            readonly: false,
            init: DataInit::PtrTable(vec!["demo_ioctl".into()]),
        });
        spec.init = Some("demo_ioctl".into());
        spec
    }

    #[test]
    fn vanilla_has_no_got_relocs_or_wrappers() {
        let obj = transform(&demo_spec(), &TransformOptions::vanilla(false)).unwrap();
        assert!(obj.section(SectionKind::FixedText).is_none());
        let h = obj.reloc_histogram();
        assert!(!h.contains_key(&RelocKind::GotPcRel));
        assert!(obj.symbol("demo_ioctl").unwrap().is_defined());
    }

    #[test]
    fn pic_uses_got() {
        let obj = transform(&demo_spec(), &TransformOptions::pic(false)).unwrap();
        let h = obj.reloc_histogram();
        assert!(h[&RelocKind::GotPcRel] >= 1, "local call via GOT: {h:?}");
        assert!(obj.section(SectionKind::FixedText).is_none());
    }

    #[test]
    fn retpoline_uses_plt() {
        let obj = transform(&demo_spec(), &TransformOptions::pic(true)).unwrap();
        let h = obj.reloc_histogram();
        assert!(h[&RelocKind::Plt32] >= 1, "{h:?}");
    }

    #[test]
    fn rerandomizable_splits_and_wraps() {
        let obj = transform(&demo_spec(), &TransformOptions::rerandomizable(false)).unwrap();
        // Wrapper in .fixed.text under the original name.
        let w = obj.symbol("demo_ioctl").unwrap();
        assert!(matches!(
            w.def,
            adelie_obj::SymbolDef::Defined {
                section: SectionKind::FixedText,
                ..
            }
        ));
        // Real function renamed into movable .text.
        let r = obj.symbol("demo_ioctl__real").unwrap();
        assert!(matches!(
            r.def,
            adelie_obj::SymbolDef::Defined {
                section: SectionKind::Text,
                ..
            }
        ));
        // Wrapper references mr_start/mr_finish and the stack natives.
        let fixed = obj.section(SectionKind::FixedText).unwrap();
        let syms: Vec<&str> = fixed.relocs.iter().map(|r| &*r.symbol).collect();
        for needed in [
            "mr_start",
            "mr_finish",
            "pop_stack_this_cpu",
            "push_stack_this_cpu",
            "alloc_stack",
            "demo_ioctl__real",
        ] {
            assert!(syms.contains(&needed), "wrapper missing {needed}: {syms:?}");
        }
        // Encryption references the key GOT slot from movable text.
        let text = obj.section(SectionKind::Text).unwrap();
        assert!(
            text.relocs.iter().any(|r| &*r.symbol == KEY_SYMBOL),
            "missing key slot reference"
        );
        // The pointer table targets the real function (adjusted on move).
        let data = obj.section(SectionKind::Data).unwrap();
        assert!(data
            .relocs
            .iter()
            .any(|r| &*r.symbol == "demo_ioctl__real" && r.kind == RelocKind::Abs64));
    }

    #[test]
    fn encryption_sequence_shape() {
        // The movable function's first instructions must be the Fig. 3b
        // prologue: mov key@GOT, %r11 ; xor %r11,(%rsp) ; xor %r11,%r11.
        let obj = transform(&demo_spec(), &TransformOptions::rerandomizable(false)).unwrap();
        let text = obj.section(SectionKind::Text).unwrap();
        let real = obj.symbol("demo_ioctl__real").unwrap();
        let off = match real.def {
            adelie_obj::SymbolDef::Defined { offset, .. } => offset,
            _ => unreachable!(),
        };
        // First comes the GOT load of the key (REX.W 8B ..).
        assert_eq!(text.bytes[off], 0x4C, "REX.WR for r11 load");
        assert_eq!(text.bytes[off + 1], 0x8B);
        // Then xor (%rsp)-form: 4C 31 1C 24.
        assert_eq!(&text.bytes[off + 7..off + 11], &[0x4C, 0x31, 0x1C, 0x24]);
    }

    #[test]
    fn static_functions_recycle_rbp() {
        let spec = {
            let mut s = ModuleSpec::new("m");
            s.funcs.push(FuncSpec::local("sfn", vec![MOp::Ret]));
            s
        };
        let obj = transform(&spec, &TransformOptions::rerandomizable(false)).unwrap();
        let text = obj.section(SectionKind::Text).unwrap();
        // push %rbp = 0x55 first.
        assert_eq!(text.bytes[0], 0x55);
    }

    #[test]
    fn metadata_flows_through() {
        let obj = transform(&demo_spec(), &TransformOptions::rerandomizable(true)).unwrap();
        assert_eq!(obj.init.as_deref(), Some("demo_ioctl"));
        assert_eq!(obj.exports, vec!["demo_ioctl".to_string()]);
    }
}
