//! # adelie-drivers — device models and driver modules
//!
//! The drivers the paper evaluates, as pairs of (device model, driver
//! module): the driver side is plugin-IR source lowered per
//! configuration and executed by the interpreter; the device side is a
//! deterministic Rust model behind MMIO registers.
//!
//! | paper driver | here |
//! |---|---|
//! | NVMe (storage) | [`install_nvme`] — register-file block device with a DRAM-cache read model |
//! | E1000E / E1000 / ENA (network) | [`install_nic`] — TX/RX ring NIC with an in-process "wire" |
//! | dummy ioctl driver (Fig. 9) | [`install_dummy`] — null ioctl |
//! | ext4 (block mapping) | [`install_extfs`] — VFS block-map interposition |
//! | xHCI / FUSE (extra load) | [`install_xhci`], [`install_fuse`] |
//!
//! # Example
//!
//! ```
//! use adelie_core::ModuleRegistry;
//! use adelie_drivers::{install_dummy, specs::DUMMY_MINOR};
//! use adelie_kernel::{Kernel, KernelConfig};
//! use adelie_plugin::TransformOptions;
//!
//! let kernel = Kernel::new(KernelConfig::default());
//! let registry = ModuleRegistry::new(&kernel);
//! install_dummy(&registry, &TransformOptions::rerandomizable(true)).unwrap();
//! let mut vm = kernel.vm();
//! assert_eq!(kernel.ioctl(&mut vm, DUMMY_MINOR, 0, 7).unwrap(), 7);
//! ```

pub mod devices;
pub mod specs;

pub use devices::{NicDevice, NvmeDevice, XhciDevice};
pub use specs::NicFlavor;

use adelie_core::{LoadError, LoadedModule, ModuleRegistry};
use adelie_plugin::{transform, TransformOptions};
use std::sync::Arc;

/// An installed driver: the loaded module plus its device model handle.
pub struct Driver<D> {
    /// The loaded (possibly re-randomizable) module.
    pub module: Arc<LoadedModule>,
    /// The device model (unit for device-less modules).
    pub device: D,
    /// The device's MMIO aperture base, if any.
    pub mmio_base: u64,
}

fn load_spec(
    registry: &ModuleRegistry,
    spec: &adelie_plugin::ModuleSpec,
    opts: &TransformOptions,
) -> Result<Arc<LoadedModule>, LoadError> {
    let obj = transform(spec, opts).map_err(|e| LoadError::Ingest(e.to_string()))?;
    let obj = if opts.elf_ingest {
        // The real-module path: serialize to an ELF64 relocatable
        // object and ingest it back, as if the `.ko` came off disk.
        adelie_elf::parse(&adelie_elf::emit(&obj)).map_err(|e| LoadError::Ingest(e.to_string()))?
    } else {
        obj
    };
    registry.load(&obj, opts)
}

/// Install the NVMe-analog storage driver.
///
/// # Errors
///
/// Propagates [`LoadError`].
pub fn install_nvme(
    registry: &ModuleRegistry,
    opts: &TransformOptions,
) -> Result<Driver<Arc<NvmeDevice>>, LoadError> {
    let kernel = registry.kernel();
    let device = NvmeDevice::new(kernel.phys.clone(), kernel.space.clone());
    let (_id, mmio_base) = kernel.map_device(device.clone(), 1);
    let module = load_spec(registry, &specs::nvme_spec(mmio_base), opts)?;
    Ok(Driver {
        module,
        device,
        mmio_base,
    })
}

/// Install a NIC driver of the given flavor.
///
/// # Errors
///
/// Propagates [`LoadError`].
pub fn install_nic(
    registry: &ModuleRegistry,
    opts: &TransformOptions,
    flavor: NicFlavor,
) -> Result<Driver<Arc<NicDevice>>, LoadError> {
    let kernel = registry.kernel();
    let device = NicDevice::new(kernel.phys.clone(), kernel.space.clone());
    let (_id, mmio_base) = kernel.map_device(device.clone(), 1);
    let module = load_spec(registry, &specs::nic_spec(flavor, mmio_base), opts)?;
    Ok(Driver {
        module,
        device,
        mmio_base,
    })
}

/// Install the dummy null-ioctl driver (Fig. 9's benchmark target).
///
/// # Errors
///
/// Propagates [`LoadError`].
pub fn install_dummy(
    registry: &ModuleRegistry,
    opts: &TransformOptions,
) -> Result<Driver<()>, LoadError> {
    let module = load_spec(registry, &specs::dummy_spec(), opts)?;
    Ok(Driver {
        module,
        device: (),
        mmio_base: 0,
    })
}

/// Install the ext4-analog filesystem module.
///
/// # Errors
///
/// Propagates [`LoadError`].
pub fn install_extfs(
    registry: &ModuleRegistry,
    opts: &TransformOptions,
) -> Result<Driver<()>, LoadError> {
    let module = load_spec(registry, &specs::extfs_spec(), opts)?;
    Ok(Driver {
        module,
        device: (),
        mmio_base: 0,
    })
}

/// Install the xHCI-analog extra-load module.
///
/// # Errors
///
/// Propagates [`LoadError`].
pub fn install_xhci(
    registry: &ModuleRegistry,
    opts: &TransformOptions,
) -> Result<Driver<Arc<XhciDevice>>, LoadError> {
    let kernel = registry.kernel();
    let device = XhciDevice::new();
    let (_id, mmio_base) = kernel.map_device(device.clone(), 1);
    let module = load_spec(registry, &specs::xhci_spec(mmio_base), opts)?;
    Ok(Driver {
        module,
        device,
        mmio_base,
    })
}

/// Install the FUSE-analog extra-load module.
///
/// # Errors
///
/// Propagates [`LoadError`].
pub fn install_fuse(
    registry: &ModuleRegistry,
    opts: &TransformOptions,
) -> Result<Driver<()>, LoadError> {
    let module = load_spec(registry, &specs::fuse_spec(), opts)?;
    Ok(Driver {
        module,
        device: (),
        mmio_base: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_core::rerandomize_module;
    use adelie_kernel::{Kernel, KernelConfig, SECTOR_SIZE};
    use parking_lot::Mutex;
    use std::sync::atomic::Ordering;

    fn boot() -> (Arc<Kernel>, Arc<ModuleRegistry>) {
        let kernel = Kernel::new(KernelConfig::default());
        let registry = ModuleRegistry::new(&kernel);
        (kernel, registry)
    }

    fn option_matrix() -> Vec<TransformOptions> {
        vec![
            TransformOptions::vanilla(false),
            TransformOptions::pic(true),
            TransformOptions::rerandomizable(true),
        ]
    }

    #[test]
    fn dummy_ioctl_under_every_configuration() {
        for opts in option_matrix() {
            let (kernel, registry) = boot();
            install_dummy(&registry, &opts).unwrap();
            let mut vm = kernel.vm();
            for i in 0..32u64 {
                assert_eq!(
                    kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, i).unwrap(),
                    i,
                    "under {opts:?}"
                );
            }
        }
    }

    #[test]
    fn nvme_direct_read_matches_device_contents() {
        for opts in option_matrix() {
            let (kernel, registry) = boot();
            let drv = install_nvme(&registry, &opts).unwrap();
            kernel.vfs.create("data.bin", 1 << 20);
            let fd = kernel.vfs.open("data.bin", true).unwrap();
            let mut vm = kernel.vm();
            let buf = kernel
                .heap
                .kmalloc(&kernel.space, &kernel.phys, SECTOR_SIZE);
            let n = kernel.vfs.pread(&mut vm, fd, buf, SECTOR_SIZE, 0).unwrap();
            assert_eq!(n, SECTOR_SIZE);
            let mut got = vec![0u8; SECTOR_SIZE];
            kernel
                .space
                .read_bytes(&kernel.phys, buf, &mut got)
                .unwrap();
            let file = kernel.vfs.stat("data.bin").unwrap();
            assert_eq!(got, drv.device.sector(file.first_lba).to_vec());
            assert!(drv.device.completed() >= 1);
        }
    }

    #[test]
    fn nvme_write_then_read_direct() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        let _drv = install_nvme(&registry, &opts).unwrap();
        kernel.vfs.create("w.bin", 1 << 16);
        let fd = kernel.vfs.open("w.bin", true).unwrap();
        let mut vm = kernel.vm();
        let buf = kernel
            .heap
            .kmalloc(&kernel.space, &kernel.phys, SECTOR_SIZE);
        kernel
            .space
            .write_bytes(&kernel.phys, buf, &[0x5A; SECTOR_SIZE])
            .unwrap();
        kernel.vfs.pwrite(&mut vm, fd, buf, SECTOR_SIZE, 0).unwrap();
        let out = kernel
            .heap
            .kmalloc(&kernel.space, &kernel.phys, SECTOR_SIZE);
        kernel.vfs.pread(&mut vm, fd, out, SECTOR_SIZE, 0).unwrap();
        let mut got = vec![0u8; SECTOR_SIZE];
        kernel
            .space
            .read_bytes(&kernel.phys, out, &mut got)
            .unwrap();
        assert_eq!(got, vec![0x5A; SECTOR_SIZE]);
    }

    #[test]
    fn nvme_keeps_serving_across_rerandomization() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        let drv = install_nvme(&registry, &opts).unwrap();
        kernel.vfs.create("r.bin", 1 << 20);
        let fd = kernel.vfs.open("r.bin", true).unwrap();
        let mut vm = kernel.vm();
        let buf = kernel
            .heap
            .kmalloc(&kernel.space, &kernel.phys, SECTOR_SIZE);
        for _ in 0..8 {
            kernel.vfs.pread(&mut vm, fd, buf, SECTOR_SIZE, 0).unwrap();
            rerandomize_module(&kernel, &registry, &drv.module).unwrap();
        }
        assert_eq!(drv.module.times_randomized(), 8);
        assert!(drv.device.completed() >= 8);
    }

    #[test]
    fn extfs_interposes_on_block_mapping() {
        let opts = TransformOptions::rerandomizable(false);
        let (kernel, registry) = boot();
        let fs = install_extfs(&registry, &opts).unwrap();
        let _nvme = install_nvme(&registry, &opts).unwrap();
        kernel.vfs.create("mapped.bin", 1 << 16);
        let fd = kernel.vfs.open("mapped.bin", false).unwrap();
        let mut vm = kernel.vm();
        let buf = kernel.heap.kmalloc(&kernel.space, &kernel.phys, 4096);
        kernel.vfs.pread(&mut vm, fd, buf, 4096, 0).unwrap();
        // The module's movable .data statistics counter was bumped by
        // the interpreted map_block call.
        let stats_va = fs.module.symbol_va("extfs_stats").unwrap();
        let count = kernel.space.read_u64(&kernel.phys, stats_va).unwrap();
        assert!(count >= 1, "map_block ran {count} times");
    }

    #[test]
    fn nic_rx_tx_round_trip() {
        for opts in option_matrix() {
            let (kernel, registry) = boot();
            let drv = install_nic(&registry, &opts, NicFlavor::E1000e).unwrap();
            // The "server" records everything netif_rx delivers.
            let inbox = Arc::new(Mutex::new(Vec::<Vec<u8>>::new()));
            let sink = inbox.clone();
            kernel
                .devices
                .set_rx_handler(Box::new(move |f| sink.lock().push(f.to_vec())));
            let mut vm = kernel.vm();
            // Client → device → driver poll → netif_rx.
            drv.device.inject_rx(b"GET /index.html");
            assert_eq!(kernel.net_poll(&mut vm).unwrap(), 1);
            assert_eq!(inbox.lock()[0], b"GET /index.html");
            // Empty ring → 0.
            assert_eq!(kernel.net_poll(&mut vm).unwrap(), 0);
            // Server reply → driver xmit → device TX ring.
            kernel.net_xmit(&mut vm, b"200 OK hello").unwrap();
            assert_eq!(drv.device.pop_tx().unwrap(), b"200 OK hello");
        }
    }

    #[test]
    fn nic_flavors_all_load() {
        let opts = TransformOptions::rerandomizable(true);
        for flavor in [NicFlavor::E1000e, NicFlavor::E1000, NicFlavor::Ena] {
            let (kernel, registry) = boot();
            let drv = install_nic(&registry, &opts, flavor).unwrap();
            assert_eq!(&*drv.module.name, flavor.name());
            let mut vm = kernel.vm();
            kernel.net_xmit(&mut vm, b"probe").unwrap();
            assert_eq!(drv.device.pop_tx().unwrap(), b"probe");
        }
    }

    #[test]
    fn nic_survives_continuous_rerandomization_under_traffic() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        let drv = install_nic(&registry, &opts, NicFlavor::E1000e).unwrap();
        kernel.devices.set_rx_handler(Box::new(|_| {}));
        let sched = adelie_sched::Scheduler::spawn(
            kernel.clone(),
            registry.clone(),
            &["e1000e"],
            adelie_sched::SchedConfig::serial(std::time::Duration::from_millis(1)),
        );
        let mut vm = kernel.vm();
        for i in 0..300u64 {
            drv.device.inject_rx(&i.to_le_bytes());
            assert_eq!(kernel.net_poll(&mut vm).unwrap(), 1);
            kernel.net_xmit(&mut vm, &i.to_le_bytes()).unwrap();
        }
        let stats = sched.stop();
        assert!(stats.cycles >= 1);
        assert_eq!(drv.device.counters().0, 300);
    }

    #[test]
    fn extra_load_modules_work() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        let _x = install_xhci(&registry, &opts).unwrap();
        let _f = install_fuse(&registry, &opts).unwrap();
        let mut vm = kernel.vm();
        // xhci ioctl returns the (incrementing) event counter.
        let a = kernel.ioctl(&mut vm, specs::XHCI_MINOR, 0, 0).unwrap();
        let b = kernel.ioctl(&mut vm, specs::XHCI_MINOR, 0, 0).unwrap();
        assert_eq!(b, a + 1);
        // fuse transform: 2x + 3.
        assert_eq!(kernel.ioctl(&mut vm, specs::FUSE_MINOR, 0, 10).unwrap(), 23);
    }

    #[test]
    fn five_driver_fleet_loads_and_rerandomizes_together() {
        // The Fig. 8 configuration: E1000E + NVMe + FUSE + extfs + xHCI
        // all re-randomizing.
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        install_nic(&registry, &opts, NicFlavor::E1000e).unwrap();
        install_nvme(&registry, &opts).unwrap();
        install_fuse(&registry, &opts).unwrap();
        install_extfs(&registry, &opts).unwrap();
        install_xhci(&registry, &opts).unwrap();
        let names = ["e1000e", "nvme", "fuse", "extfs", "xhci"];
        // Two workers: independent drivers re-randomize concurrently.
        let sched = adelie_sched::Scheduler::spawn(
            kernel.clone(),
            registry.clone(),
            &names,
            adelie_sched::SchedConfig {
                workers: 2,
                policy: adelie_sched::Policy::FixedPeriod(std::time::Duration::from_millis(2)),
                ..adelie_sched::SchedConfig::default()
            },
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
        let stats = sched.stop();
        assert!(stats.cycles >= names.len() as u64);
        for n in names {
            assert!(registry.get(n).unwrap().times_randomized() >= 1, "{n}");
        }
        assert_eq!(kernel.reclaim.stats().delta(), 0);
    }

    #[test]
    fn unload_restores_clean_state() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        install_dummy(&registry, &opts).unwrap();
        let mut vm = kernel.vm();
        assert!(kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 1).is_ok());
        registry.unload("dummy").unwrap();
        assert!(kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 1).is_err());
        // Reload works (exit unregistered the minor).
        install_dummy(&registry, &opts).unwrap();
        assert_eq!(kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 9).unwrap(), 9);
    }

    #[test]
    fn wrapper_overhead_configurations_differ_in_shape() {
        // Fig. 9's three bars: vanilla (no wrapper), wrappers only,
        // wrappers + stack re-randomization. Check the *instruction
        // count* ordering that produces the paper's ~4%/~6% deltas.
        let mut counts = Vec::new();
        for opts in [
            TransformOptions::vanilla(true),
            {
                let mut o = TransformOptions::rerandomizable(true);
                o.stack_rerand = false;
                o.encrypt_ret = false;
                o
            },
            TransformOptions::rerandomizable(true),
        ] {
            let (kernel, registry) = boot();
            install_dummy(&registry, &opts).unwrap();
            let mut vm = kernel.vm();
            // Warm up (first call may allocate a stack).
            kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 1).unwrap();
            let warm = vm.insns_retired();
            kernel.ioctl(&mut vm, specs::DUMMY_MINOR, 0, 1).unwrap();
            counts.push(vm.insns_retired() - warm);
        }
        assert!(
            counts[0] < counts[1] && counts[1] < counts[2],
            "vanilla < wrappers < wrappers+stack: {counts:?}"
        );
    }

    #[test]
    fn module_generation_visible_in_symbols() {
        let opts = TransformOptions::rerandomizable(true);
        let (kernel, registry) = boot();
        let drv = install_dummy(&registry, &opts).unwrap();
        let va0 = drv.module.symbol_va("dummy_ioctl__real").unwrap();
        rerandomize_module(&kernel, &registry, &drv.module).unwrap();
        let va1 = drv.module.symbol_va("dummy_ioctl__real").unwrap();
        assert_ne!(va0, va1, "movable symbol follows the module");
        assert_eq!(
            va1 - drv.module.movable_base.load(Ordering::Relaxed),
            va0 - drv.module.movable.base,
            "offset within part is invariant"
        );
    }
}
