//! Device models (the hardware side of each driver).
//!
//! The paper's testbed has a physical Intel E1000E NIC, a Samsung NVMe
//! SSD, and an xHCI controller (Table 1); the artifact substitutes
//! VirtualBox-emulated devices. We substitute deterministic in-process
//! models with the same interaction shape: MMIO register files the
//! driver module pokes, and DMA into simulated physical memory.

use adelie_kernel::{disk_byte, MmioDevice, SECTOR_SIZE};
use adelie_vmem::{AddressSpace, PhysMem};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// NVMe-like register offsets (one page BAR).
pub mod nvme_regs {
    /// Target LBA (write).
    pub const LBA: u64 = 0x00;
    /// DMA buffer virtual address (write).
    pub const BUF: u64 = 0x08;
    /// Sector count (write).
    pub const COUNT: u64 = 0x10;
    /// Doorbell: 1 = read, 2 = write (write; completes synchronously —
    /// the benchmark leverages the device's DRAM cache, Fig. 6).
    pub const DOORBELL: u64 = 0x18;
    /// Completion status (read; 0 = OK).
    pub const STATUS: u64 = 0x20;
    /// Completed command counter (read).
    pub const COMPLETED: u64 = 0x28;
}

/// An NVMe-style storage device with an internal "DRAM cache":
/// unwritten sectors read as the deterministic [`disk_byte`] pattern;
/// writes land in an overlay map.
pub struct NvmeDevice {
    phys: Arc<PhysMem>,
    space: Arc<AddressSpace>,
    regs: Mutex<NvmeShadow>,
    overlay: Mutex<HashMap<u64, [u8; SECTOR_SIZE]>>,
    completed: AtomicU64,
    status: AtomicU64,
}

#[derive(Default)]
struct NvmeShadow {
    lba: u64,
    buf: u64,
    count: u64,
}

impl NvmeDevice {
    /// Create the device (needs DMA access to memory).
    pub fn new(phys: Arc<PhysMem>, space: Arc<AddressSpace>) -> Arc<NvmeDevice> {
        Arc::new(NvmeDevice {
            phys,
            space,
            regs: Mutex::new(NvmeShadow::default()),
            overlay: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            status: AtomicU64::new(0),
        })
    }

    /// Sector contents as the host sees them (tests compare DMA output).
    pub fn sector(&self, lba: u64) -> [u8; SECTOR_SIZE] {
        if let Some(s) = self.overlay.lock().get(&lba) {
            return *s;
        }
        std::array::from_fn(|i| disk_byte(lba, i))
    }

    /// Commands completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    fn execute(&self, op: u64) {
        let (lba, buf, count) = {
            let r = self.regs.lock();
            (r.lba, r.buf, r.count.max(1))
        };
        let mut status = 0u64;
        for s in 0..count {
            let sector_va = buf + s * SECTOR_SIZE as u64;
            match op {
                1 => {
                    // Read: DMA the sector into the driver's buffer.
                    let data = self.sector(lba + s);
                    if self
                        .space
                        .write_bytes(&self.phys, sector_va, &data)
                        .is_err()
                    {
                        status = 2; // DMA fault
                        break;
                    }
                }
                2 => {
                    let mut data = [0u8; SECTOR_SIZE];
                    if self
                        .space
                        .read_bytes(&self.phys, sector_va, &mut data)
                        .is_err()
                    {
                        status = 2;
                        break;
                    }
                    self.overlay.lock().insert(lba + s, data);
                }
                _ => {
                    status = 1; // bad opcode
                    break;
                }
            }
        }
        self.status.store(status, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

impl MmioDevice for NvmeDevice {
    fn mmio_read(&self, off: u64, _size: usize) -> u64 {
        match off {
            nvme_regs::STATUS => self.status.load(Ordering::SeqCst),
            nvme_regs::COMPLETED => self.completed.load(Ordering::Relaxed),
            nvme_regs::LBA => self.regs.lock().lba,
            nvme_regs::BUF => self.regs.lock().buf,
            nvme_regs::COUNT => self.regs.lock().count,
            _ => 0,
        }
    }

    fn mmio_write(&self, off: u64, value: u64, _size: usize) {
        match off {
            nvme_regs::LBA => self.regs.lock().lba = value,
            nvme_regs::BUF => self.regs.lock().buf = value,
            nvme_regs::COUNT => self.regs.lock().count = value,
            nvme_regs::DOORBELL => self.execute(value),
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "nvme"
    }
}

/// NIC register offsets (one page BAR).
pub mod nic_regs {
    /// TX frame buffer virtual address (write).
    pub const TX_BUF: u64 = 0x00;
    /// TX frame length (write).
    pub const TX_LEN: u64 = 0x08;
    /// TX doorbell (write 1).
    pub const TX_DB: u64 = 0x10;
    /// RX DMA buffer the driver programmed (write at init).
    pub const RX_BUF: u64 = 0x18;
    /// RX doorbell: ask the device to DMA the next pending frame into
    /// `RX_BUF` (write 1).
    pub const RX_DB: u64 = 0x20;
    /// Length of the frame DMA'd by the last RX doorbell (read; 0 =
    /// ring empty).
    pub const RX_LEN: u64 = 0x28;
    /// Frames waiting in the RX ring (read).
    pub const RX_PENDING: u64 = 0x30;
}

/// An E1000E-like NIC: the "wire" is a pair of in-process queues. A load
/// generator pushes frames with [`NicDevice::inject_rx`] and collects
/// transmissions with [`NicDevice::pop_tx`] — the same role the client
/// machine plays in Table 1.
pub struct NicDevice {
    phys: Arc<PhysMem>,
    space: Arc<AddressSpace>,
    tx_buf: AtomicU64,
    tx_len: AtomicU64,
    rx_buf: AtomicU64,
    rx_len: AtomicU64,
    rx_ring: Mutex<VecDeque<Vec<u8>>>,
    tx_ring: Mutex<VecDeque<Vec<u8>>>,
    tx_count: AtomicU64,
    rx_count: AtomicU64,
}

impl NicDevice {
    /// Create the NIC.
    pub fn new(phys: Arc<PhysMem>, space: Arc<AddressSpace>) -> Arc<NicDevice> {
        Arc::new(NicDevice {
            phys,
            space,
            tx_buf: AtomicU64::new(0),
            tx_len: AtomicU64::new(0),
            rx_buf: AtomicU64::new(0),
            rx_len: AtomicU64::new(0),
            rx_ring: Mutex::new(VecDeque::new()),
            tx_ring: Mutex::new(VecDeque::new()),
            tx_count: AtomicU64::new(0),
            rx_count: AtomicU64::new(0),
        })
    }

    /// The load generator delivers a frame to the device.
    pub fn inject_rx(&self, frame: &[u8]) {
        self.rx_ring.lock().push_back(frame.to_vec());
    }

    /// The load generator collects a transmitted frame.
    pub fn pop_tx(&self) -> Option<Vec<u8>> {
        self.tx_ring.lock().pop_front()
    }

    /// Whether the RX ring has pending frames — the interrupt line the
    /// kernel checks before scheduling the driver's poll (NAPI-style:
    /// no interpreted driver code runs while the device is idle).
    pub fn irq_pending(&self) -> bool {
        !self.rx_ring.lock().is_empty()
    }

    /// Frames transmitted / received so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.tx_count.load(Ordering::Relaxed),
            self.rx_count.load(Ordering::Relaxed),
        )
    }
}

impl MmioDevice for NicDevice {
    fn mmio_read(&self, off: u64, _size: usize) -> u64 {
        match off {
            nic_regs::RX_LEN => self.rx_len.load(Ordering::SeqCst),
            nic_regs::RX_PENDING => self.rx_ring.lock().len() as u64,
            _ => 0,
        }
    }

    fn mmio_write(&self, off: u64, value: u64, _size: usize) {
        match off {
            nic_regs::TX_BUF => self.tx_buf.store(value, Ordering::SeqCst),
            nic_regs::TX_LEN => self.tx_len.store(value, Ordering::SeqCst),
            nic_regs::TX_DB => {
                let (buf, len) = (
                    self.tx_buf.load(Ordering::SeqCst),
                    self.tx_len.load(Ordering::SeqCst) as usize,
                );
                let mut frame = vec![0u8; len];
                if self.space.read_bytes(&self.phys, buf, &mut frame).is_ok() {
                    self.tx_ring.lock().push_back(frame);
                    self.tx_count.fetch_add(1, Ordering::Relaxed);
                }
            }
            nic_regs::RX_BUF => self.rx_buf.store(value, Ordering::SeqCst),
            nic_regs::RX_DB => {
                let next = self.rx_ring.lock().pop_front();
                match next {
                    Some(frame) => {
                        let buf = self.rx_buf.load(Ordering::SeqCst);
                        if self.space.write_bytes(&self.phys, buf, &frame).is_ok() {
                            self.rx_len.store(frame.len() as u64, Ordering::SeqCst);
                            self.rx_count.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.rx_len.store(0, Ordering::SeqCst);
                        }
                    }
                    None => self.rx_len.store(0, Ordering::SeqCst),
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "e1000e"
    }
}

/// A trivial xHCI-style controller: a port-status register and an event
/// counter (enough for the extra-load USB module).
pub struct XhciDevice {
    events: AtomicU64,
}

impl XhciDevice {
    /// Create the controller.
    pub fn new() -> Arc<XhciDevice> {
        Arc::new(XhciDevice {
            events: AtomicU64::new(0),
        })
    }

    /// Events consumed by the driver.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }
}

impl MmioDevice for XhciDevice {
    fn mmio_read(&self, off: u64, _size: usize) -> u64 {
        match off {
            0x0 => 0x1, // port connected
            0x8 => self.events.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        }
    }

    fn mmio_write(&self, _off: u64, _value: u64, _size: usize) {}

    fn name(&self) -> &str {
        "xhci"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_vmem::PteFlags;

    fn mem() -> (Arc<PhysMem>, Arc<AddressSpace>) {
        (Arc::new(PhysMem::new()), Arc::new(AddressSpace::new()))
    }

    #[test]
    fn nvme_reads_pattern_and_serves_writes() {
        let (phys, space) = mem();
        let dev = NvmeDevice::new(phys.clone(), space.clone());
        let buf = 0x5000_0000u64;
        space.map(buf, phys.alloc(), PteFlags::DATA).unwrap();
        // Read LBA 7 into buf.
        dev.mmio_write(nvme_regs::LBA, 7, 8);
        dev.mmio_write(nvme_regs::BUF, buf, 8);
        dev.mmio_write(nvme_regs::COUNT, 1, 8);
        dev.mmio_write(nvme_regs::DOORBELL, 1, 8);
        assert_eq!(dev.mmio_read(nvme_regs::STATUS, 8), 0);
        let mut got = vec![0u8; SECTOR_SIZE];
        space.read_bytes(&phys, buf, &mut got).unwrap();
        assert_eq!(got[..8], dev.sector(7)[..8]);
        // Write it back modified; re-read sees the overlay.
        space.write_bytes(&phys, buf, &[0xAB; SECTOR_SIZE]).unwrap();
        dev.mmio_write(nvme_regs::DOORBELL, 2, 8);
        assert_eq!(dev.sector(7), [0xAB; SECTOR_SIZE]);
        assert_eq!(dev.completed(), 2);
    }

    #[test]
    fn nvme_dma_fault_sets_status() {
        let (phys, space) = mem();
        let dev = NvmeDevice::new(phys, space);
        dev.mmio_write(nvme_regs::BUF, 0x0dea_d000, 8); // unmapped
        dev.mmio_write(nvme_regs::COUNT, 1, 8);
        dev.mmio_write(nvme_regs::DOORBELL, 1, 8);
        assert_eq!(dev.mmio_read(nvme_regs::STATUS, 8), 2);
    }

    #[test]
    fn nic_round_trip() {
        let (phys, space) = mem();
        let dev = NicDevice::new(phys.clone(), space.clone());
        let rx_buf = 0x6000_0000u64;
        let tx_buf = 0x7000_0000u64;
        space.map(rx_buf, phys.alloc(), PteFlags::DATA).unwrap();
        space.map(tx_buf, phys.alloc(), PteFlags::DATA).unwrap();
        dev.mmio_write(nic_regs::RX_BUF, rx_buf, 8);
        // Client injects a frame; driver doorbell pulls it in.
        dev.inject_rx(b"hello-nic");
        assert_eq!(dev.mmio_read(nic_regs::RX_PENDING, 8), 1);
        dev.mmio_write(nic_regs::RX_DB, 1, 8);
        assert_eq!(dev.mmio_read(nic_regs::RX_LEN, 8), 9);
        let mut got = vec![0u8; 9];
        space.read_bytes(&phys, rx_buf, &mut got).unwrap();
        assert_eq!(&got, b"hello-nic");
        // Driver transmits.
        space.write_bytes(&phys, tx_buf, b"response").unwrap();
        dev.mmio_write(nic_regs::TX_BUF, tx_buf, 8);
        dev.mmio_write(nic_regs::TX_LEN, 8, 8);
        dev.mmio_write(nic_regs::TX_DB, 1, 8);
        assert_eq!(dev.pop_tx().unwrap(), b"response");
        assert_eq!(dev.counters(), (1, 1));
        // Empty ring → RX_LEN 0.
        dev.mmio_write(nic_regs::RX_DB, 1, 8);
        assert_eq!(dev.mmio_read(nic_regs::RX_LEN, 8), 0);
    }
}
