//! Driver module sources, written in the plugin IR.
//!
//! These are the re-randomizable modules of the paper's evaluation:
//! network (E1000E / E1000 / ENA), storage (NVMe), the null-ioctl dummy
//! driver of the Fig. 9 CPU-bound test, the ext4-analog block-mapping
//! module, and the xHCI / FUSE extra-load modules. Each function body
//! is mid-level IR that the plugin lowers per configuration (PIC or
//! legacy, retpoline or not, wrapped or not) — mirroring how the same
//! driver C source builds into every kernel flavor.

use crate::devices::{nic_regs, nvme_regs};
use adelie_isa::{AluOp, Cond, Insn, Mem, Reg};
use adelie_plugin::{DataInit, DataSpec, FuncSpec, MOp, ModuleSpec};

fn ins(i: Insn) -> MOp {
    MOp::Insn(i)
}

fn store(base: Reg, disp: u64, src: Reg) -> MOp {
    ins(Insn::MovStore {
        dst: Mem::base_disp(base, disp as i32),
        src,
    })
}

fn load(dst: Reg, base: Reg, disp: u64) -> MOp {
    ins(Insn::MovLoad {
        dst,
        src: Mem::base_disp(base, disp as i32),
    })
}

/// The NVMe-analog storage driver. `mmio_base` is the device BAR (a real
/// driver reads it from PCI config space; the simulation bakes it in).
pub fn nvme_spec(mmio_base: u64) -> ModuleSpec {
    let mut spec = ModuleSpec::new("nvme");
    let rw_body = |doorbell: i32| {
        vec![
            // (lba=rdi, buf=rsi, count=rdx)
            ins(Insn::MovImm64(Reg::Rax, mmio_base)),
            store(Reg::Rax, nvme_regs::LBA, Reg::Rdi),
            store(Reg::Rax, nvme_regs::BUF, Reg::Rsi),
            store(Reg::Rax, nvme_regs::COUNT, Reg::Rdx),
            ins(Insn::MovImm32(Reg::Rcx, doorbell)),
            store(Reg::Rax, nvme_regs::DOORBELL, Reg::Rcx),
            load(Reg::Rax, Reg::Rax, nvme_regs::STATUS),
            MOp::Ret,
        ]
    };
    spec.funcs
        .push(FuncSpec::exported("nvme_read_block", rw_body(1)));
    spec.funcs
        .push(FuncSpec::exported("nvme_write_block", rw_body(2)));
    spec.funcs.push(FuncSpec::exported(
        "nvme_init",
        vec![
            MOp::LoadLocalSym(Reg::Rdi, "nvme_read_block".into()),
            MOp::LoadLocalSym(Reg::Rsi, "nvme_write_block".into()),
            MOp::LoadLocalSym(Reg::Rdx, "nvme_name".into()),
            MOp::CallKernel("register_blkdev".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "nvme_exit",
        vec![MOp::CallKernel("unregister_blkdev".into()), MOp::Ret],
    ));
    spec.data.push(DataSpec {
        name: "nvme_name".into(),
        readonly: true,
        init: DataInit::Bytes(b"nvme\0".to_vec()),
    });
    spec.init = Some("nvme_init".into());
    spec.exit = Some("nvme_exit".into());
    spec
}

/// NIC driver flavors — the three network drivers the paper exercises
/// (E1000E on the testbed, E1000 under VirtualBox, ENA on AWS).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NicFlavor {
    /// Intel E1000E (the testbed NIC).
    E1000e,
    /// Intel E1000 (the artifact-VM NIC).
    E1000,
    /// Amazon ENA (the SAVIOR deployment NIC).
    Ena,
}

impl NicFlavor {
    /// Module/driver name.
    pub fn name(self) -> &'static str {
        match self {
            NicFlavor::E1000e => "e1000e",
            NicFlavor::E1000 => "e1000",
            NicFlavor::Ena => "ena",
        }
    }
}

/// The NIC driver: TX through doorbell registers, RX by polling the
/// ring and delivering frames via `netif_rx`.
pub fn nic_spec(flavor: NicFlavor, mmio_base: u64) -> ModuleSpec {
    let n = flavor.name();
    let sym = |s: &str| format!("{n}_{s}");
    let mut spec = ModuleSpec::new(n);
    spec.funcs.push(FuncSpec::exported(
        &sym("xmit"),
        vec![
            // (buf=rdi, len=rsi)
            ins(Insn::MovImm64(Reg::Rax, mmio_base)),
            store(Reg::Rax, nic_regs::TX_BUF, Reg::Rdi),
            store(Reg::Rax, nic_regs::TX_LEN, Reg::Rsi),
            ins(Insn::MovImm32(Reg::Rcx, 1)),
            store(Reg::Rax, nic_regs::TX_DB, Reg::Rcx),
            ins(Insn::MovImm32(Reg::Rax, 0)),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        &sym("poll"),
        vec![
            ins(Insn::MovImm64(Reg::R8, mmio_base)),
            ins(Insn::MovImm32(Reg::Rcx, 1)),
            store(Reg::R8, nic_regs::RX_DB, Reg::Rcx),
            load(Reg::Rsi, Reg::R8, nic_regs::RX_LEN),
            ins(Insn::Test(Reg::Rsi, Reg::Rsi)),
            MOp::Jcc(Cond::Ne, "got".into()),
            ins(Insn::MovImm32(Reg::Rax, 0)),
            MOp::Ret,
            MOp::Label("got".into()),
            MOp::LoadLocalSym(Reg::Rdi, sym("rx_buf")),
            load(Reg::Rdi, Reg::Rdi, 0),
            MOp::CallKernel("netif_rx".into()),
            ins(Insn::MovImm32(Reg::Rax, 1)),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        &sym("init"),
        vec![
            // rx_buf = kmalloc(2048); program the device; register.
            ins(Insn::MovImm32(Reg::Rdi, 2048)),
            MOp::CallKernel("kmalloc".into()),
            MOp::LoadLocalSym(Reg::Rcx, sym("rx_buf")),
            store(Reg::Rcx, 0, Reg::Rax),
            ins(Insn::MovImm64(Reg::Rdx, mmio_base)),
            store(Reg::Rdx, nic_regs::RX_BUF, Reg::Rax),
            MOp::LoadLocalSym(Reg::Rdi, sym("xmit")),
            MOp::LoadLocalSym(Reg::Rsi, sym("poll")),
            MOp::LoadLocalSym(Reg::Rdx, sym("name")),
            MOp::CallKernel("register_netdev".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        &sym("exit"),
        vec![
            MOp::LoadLocalSym(Reg::Rdi, sym("rx_buf")),
            load(Reg::Rdi, Reg::Rdi, 0),
            MOp::CallKernel("kfree".into()),
            MOp::CallKernel("unregister_netdev".into()),
            MOp::Ret,
        ],
    ));
    spec.data.push(DataSpec {
        name: sym("rx_buf"),
        readonly: false,
        init: DataInit::Zero(8),
    });
    spec.data.push(DataSpec {
        name: sym("name"),
        readonly: true,
        init: DataInit::Bytes(format!("{n}\0").into_bytes()),
    });
    spec.init = Some(sym("init"));
    spec.exit = Some(sym("exit"));
    spec
}

/// Minor number of the dummy ioctl device (Fig. 9).
pub const DUMMY_MINOR: u32 = 42;
/// Minor number of the xHCI extra-load device.
pub const XHCI_MINOR: u32 = 43;
/// Minor number of the FUSE-analog extra-load device.
pub const FUSE_MINOR: u32 = 44;

/// The dummy driver of the Fig. 9 CPU-bound test: a null ioctl that
/// just returns its argument. The benchmark hammers it in a tight loop,
/// so the *wrapper* cost (mr bracket + stack switch + GOT hop) dominates
/// — exactly what the paper isolates.
pub fn dummy_spec() -> ModuleSpec {
    let mut spec = ModuleSpec::new("dummy");
    spec.funcs.push(FuncSpec::exported(
        "dummy_ioctl",
        vec![
            // (minor=rdi, cmd=rsi, arg=rdx) → arg
            ins(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdx,
            }),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "dummy_init",
        vec![
            ins(Insn::MovImm32(Reg::Rdi, DUMMY_MINOR as i32)),
            MOp::LoadLocalSym(Reg::Rsi, "dummy_ioctl".into()),
            ins(Insn::MovImm32(Reg::Rdx, 0)),
            ins(Insn::MovImm32(Reg::Rcx, 0)),
            MOp::LoadLocalSym(Reg::R8, "dummy_name".into()),
            MOp::CallKernel("register_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "dummy_exit",
        vec![
            ins(Insn::MovImm32(Reg::Rdi, DUMMY_MINOR as i32)),
            MOp::CallKernel("unregister_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.data.push(DataSpec {
        name: "dummy_name".into(),
        readonly: true,
        init: DataInit::Bytes(b"randmod_test\0".to_vec()),
    });
    spec.init = Some("dummy_init".into());
    spec.exit = Some("dummy_exit".into());
    spec
}

/// The ext4-analog filesystem module: maps a file block index to an LBA
/// (affine here, like a contiguous extent) and keeps per-mount stats in
/// movable `.data` so every mapping touches re-randomized data.
pub fn extfs_spec() -> ModuleSpec {
    let mut spec = ModuleSpec::new("extfs");
    spec.funcs.push(FuncSpec::exported(
        "extfs_map_block",
        vec![
            // (first=rdi, idx=rsi) → first + idx
            ins(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            ins(Insn::Alu {
                op: AluOp::Add,
                dst: Reg::Rax,
                src: Reg::Rsi,
            }),
            MOp::LoadLocalSym(Reg::Rcx, "extfs_stats".into()),
            ins(Insn::MovImm32(Reg::R9, 1)),
            ins(Insn::AluStore {
                op: AluOp::Add,
                dst: Mem::base(Reg::Rcx),
                src: Reg::R9,
            }),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "extfs_init",
        vec![
            MOp::LoadLocalSym(Reg::Rdi, "extfs_map_block".into()),
            MOp::LoadLocalSym(Reg::Rsi, "extfs_name".into()),
            MOp::CallKernel("register_fs".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "extfs_exit",
        vec![MOp::CallKernel("unregister_fs".into()), MOp::Ret],
    ));
    spec.data.push(DataSpec {
        name: "extfs_stats".into(),
        readonly: false,
        init: DataInit::Bytes(vec![0u8; 8]),
    });
    spec.data.push(DataSpec {
        name: "extfs_name".into(),
        readonly: true,
        init: DataInit::Bytes(b"extfs\0".to_vec()),
    });
    spec.init = Some("extfs_init".into());
    spec.exit = Some("extfs_exit".into());
    spec
}

/// The xHCI-analog extra-load module: an ioctl that reads the
/// controller's port status (MMIO) and returns it.
pub fn xhci_spec(mmio_base: u64) -> ModuleSpec {
    let mut spec = ModuleSpec::new("xhci");
    spec.funcs.push(FuncSpec::exported(
        "xhci_ioctl",
        vec![
            ins(Insn::MovImm64(Reg::Rax, mmio_base)),
            load(Reg::Rax, Reg::Rax, 0x8), // event counter
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "xhci_init",
        vec![
            ins(Insn::MovImm32(Reg::Rdi, XHCI_MINOR as i32)),
            MOp::LoadLocalSym(Reg::Rsi, "xhci_ioctl".into()),
            ins(Insn::MovImm32(Reg::Rdx, 0)),
            ins(Insn::MovImm32(Reg::Rcx, 0)),
            MOp::LoadLocalSym(Reg::R8, "xhci_name".into()),
            MOp::CallKernel("register_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "xhci_exit",
        vec![
            ins(Insn::MovImm32(Reg::Rdi, XHCI_MINOR as i32)),
            MOp::CallKernel("unregister_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.data.push(DataSpec {
        name: "xhci_name".into(),
        readonly: true,
        init: DataInit::Bytes(b"xhci_hcd\0".to_vec()),
    });
    spec.init = Some("xhci_init".into());
    spec.exit = Some("xhci_exit".into());
    spec
}

/// The FUSE-analog extra-load module: a passthrough ioctl with a local
/// helper (so the module has both exported and static functions).
pub fn fuse_spec() -> ModuleSpec {
    let mut spec = ModuleSpec::new("fuse");
    spec.funcs.push(FuncSpec::exported(
        "fuse_ioctl",
        vec![
            ins(Insn::MovRR {
                dst: Reg::Rdi,
                src: Reg::Rdx,
            }),
            MOp::CallLocal("fuse_transform".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::local(
        "fuse_transform",
        vec![
            // A little "request translation" work: rot-add over the arg.
            ins(Insn::MovRR {
                dst: Reg::Rax,
                src: Reg::Rdi,
            }),
            ins(Insn::ShlImm(Reg::Rax, 1)),
            ins(Insn::AluImm {
                op: AluOp::Add,
                dst: Reg::Rax,
                imm: 3,
            }),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "fuse_init",
        vec![
            ins(Insn::MovImm32(Reg::Rdi, FUSE_MINOR as i32)),
            MOp::LoadLocalSym(Reg::Rsi, "fuse_ioctl".into()),
            ins(Insn::MovImm32(Reg::Rdx, 0)),
            ins(Insn::MovImm32(Reg::Rcx, 0)),
            MOp::LoadLocalSym(Reg::R8, "fuse_name".into()),
            MOp::CallKernel("register_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.funcs.push(FuncSpec::exported(
        "fuse_exit",
        vec![
            ins(Insn::MovImm32(Reg::Rdi, FUSE_MINOR as i32)),
            MOp::CallKernel("unregister_chrdev".into()),
            MOp::Ret,
        ],
    ));
    spec.data.push(DataSpec {
        name: "fuse_name".into(),
        readonly: true,
        init: DataInit::Bytes(b"fuse\0".to_vec()),
    });
    spec.init = Some("fuse_init".into());
    spec.exit = Some("fuse_exit".into());
    spec
}
