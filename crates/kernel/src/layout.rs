//! Kernel virtual-address-space layout.
//!
//! The simulated machine resolves 57-bit virtual addresses (5-level
//! paging, like recent Intel parts — the paper's §6 entropy arithmetic
//! assumes this). Fixed kernel regions sit at the top of the space;
//! everything below [`MODULE_CEILING`] is the randomization arena where
//! PIC modules may land *anywhere* — the 64-bit KASLR the paper enables.
//! The vanilla baseline instead confines modules to the 2 GiB
//! [`LEGACY_MODULE_BASE`] window, reproducing mainline Linux's 32-bit
//! KASLR limit (§1: "a paltry 2GB range").

/// One past the highest canonical address (57-bit).
pub const VA_TOP: u64 = 1 << 57;

/// Legacy (vanilla Linux) module window: 2 GiB, reproducing the 32-bit
/// KASLR range of mainline Linux on x86-64. The native ("kernel text")
/// region is carved out of its top, mirroring Linux's top-2 GiB layout
/// where modules and kernel text share one `call rel32`-reachable span.
pub const LEGACY_MODULE_BASE: u64 = 0x01F0_0000_0000_0000;
/// Size of the legacy window.
pub const LEGACY_MODULE_SIZE: u64 = 2 << 30;

/// Native-dispatch region: "kernel text". Interpreted code calling an
/// address here traps into a registered Rust function — the analog of a
/// module calling an exported kernel symbol.
pub const NATIVE_BASE: u64 = LEGACY_MODULE_BASE + LEGACY_MODULE_SIZE - NATIVE_SIZE;
/// Size of the native region.
pub const NATIVE_SIZE: u64 = 16 << 20; // 16 MiB of symbol slots

/// The sentinel return address pushed before entering module code; when
/// `ret` lands here the interpreter stops.
pub const RETURN_SENTINEL: u64 = 0x01EF_FFFF_FFFF_F000;

/// kmalloc heap.
pub const HEAP_BASE: u64 = 0x01E0_0000_0000_0000;

/// Per-thread kernel stacks (the *non*-re-randomized ones; Adelie's
/// randomized stacks are drawn from the full arena by `adelie-core`).
pub const STACK_BASE: u64 = 0x01D0_0000_0000_0000;

/// MMIO window; each device gets a [`MMIO_BAR_SIZE`] aperture.
pub const MMIO_BASE: u64 = 0x01B0_0000_0000_0000;
/// Per-device MMIO aperture.
pub const MMIO_BAR_SIZE: u64 = 1 << 20;

/// Exclusive upper bound for randomized module placement: everything
/// below this is the 64-bit KASLR arena.
pub const MODULE_CEILING: u64 = 0x01A0_0000_0000_0000;

/// Carve the randomization arena `[0, MODULE_CEILING)` into `n`
/// equal-sized (up to a page remainder, which the last window absorbs),
/// page-aligned, pairwise-disjoint per-shard windows — the VA partition
/// fleet mode places each shard's modules and randomized stacks in.
/// Disjoint windows make cross-shard VA overlap impossible *by
/// construction* (and checkable: a leaked shard-A address can never
/// resolve in shard B), which is the invariant `adelie-testkit`'s fleet
/// oracle enforces end-to-end.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn shard_windows(n: usize) -> Vec<(u64, u64)> {
    assert!(n > 0, "at least one shard window");
    let pages = MODULE_CEILING >> 12;
    let per = (pages / n as u64) << 12;
    assert!(per > 0, "too many shards for the arena");
    (0..n as u64)
        .map(|i| {
            let lo = i * per;
            let hi = if i == n as u64 - 1 {
                MODULE_CEILING
            } else {
                (i + 1) * per
            };
            (lo, hi)
        })
        .collect()
}

/// Whether `va` falls in the native-dispatch ("kernel text") region.
pub fn is_native(va: u64) -> bool {
    (NATIVE_BASE..NATIVE_BASE + NATIVE_SIZE).contains(&va)
}

/// log2 of the number of page-aligned module bases in the PIC arena —
/// the entropy an attacker must brute-force under Adelie (paper §6 says
/// 2^44 page-aligned guesses for a 56-bit kernel half).
pub fn pic_entropy_bits() -> u32 {
    // MODULE_CEILING ≈ 2^56.7; count page-aligned slots.
    (MODULE_CEILING as f64).log2() as u32 - 12
}

/// log2 of the number of page-aligned module bases in the legacy window
/// (paper §6: 2^(31-12) = 2^19 for Shuffler/CodeArmor-style 32-bit
/// offsets).
pub fn legacy_entropy_bits() -> u32 {
    (LEGACY_MODULE_SIZE.trailing_zeros()) - 12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_canonical() {
        let regions = [
            (LEGACY_MODULE_BASE, LEGACY_MODULE_SIZE), // contains NATIVE
            (HEAP_BASE, 0x1000_0000),
            (STACK_BASE, 0x1000_0000),
            (MMIO_BASE, MMIO_BAR_SIZE * 64),
        ];
        for (i, &(base, size)) in regions.iter().enumerate() {
            assert!(base + size <= VA_TOP, "region {i} exceeds canonical space");
            assert!(base >= MODULE_CEILING, "region {i} overlaps module arena");
            for &(b2, s2) in &regions[i + 1..] {
                assert!(base + size <= b2 || b2 + s2 <= base, "regions overlap");
            }
        }
        assert!(is_native(NATIVE_BASE));
        assert!(!is_native(NATIVE_BASE - 1));
        assert!(!is_native(RETURN_SENTINEL));
        // The native carve-out sits at the very top of the legacy window
        // so every legacy module reaches kernel text with `call rel32`.
        assert_eq!(
            NATIVE_BASE + NATIVE_SIZE,
            LEGACY_MODULE_BASE + LEGACY_MODULE_SIZE
        );
        let worst = (NATIVE_BASE + NATIVE_SIZE - 1) - LEGACY_MODULE_BASE;
        assert!(worst <= i32::MAX as u64, "rel32 reach from legacy modules");
    }

    #[test]
    fn shard_windows_partition_the_arena() {
        for n in [1usize, 2, 3, 4, 7, 16] {
            let w = shard_windows(n);
            assert_eq!(w.len(), n);
            assert_eq!(w[0].0, 0);
            assert_eq!(w[n - 1].1, MODULE_CEILING);
            for i in 0..n {
                let (lo, hi) = w[i];
                assert!(lo < hi, "window {i} of {n} is empty");
                assert_eq!(lo % 4096, 0);
                assert_eq!(hi % 4096, 0);
                if i + 1 < n {
                    assert_eq!(hi, w[i + 1].0, "windows must tile with no gap");
                }
            }
        }
    }

    #[test]
    fn entropy_gap_matches_paper_shape() {
        // Paper §6: PIC gives ~2^44 page-aligned candidates vs 2^19 for
        // 32-bit schemes — a ~25-bit entropy gap.
        assert_eq!(legacy_entropy_bits(), 19);
        assert!(pic_entropy_bits() >= 43);
        assert!(pic_entropy_bits() - legacy_entropy_bits() >= 24);
    }
}
