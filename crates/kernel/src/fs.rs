//! A small VFS with a page cache.
//!
//! Models the slice of the Linux I/O stack the paper's benchmarks
//! exercise: cached reads (Fig. 5b's `dd` microbenchmark, Fig. 5c's
//! sysbench `file_io` on RAM-cached files) and `O_DIRECT` reads that
//! bypass the cache and go through the filesystem module's block mapping
//! and the block driver on every request (Fig. 6's NVMe experiment).
//!
//! Layering on the uncached path, truest to the paper's setup:
//! `vfs_read` → fs-module `map_block` (interpreted) → block-driver
//! `read_block` wrapper (interpreted, re-randomizable) → device model.
//! When no modules are loaded the VFS falls back to synthesizing block
//! contents with [`disk_byte`], the same deterministic function device
//! models use, so cached and direct paths always agree.

use crate::exec::{Vm, VmError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Disk sector size (NVMe-style 512 bytes; Fig. 6 reads single sectors).
pub const SECTOR_SIZE: usize = 512;
/// Page-cache granule.
pub const CACHE_PAGE: usize = 4096;
/// Sectors per cache page.
pub const SECTORS_PER_PAGE: u64 = (CACHE_PAGE / SECTOR_SIZE) as u64;

/// The deterministic content of a pristine disk sector: both the VFS
/// fallback and device models use this, so every path returns identical
/// bytes for unwritten data.
pub fn disk_byte(lba: u64, off: usize) -> u8 {
    (lba.wrapping_mul(0x9E37_79B9).wrapping_add(off as u64 * 7) >> 3) as u8
}

/// An on-"disk" file: a contiguous run of sectors.
#[derive(Debug)]
pub struct VfsFile {
    /// File id (stable, used as the cache key).
    pub id: u64,
    /// Name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// First sector.
    pub first_lba: u64,
}

#[derive(Debug)]
struct OpenFile {
    file: Arc<VfsFile>,
    pos: u64,
    direct: bool,
}

/// Cache hit/miss counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Page-cache hits.
    pub hits: u64,
    /// Page-cache misses (went to the block layer).
    pub misses: u64,
}

/// The VFS: file table, open-file descriptors, page cache.
/// Page-cache index: `(file id, page index)` → cached page bytes.
type PageCache = HashMap<(u64, u64), Arc<Vec<u8>>>;

pub struct Vfs {
    files: RwLock<HashMap<String, Arc<VfsFile>>>,
    open: RwLock<HashMap<u64, Arc<Mutex<OpenFile>>>>,
    cache: RwLock<PageCache>,
    next_fd: AtomicU64,
    next_lba: AtomicU64,
    next_file_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Vfs {
    /// Empty filesystem.
    pub fn new() -> Vfs {
        Vfs {
            files: RwLock::new(HashMap::new()),
            open: RwLock::new(HashMap::new()),
            cache: RwLock::new(HashMap::new()),
            next_fd: AtomicU64::new(3), // 0..2 reserved, like POSIX
            next_lba: AtomicU64::new(64),
            next_file_id: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Create a file of `size` bytes (contents are the pristine-disk
    /// pattern until written).
    ///
    /// # Panics
    ///
    /// Panics if the name exists.
    pub fn create(&self, name: &str, size: u64) -> Arc<VfsFile> {
        let sectors = size.div_ceil(SECTOR_SIZE as u64).max(1);
        // Align runs to cache pages so page-indexed caching is clean.
        let sectors = sectors.next_multiple_of(SECTORS_PER_PAGE);
        let first_lba = self.next_lba.fetch_add(sectors, Ordering::Relaxed);
        let file = Arc::new(VfsFile {
            id: self.next_file_id.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            size,
            first_lba,
        });
        let prev = self.files.write().insert(name.to_string(), file.clone());
        assert!(prev.is_none(), "file `{name}` already exists");
        file
    }

    /// Look up a file.
    pub fn stat(&self, name: &str) -> Option<Arc<VfsFile>> {
        self.files.read().get(name).cloned()
    }

    /// Open a file; `direct` bypasses the page cache (`O_DIRECT|O_SYNC`).
    ///
    /// # Errors
    ///
    /// `None` if the file does not exist (callers map to `ENOENT`).
    pub fn open(&self, name: &str, direct: bool) -> Option<u64> {
        let file = self.stat(name)?;
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.open.write().insert(
            fd,
            Arc::new(Mutex::new(OpenFile {
                file,
                pos: 0,
                direct,
            })),
        );
        Some(fd)
    }

    /// Close a descriptor. Returns whether it existed.
    pub fn close(&self, fd: u64) -> bool {
        self.open.write().remove(&fd).is_some()
    }

    fn handle(&self, fd: u64) -> Result<Arc<Mutex<OpenFile>>, VmError> {
        self.open
            .read()
            .get(&fd)
            .cloned()
            .ok_or_else(|| VmError::Native(format!("bad fd {fd}")))
    }

    /// Sequential read at the descriptor's position.
    ///
    /// # Errors
    ///
    /// Bad descriptor, or faults while filling the caller's buffer.
    pub fn read(
        &self,
        vm: &mut Vm<'_>,
        fd: u64,
        buf_va: u64,
        len: usize,
    ) -> Result<usize, VmError> {
        let handle = self.handle(fd)?;
        let (file, pos, direct) = {
            let h = handle.lock();
            (h.file.clone(), h.pos, h.direct)
        };
        let n = self.read_at(vm, &file, pos, buf_va, len, direct)?;
        handle.lock().pos = pos + n as u64;
        Ok(n)
    }

    /// Positional read (`pread`) — what Fig. 6's benchmark uses to hammer
    /// the same 512-byte block.
    ///
    /// # Errors
    ///
    /// Bad descriptor, or faults while filling the caller's buffer.
    pub fn pread(
        &self,
        vm: &mut Vm<'_>,
        fd: u64,
        buf_va: u64,
        len: usize,
        offset: u64,
    ) -> Result<usize, VmError> {
        let handle = self.handle(fd)?;
        let (file, direct) = {
            let h = handle.lock();
            (h.file.clone(), h.direct)
        };
        self.read_at(vm, &file, offset, buf_va, len, direct)
    }

    /// Positional write. Cached mode writes to the page cache
    /// (write-back, never flushed — the benchmarks only need read-your-
    /// writes); direct mode goes through the block driver.
    ///
    /// # Errors
    ///
    /// Bad descriptor or faults reading the caller's buffer.
    pub fn pwrite(
        &self,
        vm: &mut Vm<'_>,
        fd: u64,
        buf_va: u64,
        len: usize,
        offset: u64,
    ) -> Result<usize, VmError> {
        let handle = self.handle(fd)?;
        let (file, direct) = {
            let h = handle.lock();
            (h.file.clone(), h.direct)
        };
        let len = len.min(file.size.saturating_sub(offset) as usize);
        let mut data = vec![0u8; len];
        vm.kernel
            .space
            .read_bytes(&vm.kernel.phys, buf_va, &mut data)?;
        if direct {
            if let Some(blk) = vm.kernel.devices.blkdev() {
                if blk.write_block != 0 {
                    // Sector-aligned direct writes only (like O_DIRECT).
                    let bounce = vm.kernel.heap.kmalloc(
                        &vm.kernel.space,
                        &vm.kernel.phys,
                        len.next_multiple_of(SECTOR_SIZE),
                    );
                    vm.kernel
                        .space
                        .write_bytes(&vm.kernel.phys, bounce, &data)?;
                    let lba = self.map_block(vm, &file, offset / SECTOR_SIZE as u64)?;
                    vm.call(
                        blk.write_block,
                        &[lba, bounce, (len / SECTOR_SIZE).max(1) as u64],
                    )?;
                    vm.kernel.heap.kfree(bounce);
                    return Ok(len);
                }
            }
        }
        // Cached write: pull pages in, overlay the new bytes.
        let mut done = 0usize;
        while done < len {
            let off = offset + done as u64;
            let page_idx = off / CACHE_PAGE as u64;
            let in_page = (off % CACHE_PAGE as u64) as usize;
            let n = (CACHE_PAGE - in_page).min(len - done);
            let page = self.page_in(vm, &file, page_idx)?;
            let mut bytes = (*page).clone();
            bytes[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            self.cache
                .write()
                .insert((file.id, page_idx), Arc::new(bytes));
            done += n;
        }
        Ok(len)
    }

    /// Translate a file block index to an LBA, through the fs module if
    /// one is registered (the ext4-analog interposition).
    fn map_block(&self, vm: &mut Vm<'_>, file: &VfsFile, block_idx: u64) -> Result<u64, VmError> {
        if let Some(fs) = vm.kernel.devices.fs_ops() {
            vm.call(fs.map_block, &[file.first_lba, block_idx])
        } else {
            Ok(file.first_lba + block_idx)
        }
    }

    /// Read one whole cache page's worth of sectors through the block
    /// layer into a buffer.
    fn read_page_from_disk(
        &self,
        vm: &mut Vm<'_>,
        file: &VfsFile,
        page_idx: u64,
    ) -> Result<Vec<u8>, VmError> {
        let lba0 = self.map_block(vm, file, page_idx * SECTORS_PER_PAGE)?;
        if let Some(blk) = vm.kernel.devices.blkdev() {
            let bounce = vm
                .kernel
                .heap
                .kmalloc(&vm.kernel.space, &vm.kernel.phys, CACHE_PAGE);
            vm.call(blk.read_block, &[lba0, bounce, SECTORS_PER_PAGE])?;
            let mut out = vec![0u8; CACHE_PAGE];
            vm.kernel
                .space
                .read_bytes(&vm.kernel.phys, bounce, &mut out)?;
            vm.kernel.heap.kfree(bounce);
            Ok(out)
        } else {
            // No block driver loaded: synthesize pristine content.
            let mut out = vec![0u8; CACHE_PAGE];
            for s in 0..SECTORS_PER_PAGE as usize {
                let lba = lba0 + s as u64;
                for i in 0..SECTOR_SIZE {
                    out[s * SECTOR_SIZE + i] = disk_byte(lba, i);
                }
            }
            Ok(out)
        }
    }

    fn page_in(
        &self,
        vm: &mut Vm<'_>,
        file: &Arc<VfsFile>,
        page_idx: u64,
    ) -> Result<Arc<Vec<u8>>, VmError> {
        if let Some(page) = self.cache.read().get(&(file.id, page_idx)).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(page);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = Arc::new(self.read_page_from_disk(vm, file, page_idx)?);
        self.cache
            .write()
            .insert((file.id, page_idx), bytes.clone());
        Ok(bytes)
    }

    fn read_at(
        &self,
        vm: &mut Vm<'_>,
        file: &Arc<VfsFile>,
        offset: u64,
        buf_va: u64,
        len: usize,
        direct: bool,
    ) -> Result<usize, VmError> {
        let len = len.min(file.size.saturating_sub(offset) as usize);
        if len == 0 {
            return Ok(0);
        }
        if direct {
            // O_DIRECT: straight through the block layer, sector-aligned.
            debug_assert_eq!(offset % SECTOR_SIZE as u64, 0, "O_DIRECT alignment");
            let sectors = len.div_ceil(SECTOR_SIZE).max(1) as u64;
            let lba = self.map_block(vm, file, offset / SECTOR_SIZE as u64)?;
            if let Some(blk) = vm.kernel.devices.blkdev() {
                vm.call(blk.read_block, &[lba, buf_va, sectors])?;
            } else {
                let mut out = vec![0u8; len];
                for (i, b) in out.iter_mut().enumerate() {
                    *b = disk_byte(lba + (i / SECTOR_SIZE) as u64, i % SECTOR_SIZE);
                }
                vm.kernel.space.write_bytes(&vm.kernel.phys, buf_va, &out)?;
            }
            return Ok(len);
        }
        // Cached path.
        let mut done = 0usize;
        while done < len {
            let off = offset + done as u64;
            let page_idx = off / CACHE_PAGE as u64;
            let in_page = (off % CACHE_PAGE as u64) as usize;
            let n = (CACHE_PAGE - in_page).min(len - done);
            let page = self.page_in(vm, file, page_idx)?;
            vm.kernel.space.write_bytes(
                &vm.kernel.phys,
                buf_va + done as u64,
                &page[in_page..in_page + n],
            )?;
            done += n;
        }
        Ok(len)
    }

    /// Pre-populate the cache for a whole file (the paper caches files in
    /// RAM before the Fig. 5b/5c experiments "to keep the results I/O
    /// invariant").
    ///
    /// # Errors
    ///
    /// Propagates block-layer errors.
    pub fn warm(&self, vm: &mut Vm<'_>, name: &str) -> Result<(), VmError> {
        let file = self
            .stat(name)
            .ok_or_else(|| VmError::Native(format!("warm: no file `{name}`")))?;
        let pages = file.size.div_ceil(CACHE_PAGE as u64);
        for p in 0..pages {
            self.page_in(vm, &file, p)?;
        }
        Ok(())
    }

    /// Drop the whole page cache (`echo 3 > drop_caches`).
    pub fn drop_caches(&self) {
        self.cache.write().clear();
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vfs")
            .field("files", &self.files.read().len())
            .field("cached_pages", &self.cache.read().len())
            .field("stats", &self.cache_stats())
            .finish()
    }
}
