//! Device-operation registries.
//!
//! Driver modules register their kernel-facing entry points here during
//! `init` — always the *wrapper* addresses in the immovable part (that
//! is the point of function wrapping, paper §3.4): the kernel keeps
//! absolute pointers only to immovable code, and the wrappers indirect
//! into the movable part through the (re-randomized) local GOT.

use parking_lot::RwLock;
use std::collections::HashMap;

/// A character device's entry points (virtual addresses of wrappers).
#[derive(Clone, Debug, Default)]
pub struct CharDev {
    /// Device name.
    pub name: String,
    /// `ioctl(minor, cmd, arg)` entry, or 0.
    pub ioctl: u64,
    /// `read(minor, buf, len)` entry, or 0.
    pub read: u64,
    /// `write(minor, buf, len)` entry, or 0.
    pub write: u64,
}

/// The block device's entry points.
#[derive(Clone, Debug, Default)]
pub struct BlockDev {
    /// Device name.
    pub name: String,
    /// `read_block(lba, dst, nsectors)` entry.
    pub read_block: u64,
    /// `write_block(lba, src, nsectors)` entry, or 0.
    pub write_block: u64,
}

/// The network device's entry points.
#[derive(Clone, Debug, Default)]
pub struct NetDev {
    /// Device name.
    pub name: String,
    /// `xmit(buf, len)` entry.
    pub xmit: u64,
    /// `poll()` entry — drains the RX ring, delivering frames through
    /// `netif_rx`; returns the number of frames processed.
    pub poll: u64,
}

/// Filesystem hooks (the ext4-analog module's block mapping).
#[derive(Clone, Debug, Default)]
pub struct FsOps {
    /// Filesystem name.
    pub name: String,
    /// `map_block(first_lba, block_idx)` entry → LBA.
    pub map_block: u64,
}

/// Handler invoked when the NIC driver delivers a received frame
/// (`netif_rx`); installed by the network stack / server application.
pub type RxHandler = Box<dyn Fn(&[u8]) + Send + Sync>;

/// All registries a module can hook into.
#[derive(Default)]
pub struct DeviceTable {
    chars: RwLock<HashMap<u32, CharDev>>,
    block: RwLock<Option<BlockDev>>,
    net: RwLock<Option<NetDev>>,
    fs: RwLock<Option<FsOps>>,
    rx_handler: RwLock<Option<RxHandler>>,
}

impl DeviceTable {
    /// Empty table.
    pub fn new() -> DeviceTable {
        DeviceTable::default()
    }

    /// Register a character device on `minor`.
    ///
    /// # Panics
    ///
    /// Panics if the minor number is taken.
    pub fn register_chrdev(&self, minor: u32, dev: CharDev) {
        let prev = self.chars.write().insert(minor, dev);
        assert!(prev.is_none(), "chrdev minor {minor} already registered");
    }

    /// Remove a character device.
    pub fn unregister_chrdev(&self, minor: u32) -> Option<CharDev> {
        self.chars.write().remove(&minor)
    }

    /// Look up a character device.
    pub fn chrdev(&self, minor: u32) -> Option<CharDev> {
        self.chars.read().get(&minor).cloned()
    }

    /// Install the block device (one per machine, like the paper's
    /// single NVMe under test).
    pub fn register_blkdev(&self, dev: BlockDev) {
        *self.block.write() = Some(dev);
    }

    /// Remove the block device.
    pub fn unregister_blkdev(&self) {
        *self.block.write() = None;
    }

    /// The block device, if registered.
    pub fn blkdev(&self) -> Option<BlockDev> {
        self.block.read().clone()
    }

    /// Install the network device.
    pub fn register_netdev(&self, dev: NetDev) {
        *self.net.write() = Some(dev);
    }

    /// Remove the network device.
    pub fn unregister_netdev(&self) {
        *self.net.write() = None;
    }

    /// The network device, if registered.
    pub fn netdev(&self) -> Option<NetDev> {
        self.net.read().clone()
    }

    /// Install filesystem ops.
    pub fn register_fs(&self, ops: FsOps) {
        *self.fs.write() = Some(ops);
    }

    /// Remove filesystem ops.
    pub fn unregister_fs(&self) {
        *self.fs.write() = None;
    }

    /// The filesystem ops, if registered.
    pub fn fs_ops(&self) -> Option<FsOps> {
        self.fs.read().clone()
    }

    /// Install the receive-path handler (the "protocol stack").
    pub fn set_rx_handler(&self, h: RxHandler) {
        *self.rx_handler.write() = Some(h);
    }

    /// Deliver a received frame to the protocol stack (used by the
    /// `netif_rx` native).
    pub fn deliver_rx(&self, frame: &[u8]) -> bool {
        if let Some(h) = self.rx_handler.read().as_ref() {
            h(frame);
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for DeviceTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceTable")
            .field("chrdevs", &self.chars.read().len())
            .field("blkdev", &self.block.read().is_some())
            .field("netdev", &self.net.read().is_some())
            .field("fs", &self.fs.read().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrdev_lifecycle() {
        let t = DeviceTable::new();
        t.register_chrdev(
            7,
            CharDev {
                name: "randmod".into(),
                ioctl: 0x1000,
                ..CharDev::default()
            },
        );
        assert_eq!(t.chrdev(7).unwrap().ioctl, 0x1000);
        assert!(t.chrdev(8).is_none());
        assert!(t.unregister_chrdev(7).is_some());
        assert!(t.chrdev(7).is_none());
    }

    #[test]
    fn rx_delivery() {
        let t = DeviceTable::new();
        assert!(!t.deliver_rx(b"drop"));
        let got = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = got.clone();
        t.set_rx_handler(Box::new(move |f| g.lock().extend_from_slice(f)));
        assert!(t.deliver_rx(b"ping"));
        assert_eq!(&*got.lock(), b"ping");
    }
}
