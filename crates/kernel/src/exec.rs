//! The instruction interpreter ("simulated CPU").
//!
//! Module code executes here, instruction by instruction, with every
//! memory access translated through the kernel page tables (via a
//! per-CPU [`Tlb`]). That makes Adelie's mechanics *real* in this
//! reproduction rather than narrated:
//!
//! * a stale code pointer into a re-randomized-away range raises a page
//!   fault ([`VmError::Fault`]),
//! * GOT loads are RIP-relative reads through PTEs; writes to sealed GOT
//!   pages fault,
//! * return-address encryption XORs real stack slots, so a forged,
//!   unencrypted return address decrypts to garbage and faults,
//! * calls whose target lands in the native-dispatch region trap to the
//!   registered kernel function — the exported-symbol mechanism.

use crate::layout;
use crate::symbols::NativeFn;
use crate::Kernel;
use adelie_isa::{decode, AluOp, Cond, DecodeError, Insn, Mem, Reg, ARG_REGS};
use adelie_vmem::{
    page_base, page_offset, Access, Fault, PteKind, ReadPath, SpaceReader, Tlb, TlbStats,
    Translation, PAGE_SIZE,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors raised during interpreted execution.
#[derive(Debug)]
pub enum VmError {
    /// Memory fault (page fault, NX, write-protection, …).
    Fault(Fault),
    /// Undecodable bytes at `rip` — e.g. a ROP chain that landed mid-
    /// instruction after re-randomization.
    Decode {
        /// Faulting instruction pointer.
        rip: u64,
        /// Decoder diagnosis.
        err: DecodeError,
    },
    /// An explicit trap instruction (`int3`, `ud2`, `hlt`).
    Trap {
        /// Address of the trap.
        rip: u64,
        /// Mnemonic.
        what: &'static str,
    },
    /// Call into the native region with no registered handler.
    UnknownNative {
        /// The bad target.
        va: u64,
    },
    /// The per-call instruction budget ran out (runaway loop guard).
    OutOfFuel {
        /// Where execution was when the budget died.
        rip: u64,
    },
    /// A native handler rejected its arguments or failed.
    Native(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Fault(e) => write!(f, "{e}"),
            VmError::Decode { rip, err } => write!(f, "decode error at {rip:#x}: {err}"),
            VmError::Trap { rip, what } => write!(f, "trap `{what}` at {rip:#x}"),
            VmError::UnknownNative { va } => write!(f, "call to unregistered kernel text {va:#x}"),
            VmError::OutOfFuel { rip } => write!(f, "instruction budget exhausted at {rip:#x}"),
            VmError::Native(msg) => write!(f, "native handler error: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<Fault> for VmError {
    fn from(f: Fault) -> Self {
        VmError::Fault(f)
    }
}

#[derive(Copy, Clone, Default)]
struct Flags {
    zf: bool,
    sf: bool,
    cf: bool,
    of: bool,
}

/// A simulated CPU executing kernel-module code.
///
/// One `Vm` per thread; create with [`Kernel::vm`]. Reentrant: native
/// handlers may call back into interpreted code via [`Vm::call`].
pub struct Vm<'k> {
    /// The kernel this CPU belongs to.
    pub kernel: &'k Kernel,
    regs: [u64; 16],
    flags: Flags,
    tlb: Tlb,
    /// This CPU's long-lived read handle into the kernel address space:
    /// owns one reader slot of the snapshot reclamation domain, so the
    /// translate hot path pays only an epoch enter/leave — never a lock
    /// and never a per-operation slot claim.
    reader: SpaceReader<'k>,
    /// Native-dispatch cache: the symbol table's native registry is
    /// append-only, so resolved handlers are cached per CPU and the
    /// registry's `RwLock` is off the instruction-dispatch hot path.
    native_cache: HashMap<u64, Arc<NativeFn>>,
    cpu: usize,
    stack_top: u64,
    depth: u32,
    insns_retired: u64,
    /// TLB counters as of the last publish into [`crate::PerCpu`], so
    /// each outermost call exit posts only the delta it produced.
    tlb_published: TlbStats,
}

impl<'k> Vm<'k> {
    pub(crate) fn new(kernel: &'k Kernel, cpu: usize, stack_top: u64) -> Vm<'k> {
        Vm {
            kernel,
            regs: [0; 16],
            flags: Flags::default(),
            tlb: if kernel.config.asid_tagging {
                Tlb::with_arch(kernel.config.arch)
            } else {
                Tlb::flush_on_switch(kernel.config.arch)
            },
            reader: kernel.space.reader(),
            native_cache: HashMap::new(),
            cpu,
            stack_top,
            depth: 0,
            insns_retired: 0,
            tlb_published: TlbStats::default(),
        }
    }

    /// This CPU's id (the reclamation slot for `mr_start`/`mr_finish`).
    pub fn cpu(&self) -> usize {
        self.cpu
    }

    /// Total instructions retired by this CPU.
    pub fn insns_retired(&self) -> u64 {
        self.insns_retired
    }

    /// Read a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// Write a register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index() as usize] = v;
    }

    /// The n-th System-V argument register's value (n < 6).
    pub fn arg(&self, n: usize) -> u64 {
        self.reg(ARG_REGS[n])
    }

    /// Call interpreted code at `entry` with up to six arguments,
    /// following the System-V convention. Returns `rax`.
    ///
    /// Reentrant: may be invoked from native handlers; the caller's
    /// register file is saved and restored (except `rax`).
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution.
    ///
    /// # Panics
    ///
    /// Panics if more than six arguments are supplied (the paper notes
    /// no wrapped kernel function needs more, §3.4).
    pub fn call(&mut self, entry: u64, args: &[u64]) -> Result<u64, VmError> {
        assert!(args.len() <= 6, "System-V register args only");
        let mut entry = entry;
        let saved_regs = self.regs;
        let saved_flags = self.flags;
        if self.depth == 0 {
            self.regs[Reg::Rsp.index() as usize] = self.stack_top;
            // Demand fault: an outermost entry that no longer translates
            // for execute may target an evicted cold-tier module. The
            // loader faults it back in from its catalog record and hands
            // back the (possibly relocated) address to continue at; the
            // probe doubles as a TLB warm-up for the first fetch, so the
            // resident fast path pays one gate check only.
            if !layout::is_native(entry)
                && self.kernel.has_demand_loader()
                && self.translate(entry, Access::Exec).is_err()
            {
                if let Some(resolved) = self.kernel.demand_load(entry) {
                    entry = resolved;
                }
            }
            // Telemetry for the re-randomization scheduler: outermost
            // entries only, so nested calls don't double-count.
            self.kernel.observe_call(entry);
        }
        for (i, &a) in args.iter().enumerate() {
            self.set_reg(ARG_REGS[i], a);
        }
        self.depth += 1;
        let start = (self.depth == 1).then(Instant::now);
        // Push the sentinel return address and run to it.
        let result = self
            .push_u64(layout::RETURN_SENTINEL)
            .and_then(|()| self.run(entry));
        self.depth -= 1;
        if let Some(t0) = start {
            self.kernel.percpu.account(self.cpu, t0.elapsed());
            // Publish this call's TLB activity so hit rates survive the
            // Vm (benches and fleet reporting read the per-CPU sums).
            let now = self.tlb.stats();
            self.kernel
                .percpu
                .record_tlb(self.cpu, &now.delta_since(&self.tlb_published));
            self.tlb_published = now;
        }
        let rax = self.reg(Reg::Rax);
        self.regs = saved_regs;
        self.flags = saved_flags;
        self.set_reg(Reg::Rax, rax);
        result.map(|()| rax)
    }

    /// Tail-forward the *current* native call to interpreted code at
    /// `target`, preserving all six System-V argument registers.
    ///
    /// This is how a lazy PLT binder behaves on real hardware: the stub
    /// traps into the binder with the caller's argument registers
    /// untouched, the binder resolves the import, then jumps to the
    /// resolved function as if it had been called directly. Returns the
    /// callee's `rax`, which the native dispatch path hands back to the
    /// original caller.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised while executing the callee.
    pub fn forward_call(&mut self, target: u64) -> Result<u64, VmError> {
        let args = [
            self.arg(0),
            self.arg(1),
            self.arg(2),
            self.arg(3),
            self.arg(4),
            self.arg(5),
        ];
        self.call(target, &args)
    }

    fn run(&mut self, entry: u64) -> Result<(), VmError> {
        let mut rip = entry;
        let mut fuel = self.kernel.config.fuel;
        loop {
            if rip == layout::RETURN_SENTINEL {
                return Ok(());
            }
            if layout::is_native(rip) {
                let handler = match self.native_cache.get(&rip) {
                    Some(h) => h.clone(),
                    None => {
                        let h = self
                            .kernel
                            .symbols
                            .native_at(rip)
                            .ok_or(VmError::UnknownNative { va: rip })?;
                        self.native_cache.insert(rip, h.clone());
                        h
                    }
                };
                let ret = handler(self)?;
                self.set_reg(Reg::Rax, ret);
                rip = self.pop_u64()?;
                continue;
            }
            if fuel == 0 {
                return Err(VmError::OutOfFuel { rip });
            }
            fuel -= 1;
            self.insns_retired += 1;
            let (insn, len) = self.fetch_decode(rip)?;
            rip = self.step(rip, rip + len as u64, insn)?;
        }
    }

    fn fetch_decode(&mut self, rip: u64) -> Result<(Insn, usize), VmError> {
        let mut buf = [0u8; 16];
        let mut got = 0usize;
        while got < buf.len() {
            let cur = rip + got as u64;
            let off = page_offset(cur);
            let n = (PAGE_SIZE - off).min(buf.len() - got);
            let t = match self.translate(cur, Access::Exec) {
                Ok(t) => t,
                Err(_) if got > 0 => break, // short fetch at a mapping edge
                Err(e) => return Err(e),
            };
            match t.pte.kind {
                PteKind::Frame(pfn) => {
                    self.kernel.phys.read(pfn, off, &mut buf[got..got + n]);
                }
                PteKind::Mmio { .. } => return Err(VmError::Fault(Fault::MmioExec { va: cur })),
            }
            got += n;
        }
        decode(&buf[..got]).map_err(|err| VmError::Decode { rip, err })
    }

    fn translate(&mut self, va: u64, access: Access) -> Result<Translation, VmError> {
        let page_va = page_base(va);
        // Hit fast path: when this CPU's TLB is already at the space's
        // current generation, a lookup is one atomic load plus a
        // micro-TLB array probe — no lock, no epoch pin, nothing a
        // re-randomization writer can block. Snapshot mode only: its
        // safety argument is that published roots are immutable and
        // generations monotonic, which the pre-snapshot locked world
        // does not provide — there a cached entry is only trustworthy
        // under the reader lock, so the `Locked` ablation pays the pin
        // on every lookup (that asymmetry is precisely what the
        // translate bench measures).
        if self.kernel.config.read_path == ReadPath::Snapshot {
            let gen = self.kernel.space.generation();
            if let Some(hit) = self.tlb.try_lookup_current(page_va, gen) {
                if let Some(pte) = hit {
                    pte.check(va, access)?;
                    return Ok(Translation { pte, page_va });
                }
                // Miss at the current generation: walk the current
                // immutable snapshot under one epoch pin — zero locks
                // on the default read path.
                let t = self.reader.pin().translate(va, access)?;
                self.tlb.insert(&t);
                return Ok(t);
            }
        }
        // Lagging: one pin covers both the resynchronization against
        // the lock-free invalidation ring (range-based shootdown —
        // only covered entries are evicted) and the walk on a miss.
        let pin = self.reader.pin();
        if let Some(pte) = self.tlb.lookup_pinned(page_va, &pin) {
            pte.check(va, access)?;
            return Ok(Translation { pte, page_va });
        }
        let t = pin.translate(va, access)?;
        drop(pin);
        self.tlb.insert(&t);
        Ok(t)
    }

    /// Read `N ≤ 8` bytes of data at `va` (handles page crossings and
    /// MMIO dispatch).
    fn read_data(&mut self, va: u64, size: usize) -> Result<u64, VmError> {
        debug_assert!(size <= 8);
        let off = page_offset(va);
        if off + size > PAGE_SIZE {
            // Split access across the page boundary.
            let first = PAGE_SIZE - off;
            let lo = self.read_data(va, first)?;
            let hi = self.read_data(va + first as u64, size - first)?;
            return Ok(lo | (hi << (8 * first)));
        }
        let t = self.translate(va, Access::Read)?;
        match t.pte.kind {
            PteKind::Frame(pfn) => {
                let mut buf = [0u8; 8];
                self.kernel.phys.read(pfn, off, &mut buf[..size]);
                Ok(u64::from_le_bytes(buf))
            }
            PteKind::Mmio { dev, page } => {
                let dev = self
                    .kernel
                    .mmio
                    .get(dev)
                    .ok_or(VmError::Native(format!("MMIO read: no device {dev}")))?;
                Ok(dev.mmio_read(page as u64 * PAGE_SIZE as u64 + off as u64, size))
            }
        }
    }

    fn write_data(&mut self, va: u64, value: u64, size: usize) -> Result<(), VmError> {
        debug_assert!(size <= 8);
        let off = page_offset(va);
        if off + size > PAGE_SIZE {
            let first = PAGE_SIZE - off;
            self.write_data(va, value, first)?;
            self.write_data(va + first as u64, value >> (8 * first), size - first)?;
            return Ok(());
        }
        let t = self.translate(va, Access::Write)?;
        match t.pte.kind {
            PteKind::Frame(pfn) => {
                self.kernel
                    .phys
                    .write(pfn, off, &value.to_le_bytes()[..size]);
                Ok(())
            }
            PteKind::Mmio { dev, page } => {
                let dev = self
                    .kernel
                    .mmio
                    .get(dev)
                    .ok_or(VmError::Native(format!("MMIO write: no device {dev}")))?;
                dev.mmio_write(page as u64 * PAGE_SIZE as u64 + off as u64, value, size);
                Ok(())
            }
        }
    }

    /// Read a u64 at `va` through the MMU (public for native handlers).
    ///
    /// # Errors
    ///
    /// Translation faults.
    pub fn read_u64(&mut self, va: u64) -> Result<u64, VmError> {
        self.read_data(va, 8)
    }

    /// Write a u64 at `va` through the MMU (public for native handlers).
    ///
    /// # Errors
    ///
    /// Translation faults.
    pub fn write_u64(&mut self, va: u64, v: u64) -> Result<(), VmError> {
        self.write_data(va, v, 8)
    }

    /// Translate `n` consecutive pages starting at the page containing
    /// `va` in one shot: cached translations come from this CPU's TLB
    /// (one resynchronization for the whole batch), and the misses walk
    /// the snapshot under a **single** epoch pin and a single root load
    /// — so a pointer-heavy ioctl amortizes the pin instead of paying
    /// enter/leave per page, and the batch can never observe two
    /// different published generations.
    ///
    /// # Errors
    ///
    /// The first translation fault in the range, if any.
    pub fn translate_pages(
        &mut self,
        va: u64,
        n: usize,
        access: Access,
    ) -> Result<Vec<Translation>, VmError> {
        let base = page_base(va);
        let page_vas: Vec<u64> = (0..n).map(|i| base + (i * PAGE_SIZE) as u64).collect();
        let pin = self.reader.pin();
        let cached = self.tlb.lookup_batch(&page_vas, &pin);
        let miss_vas: Vec<u64> = page_vas
            .iter()
            .zip(&cached)
            .filter(|(_, c)| c.is_none())
            .map(|(&va, _)| va)
            .collect();
        let walked = pin.translate_batch(&miss_vas, access);
        drop(pin);
        let mut out = Vec::with_capacity(n);
        let mut next_miss = walked.into_iter();
        for (&page_va, c) in page_vas.iter().zip(&cached) {
            let t = match c {
                Some(pte) => {
                    pte.check(page_va, access)?;
                    Translation { pte: *pte, page_va }
                }
                None => {
                    let t = next_miss.next().expect("one walk per miss")?;
                    self.tlb.insert(&t);
                    t
                }
            };
            out.push(t);
        }
        Ok(out)
    }

    /// Read `buf.len()` bytes at `va` through this CPU's TLB: one
    /// batched translation for the whole span (see
    /// [`Vm::translate_pages`]), then frame reads. The pin-per-call
    /// [`adelie_vmem::AddressSpace::read_bytes`] stays for callers
    /// without a `Vm`.
    ///
    /// # Errors
    ///
    /// Translation faults, or [`Fault::MmioData`] over device pages.
    pub fn read_bytes(&mut self, va: u64, buf: &mut [u8]) -> Result<(), VmError> {
        if buf.is_empty() {
            return Ok(());
        }
        let n_pages = (page_offset(va) + buf.len()).div_ceil(PAGE_SIZE);
        let ts = self.translate_pages(va, n_pages, Access::Read)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va + done as u64;
            let off = page_offset(cur);
            let n = (buf.len() - done).min(PAGE_SIZE - off);
            match ts[((cur - page_base(va)) as usize) / PAGE_SIZE].pte.kind {
                PteKind::Frame(pfn) => self.kernel.phys.read(pfn, off, &mut buf[done..done + n]),
                PteKind::Mmio { .. } => return Err(VmError::Fault(Fault::MmioData { va: cur })),
            }
            done += n;
        }
        Ok(())
    }

    /// Copy `len` bytes inside the simulated address space (the `memcpy`
    /// native uses this; copies run at host speed like a real `rep movsb`).
    ///
    /// Both ranges are translated up front via [`Vm::translate_pages`]
    /// (one epoch pin each), then bytes move frame-to-frame.
    ///
    /// # Errors
    ///
    /// Translation faults on either range, or [`Fault::MmioData`] if a
    /// range covers an MMIO page (device copies must go through the
    /// interpreter's load/store path).
    pub fn copy_bytes(&mut self, dst: u64, src: u64, len: usize) -> Result<(), VmError> {
        if len == 0 {
            return Ok(());
        }
        let pages_of = |va: u64| {
            (page_offset(va) + len).div_ceil(PAGE_SIZE) // pages the span touches
        };
        let src_t = self.translate_pages(src, pages_of(src), Access::Read)?;
        let dst_t = self.translate_pages(dst, pages_of(dst), Access::Write)?;
        let frame_of = |t: &Translation| match t.pte.kind {
            PteKind::Frame(pfn) => Ok(pfn),
            PteKind::Mmio { .. } => Err(VmError::Fault(Fault::MmioData { va: t.page_va })),
        };
        let mut buf = [0u8; PAGE_SIZE];
        let mut done = 0usize;
        while done < len {
            let s = src + done as u64;
            let d = dst + done as u64;
            let so = page_offset(s);
            let dof = page_offset(d);
            let n = (len - done).min(PAGE_SIZE - so).min(PAGE_SIZE - dof);
            let spfn = frame_of(&src_t[((s - page_base(src)) as usize) / PAGE_SIZE])?;
            let dpfn = frame_of(&dst_t[((d - page_base(dst)) as usize) / PAGE_SIZE])?;
            self.kernel.phys.read(spfn, so, &mut buf[..n]);
            self.kernel.phys.write(dpfn, dof, &buf[..n]);
            done += n;
        }
        Ok(())
    }

    /// Read a NUL-terminated string (for `printk`-style natives).
    ///
    /// # Errors
    ///
    /// Translation faults; strings are capped at 4 KiB.
    pub fn read_cstr(&mut self, mut va: u64) -> Result<String, VmError> {
        let mut out = Vec::new();
        while out.len() < PAGE_SIZE {
            let b = self.read_data(va, 1)? as u8;
            if b == 0 {
                break;
            }
            out.push(b);
            va += 1;
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    fn push_u64(&mut self, v: u64) -> Result<(), VmError> {
        let rsp = self.reg(Reg::Rsp).wrapping_sub(8);
        self.set_reg(Reg::Rsp, rsp);
        self.write_data(rsp, v, 8)
    }

    fn pop_u64(&mut self) -> Result<u64, VmError> {
        let rsp = self.reg(Reg::Rsp);
        let v = self.read_data(rsp, 8)?;
        self.set_reg(Reg::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    fn mem_addr(&mut self, m: Mem, next_rip: u64) -> u64 {
        match m {
            Mem::RipRel(d) => next_rip.wrapping_add(d as i64 as u64),
            Mem::Base { base, disp } => self.reg(base).wrapping_add(disp as i64 as u64),
        }
    }

    fn set_logic_flags(&mut self, result: u64) {
        self.flags = Flags {
            zf: result == 0,
            sf: (result as i64) < 0,
            cf: false,
            of: false,
        };
    }

    fn add_with_flags(&mut self, a: u64, b: u64) -> u64 {
        let (r, c) = a.overflowing_add(b);
        let o = ((a ^ r) & (b ^ r)) >> 63 != 0;
        self.flags = Flags {
            zf: r == 0,
            sf: (r as i64) < 0,
            cf: c,
            of: o,
        };
        r
    }

    fn sub_with_flags(&mut self, a: u64, b: u64) -> u64 {
        let (r, borrow) = a.overflowing_sub(b);
        let o = ((a ^ b) & (a ^ r)) >> 63 != 0;
        self.flags = Flags {
            zf: r == 0,
            sf: (r as i64) < 0,
            cf: borrow,
            of: o,
        };
        r
    }

    fn alu_apply(&mut self, op: AluOp, dst: u64, src: u64) -> Option<u64> {
        match op {
            AluOp::Add => Some(self.add_with_flags(dst, src)),
            AluOp::Sub => Some(self.sub_with_flags(dst, src)),
            AluOp::Cmp => {
                self.sub_with_flags(dst, src);
                None
            }
            AluOp::And => {
                let r = dst & src;
                self.set_logic_flags(r);
                Some(r)
            }
            AluOp::Or => {
                let r = dst | src;
                self.set_logic_flags(r);
                Some(r)
            }
            AluOp::Xor => {
                let r = dst ^ src;
                self.set_logic_flags(r);
                Some(r)
            }
        }
    }

    fn cond(&self, c: Cond) -> bool {
        let f = &self.flags;
        match c {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::Le => f.zf || (f.sf != f.of),
            Cond::G => !f.zf && (f.sf == f.of),
        }
    }

    /// Execute one instruction; returns the next `rip`.
    fn step(&mut self, rip: u64, next: u64, insn: Insn) -> Result<u64, VmError> {
        match insn {
            Insn::Nop | Insn::Pause | Insn::Lfence => Ok(next),
            Insn::Ret => self.pop_u64(),
            Insn::Int3 => Err(VmError::Trap { rip, what: "int3" }),
            Insn::Ud2 => Err(VmError::Trap { rip, what: "ud2" }),
            Insn::Hlt => Err(VmError::Trap { rip, what: "hlt" }),
            Insn::CallRel(d) => {
                self.push_u64(next)?;
                Ok(next.wrapping_add(d as i64 as u64))
            }
            Insn::JmpRel(d) => Ok(next.wrapping_add(d as i64 as u64)),
            Insn::Jcc(c, d) => Ok(if self.cond(c) {
                next.wrapping_add(d as i64 as u64)
            } else {
                next
            }),
            Insn::CallReg(r) => {
                let target = self.reg(r);
                self.push_u64(next)?;
                Ok(target)
            }
            Insn::JmpReg(r) => Ok(self.reg(r)),
            Insn::CallMem(m) => {
                let addr = self.mem_addr(m, next);
                let target = self.read_data(addr, 8)?;
                self.push_u64(next)?;
                Ok(target)
            }
            Insn::JmpMem(m) => {
                let addr = self.mem_addr(m, next);
                self.read_data(addr, 8)
            }
            Insn::Push(r) => {
                let v = self.reg(r);
                self.push_u64(v)?;
                Ok(next)
            }
            Insn::Pop(r) => {
                let v = self.pop_u64()?;
                self.set_reg(r, v);
                Ok(next)
            }
            Insn::MovImm64(r, v) => {
                self.set_reg(r, v);
                Ok(next)
            }
            Insn::MovImm32(r, v) => {
                self.set_reg(r, v as i64 as u64);
                Ok(next)
            }
            Insn::MovRR { dst, src } => {
                let v = self.reg(src);
                self.set_reg(dst, v);
                Ok(next)
            }
            Insn::MovLoad { dst, src } => {
                let addr = self.mem_addr(src, next);
                let v = self.read_data(addr, 8)?;
                self.set_reg(dst, v);
                Ok(next)
            }
            Insn::MovStore { dst, src } => {
                let addr = self.mem_addr(dst, next);
                let v = self.reg(src);
                self.write_data(addr, v, 8)?;
                Ok(next)
            }
            Insn::Lea { dst, addr } => {
                let a = self.mem_addr(addr, next);
                self.set_reg(dst, a);
                Ok(next)
            }
            Insn::Alu { op, dst, src } => {
                let (a, b) = (self.reg(dst), self.reg(src));
                if let Some(r) = self.alu_apply(op, a, b) {
                    self.set_reg(dst, r);
                }
                Ok(next)
            }
            Insn::AluImm { op, dst, imm } => {
                let a = self.reg(dst);
                if let Some(r) = self.alu_apply(op, a, imm as i64 as u64) {
                    self.set_reg(dst, r);
                }
                Ok(next)
            }
            Insn::AluLoad { op, dst, src } => {
                let addr = self.mem_addr(src, next);
                let b = self.read_data(addr, 8)?;
                let a = self.reg(dst);
                if let Some(r) = self.alu_apply(op, a, b) {
                    self.set_reg(dst, r);
                }
                Ok(next)
            }
            Insn::AluStore { op, dst, src } => {
                let addr = self.mem_addr(dst, next);
                let a = self.read_data(addr, 8)?;
                let b = self.reg(src);
                if let Some(r) = self.alu_apply(op, a, b) {
                    self.write_data(addr, r, 8)?;
                }
                Ok(next)
            }
            Insn::Test(a, b) => {
                let r = self.reg(a) & self.reg(b);
                self.set_logic_flags(r);
                Ok(next)
            }
            Insn::Imul { dst, src } => {
                let r = self.reg(dst).wrapping_mul(self.reg(src));
                self.set_logic_flags(r);
                self.set_reg(dst, r);
                Ok(next)
            }
            Insn::ShlImm(r, n) => {
                let v = self.reg(r) << (n & 63);
                self.set_logic_flags(v);
                self.set_reg(r, v);
                Ok(next)
            }
            Insn::ShrImm(r, n) => {
                let v = self.reg(r) >> (n & 63);
                self.set_logic_flags(v);
                self.set_reg(r, v);
                Ok(next)
            }
        }
    }

    /// TLB statistics for this CPU.
    pub fn tlb_stats(&self) -> adelie_vmem::TlbStats {
        self.tlb.stats()
    }
}

impl fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("cpu", &self.cpu)
            .field("insns_retired", &self.insns_retired)
            .finish()
    }
}
