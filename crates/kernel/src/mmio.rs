//! MMIO device registry.
//!
//! Device models implement [`MmioDevice`]; the kernel maps their
//! register apertures into the address space as MMIO leaves, and the
//! interpreter routes loads/stores on those pages here — the simulated
//! equivalent of a driver poking BAR registers.

use parking_lot::RwLock;
use std::sync::Arc;

/// A memory-mapped device model.
pub trait MmioDevice: Send + Sync {
    /// Read `size` bytes (1–8) at byte offset `off` within the aperture.
    fn mmio_read(&self, off: u64, size: usize) -> u64;
    /// Write `size` bytes at byte offset `off`.
    fn mmio_write(&self, off: u64, value: u64, size: usize);
    /// Human-readable device name (for diagnostics).
    fn name(&self) -> &str;
}

/// Registry mapping device ids to models.
#[derive(Default)]
pub struct MmioRegistry {
    devices: RwLock<Vec<Arc<dyn MmioDevice>>>,
}

impl MmioRegistry {
    /// Empty registry.
    pub fn new() -> MmioRegistry {
        MmioRegistry::default()
    }

    /// Register a device, returning its id (used in page-table leaves).
    pub fn register(&self, dev: Arc<dyn MmioDevice>) -> u32 {
        let mut devs = self.devices.write();
        devs.push(dev);
        (devs.len() - 1) as u32
    }

    /// Fetch a device by id.
    pub fn get(&self, id: u32) -> Option<Arc<dyn MmioDevice>> {
        self.devices.read().get(id as usize).cloned()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.read().len()
    }

    /// Whether no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.read().is_empty()
    }
}

impl std::fmt::Debug for MmioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmioRegistry")
            .field("devices", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Dummy {
        reg: AtomicU64,
    }

    impl MmioDevice for Dummy {
        fn mmio_read(&self, _off: u64, _size: usize) -> u64 {
            self.reg.load(Ordering::SeqCst)
        }
        fn mmio_write(&self, _off: u64, value: u64, _size: usize) {
            self.reg.store(value, Ordering::SeqCst);
        }
        fn name(&self) -> &str {
            "dummy"
        }
    }

    #[test]
    fn register_and_dispatch() {
        let reg = MmioRegistry::new();
        let id = reg.register(Arc::new(Dummy {
            reg: AtomicU64::new(0),
        }));
        let dev = reg.get(id).unwrap();
        dev.mmio_write(0, 42, 8);
        assert_eq!(dev.mmio_read(0, 8), 42);
        assert!(reg.get(id + 1).is_none());
    }
}
