//! # adelie-kernel — the simulated Linux-like kernel substrate
//!
//! Everything Adelie's loader and re-randomizer need from "the kernel",
//! built from scratch over `adelie-vmem`:
//!
//! * a single kernel [`AddressSpace`] plus physical memory,
//! * the [`SymbolTable`] (kallsyms) whose exported symbols are native
//!   Rust functions dispatched when interpreted code calls into the
//!   kernel-text region,
//! * the [`Vm`] interpreter — a simulated CPU that fetches, decodes, and
//!   executes module code through the page tables,
//! * `kmalloc`/`kfree` ([`Heap`]), `printk` ([`Printk`]), per-CPU
//!   accounting ([`PerCpu`]), MMIO dispatch ([`MmioRegistry`]),
//! * device-op registries ([`DeviceTable`]) and a VFS with a page cache
//!   ([`Vfs`]) — the I/O stack the paper's benchmarks exercise,
//! * the reclamation domain (`mr_start`/`mr_finish`/`mr_retire`) backed
//!   by `adelie-reclaim`'s Hyaline (or EBR, for the ablation).
//!
//! # Example
//!
//! ```
//! use adelie_kernel::{Kernel, KernelConfig};
//!
//! let kernel = Kernel::new(KernelConfig::default());
//! kernel.printk.log("hello from the simulated kernel");
//! assert!(kernel.symbols.lookup("kmalloc").is_some());
//! ```

mod dev;
mod exec;
mod fs;
mod heap;
pub mod layout;
mod mmio;
mod percpu;
mod printk;
mod sharded;
mod symbols;

pub use dev::{BlockDev, CharDev, DeviceTable, FsOps, NetDev, RxHandler};
pub use exec::{Vm, VmError};
pub use fs::{disk_byte, CacheStats, Vfs, VfsFile, CACHE_PAGE, SECTORS_PER_PAGE, SECTOR_SIZE};
pub use heap::Heap;
pub use mmio::{MmioDevice, MmioRegistry};
pub use percpu::PerCpu;
pub use printk::Printk;
pub use sharded::{FleetConfig, ShardedKernel};
pub use symbols::{NativeFn, SymbolTable};

use adelie_reclaim::{Ebr, Hyaline, Reclaimer};
use adelie_vmem::{AddressSpace, PhysMem, PteFlags, SpaceConfig, PAGE_SIZE};
pub use adelie_vmem::{ArchKind, ReadPath, TlbStats};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Callback invoked on every outermost [`Vm::call`] with the entry
/// address — the hook `adelie-sched` uses to measure per-module call
/// rates (entries resolve to modules by immovable-part address range).
pub type CallObserver = Arc<dyn Fn(u64) + Send + Sync>;

/// Demand-fault handler consulted when an outermost [`Vm::call`]
/// targets an entry that does not translate for execute access. The
/// loader may materialize the backing module (the fleet's cold tier
/// faults the module back in from its catalog record) and return the
/// address execution should continue at — possibly different from the
/// faulting one, since a reloaded movable part lands at a fresh
/// randomized base. `None` means the fault stands and the call
/// proceeds to raise the usual [`VmError::Fault`].
pub type DemandLoader = Arc<dyn Fn(u64) -> Option<u64> + Send + Sync>;

/// Which reclamation scheme backs `mr_start`/`mr_finish`/`mr_retire`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ReclaimerKind {
    /// Hyaline (the paper's choice).
    #[default]
    Hyaline,
    /// Epoch-based reclamation (the comparison baseline).
    Ebr,
}

/// Boot-time configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Simulated CPUs (Table 1's server has 20 cores).
    pub cpus: usize,
    /// Whether the retpoline Spectre-V2 mitigation is enabled (PLT stubs
    /// with speculation-safe thunks, paper §2.5/§4.1).
    pub retpoline: bool,
    /// Mirror printk lines to stderr.
    pub echo_printk: bool,
    /// Reclamation scheme.
    pub reclaimer: ReclaimerKind,
    /// Per-call instruction budget (runaway-loop guard).
    pub fuel: u64,
    /// RNG seed (layout randomization, keys).
    pub seed: u64,
    /// Capacity (in generations) of the address space's TLB
    /// invalidation log. The default enables range-based shootdown;
    /// `0` reverts to the legacy whole-TLB-flush regime (the measurable
    /// ablation baseline — see `adelie-vmem`).
    pub tlb_inval_log: usize,
    /// Read-path regime of the kernel address space. The default
    /// ([`ReadPath::Snapshot`]) gives translation a lock-free RCU walk
    /// over immutable page-table snapshots; [`ReadPath::Locked`] is the
    /// pre-snapshot reader-vs-writer-lock regime, kept as the
    /// measurable ablation baseline for `translate_throughput`.
    pub read_path: ReadPath,
    /// Reclamation scheme guarding page-table *snapshot* lifetime (a
    /// domain separate from [`KernelConfig::reclaimer`], whose `mr_*`
    /// brackets span whole pending driver calls — snapshot pins last
    /// one walk). EBR by default; Hyaline selectable for the ablation.
    pub snapshot_reclaimer: ReclaimerKind,
    /// ISA backend of the kernel address space and every per-CPU TLB:
    /// selects hardware PTE encodings, ASID width, and the TLB
    /// invalidation cost model. Defaults to the environment-selected
    /// arch (`ADELIE_ARCH=riscv64` picks Sv48; x86_64 otherwise).
    pub arch: ArchKind,
    /// Whether per-CPU TLBs keep ASID-tagged entries across space
    /// switches (the PCID/ASID win). `false` reverts to the
    /// flush-on-every-switch regime, kept as the measurable ablation
    /// baseline for `BENCH_tlb_shootdown`'s fleet-churn phase.
    pub asid_tagging: bool,
    /// `[lo, hi)` window of the randomization arena this kernel's
    /// module loads, re-randomization cycles, and randomized stacks may
    /// be placed in. Defaults to the whole arena
    /// (`[0, layout::MODULE_CEILING)`); fleet mode
    /// ([`ShardedKernel`]) hands each shard one of the disjoint
    /// [`layout::shard_windows`] so shard layouts can never overlap.
    pub module_window: (u64, u64),
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            cpus: 20,
            retpoline: true,
            echo_printk: false,
            reclaimer: ReclaimerKind::Hyaline,
            fuel: 200_000_000,
            seed: 0x00AD_E11E,
            tlb_inval_log: adelie_vmem::DEFAULT_INVAL_LOG,
            read_path: ReadPath::Snapshot,
            snapshot_reclaimer: ReclaimerKind::Ebr,
            arch: ArchKind::from_env(),
            asid_tagging: true,
            module_window: (0, layout::MODULE_CEILING),
        }
    }
}

/// Pages per kernel thread stack (32 KiB, like Linux's 16 KiB ×2 for
/// comfort under interpretation).
const STACK_PAGES: usize = 8;

/// The simulated kernel. Create once with [`Kernel::new`] and share via
/// [`Arc`]; every public field is internally synchronized.
pub struct Kernel {
    /// Boot configuration.
    pub config: KernelConfig,
    /// Physical memory.
    pub phys: Arc<PhysMem>,
    /// The kernel address space.
    pub space: Arc<AddressSpace>,
    /// kallsyms + native dispatch.
    pub symbols: SymbolTable,
    /// kmalloc heap.
    pub heap: Heap,
    /// MMIO device models.
    pub mmio: MmioRegistry,
    /// Kernel log.
    pub printk: Printk,
    /// Per-CPU assignment and accounting.
    pub percpu: PerCpu,
    /// The `mr_*` reclamation domain.
    pub reclaim: Arc<dyn Reclaimer>,
    /// Module-facing device registries.
    pub devices: DeviceTable,
    /// Filesystem + page cache.
    pub vfs: Vfs,
    rng: Mutex<SmallRng>,
    next_stack: AtomicU64,
    next_mmio_bar: AtomicU64,
    /// `(token, callback)` pairs; token 0 is the scheduler's primary
    /// slot (`set_call_observer` replaces it), higher tokens come from
    /// `add_call_observer` (the fleet's cold-tier idle tracker).
    call_observers: RwLock<Vec<(u64, CallObserver)>>,
    next_observer_token: AtomicU64,
    demand_loader: RwLock<Option<DemandLoader>>,
}

impl Kernel {
    /// Boot a kernel: builds the substrate and registers the base native
    /// symbol set (`kmalloc`, `kfree`, `printk`, `memcpy`, `memset`,
    /// `mr_start`, `mr_finish`, `netif_rx`, the `register_*dev` family,
    /// `jiffies`).
    pub fn new(config: KernelConfig) -> Arc<Kernel> {
        let reclaim: Arc<dyn Reclaimer> = match config.reclaimer {
            ReclaimerKind::Hyaline => Arc::new(Hyaline::new(config.cpus)),
            ReclaimerKind::Ebr => Arc::new(Ebr::new(config.cpus)),
        };
        // Every Vm holds a reader slot for its lifetime, so the domain
        // must cover at least the CPU count (with headroom for
        // auxiliary readers like oracles and one-shot pins) — a kernel
        // configured beyond READER_SLOTS CPUs must not hang its
        // interpreters on slot claims.
        let snapshot_slots = adelie_vmem::READER_SLOTS.max(config.cpus * 2);
        let snapshot_smr: Arc<dyn Reclaimer> = match config.snapshot_reclaimer {
            ReclaimerKind::Hyaline => Arc::new(Hyaline::new(snapshot_slots)),
            ReclaimerKind::Ebr => Arc::new(Ebr::new(snapshot_slots)),
        };
        let kernel = Arc::new(Kernel {
            phys: Arc::new(PhysMem::new()),
            space: Arc::new(AddressSpace::with_space_config(SpaceConfig {
                inval_log: config.tlb_inval_log,
                read_path: config.read_path,
                smr: Some(snapshot_smr),
                arch: config.arch,
                ..SpaceConfig::new()
            })),
            symbols: SymbolTable::new(),
            heap: Heap::new(),
            mmio: MmioRegistry::new(),
            printk: Printk::new(config.echo_printk),
            percpu: PerCpu::new(config.cpus),
            reclaim,
            devices: DeviceTable::new(),
            vfs: Vfs::new(),
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            next_stack: AtomicU64::new(layout::STACK_BASE),
            next_mmio_bar: AtomicU64::new(layout::MMIO_BASE),
            call_observers: RwLock::new(Vec::new()),
            next_observer_token: AtomicU64::new(1),
            demand_loader: RwLock::new(None),
            config,
        });
        register_base_natives(&kernel);
        kernel
    }

    /// Aggregate TLB counters published by every CPU's `Vm` at
    /// outermost call exit — the kernel-wide hit/miss/micro-hit totals
    /// the translate bench and fleet reporting consume.
    pub fn tlb_totals(&self) -> adelie_vmem::TlbStats {
        self.percpu.tlb_totals()
    }

    /// Create a simulated CPU for the calling thread (allocates a fresh
    /// kernel stack; the CPU id is sticky per thread).
    pub fn vm(&self) -> Vm<'_> {
        let cpu = self.percpu.current();
        let stack_top = self.alloc_stack();
        Vm::new(self, cpu, stack_top)
    }

    /// Allocate a kernel stack (with an unmapped guard page below);
    /// returns the initial stack-top address.
    pub fn alloc_stack(&self) -> u64 {
        let base = self
            .next_stack
            .fetch_add(((STACK_PAGES + 1) * PAGE_SIZE) as u64, Ordering::Relaxed);
        // +1 page: the guard page at `base` stays unmapped.
        let first_mapped = base + PAGE_SIZE as u64;
        self.space
            .map_range(
                first_mapped,
                &self.phys.alloc_n(STACK_PAGES),
                PteFlags::DATA,
            )
            .expect("stack region collision");
        first_mapped + (STACK_PAGES * PAGE_SIZE) as u64
    }

    /// Install the primary per-call observer (replacing any previous
    /// primary). The callback runs on every *outermost* interpreted
    /// call, on the calling thread — keep it cheap (a counter bump).
    pub fn set_call_observer(&self, observer: CallObserver) {
        let mut observers = self.call_observers.write();
        observers.retain(|(token, _)| *token != 0);
        observers.push((0, observer));
    }

    /// Remove the primary per-call observer.
    pub fn clear_call_observer(&self) {
        self.call_observers.write().retain(|(token, _)| *token != 0);
    }

    /// Install an *additional* per-call observer alongside the primary
    /// slot; returns a token for [`Kernel::remove_call_observer`]. The
    /// fleet's cold tier uses one to stamp per-module last-call times
    /// without displacing the scheduler's telemetry hook.
    pub fn add_call_observer(&self, observer: CallObserver) -> u64 {
        let token = self.next_observer_token.fetch_add(1, Ordering::Relaxed);
        self.call_observers.write().push((token, observer));
        token
    }

    /// Remove an observer added with [`Kernel::add_call_observer`].
    pub fn remove_call_observer(&self, token: u64) {
        self.call_observers.write().retain(|(t, _)| *t != token);
    }

    /// Invoke every observer for an outermost call to `entry`.
    pub(crate) fn observe_call(&self, entry: u64) {
        let observers: Vec<CallObserver> = self
            .call_observers
            .read()
            .iter()
            .map(|(_, o)| o.clone())
            .collect();
        for observer in observers {
            observer(entry);
        }
    }

    /// Install the demand-fault loader (replacing any previous one).
    /// Consulted by [`Vm::call`] when an outermost entry address does
    /// not translate for execute access — see [`DemandLoader`].
    pub fn set_demand_loader(&self, loader: DemandLoader) {
        *self.demand_loader.write() = Some(loader);
    }

    /// Remove the demand-fault loader.
    pub fn clear_demand_loader(&self) {
        *self.demand_loader.write() = None;
    }

    /// Whether a demand loader is installed (fast gate so the common
    /// non-fleet call path skips the probe entirely).
    pub(crate) fn has_demand_loader(&self) -> bool {
        self.demand_loader.read().is_some()
    }

    /// Consult the demand loader, if any, for a faulting entry address.
    pub(crate) fn demand_load(&self, entry: u64) -> Option<u64> {
        let loader = self.demand_loader.read().clone();
        loader.and_then(|loader| loader(entry))
    }

    /// A uniformly random u64 from the seeded kernel RNG.
    pub fn rng_u64(&self) -> u64 {
        self.rng.lock().gen()
    }

    /// A uniformly random value in `[0, bound)`.
    pub fn rng_below(&self, bound: u64) -> u64 {
        self.rng.lock().gen_range(0..bound)
    }

    /// Register a device model and map its `pages`-page BAR; returns
    /// `(device id, aperture base address)`.
    pub fn map_device(&self, dev: Arc<dyn MmioDevice>, pages: usize) -> (u32, u64) {
        assert!((pages * PAGE_SIZE) as u64 <= layout::MMIO_BAR_SIZE);
        let id = self.mmio.register(dev);
        let base = self
            .next_mmio_bar
            .fetch_add(layout::MMIO_BAR_SIZE, Ordering::Relaxed);
        for p in 0..pages {
            self.space
                .map_mmio(base + (p * PAGE_SIZE) as u64, id, p as u32, PteFlags::DATA)
                .expect("MMIO window collision");
        }
        (id, base)
    }

    /// Dispatch an `ioctl(2)` to the character device on `minor` — the
    /// entry point of Fig. 9's CPU-bound benchmark.
    ///
    /// # Errors
    ///
    /// `VmError::Native` for an unknown device, else whatever the
    /// driver's wrapper raises.
    pub fn ioctl(&self, vm: &mut Vm<'_>, minor: u32, cmd: u64, arg: u64) -> Result<u64, VmError> {
        let dev = self
            .devices
            .chrdev(minor)
            .ok_or_else(|| VmError::Native(format!("ioctl: no chrdev minor {minor}")))?;
        if dev.ioctl == 0 {
            return Err(VmError::Native(format!("ioctl: {} has no ioctl", dev.name)));
        }
        vm.call(dev.ioctl, &[minor as u64, cmd, arg])
    }

    /// Poll the network driver's receive path once; returns how many
    /// frames were delivered (0 when the ring is empty).
    ///
    /// # Errors
    ///
    /// `VmError::Native` if no NIC is registered.
    pub fn net_poll(&self, vm: &mut Vm<'_>) -> Result<u64, VmError> {
        let dev = self
            .devices
            .netdev()
            .ok_or_else(|| VmError::Native("net_poll: no netdev".into()))?;
        if dev.poll == 0 {
            return Ok(0);
        }
        vm.call(dev.poll, &[])
    }

    /// Transmit a frame through the registered network driver (the send
    /// path of the Apache/OLTP benchmarks). `frame` is copied into a
    /// kmalloc'd buffer, the driver's `xmit` wrapper is invoked, and the
    /// buffer freed.
    ///
    /// # Errors
    ///
    /// `VmError::Native` if no NIC is registered.
    pub fn net_xmit(&self, vm: &mut Vm<'_>, frame: &[u8]) -> Result<(), VmError> {
        let dev = self
            .devices
            .netdev()
            .ok_or_else(|| VmError::Native("net_xmit: no netdev".into()))?;
        let buf = self
            .heap
            .kmalloc(&self.space, &self.phys, frame.len().max(1));
        self.space.write_bytes(&self.phys, buf, frame)?;
        let res = vm.call(dev.xmit, &[buf, frame.len() as u64]);
        self.heap.kfree(buf);
        res.map(|_| ())
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("cpus", &self.config.cpus)
            .field("symbols", &self.symbols.len())
            .field("space", &self.space)
            .finish()
    }
}

/// Install the baseline exported-symbol set.
fn register_base_natives(kernel: &Arc<Kernel>) {
    let s = &kernel.symbols;

    s.register_native("kmalloc", |vm| {
        let size = vm.arg(0) as usize;
        if size == 0 {
            return Err(VmError::Native("kmalloc(0)".into()));
        }
        Ok(vm
            .kernel
            .heap
            .kmalloc(&vm.kernel.space, &vm.kernel.phys, size))
    });

    s.register_native("kfree", |vm| {
        let ptr = vm.arg(0);
        vm.kernel.heap.kfree(ptr);
        Ok(0)
    });

    s.register_native("printk", |vm| {
        let fmt = vm.read_cstr(vm.arg(0))?;
        let arg = vm.arg(1);
        let msg = if let Some(idx) = fmt.find("%llu") {
            format!("{}{}{}", &fmt[..idx], arg, &fmt[idx + 4..])
        } else if let Some(idx) = fmt.find("%llx") {
            format!("{}{:x}{}", &fmt[..idx], arg, &fmt[idx + 4..])
        } else {
            fmt
        };
        vm.kernel.printk.log(msg);
        Ok(0)
    });

    s.register_native("memcpy", |vm| {
        let (dst, src, n) = (vm.arg(0), vm.arg(1), vm.arg(2) as usize);
        vm.copy_bytes(dst, src, n)?;
        Ok(dst)
    });

    s.register_native("memset", |vm| {
        let (dst, byte, n) = (vm.arg(0), vm.arg(1) as u8, vm.arg(2) as usize);
        let chunk = vec![byte; n.min(PAGE_SIZE)];
        let mut done = 0;
        while done < n {
            let m = (n - done).min(chunk.len());
            vm.kernel
                .space
                .write_bytes(&vm.kernel.phys, dst + done as u64, &chunk[..m])?;
            done += m;
        }
        Ok(dst)
    });

    // The paper's memory-reclamation bracket for externally-initiated
    // calls (§3.4): wrappers call these around the real function.
    s.register_native("mr_start", |vm| {
        vm.kernel.reclaim.enter(vm.cpu());
        Ok(0)
    });

    s.register_native("mr_finish", |vm| {
        vm.kernel.reclaim.leave(vm.cpu());
        Ok(0)
    });

    s.register_native("jiffies", |vm| {
        Ok(vm.kernel.percpu.uptime().as_nanos() as u64)
    });

    // Driver registration family. Entry-point arguments are wrapper
    // addresses in the module's immovable part.
    s.register_native("register_chrdev", |vm| {
        let minor = vm.arg(0) as u32;
        let name = vm.read_cstr(vm.arg(4))?;
        vm.kernel.devices.register_chrdev(
            minor,
            CharDev {
                name,
                ioctl: vm.arg(1),
                read: vm.arg(2),
                write: vm.arg(3),
            },
        );
        Ok(0)
    });

    s.register_native("unregister_chrdev", |vm| {
        vm.kernel.devices.unregister_chrdev(vm.arg(0) as u32);
        Ok(0)
    });

    s.register_native("register_blkdev", |vm| {
        let name = vm.read_cstr(vm.arg(2))?;
        vm.kernel.devices.register_blkdev(BlockDev {
            name,
            read_block: vm.arg(0),
            write_block: vm.arg(1),
        });
        Ok(0)
    });

    s.register_native("unregister_blkdev", |vm| {
        vm.kernel.devices.unregister_blkdev();
        Ok(0)
    });

    s.register_native("register_netdev", |vm| {
        let name = vm.read_cstr(vm.arg(2))?;
        vm.kernel.devices.register_netdev(NetDev {
            name,
            xmit: vm.arg(0),
            poll: vm.arg(1),
        });
        Ok(0)
    });

    s.register_native("unregister_netdev", |vm| {
        vm.kernel.devices.unregister_netdev();
        Ok(0)
    });

    s.register_native("register_fs", |vm| {
        let name = vm.read_cstr(vm.arg(1))?;
        vm.kernel.devices.register_fs(FsOps {
            name,
            map_block: vm.arg(0),
        });
        Ok(0)
    });

    s.register_native("unregister_fs", |vm| {
        vm.kernel.devices.unregister_fs();
        Ok(0)
    });

    // Receive-path delivery: the NIC driver calls this with a frame the
    // device DMA'd into memory; the kernel hands it to the registered
    // protocol handler.
    s.register_native("netif_rx", |vm| {
        let (ptr, len) = (vm.arg(0), vm.arg(1) as usize);
        let mut frame = vec![0u8; len];
        vm.kernel
            .space
            .read_bytes(&vm.kernel.phys, ptr, &mut frame)?;
        Ok(u64::from(vm.kernel.devices.deliver_rx(&frame)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use adelie_isa::{Asm, Reg};
    use adelie_obj::{Binding, ObjectBuilder, SectionKind};

    /// Hand-load a tiny blob of code at a fixed address (bypassing the
    /// real loader, which lives in adelie-core).
    fn load_code(kernel: &Kernel, va: u64, bytes: &[u8]) {
        let pages = bytes.len().div_ceil(PAGE_SIZE);
        kernel
            .space
            .map_range(va, &kernel.phys.alloc_n(pages), PteFlags::DATA)
            .unwrap();
        kernel.space.write_bytes(&kernel.phys, va, bytes).unwrap();
        kernel
            .space
            .protect_range(va, pages, PteFlags::TEXT)
            .unwrap();
    }

    #[test]
    fn boot_and_basic_symbols() {
        let k = Kernel::new(KernelConfig::default());
        for sym in ["kmalloc", "kfree", "printk", "mr_start", "mr_finish"] {
            assert!(k.symbols.lookup(sym).is_some(), "missing {sym}");
        }
    }

    #[test]
    fn interpret_arithmetic() {
        let k = Kernel::new(KernelConfig::default());
        let mut a = Asm::new();
        // rax = rdi * 2 + rsi
        a.mov_rr(Reg::Rax, Reg::Rdi);
        a.alu(adelie_isa::AluOp::Add, Reg::Rax, Reg::Rdi);
        a.alu(adelie_isa::AluOp::Add, Reg::Rax, Reg::Rsi);
        a.ret();
        let bytes = a.assemble().unwrap().bytes;
        let va = 0x10_0000_0000;
        load_code(&k, va, &bytes);
        let mut vm = k.vm();
        assert_eq!(vm.call(va, &[20, 2]).unwrap(), 42);
    }

    #[test]
    fn interpret_loop_and_branches() {
        let k = Kernel::new(KernelConfig::default());
        let mut a = Asm::new();
        // sum 1..=rdi
        a.mov_imm32(Reg::Rax, 0);
        a.mov_imm32(Reg::Rcx, 0);
        a.label("loop");
        a.alu(adelie_isa::AluOp::Cmp, Reg::Rcx, Reg::Rdi);
        a.jcc_label(adelie_isa::Cond::E, "done");
        a.alu_imm(adelie_isa::AluOp::Add, Reg::Rcx, 1);
        a.alu(adelie_isa::AluOp::Add, Reg::Rax, Reg::Rcx);
        a.jmp_label("loop");
        a.label("done");
        a.ret();
        let bytes = a.assemble().unwrap().bytes;
        let va = 0x20_0000_0000;
        load_code(&k, va, &bytes);
        let mut vm = k.vm();
        assert_eq!(vm.call(va, &[10]).unwrap(), 55);
    }

    #[test]
    fn native_call_via_register() {
        // movabs rax, &kmalloc; call rax — direct native invocation.
        let k = Kernel::new(KernelConfig::default());
        let kmalloc = k.symbols.lookup("kmalloc").unwrap();
        let mut a = Asm::new();
        a.mov_imm32(Reg::Rdi, 256);
        a.mov_imm64(Reg::Rax, kmalloc);
        a.call_reg(Reg::Rax);
        a.ret();
        let bytes = a.assemble().unwrap().bytes;
        let va = 0x30_0000_0000;
        load_code(&k, va, &bytes);
        let mut vm = k.vm();
        let ptr = vm.call(va, &[]).unwrap();
        assert_eq!(k.heap.size_of(ptr), Some(256));
    }

    #[test]
    fn nx_and_write_protection_fault() {
        let k = Kernel::new(KernelConfig::default());
        // Data page is NX.
        let data_va = 0x40_0000_0000;
        k.space
            .map(data_va, k.phys.alloc(), PteFlags::DATA)
            .unwrap();
        let mut vm = k.vm();
        match vm.call(data_va, &[]) {
            Err(VmError::Fault(adelie_vmem::Fault::NotExecutable { .. })) => {}
            other => panic!("expected NX fault, got {other:?}"),
        }
        // Text page rejects writes (what sealing a GOT relies on).
        let text_va = 0x50_0000_0000;
        let mut a = Asm::new();
        a.lea_sym(Reg::Rax, "self"); // pc32 to itself — resolve manually
        a.ret();
        // Simpler: store to own code page.
        let mut a = Asm::new();
        a.mov_imm64(Reg::Rcx, text_va);
        a.mov_store(adelie_isa::Mem::base(Reg::Rcx), Reg::Rcx);
        a.ret();
        load_code(&k, text_va, &a.assemble().unwrap().bytes);
        match vm.call(text_va, &[]) {
            Err(VmError::Fault(adelie_vmem::Fault::NotWritable { .. })) => {}
            other => panic!("expected write-protection fault, got {other:?}"),
        }
    }

    #[test]
    fn stale_pointer_faults_after_unmap() {
        // The observable effect of re-randomization on an attacker's
        // leaked address: once the old range is unmapped, jumping there
        // faults.
        let k = Kernel::new(KernelConfig::default());
        let va = 0x60_0000_0000;
        let mut a = Asm::new();
        a.mov_imm32(Reg::Rax, 1);
        a.ret();
        load_code(&k, va, &a.assemble().unwrap().bytes);
        let mut vm = k.vm();
        assert_eq!(vm.call(va, &[]).unwrap(), 1);
        k.space.unmap(va).unwrap();
        match vm.call(va, &[]) {
            Err(VmError::Fault(adelie_vmem::Fault::Unmapped { .. })) => {}
            other => panic!("expected unmapped fault, got {other:?}"),
        }
    }

    #[test]
    fn fuel_stops_runaway_loops() {
        let k = Kernel::new(KernelConfig {
            fuel: 1000,
            ..KernelConfig::default()
        });
        let va = 0x70_0000_0000;
        let mut a = Asm::new();
        a.label("spin");
        a.jmp_label("spin");
        load_code(&k, va, &a.assemble().unwrap().bytes);
        let mut vm = k.vm();
        match vm.call(va, &[]) {
            Err(VmError::OutOfFuel { .. }) => {}
            other => panic!("expected fuel exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn printk_native_formats() {
        let k = Kernel::new(KernelConfig::default());
        // Put a format string in simulated memory.
        let msg_va = 0x80_0000_0000;
        k.space.map(msg_va, k.phys.alloc(), PteFlags::DATA).unwrap();
        k.space
            .write_bytes(&k.phys, msg_va, b"Randomized %llu times\0")
            .unwrap();
        let printk = k.symbols.lookup("printk").unwrap();
        let mut a = Asm::new();
        a.mov_imm64(Reg::Rdi, msg_va);
        a.mov_imm32(Reg::Rsi, 53);
        a.mov_imm64(Reg::Rax, printk);
        a.call_reg(Reg::Rax);
        a.ret();
        let code_va = 0x90_0000_0000;
        load_code(&k, code_va, &a.assemble().unwrap().bytes);
        let mut vm = k.vm();
        vm.call(code_va, &[]).unwrap();
        assert_eq!(k.printk.grep("Randomized 53 times").len(), 1);
    }

    #[test]
    fn vfs_cached_read_without_drivers() {
        let k = Kernel::new(KernelConfig::default());
        k.vfs.create("test.dat", 64 * 1024);
        let fd = k.vfs.open("test.dat", false).unwrap();
        let mut vm = k.vm();
        let buf = k.heap.kmalloc(&k.space, &k.phys, 4096);
        let n = k.vfs.pread(&mut vm, fd, buf, 4096, 0).unwrap();
        assert_eq!(n, 4096);
        // Second read of the same page hits the cache.
        let before = k.vfs.cache_stats();
        k.vfs.pread(&mut vm, fd, buf, 4096, 0).unwrap();
        let after = k.vfs.cache_stats();
        assert_eq!(after.hits, before.hits + 1);
        // Contents equal the deterministic disk pattern.
        let mut got = vec![0u8; 16];
        k.space.read_bytes(&k.phys, buf, &mut got).unwrap();
        let file = k.vfs.stat("test.dat").unwrap();
        let expect: Vec<u8> = (0..16).map(|i| disk_byte(file.first_lba, i)).collect();
        assert_eq!(got, expect);
        assert!(k.vfs.close(fd));
    }

    #[test]
    fn vfs_write_read_back() {
        let k = Kernel::new(KernelConfig::default());
        k.vfs.create("w.dat", 8192);
        let fd = k.vfs.open("w.dat", false).unwrap();
        let mut vm = k.vm();
        let buf = k.heap.kmalloc(&k.space, &k.phys, 128);
        k.space.write_bytes(&k.phys, buf, &[7u8; 128]).unwrap();
        assert_eq!(k.vfs.pwrite(&mut vm, fd, buf, 128, 100).unwrap(), 128);
        let out = k.heap.kmalloc(&k.space, &k.phys, 128);
        k.vfs.pread(&mut vm, fd, out, 128, 100).unwrap();
        let mut got = vec![0u8; 128];
        k.space.read_bytes(&k.phys, out, &mut got).unwrap();
        assert_eq!(got, vec![7u8; 128]);
    }

    #[test]
    fn object_file_smoke_with_kernel_symbols() {
        // The obj crate integrates: undefined symbols name kernel natives.
        let k = Kernel::new(KernelConfig::default());
        let mut b = ObjectBuilder::new("m");
        let mut a = Asm::new();
        a.call_got("kmalloc");
        a.ret();
        b.add_function("f", &a, SectionKind::Text, Binding::Global)
            .unwrap();
        let obj = b.finish();
        for u in obj.undefined_symbols() {
            assert!(k.symbols.lookup(&u.name).is_some());
        }
    }

    #[test]
    fn stack_guard_page_faults() {
        let k = Kernel::new(KernelConfig::default());
        let top = k.alloc_stack();
        let guard = top - ((STACK_PAGES + 1) * PAGE_SIZE) as u64;
        assert!(k.space.translate(guard, adelie_vmem::Access::Read).is_err());
        assert!(k
            .space
            .translate(top - 8, adelie_vmem::Access::Write)
            .is_ok());
    }
}
