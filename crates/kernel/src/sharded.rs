//! Fleet mode: the machine as N independent kernel shards.
//!
//! The ROADMAP's production target — "heavy traffic from millions of
//! users" — is not one address space with one randomizer; it is many
//! driver instances re-randomizing concurrently across *independent
//! shards*, so that no lock, no TLB invalidation log, no snapshot-SMR
//! domain, and no deadline heap is shared between tenants that have no
//! reason to share fate. [`ShardedKernel`] is that partition:
//!
//! * each shard is a full [`Kernel`] — its own [`AddressSpace`]
//!   (own page-table snapshots, own invalidation ring, own snapshot-SMR
//!   domain), its own per-CPU TLB set (every `Vm` of that shard syncs
//!   against that shard's generation timeline only), heap, devices,
//!   VFS, and seeded RNG;
//! * each shard's randomization arena is one of the disjoint
//!   [`layout::shard_windows`] carved from `[0, MODULE_CEILING)`, so a
//!   virtual address can belong to at most one shard — cross-shard VA
//!   overlap is impossible by construction and *checkable* by the
//!   testkit's fleet oracle (a shard-A leak fired at shard B must
//!   fault);
//! * shard seeds derive deterministically from the fleet seed
//!   (`splitmix64(seed, shard)`), so a whole fleet replays
//!   byte-identically from one number.
//!
//! Module placement across shards, live migration, and the per-shard
//! scheduler groups under one global CPU budget live one layer up
//! (`adelie-core::fleet`, `adelie-sched::FleetScheduler`) — this type
//! owns exactly the kernel-substrate half of fleet mode.

use crate::{layout, Kernel, KernelConfig};
use std::sync::Arc;

/// Boot-time description of a kernel fleet.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Template configuration applied to every shard. Per-shard values
    /// (seed, module window) are derived from it; everything else is
    /// copied verbatim.
    pub base: KernelConfig,
}

impl FleetConfig {
    /// `shards` shards over the default kernel configuration.
    pub fn new(shards: usize) -> FleetConfig {
        FleetConfig {
            shards,
            base: KernelConfig::default(),
        }
    }

    /// `shards` shards seeded from `seed`.
    pub fn seeded(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            base: KernelConfig {
                seed,
                ..KernelConfig::default()
            },
        }
    }
}

/// splitmix64 — the standard seed-derivation mixer; shard seeds must be
/// decorrelated (adjacent raw seeds produce near-identical SmallRng
/// streams) yet fully determined by `(fleet seed, shard index)`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// N independent kernel shards over disjoint randomization windows.
pub struct ShardedKernel {
    shards: Vec<Arc<Kernel>>,
    windows: Vec<(u64, u64)>,
    config: FleetConfig,
}

impl ShardedKernel {
    /// Boot a fleet: `config.shards` kernels, shard `i` seeded with
    /// `splitmix64(base.seed ⊕ i)` and confined to window `i` of
    /// [`layout::shard_windows`].
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn new(config: FleetConfig) -> Arc<ShardedKernel> {
        assert!(config.shards > 0, "fleet needs at least one shard");
        let windows = layout::shard_windows(config.shards);
        let shards = windows
            .iter()
            .enumerate()
            .map(|(i, &window)| {
                Kernel::new(KernelConfig {
                    seed: splitmix64(config.base.seed ^ (i as u64)),
                    module_window: window,
                    ..config.base.clone()
                })
            })
            .collect();
        Arc::new(ShardedKernel {
            shards,
            windows,
            config,
        })
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet has zero shards (never true — kept for clippy's
    /// `len`-without-`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shard `i`'s kernel.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &Arc<Kernel> {
        &self.shards[i]
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Arc<Kernel>] {
        &self.shards
    }

    /// Shard `i`'s `[lo, hi)` randomization window.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn window(&self, i: usize) -> (u64, u64) {
        self.windows[i]
    }

    /// Which shard's window contains `va`, if any (addresses at or above
    /// `MODULE_CEILING` belong to the fixed kernel regions of *every*
    /// shard and return `None`).
    pub fn shard_of_va(&self, va: u64) -> Option<usize> {
        self.windows
            .iter()
            .position(|&(lo, hi)| va >= lo && va < hi)
    }

    /// The boot configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Fleet-wide TLB counter totals: the sum of every shard kernel's
    /// per-CPU published counters (see [`Kernel::tlb_totals`]).
    pub fn tlb_totals(&self) -> adelie_vmem::TlbStats {
        let mut out = adelie_vmem::TlbStats::default();
        for shard in &self.shards {
            out += shard.tlb_totals();
        }
        out
    }
}

impl std::fmt::Debug for ShardedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKernel")
            .field("shards", &self.shards.len())
            .field("windows", &self.windows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_independent_and_windowed() {
        let fleet = ShardedKernel::new(FleetConfig::seeded(4, 7));
        assert_eq!(fleet.len(), 4);
        // Distinct address spaces, distinct seeds, tiled windows.
        let mut ids: Vec<u64> = fleet.shards().iter().map(|k| k.space.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "every shard owns its own address space");
        let mut seeds: Vec<u64> = fleet.shards().iter().map(|k| k.config.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "shard seeds must be decorrelated");
        for i in 0..4 {
            assert_eq!(fleet.shard(i).config.module_window, fleet.window(i));
        }
        assert_eq!(fleet.shard_of_va(0), Some(0));
        assert_eq!(fleet.shard_of_va(fleet.window(3).0), Some(3));
        assert_eq!(fleet.shard_of_va(layout::MODULE_CEILING), None);
    }

    /// Fleet shards inherit the template's ISA backend verbatim, and
    /// every shard's address space carries its *own* ASID — the
    /// precondition for a roaming TLB to keep tagged entries across
    /// shard switches instead of flushing.
    #[test]
    fn shards_share_arch_but_own_distinct_asids() {
        use adelie_vmem::ArchKind;
        let fleet = ShardedKernel::new(FleetConfig {
            shards: 4,
            base: KernelConfig {
                arch: ArchKind::Riscv64Sv48,
                ..KernelConfig::default()
            },
        });
        let mut asids = Vec::new();
        for k in fleet.shards() {
            assert_eq!(k.config.arch, ArchKind::Riscv64Sv48);
            assert_eq!(k.space.arch(), ArchKind::Riscv64Sv48);
            assert!(k.config.asid_tagging, "template default must carry over");
            asids.push(k.space.asid());
        }
        asids.sort_unstable();
        asids.dedup();
        assert_eq!(asids.len(), 4, "every shard space needs its own ASID");
    }

    #[test]
    fn same_fleet_seed_replays_identically() {
        let a = ShardedKernel::new(FleetConfig::seeded(3, 99));
        let b = ShardedKernel::new(FleetConfig::seeded(3, 99));
        for i in 0..3 {
            assert_eq!(a.shard(i).config.seed, b.shard(i).config.seed);
            assert_eq!(a.shard(i).rng_u64(), b.shard(i).rng_u64());
        }
    }
}
