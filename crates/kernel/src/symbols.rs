//! The kernel symbol table (kallsyms analog) and native-function registry.
//!
//! Exported kernel API (kmalloc, printk, the `mr_*` reclamation calls,
//! …) is implemented as native Rust functions. Each registration assigns
//! a virtual address inside the native-dispatch region
//! ([`crate::layout::NATIVE_BASE`]); module GOT entries hold those
//! addresses, and the interpreter traps calls into the region back to
//! the registered closure — exactly how a module's GOT slot holds the
//! address of a kernel text symbol on real hardware.

use crate::exec::{Vm, VmError};
use crate::layout;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A native (kernel-implemented) function callable from module code.
///
/// Receives the interpreter so it can access registers, memory, and the
/// kernel; returns the value placed in `rax`.
pub type NativeFn = dyn Fn(&mut Vm<'_>) -> Result<u64, VmError> + Send + Sync;

/// The kernel symbol table.
///
/// Names are interned as `Arc<str>`: lookups borrow, registration
/// shares, and callers that key their own maps by symbol name clone a
/// pointer instead of reallocating the string. The native registry is
/// append-only, which is what lets the interpreter cache resolved
/// handlers per CPU and keep this table's locks off the dispatch hot
/// path.
pub struct SymbolTable {
    by_name: RwLock<HashMap<Arc<str>, u64>>,
    natives: RwLock<HashMap<u64, Arc<NativeFn>>>,
    next_native: AtomicU64,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> SymbolTable {
        SymbolTable {
            by_name: RwLock::new(HashMap::new()),
            natives: RwLock::new(HashMap::new()),
            next_native: AtomicU64::new(layout::NATIVE_BASE),
        }
    }

    /// Register a native function under `name`; returns its assigned
    /// kernel-text address.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already bound (kernel symbols are unique).
    pub fn register_native(
        &self,
        name: &str,
        f: impl Fn(&mut Vm<'_>) -> Result<u64, VmError> + Send + Sync + 'static,
    ) -> u64 {
        // 16-byte spacing: keeps addresses distinct and "function-like".
        let va = self.next_native.fetch_add(16, Ordering::Relaxed);
        assert!(va < layout::NATIVE_BASE + layout::NATIVE_SIZE);
        let prev = self.by_name.write().insert(Arc::from(name), va);
        assert!(prev.is_none(), "kernel symbol `{name}` registered twice");
        self.natives.write().insert(va, Arc::new(f));
        va
    }

    /// Bind `name` to an arbitrary address (used for module exports that
    /// other modules import, like real inter-module symbols).
    ///
    /// # Panics
    ///
    /// Panics on rebinding an existing name to a *different* address.
    pub fn define(&self, name: &str, va: u64) {
        let mut map = self.by_name.write();
        if let Some(&old) = map.get(name) {
            assert_eq!(old, va, "symbol `{name}` rebound to a new address");
            return;
        }
        map.insert(Arc::from(name), va);
    }

    /// Remove a binding (module unload).
    pub fn undefine(&self, name: &str) {
        self.by_name.write().remove(name);
    }

    /// Remove a native registration (name *and* dispatch handler).
    ///
    /// Module-owned natives — lazy PLT binders — must be torn down at
    /// unload, both so the dispatch region stops resolving to a dead
    /// module and so a later re-load of the same module name can
    /// register fresh binders without tripping the duplicate-name
    /// assertion in [`SymbolTable::register_native`].
    pub fn unregister_native(&self, name: &str) {
        if let Some(va) = self.by_name.write().remove(name) {
            self.natives.write().remove(&va);
        }
    }

    /// Resolve a name to its address.
    pub fn lookup(&self, name: &str) -> Option<u64> {
        self.by_name.read().get(name).copied()
    }

    /// Resolve a native-region address to its handler.
    pub fn native_at(&self, va: u64) -> Option<Arc<NativeFn>> {
        self.natives.read().get(&va).cloned()
    }

    /// Number of registered symbols.
    pub fn len(&self) -> usize {
        self.by_name.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.read().is_empty()
    }

    /// Snapshot of all `(name, address)` pairs (kallsyms dump).
    pub fn dump(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .by_name
            .read()
            .iter()
            .map(|(k, &a)| (k.to_string(), a))
            .collect();
        v.sort_by_key(|(_, a)| *a);
        v
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolTable")
            .field("symbols", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let t = SymbolTable::new();
        let va = t.register_native("kmalloc", |_vm| Ok(0));
        assert!(layout::is_native(va));
        assert_eq!(t.lookup("kmalloc"), Some(va));
        assert!(t.native_at(va).is_some());
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn addresses_are_distinct() {
        let t = SymbolTable::new();
        let a = t.register_native("a", |_| Ok(0));
        let b = t.register_native("b", |_| Ok(0));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_native_panics() {
        let t = SymbolTable::new();
        t.register_native("x", |_| Ok(0));
        t.register_native("x", |_| Ok(0));
    }

    #[test]
    fn define_and_undefine() {
        let t = SymbolTable::new();
        t.define("module_export", 0x1234_0000);
        assert_eq!(t.lookup("module_export"), Some(0x1234_0000));
        t.undefine("module_export");
        assert_eq!(t.lookup("module_export"), None);
    }
}
