//! kmalloc — the kernel heap.
//!
//! A size-class allocator over on-demand-mapped pages in the
//! [`crate::layout::HEAP_BASE`] region. Module code allocates DMA rings,
//! request buffers, and private state here through the `kmalloc`/`kfree`
//! natives; heap addresses are *not* re-randomized, which is exactly the
//! paper's model (heap pointers are module-local and the §6 analysis
//! treats them separately).

use crate::layout;
use adelie_vmem::{AddressSpace, PhysMem, PteFlags, PAGE_SIZE};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Smallest size class.
const MIN_CLASS: usize = 16;
/// Number of power-of-two classes: 16, 32, … 4096.
const NUM_CLASSES: usize = 9;

fn class_of(size: usize) -> Option<usize> {
    if size == 0 || size > PAGE_SIZE {
        return None;
    }
    let rounded = size.max(MIN_CLASS).next_power_of_two();
    Some(rounded.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize)
}

fn class_size(class: usize) -> usize {
    MIN_CLASS << class
}

struct HeapInner {
    next_page: u64,
    free_lists: [Vec<u64>; NUM_CLASSES],
    /// Size of every live allocation (for kfree and leak accounting).
    live: HashMap<u64, usize>,
    bytes_allocated: u64,
    bytes_freed: u64,
}

/// The kernel heap. All methods take `&self`; a mutex guards the free
/// lists (kmalloc is not the hot path in any of the paper's figures).
pub struct Heap {
    inner: Mutex<HeapInner>,
}

impl Heap {
    /// Create the heap (no pages mapped yet).
    pub fn new() -> Heap {
        Heap {
            inner: Mutex::new(HeapInner {
                next_page: layout::HEAP_BASE,
                free_lists: Default::default(),
                live: HashMap::new(),
                bytes_allocated: 0,
                bytes_freed: 0,
            }),
        }
    }

    /// Allocate `size` bytes; returns the virtual address.
    ///
    /// Large allocations (> one page) get dedicated whole pages, like
    /// the kernel's page allocator behind `kmalloc`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn kmalloc(&self, space: &AddressSpace, phys: &PhysMem, size: usize) -> u64 {
        assert!(size > 0, "kmalloc(0)");
        let mut inner = self.inner.lock();
        let va = match class_of(size) {
            Some(class) => {
                if inner.free_lists[class].is_empty() {
                    // Carve a fresh page into this class's chunks.
                    let page = inner.next_page;
                    inner.next_page += PAGE_SIZE as u64;
                    space
                        .map(page, phys.alloc(), PteFlags::DATA)
                        .expect("heap page collision");
                    let csize = class_size(class);
                    for off in (0..PAGE_SIZE).step_by(csize) {
                        inner.free_lists[class].push(page + off as u64);
                    }
                }
                inner.free_lists[class].pop().unwrap()
            }
            None => {
                // Multi-page allocation.
                let pages = size.div_ceil(PAGE_SIZE);
                let va = inner.next_page;
                inner.next_page += (pages * PAGE_SIZE) as u64;
                space
                    .map_range(va, &phys.alloc_n(pages), PteFlags::DATA)
                    .expect("heap page collision");
                va
            }
        };
        inner.live.insert(va, size);
        inner.bytes_allocated += size as u64;
        va
    }

    /// Free an allocation made by [`Heap::kmalloc`].
    ///
    /// # Panics
    ///
    /// Panics on double-free or a pointer kmalloc never returned — both
    /// are kernel bugs worth failing loudly on.
    pub fn kfree(&self, va: u64) {
        let mut inner = self.inner.lock();
        let size = inner
            .live
            .remove(&va)
            .unwrap_or_else(|| panic!("kfree of unknown pointer {va:#x}"));
        inner.bytes_freed += size as u64;
        if let Some(class) = class_of(size) {
            inner.free_lists[class].push(va);
        }
        // Multi-page allocations keep their pages (kernel-style slab
        // retention; the simulation never unmaps heap).
    }

    /// Size of the live allocation at `va`, if any.
    pub fn size_of(&self, va: u64) -> Option<usize> {
        self.inner.lock().live.get(&va).copied()
    }

    /// `(live allocations, live bytes)`.
    pub fn live(&self) -> (usize, u64) {
        let inner = self.inner.lock();
        (inner.live.len(), inner.bytes_allocated - inner.bytes_freed)
    }
}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (allocs, bytes) = self.live();
        f.debug_struct("Heap")
            .field("live_allocs", &allocs)
            .field("live_bytes", &bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Heap, AddressSpace, PhysMem) {
        (Heap::new(), AddressSpace::new(), PhysMem::new())
    }

    #[test]
    fn classes() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(4096), Some(8));
        assert_eq!(class_of(4097), None);
        assert_eq!(class_size(0), 16);
        assert_eq!(class_size(8), 4096);
    }

    #[test]
    fn alloc_free_reuse() {
        let (heap, space, phys) = setup();
        let a = heap.kmalloc(&space, &phys, 100);
        let b = heap.kmalloc(&space, &phys, 100);
        assert_ne!(a, b);
        space.write_u64(&phys, a, 1).unwrap();
        space.write_u64(&phys, b, 2).unwrap();
        assert_eq!(space.read_u64(&phys, a).unwrap(), 1);
        heap.kfree(a);
        let c = heap.kmalloc(&space, &phys, 100);
        assert_eq!(a, c, "freed chunk reused");
        assert_eq!(heap.live().0, 2);
    }

    #[test]
    fn large_allocation_gets_pages() {
        let (heap, space, phys) = setup();
        let a = heap.kmalloc(&space, &phys, 3 * PAGE_SIZE);
        // Whole range usable.
        space
            .write_u64(&phys, a + (3 * PAGE_SIZE - 8) as u64, 9)
            .unwrap();
        assert_eq!(heap.size_of(a), Some(3 * PAGE_SIZE));
        heap.kfree(a);
        assert_eq!(heap.live().1, 0);
    }

    #[test]
    #[should_panic(expected = "kfree of unknown pointer")]
    fn bad_free_panics() {
        let (heap, _space, _phys) = setup();
        heap.kfree(0xdead);
    }

    #[test]
    fn chunks_do_not_overlap() {
        let (heap, space, phys) = setup();
        let ptrs: Vec<u64> = (0..64).map(|_| heap.kmalloc(&space, &phys, 64)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            space.write_u64(&phys, p, i as u64).unwrap();
        }
        for (i, &p) in ptrs.iter().enumerate() {
            assert_eq!(space.read_u64(&phys, p).unwrap(), i as u64);
        }
    }
}
