//! Per-CPU bookkeeping: thread→CPU assignment and CPU-time accounting.
//!
//! Like Linux, any thread may enter the kernel; each OS thread is pinned
//! to a simulated CPU on first entry (round-robin). Busy time is
//! accumulated per CPU so benchmarks can report utilization over a
//! modeled `cpus`-core machine, the way the paper's figures report "CPU
//! usage across all 20 cores".

use adelie_vmem::TlbStats;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

thread_local! {
    static CPU_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Shared accumulators for one CPU's TLB counters. Each `Vm` owns a
/// private `Tlb` whose stats die with it; CPUs publish deltas here at
/// outermost call exit so benches and the fleet can report hit rates
/// without keeping every `Vm` alive.
#[derive(Default)]
struct TlbCounters {
    hits: AtomicU64,
    micro_hits: AtomicU64,
    misses: AtomicU64,
    flushes: AtomicU64,
    switches: AtomicU64,
    switch_flushes: AtomicU64,
    horizon_flushes: AtomicU64,
    partial_flushes: AtomicU64,
    entries_invalidated: AtomicU64,
    evictions: AtomicU64,
}

/// Per-CPU state holder.
pub struct PerCpu {
    cpus: usize,
    next: AtomicUsize,
    busy_ns: Vec<AtomicU64>,
    tlb: Vec<TlbCounters>,
    boot: Instant,
}

impl PerCpu {
    /// Create state for a machine with `cpus` simulated CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: usize) -> PerCpu {
        assert!(cpus > 0);
        PerCpu {
            cpus,
            next: AtomicUsize::new(0),
            busy_ns: (0..cpus).map(|_| AtomicU64::new(0)).collect(),
            tlb: (0..cpus).map(|_| TlbCounters::default()).collect(),
            boot: Instant::now(),
        }
    }

    /// Number of simulated CPUs.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// The calling thread's CPU id, assigned round-robin on first use.
    ///
    /// The sticky thread→CPU assignment is process-wide (one thread is
    /// one "hardware thread" no matter how many simulated kernels it
    /// enters), so the raw id may come from a kernel with *more* CPUs
    /// than this one — fleet shards are routinely booted smaller than
    /// the machine that spawned them. The id is therefore folded into
    /// this kernel's CPU count, like `pop_stack_this_cpu` folds pool
    /// indices, instead of handing out an index that would overflow
    /// [`PerCpu::account`].
    pub fn current(&self) -> usize {
        CPU_ID.with(|c| {
            if let Some(id) = c.get() {
                return id % self.cpus;
            }
            let id = self.next.fetch_add(1, Ordering::Relaxed);
            c.set(Some(id));
            id % self.cpus
        })
    }

    /// Pin the calling thread to a specific CPU (benchmark setup).
    pub fn pin(&self, cpu: usize) {
        assert!(cpu < self.cpus);
        CPU_ID.with(|c| c.set(Some(cpu)));
    }

    /// Account `busy` time to `cpu`. Out-of-range ids (a sticky thread
    /// id minted by a bigger kernel) fold instead of panicking.
    pub fn account(&self, cpu: usize, busy: Duration) {
        self.busy_ns[cpu % self.cpus].fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total busy nanoseconds across all CPUs.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Publish a TLB-counter delta for `cpu` (ids fold like
    /// [`PerCpu::account`]). Called by the interpreter at outermost
    /// call exit, so counters cover completed ioctls.
    pub fn record_tlb(&self, cpu: usize, delta: &TlbStats) {
        let c = &self.tlb[cpu % self.cpus];
        c.hits.fetch_add(delta.hits, Ordering::Relaxed);
        c.micro_hits.fetch_add(delta.micro_hits, Ordering::Relaxed);
        c.misses.fetch_add(delta.misses, Ordering::Relaxed);
        c.flushes.fetch_add(delta.flushes, Ordering::Relaxed);
        c.switches.fetch_add(delta.switches, Ordering::Relaxed);
        c.switch_flushes
            .fetch_add(delta.switch_flushes, Ordering::Relaxed);
        c.horizon_flushes
            .fetch_add(delta.horizon_flushes, Ordering::Relaxed);
        c.partial_flushes
            .fetch_add(delta.partial_flushes, Ordering::Relaxed);
        c.entries_invalidated
            .fetch_add(delta.entries_invalidated, Ordering::Relaxed);
        c.evictions.fetch_add(delta.evictions, Ordering::Relaxed);
    }

    /// Sum of all published TLB counters across CPUs.
    pub fn tlb_totals(&self) -> TlbStats {
        let mut out = TlbStats::default();
        for c in &self.tlb {
            out.hits += c.hits.load(Ordering::Relaxed);
            out.micro_hits += c.micro_hits.load(Ordering::Relaxed);
            out.misses += c.misses.load(Ordering::Relaxed);
            out.flushes += c.flushes.load(Ordering::Relaxed);
            out.switches += c.switches.load(Ordering::Relaxed);
            out.switch_flushes += c.switch_flushes.load(Ordering::Relaxed);
            out.horizon_flushes += c.horizon_flushes.load(Ordering::Relaxed);
            out.partial_flushes += c.partial_flushes.load(Ordering::Relaxed);
            out.entries_invalidated += c.entries_invalidated.load(Ordering::Relaxed);
            out.evictions += c.evictions.load(Ordering::Relaxed);
        }
        out
    }

    /// Utilization (0..=1 per CPU, so 0..=cpus overall is normalized to
    /// 0..=1) of the modeled machine between `since_busy_ns` (a previous
    /// [`PerCpu::total_busy_ns`] reading) and now, over `wall` seconds.
    pub fn usage_since(&self, since_busy_ns: u64, wall: Duration) -> f64 {
        let busy = self.total_busy_ns().saturating_sub(since_busy_ns) as f64 / 1e9;
        let capacity = wall.as_secs_f64() * self.cpus as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (busy / capacity).min(1.0)
        }
    }

    /// Seconds since boot (jiffies analog).
    pub fn uptime(&self) -> Duration {
        self.boot.elapsed()
    }
}

impl std::fmt::Debug for PerCpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerCpu")
            .field("cpus", &self.cpus)
            .field("total_busy_ns", &self.total_busy_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_sticky() {
        let p = PerCpu::new(4);
        let a = p.current();
        let b = p.current();
        assert_eq!(a, b, "same thread keeps its CPU");
    }

    #[test]
    fn accounting_and_usage() {
        let p = PerCpu::new(2);
        p.account(0, Duration::from_millis(10));
        p.account(1, Duration::from_millis(10));
        // 20ms busy over 10ms wall on 2 CPUs = 100% usage.
        let u = p.usage_since(0, Duration::from_millis(10));
        assert!((u - 1.0).abs() < 1e-9);
        // Over 100ms wall: 10%.
        let u = p.usage_since(0, Duration::from_millis(100));
        assert!((u - 0.1).abs() < 1e-9);
    }

    /// Regression (fleet-style many-kernel churn): the sticky thread id
    /// is process-wide, so a thread whose id was minted by a big kernel
    /// used to index out of bounds in a smaller kernel's `busy_ns` —
    /// both `current` and `account` must fold into the local CPU count.
    #[test]
    fn ids_fold_across_kernels_of_different_sizes() {
        std::thread::spawn(|| {
            let big = PerCpu::new(16);
            // Burn assignments so this thread's sticky id can exceed 2.
            for _ in 0..5 {
                big.next.fetch_add(1, Ordering::Relaxed);
            }
            let raw = big.current();
            let small = PerCpu::new(2);
            let folded = small.current();
            assert!(folded < 2, "id {raw} must fold into a 2-CPU kernel");
            // Accounting with the *big* kernel's id must not panic.
            small.account(raw, Duration::from_millis(1));
            assert!(small.total_busy_ns() > 0);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn tlb_deltas_accumulate_and_fold() {
        let p = PerCpu::new(2);
        let delta = TlbStats {
            hits: 10,
            micro_hits: 7,
            misses: 3,
            switches: 4,
            switch_flushes: 2,
            horizon_flushes: 1,
            ..TlbStats::default()
        };
        p.record_tlb(0, &delta);
        p.record_tlb(1, &delta);
        p.record_tlb(5, &delta); // big-kernel sticky id folds to CPU 1
        let t = p.tlb_totals();
        assert_eq!(t.hits, 30);
        assert_eq!(t.micro_hits, 21);
        assert_eq!(t.misses, 9);
        assert_eq!(t.flushes, 0);
        assert_eq!(t.switches, 12);
        assert_eq!(t.switch_flushes, 6);
        assert_eq!(t.horizon_flushes, 3);
    }

    #[test]
    fn distinct_threads_get_distinct_cpus() {
        let p = std::sync::Arc::new(PerCpu::new(8));
        let mut ids = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            ids.push(std::thread::spawn(move || p.current()).join().unwrap());
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
