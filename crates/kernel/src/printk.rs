//! The kernel log (`printk`/dmesg analog).

use parking_lot::Mutex;
use std::time::Instant;

/// Ring buffer of kernel log lines with boot-relative timestamps,
/// mirroring dmesg (the artifact appendix's re-randomization statistics
/// are read from here).
pub struct Printk {
    boot: Instant,
    lines: Mutex<Vec<(f64, String)>>,
    echo: bool,
}

impl Printk {
    /// Create a log; `echo` mirrors lines to stderr as they arrive.
    pub fn new(echo: bool) -> Printk {
        Printk {
            boot: Instant::now(),
            lines: Mutex::new(Vec::new()),
            echo,
        }
    }

    /// Append a line.
    pub fn log(&self, msg: impl Into<String>) {
        let t = self.boot.elapsed().as_secs_f64();
        let msg = msg.into();
        if self.echo {
            eprintln!("[{t:>10.6}] {msg}");
        }
        self.lines.lock().push((t, msg));
    }

    /// All lines, dmesg-formatted.
    pub fn dmesg(&self) -> String {
        self.lines
            .lock()
            .iter()
            .map(|(t, m)| format!("[{t:>10.6}] {m}\n"))
            .collect()
    }

    /// Lines containing `needle` (test helper).
    pub fn grep(&self, needle: &str) -> Vec<String> {
        self.lines
            .lock()
            .iter()
            .filter(|(_, m)| m.contains(needle))
            .map(|(_, m)| m.clone())
            .collect()
    }

    /// Number of lines logged.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }
}

impl std::fmt::Debug for Printk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Printk")
            .field("lines", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_grep() {
        let p = Printk::new(false);
        p.log("Randomize: kthread started");
        p.log("Randomized 53 times");
        assert_eq!(p.len(), 2);
        assert_eq!(p.grep("Randomized").len(), 1);
        assert!(p.dmesg().contains("kthread started"));
    }
}
