//! The kernel log (`printk`/dmesg analog).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Instant;

/// Ring buffer of kernel log lines with boot-relative timestamps,
/// mirroring dmesg (the artifact appendix's re-randomization statistics
/// are read from here).
pub struct Printk {
    boot: Instant,
    lines: Mutex<Vec<(f64, String)>>,
    /// Per-key emission counts for [`Printk::log_limited`]:
    /// `key → (occurrences, suppressed since last emit)`.
    limited: Mutex<HashMap<String, (u64, u64)>>,
    echo: bool,
}

impl Printk {
    /// Create a log; `echo` mirrors lines to stderr as they arrive.
    pub fn new(echo: bool) -> Printk {
        Printk {
            boot: Instant::now(),
            lines: Mutex::new(Vec::new()),
            limited: Mutex::new(HashMap::new()),
            echo,
        }
    }

    /// Append a line.
    pub fn log(&self, msg: impl Into<String>) {
        let t = self.boot.elapsed().as_secs_f64();
        let msg = msg.into();
        if self.echo {
            eprintln!("[{t:>10.6}] {msg}");
        }
        self.lines.lock().push((t, msg));
    }

    /// Append a line under a per-key rate limit: the 1st, 2nd, 4th,
    /// 8th, … occurrence of `key` is logged (with a suppressed-count
    /// suffix once lines have been dropped), the rest are counted and
    /// swallowed — the `printk_ratelimited` analog, but deterministic
    /// (occurrence-based, not wall-time-based, so seeded virtual-clock
    /// runs stay byte-identical). Returns whether the line was emitted.
    pub fn log_limited(&self, key: &str, msg: impl Into<String>) -> bool {
        let (emit, suppressed) = {
            let mut limited = self.limited.lock();
            let slot = limited.entry(key.to_string()).or_insert((0, 0));
            slot.0 += 1;
            if slot.0.is_power_of_two() {
                let suppressed = slot.1;
                slot.1 = 0;
                (true, suppressed)
            } else {
                slot.1 += 1;
                (false, 0)
            }
        };
        if emit {
            let msg = msg.into();
            if suppressed > 0 {
                self.log(format!("{msg} ({suppressed} similar suppressed)"));
            } else {
                self.log(msg);
            }
        }
        emit
    }

    /// All lines, dmesg-formatted.
    pub fn dmesg(&self) -> String {
        self.lines
            .lock()
            .iter()
            .map(|(t, m)| format!("[{t:>10.6}] {m}\n"))
            .collect()
    }

    /// Lines containing `needle` (test helper).
    pub fn grep(&self, needle: &str) -> Vec<String> {
        self.lines
            .lock()
            .iter()
            .filter(|(_, m)| m.contains(needle))
            .map(|(_, m)| m.clone())
            .collect()
    }

    /// Number of lines logged.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }
}

impl std::fmt::Debug for Printk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Printk")
            .field("lines", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_grep() {
        let p = Printk::new(false);
        p.log("Randomize: kthread started");
        p.log("Randomized 53 times");
        assert_eq!(p.len(), 2);
        assert_eq!(p.grep("Randomized").len(), 1);
        assert!(p.dmesg().contains("kthread started"));
    }

    #[test]
    fn rate_limited_logging_is_logarithmic() {
        let p = Printk::new(false);
        let mut emitted = 0;
        for i in 0..100u32 {
            if p.log_limited("k", format!("failure #{i}")) {
                emitted += 1;
            }
        }
        // 1, 2, 4, 8, 16, 32, 64 → 7 emissions out of 100.
        assert_eq!(emitted, 7);
        assert_eq!(p.len(), 7);
        // The last emitted line carries the swallowed count (32 → 64
        // suppressed 31).
        assert_eq!(p.grep("(31 similar suppressed)").len(), 1);
        // Distinct keys limit independently.
        assert!(p.log_limited("other", "first of its kind"));
    }
}
