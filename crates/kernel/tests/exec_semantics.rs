//! Exhaustive condition-code semantics for the interpreter: every Jcc
//! against computed flags, signed and unsigned comparisons.

use adelie_isa::{AluOp, Asm, Cond, Reg};
use adelie_kernel::{Kernel, KernelConfig};
use adelie_vmem::{PteFlags, PAGE_SIZE};
use std::sync::Arc;

fn run(kernel: &Arc<Kernel>, asm: &Asm, args: &[u64]) -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0x100_0000_0000);
    let va = NEXT.fetch_add(0x10_0000, std::sync::atomic::Ordering::Relaxed);
    let bytes = asm.assemble().unwrap().bytes;
    let pages = bytes.len().div_ceil(PAGE_SIZE);
    kernel
        .space
        .map_range(va, &kernel.phys.alloc_n(pages), PteFlags::DATA)
        .unwrap();
    kernel.space.write_bytes(&kernel.phys, va, &bytes).unwrap();
    kernel
        .space
        .protect_range(va, pages, PteFlags::TEXT)
        .unwrap();
    let mut vm = kernel.vm();
    vm.call(va, args).unwrap()
}

/// rax = 1 if `jcc` taken after `cmp rdi, rsi`, else 0.
fn cmp_taken(kernel: &Arc<Kernel>, c: Cond, a: u64, b: u64) -> bool {
    let mut asm = Asm::new();
    asm.alu(AluOp::Cmp, Reg::Rdi, Reg::Rsi);
    asm.jcc_label(c, "yes");
    asm.mov_imm32(Reg::Rax, 0);
    asm.ret();
    asm.label("yes");
    asm.mov_imm32(Reg::Rax, 1);
    asm.ret();
    run(kernel, &asm, &[a, b]) == 1
}

#[test]
fn condition_codes_match_reference_semantics() {
    let kernel = Kernel::new(KernelConfig::default());
    let cases: [(u64, u64); 8] = [
        (0, 0),
        (1, 2),
        (2, 1),
        (u64::MAX, 0),
        (0, u64::MAX),
        (u64::MAX, u64::MAX),
        (1 << 63, 1),
        (1, 1 << 63),
    ];
    for (a, b) in cases {
        let (sa, sb) = (a as i64, b as i64);
        assert_eq!(cmp_taken(&kernel, Cond::E, a, b), a == b, "je {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::Ne, a, b), a != b, "jne {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::B, a, b), a < b, "jb {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::Ae, a, b), a >= b, "jae {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::Be, a, b), a <= b, "jbe {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::A, a, b), a > b, "ja {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::L, a, b), sa < sb, "jl {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::Ge, a, b), sa >= sb, "jge {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::Le, a, b), sa <= sb, "jle {a} {b}");
        assert_eq!(cmp_taken(&kernel, Cond::G, a, b), sa > sb, "jg {a} {b}");
        // Sign flag after cmp = sign of the wrapped difference.
        assert_eq!(
            cmp_taken(&kernel, Cond::S, a, b),
            (a.wrapping_sub(b) as i64) < 0,
            "js {a} {b}"
        );
        assert_eq!(
            cmp_taken(&kernel, Cond::Ns, a, b),
            (a.wrapping_sub(b) as i64) >= 0,
            "jns {a} {b}"
        );
    }
}

#[test]
fn stack_discipline_and_callee_balance() {
    // push/pop pairs and nested calls leave rsp balanced (verified by
    // reading arguments through the stack).
    let kernel = Kernel::new(KernelConfig::default());
    let mut asm = Asm::new();
    asm.push(Reg::Rdi);
    asm.push(Reg::Rsi);
    asm.call_label("sum_top_two");
    asm.pop(Reg::Rcx); // discard
    asm.pop(Reg::Rcx);
    asm.ret();
    asm.label("sum_top_two");
    // [rsp] = return addr, [rsp+8] = rsi, [rsp+16] = rdi
    asm.mov_load(Reg::Rax, adelie_isa::Mem::base_disp(Reg::Rsp, 8));
    asm.alu_load(
        AluOp::Add,
        Reg::Rax,
        adelie_isa::Mem::base_disp(Reg::Rsp, 16),
    );
    asm.ret();
    assert_eq!(run(&kernel, &asm, &[30, 12]), 42);
}

#[test]
fn shifts_and_multiply() {
    let kernel = Kernel::new(KernelConfig::default());
    let mut asm = Asm::new();
    asm.mov_rr(Reg::Rax, Reg::Rdi);
    asm.insn(adelie_isa::Insn::ShlImm(Reg::Rax, 4));
    asm.insn(adelie_isa::Insn::ShrImm(Reg::Rax, 1));
    asm.insn(adelie_isa::Insn::Imul {
        dst: Reg::Rax,
        src: Reg::Rsi,
    });
    asm.ret();
    assert_eq!(run(&kernel, &asm, &[5, 3]), 5 * 8 * 3);
}

#[test]
fn mmio_roundtrip_through_interpreter() {
    use adelie_kernel::MmioDevice;
    struct Scratch(std::sync::atomic::AtomicU64);
    impl MmioDevice for Scratch {
        fn mmio_read(&self, _o: u64, _s: usize) -> u64 {
            self.0.load(std::sync::atomic::Ordering::SeqCst)
        }
        fn mmio_write(&self, _o: u64, v: u64, _s: usize) {
            self.0
                .store(v.wrapping_mul(3), std::sync::atomic::Ordering::SeqCst);
        }
        fn name(&self) -> &str {
            "scratch"
        }
    }
    let kernel = Kernel::new(KernelConfig::default());
    let (_, bar) = kernel.map_device(Arc::new(Scratch(Default::default())), 1);
    let mut asm = Asm::new();
    asm.mov_imm64(Reg::Rcx, bar);
    asm.mov_store(adelie_isa::Mem::base(Reg::Rcx), Reg::Rdi);
    asm.mov_load(Reg::Rax, adelie_isa::Mem::base(Reg::Rcx));
    asm.ret();
    assert_eq!(run(&kernel, &asm, &[14]), 42);
}

#[test]
fn retpoline_thunk_executes_architecturally() {
    // The retpoline sequence (call; trap-loop; mov [rsp],rax; ret) must
    // deliver control to rax without ever running the speculation trap.
    let kernel = Kernel::new(KernelConfig::default());
    let mut asm = Asm::new();
    asm.mov_imm64(Reg::Rax, 0); // filled below: target = "landing"
                                // We can't compute the landing address before assembly, so instead
                                // load it pc-relatively.
    let mut asm = Asm::new();
    asm.lea_sym(Reg::Rax, "landing"); // PC32 — resolved at link… not here.
    let _ = asm;
    // Simpler: thunk jump-to-rax where rax = rdi (passed in).
    let mut asm = Asm::new();
    asm.mov_rr(Reg::Rax, Reg::Rdi);
    asm.call_label("thunk");
    asm.ret();
    asm.label("thunk");
    asm.call_label("do");
    asm.label("trap");
    asm.insn(adelie_isa::Insn::Pause);
    asm.insn(adelie_isa::Insn::Lfence);
    asm.jmp_label("trap");
    asm.label("do");
    asm.mov_store(adelie_isa::Mem::base(Reg::Rsp), Reg::Rax);
    asm.ret();
    // Target: a second blob returning 99.
    let mut target = Asm::new();
    target.mov_imm32(Reg::Rax, 99);
    target.ret();
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0x200_0000_0000);
    let tva = NEXT.fetch_add(0x10_0000, std::sync::atomic::Ordering::Relaxed);
    let tbytes = target.assemble().unwrap().bytes;
    kernel
        .space
        .map(tva, kernel.phys.alloc(), PteFlags::DATA)
        .unwrap();
    kernel
        .space
        .write_bytes(&kernel.phys, tva, &tbytes)
        .unwrap();
    kernel.space.protect(tva, PteFlags::TEXT).unwrap();
    // thunk "returns" into rax=tva, runs the target, whose ret pops the
    // original `call thunk` return address… which then falls to our ret.
    assert_eq!(run(&kernel, &asm, &[tva]), 99);
}
