//! Property tests for the instruction codec.

use adelie_isa::{decode, decode_all, encode, AluOp, Cond, Insn, Mem, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    prop_oneof![
        any::<i32>().prop_map(Mem::RipRel),
        (arb_reg(), any::<i32>()).prop_map(|(base, disp)| Mem::Base { base, disp }),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Sub),
        Just(AluOp::Xor),
        Just(AluOp::Cmp),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::B),
        Just(Cond::Ae),
        Just(Cond::E),
        Just(Cond::Ne),
        Just(Cond::Be),
        Just(Cond::A),
        Just(Cond::S),
        Just(Cond::Ns),
        Just(Cond::L),
        Just(Cond::Ge),
        Just(Cond::Le),
        Just(Cond::G),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Ret),
        Just(Insn::Int3),
        Just(Insn::Ud2),
        Just(Insn::Hlt),
        Just(Insn::Pause),
        Just(Insn::Lfence),
        any::<i32>().prop_map(Insn::CallRel),
        any::<i32>().prop_map(Insn::JmpRel),
        (arb_cond(), any::<i32>()).prop_map(|(c, d)| Insn::Jcc(c, d)),
        arb_reg().prop_map(Insn::CallReg),
        arb_reg().prop_map(Insn::JmpReg),
        arb_mem().prop_map(Insn::CallMem),
        arb_mem().prop_map(Insn::JmpMem),
        arb_reg().prop_map(Insn::Push),
        arb_reg().prop_map(Insn::Pop),
        (arb_reg(), any::<u64>()).prop_map(|(r, v)| Insn::MovImm64(r, v)),
        (arb_reg(), any::<i32>()).prop_map(|(r, v)| Insn::MovImm32(r, v)),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::MovRR { dst, src }),
        (arb_reg(), arb_mem()).prop_map(|(dst, src)| Insn::MovLoad { dst, src }),
        (arb_mem(), arb_reg()).prop_map(|(dst, src)| Insn::MovStore { dst, src }),
        (arb_reg(), arb_mem()).prop_map(|(dst, addr)| Insn::Lea { dst, addr }),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Insn::Alu { op, dst, src }),
        (arb_alu(), arb_reg(), any::<i32>()).prop_map(|(op, dst, imm)| Insn::AluImm {
            op,
            dst,
            imm
        }),
        (arb_alu(), arb_reg(), arb_mem()).prop_map(|(op, dst, src)| Insn::AluLoad { op, dst, src }),
        (arb_alu(), arb_mem(), arb_reg()).prop_map(|(op, dst, src)| Insn::AluStore {
            op,
            dst,
            src
        }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Test(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::Imul { dst, src }),
        (arb_reg(), 0u8..64).prop_map(|(r, n)| Insn::ShlImm(r, n)),
        (arb_reg(), 0u8..64).prop_map(|(r, n)| Insn::ShrImm(r, n)),
    ]
}

proptest! {
    /// encode → decode is the identity (up to the dual mov encoding,
    /// which canonicalises to the same variant).
    #[test]
    fn roundtrip(insn in arb_insn()) {
        let bytes = encode(&insn);
        let (dec, len) = decode(&bytes).expect("own encodings decode");
        prop_assert_eq!(len, bytes.len());
        prop_assert_eq!(dec.to_string(), insn.to_string());
    }

    /// The decoder never panics and never over-reads, no matter the
    /// input — gadget scanning feeds it every byte offset of a module.
    #[test]
    fn decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok((_, len)) = decode(&bytes) {
            prop_assert!(len <= bytes.len());
            prop_assert!(len > 0);
        }
    }

    /// Encoded instruction streams decode back to the same count.
    #[test]
    fn stream_roundtrip(insns in proptest::collection::vec(arb_insn(), 1..32)) {
        let mut bytes = Vec::new();
        for i in &insns {
            adelie_isa::encode_into(i, &mut bytes);
        }
        let stream = decode_all(&bytes).expect("stream decodes");
        prop_assert_eq!(stream.len(), insns.len());
        for ((_, dec), orig) in stream.iter().zip(&insns) {
            prop_assert_eq!(dec.to_string(), orig.to_string());
        }
    }

    /// Instruction lengths are within x86's 15-byte limit.
    #[test]
    fn length_bounded(insn in arb_insn()) {
        prop_assert!(encode(&insn).len() <= 15);
    }
}
