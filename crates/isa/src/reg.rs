//! General-purpose register model (the sixteen x86-64 GPRs).

use std::fmt;

/// A 64-bit general-purpose register.
///
/// The discriminants match the hardware register numbers used in ModRM/REX
/// encoding (`rax`=0 … `r15`=15).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The hardware encoding number (0–15).
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }

    /// The low three bits used in ModRM; the fourth bit goes into REX.
    #[inline]
    pub fn low3(self) -> u8 {
        self.index() & 0x7
    }

    /// Whether the register needs a REX extension bit (r8–r15).
    #[inline]
    pub fn is_extended(self) -> bool {
        self.index() >= 8
    }

    /// Look a register up by hardware number.
    ///
    /// Returns `None` for numbers above 15.
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(idx as usize).copied()
    }

    /// Conventional AT&T-style name (without the `%` sigil).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn extension_bit() {
        assert!(!Reg::Rdi.is_extended());
        assert!(Reg::R8.is_extended());
        assert_eq!(Reg::R11.low3(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::Rsp.to_string(), "rsp");
        assert_eq!(Reg::R15.to_string(), "r15");
    }
}
