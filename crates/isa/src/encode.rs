//! Instruction encoder — emits real x86-64 machine code for the subset.

#[cfg(test)]
use crate::{AluOp, Reg};
use crate::{Insn, Mem};

/// REX prefix builder. `w` selects 64-bit operand size, `r` extends the
/// ModRM `reg` field, `x` the SIB index (unused — we never encode an index
/// register), `b` the ModRM `rm` / opcode register field.
#[inline]
fn rex(w: bool, r: bool, x: bool, b: bool) -> u8 {
    0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b)
}

#[inline]
fn modrm(mode: u8, reg: u8, rm: u8) -> u8 {
    (mode << 6) | ((reg & 7) << 3) | (rm & 7)
}

/// Emit the ModRM (+ optional SIB + displacement) bytes for a memory
/// operand, with `reg_field` as the `/r` or `/digit` value.
fn put_mem(out: &mut Vec<u8>, reg_field: u8, mem: Mem) {
    match mem {
        Mem::RipRel(disp) => {
            out.push(modrm(0b00, reg_field, 0b101));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Mem::Base { base, disp } => {
            let rm = base.low3();
            let needs_sib = rm == 0b100; // rsp / r12
                                         // rbp / r13 with mod=00 would mean rip-relative, so force disp8.
            let force_disp8 = rm == 0b101 && disp == 0;
            if disp == 0 && !force_disp8 {
                out.push(modrm(0b00, reg_field, rm));
                if needs_sib {
                    out.push(0x24);
                }
            } else if i8::try_from(disp).is_ok() {
                out.push(modrm(0b01, reg_field, rm));
                if needs_sib {
                    out.push(0x24);
                }
                out.push(disp as i8 as u8);
            } else {
                out.push(modrm(0b10, reg_field, rm));
                if needs_sib {
                    out.push(0x24);
                }
                out.extend_from_slice(&disp.to_le_bytes());
            }
        }
    }
}

fn mem_base_ext(mem: Mem) -> bool {
    match mem {
        Mem::RipRel(_) => false,
        Mem::Base { base, .. } => base.is_extended(),
    }
}

/// Emit a REX prefix if any bit is needed; always emitted when `w` is set.
fn put_rex(out: &mut Vec<u8>, w: bool, r: bool, b: bool) {
    if w || r || b {
        out.push(rex(w, r, false, b));
    }
}

/// Encode `insn` by appending its bytes to `out`. Returns the number of
/// bytes emitted.
pub fn encode_into(insn: &Insn, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match *insn {
        Insn::Nop => out.push(0x90),
        Insn::Ret => out.push(0xC3),
        Insn::Int3 => out.push(0xCC),
        Insn::Ud2 => out.extend_from_slice(&[0x0F, 0x0B]),
        Insn::Hlt => out.push(0xF4),
        Insn::Pause => out.extend_from_slice(&[0xF3, 0x90]),
        Insn::Lfence => out.extend_from_slice(&[0x0F, 0xAE, 0xE8]),
        Insn::CallRel(d) => {
            out.push(0xE8);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Insn::JmpRel(d) => {
            out.push(0xE9);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Insn::Jcc(c, d) => {
            out.push(0x0F);
            out.push(0x80 | c.code());
            out.extend_from_slice(&d.to_le_bytes());
        }
        Insn::CallReg(r) => {
            put_rex(out, false, false, r.is_extended());
            out.push(0xFF);
            out.push(modrm(0b11, 2, r.low3()));
        }
        Insn::JmpReg(r) => {
            put_rex(out, false, false, r.is_extended());
            out.push(0xFF);
            out.push(modrm(0b11, 4, r.low3()));
        }
        Insn::CallMem(m) => {
            put_rex(out, false, false, mem_base_ext(m));
            out.push(0xFF);
            put_mem(out, 2, m);
        }
        Insn::JmpMem(m) => {
            put_rex(out, false, false, mem_base_ext(m));
            out.push(0xFF);
            put_mem(out, 4, m);
        }
        Insn::Push(r) => {
            put_rex(out, false, false, r.is_extended());
            out.push(0x50 + r.low3());
        }
        Insn::Pop(r) => {
            put_rex(out, false, false, r.is_extended());
            out.push(0x58 + r.low3());
        }
        Insn::MovImm64(r, v) => {
            out.push(rex(true, false, false, r.is_extended()));
            out.push(0xB8 + r.low3());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Insn::MovImm32(r, v) => {
            out.push(rex(true, false, false, r.is_extended()));
            out.push(0xC7);
            out.push(modrm(0b11, 0, r.low3()));
            out.extend_from_slice(&v.to_le_bytes());
        }
        Insn::MovRR { dst, src } => {
            out.push(rex(true, src.is_extended(), false, dst.is_extended()));
            out.push(0x89);
            out.push(modrm(0b11, src.low3(), dst.low3()));
        }
        Insn::MovLoad { dst, src } => {
            out.push(rex(true, dst.is_extended(), false, mem_base_ext(src)));
            out.push(0x8B);
            put_mem(out, dst.low3(), src);
        }
        Insn::MovStore { dst, src } => {
            out.push(rex(true, src.is_extended(), false, mem_base_ext(dst)));
            out.push(0x89);
            put_mem(out, src.low3(), dst);
        }
        Insn::Lea { dst, addr } => {
            out.push(rex(true, dst.is_extended(), false, mem_base_ext(addr)));
            out.push(0x8D);
            put_mem(out, dst.low3(), addr);
        }
        Insn::Alu { op, dst, src } => {
            out.push(rex(true, src.is_extended(), false, dst.is_extended()));
            out.push(op.mr_opcode());
            out.push(modrm(0b11, src.low3(), dst.low3()));
        }
        Insn::AluImm { op, dst, imm } => {
            out.push(rex(true, false, false, dst.is_extended()));
            out.push(0x81);
            out.push(modrm(0b11, op.imm_digit(), dst.low3()));
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::AluLoad { op, dst, src } => {
            out.push(rex(true, dst.is_extended(), false, mem_base_ext(src)));
            out.push(op.rm_opcode());
            put_mem(out, dst.low3(), src);
        }
        Insn::AluStore { op, dst, src } => {
            out.push(rex(true, src.is_extended(), false, mem_base_ext(dst)));
            out.push(op.mr_opcode());
            put_mem(out, src.low3(), dst);
        }
        Insn::Test(a, b) => {
            out.push(rex(true, b.is_extended(), false, a.is_extended()));
            out.push(0x85);
            out.push(modrm(0b11, b.low3(), a.low3()));
        }
        Insn::Imul { dst, src } => {
            out.push(rex(true, dst.is_extended(), false, src.is_extended()));
            out.push(0x0F);
            out.push(0xAF);
            out.push(modrm(0b11, dst.low3(), src.low3()));
        }
        Insn::ShlImm(r, n) => {
            out.push(rex(true, false, false, r.is_extended()));
            out.push(0xC1);
            out.push(modrm(0b11, 4, r.low3()));
            out.push(n);
        }
        Insn::ShrImm(r, n) => {
            out.push(rex(true, false, false, r.is_extended()));
            out.push(0xC1);
            out.push(modrm(0b11, 5, r.low3()));
            out.push(n);
        }
    }
    out.len() - start
}

/// Encode a single instruction into a fresh byte vector.
pub fn encode(insn: &Insn) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    encode_into(insn, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn got_call_is_six_bytes() {
        // The paper's patch math relies on `call *foo@GOTPCREL(%rip)` being
        // exactly one byte longer than `call foo` (Fig. 4: pad with nop).
        let indirect = encode(&Insn::CallMem(Mem::RipRel(0x1234)));
        assert_eq!(indirect, vec![0xFF, 0x15, 0x34, 0x12, 0x00, 0x00]);
        let direct = encode(&Insn::CallRel(0x1234));
        assert_eq!(direct.len() + 1, indirect.len());
        assert_eq!(direct[0], 0xE8);
    }

    #[test]
    fn got_load_and_lea_same_length() {
        // `mov foo@GOTPCREL(%rip), %r` and `lea foo(%rip), %r` differ only
        // in the opcode byte (8B vs 8D) — the in-place patch from Fig. 4.
        let mov = encode(&Insn::MovLoad {
            dst: Reg::R11,
            src: Mem::RipRel(0x10),
        });
        let lea = encode(&Insn::Lea {
            dst: Reg::R11,
            addr: Mem::RipRel(0x10),
        });
        assert_eq!(mov.len(), lea.len());
        assert_eq!(mov[0], lea[0]); // same REX
        assert_eq!(mov[1], 0x8B);
        assert_eq!(lea[1], 0x8D);
        assert_eq!(mov[2..], lea[2..]);
    }

    #[test]
    fn known_encodings() {
        assert_eq!(encode(&Insn::Ret), vec![0xC3]);
        assert_eq!(encode(&Insn::Push(Reg::Rbp)), vec![0x55]);
        assert_eq!(encode(&Insn::Push(Reg::R11)), vec![0x41, 0x53]);
        assert_eq!(encode(&Insn::Pop(Reg::Rax)), vec![0x58]);
        // xor [rsp], r11 — the return-address encryption instruction.
        assert_eq!(
            encode(&Insn::AluStore {
                op: AluOp::Xor,
                dst: Mem::base(Reg::Rsp),
                src: Reg::R11
            }),
            vec![0x4C, 0x31, 0x1C, 0x24]
        );
        // xor [rsp+8], rbp — the static-function variant (Fig. 3b).
        assert_eq!(
            encode(&Insn::AluStore {
                op: AluOp::Xor,
                dst: Mem::base_disp(Reg::Rsp, 8),
                src: Reg::Rbp
            }),
            vec![0x48, 0x31, 0x6C, 0x24, 0x08]
        );
        assert_eq!(
            encode(&Insn::MovRR {
                dst: Reg::Rbp,
                src: Reg::Rsp
            }),
            vec![0x48, 0x89, 0xE5]
        );
        assert_eq!(encode(&Insn::CallReg(Reg::Rax)), vec![0xFF, 0xD0]);
        assert_eq!(encode(&Insn::JmpReg(Reg::Rax)), vec![0xFF, 0xE0]);
        assert_eq!(encode(&Insn::Pause), vec![0xF3, 0x90]);
        assert_eq!(encode(&Insn::Lfence), vec![0x0F, 0xAE, 0xE8]);
    }

    #[test]
    fn rbp_base_needs_disp8() {
        // [rbp] must encode as [rbp+0] (mod=01) — mod=00/rm=101 is RIP-rel.
        let b = encode(&Insn::MovLoad {
            dst: Reg::Rax,
            src: Mem::base(Reg::Rbp),
        });
        assert_eq!(b, vec![0x48, 0x8B, 0x45, 0x00]);
        // Same for r13.
        let b = encode(&Insn::MovLoad {
            dst: Reg::Rax,
            src: Mem::base(Reg::R13),
        });
        assert_eq!(b, vec![0x49, 0x8B, 0x45, 0x00]);
    }

    #[test]
    fn r12_base_needs_sib() {
        let b = encode(&Insn::MovLoad {
            dst: Reg::Rax,
            src: Mem::base(Reg::R12),
        });
        assert_eq!(b, vec![0x49, 0x8B, 0x04, 0x24]);
    }

    #[test]
    fn disp32_form() {
        let b = encode(&Insn::MovStore {
            dst: Mem::base_disp(Reg::Rdi, 0x1000),
            src: Reg::Rsi,
        });
        assert_eq!(b, vec![0x48, 0x89, 0xB7, 0x00, 0x10, 0x00, 0x00]);
    }
}
