//! # adelie-isa — x86-64 subset instruction set
//!
//! Adelie's mechanisms (run-time relocation patching, GOT/PLT indirection,
//! return-address encryption, Ropper-style gadget scanning) are all
//! *byte-level* phenomena. This crate models the subset of x86-64 that the
//! Adelie paper's code transformations touch, using the **real x86-64
//! encodings** so that:
//!
//! * the Figure-4 run-time patches are byte-faithful
//!   (`call *foo@GOTPCREL(%rip)` = `FF 15 disp32` → `call foo; nop` =
//!   `E8 rel32; 90`, and `mov foo@GOTPCREL(%rip), %r` → `lea foo(%rip), %r`
//!   is the single-opcode-byte `8B` → `8D` rewrite real linkers perform),
//! * gadget scanning over module text behaves like scanning a real `.ko`:
//!   instruction density, mis-aligned decode, and `C3` (ret) byte frequency
//!   all carry over.
//!
//! The crate has three layers:
//!
//! * [`Reg`], [`Mem`], [`Insn`] — the instruction structure,
//! * [`encode`] / [`decode`] — byte-level codec,
//! * [`Asm`] — a small assembler with labels and symbolic operands that
//!   lowers to bytes plus [`Fixup`]s (the relocation requests consumed by
//!   `adelie-obj`).
//!
//! # Example
//!
//! ```
//! use adelie_isa::{Asm, Reg, AluOp};
//!
//! let mut a = Asm::new();
//! a.mov_imm32(Reg::Rax, 1);
//! a.alu_imm(AluOp::Add, Reg::Rax, 41);
//! a.ret();
//! let out = a.assemble().expect("labels resolve");
//! assert!(out.fixups.is_empty());
//! assert_eq!(*out.bytes.last().unwrap(), 0xC3); // ret
//! ```

mod asm;
mod decode;
mod encode;
mod insn;
mod reg;

pub use asm::{Asm, AsmError, AsmOutput, Fixup, FixupKind};
pub use decode::{decode, decode_all, DecodeError};
pub use encode::{encode, encode_into};
pub use insn::{AluOp, Cond, Insn, Mem};
pub use reg::Reg;

/// System-V argument registers, in order (`rdi, rsi, rdx, rcx, r8, r9`).
pub const ARG_REGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];
