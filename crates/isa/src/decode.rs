//! Instruction decoder.
//!
//! The decoder is deliberately tolerant of being pointed at *arbitrary*
//! offsets: gadget scanning (paper §6, Fig. 10) decodes from every byte
//! offset in a text section, most of which are not instruction boundaries.
//! Anything that is not a valid encoding of the supported subset yields
//! [`DecodeError::Unknown`] rather than a panic.

use crate::{AluOp, Cond, Insn, Mem, Reg};
use std::fmt;

/// Why a byte sequence failed to decode.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The bytes do not form an instruction in the supported subset.
    Unknown,
    /// The instruction is truncated (ran off the end of the buffer).
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Unknown => write!(f, "unknown or unsupported encoding"),
            DecodeError::Truncated => write!(f, "truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
}

struct Rex {
    w: bool,
    r: bool,
    b: bool,
}

impl Rex {
    const NONE: Rex = Rex {
        w: false,
        r: false,
        b: false,
    };
}

/// Decoded ModRM operand: either a register or a memory reference.
enum Rm {
    Reg(Reg),
    Mem(Mem),
}

/// Parse ModRM (+SIB+disp). Returns `(reg_field_value, rm_operand)`.
fn parse_modrm(cur: &mut Cursor<'_>, rex: &Rex) -> Result<(u8, Rm), DecodeError> {
    let m = cur.u8()?;
    let mode = m >> 6;
    let reg_field = ((m >> 3) & 7) | (u8::from(rex.r) << 3);
    let rm_low = m & 7;
    if mode == 0b11 {
        let reg = Reg::from_index(rm_low | (u8::from(rex.b) << 3)).unwrap();
        return Ok((reg_field, Rm::Reg(reg)));
    }
    // Memory forms.
    if mode == 0b00 && rm_low == 0b101 {
        // RIP-relative.
        let disp = cur.i32()?;
        return Ok((reg_field, Rm::Mem(Mem::RipRel(disp))));
    }
    let base = if rm_low == 0b100 {
        // SIB byte; we only support the "no index" form (index=100).
        let sib = cur.u8()?;
        if (sib >> 6) != 0 || ((sib >> 3) & 7) != 0b100 {
            return Err(DecodeError::Unknown);
        }
        let base_low = sib & 7;
        if mode == 0b00 && base_low == 0b101 {
            // disp32 with no base — unsupported.
            return Err(DecodeError::Unknown);
        }
        Reg::from_index(base_low | (u8::from(rex.b) << 3)).unwrap()
    } else {
        Reg::from_index(rm_low | (u8::from(rex.b) << 3)).unwrap()
    };
    let disp = match mode {
        0b00 => 0,
        0b01 => cur.u8()? as i8 as i32,
        0b10 => cur.i32()?,
        _ => unreachable!(),
    };
    Ok((reg_field, Rm::Mem(Mem::Base { base, disp })))
}

fn reg_of(field: u8) -> Reg {
    Reg::from_index(field).expect("4-bit register field")
}

/// Decode one instruction from the start of `bytes`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// [`DecodeError::Unknown`] if the bytes are not in the supported subset,
/// [`DecodeError::Truncated`] if the buffer ends mid-instruction.
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    let mut cur = Cursor { bytes, pos: 0 };
    let mut b = cur.u8()?;

    // F3 prefix: only `pause` (F3 90) in our subset.
    if b == 0xF3 {
        return if cur.u8()? == 0x90 {
            Ok((Insn::Pause, cur.pos))
        } else {
            Err(DecodeError::Unknown)
        };
    }

    let mut rex = Rex::NONE;
    if (0x40..=0x4F).contains(&b) {
        rex = Rex {
            w: b & 8 != 0,
            r: b & 4 != 0,
            b: b & 1 != 0,
        };
        if b & 2 != 0 {
            // REX.X — we never encode an index register.
            return Err(DecodeError::Unknown);
        }
        b = cur.u8()?;
    }

    let insn = match b {
        0x90 => Insn::Nop,
        0xC3 => Insn::Ret,
        0xCC => Insn::Int3,
        0xF4 => Insn::Hlt,
        0xE8 => Insn::CallRel(cur.i32()?),
        0xE9 => Insn::JmpRel(cur.i32()?),
        0x0F => {
            let b2 = cur.u8()?;
            match b2 {
                0x0B => Insn::Ud2,
                0xAE if cur.u8()? == 0xE8 => Insn::Lfence,
                0xAF => {
                    if !rex.w {
                        return Err(DecodeError::Unknown);
                    }
                    let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
                    match rm {
                        Rm::Reg(src) => Insn::Imul {
                            dst: reg_of(reg_field),
                            src,
                        },
                        Rm::Mem(_) => return Err(DecodeError::Unknown),
                    }
                }
                0x80..=0x8F => {
                    let cond = Cond::from_code(b2 & 0xF).ok_or(DecodeError::Unknown)?;
                    Insn::Jcc(cond, cur.i32()?)
                }
                _ => return Err(DecodeError::Unknown),
            }
        }
        0x50..=0x57 => Insn::Push(reg_of((b - 0x50) | (u8::from(rex.b) << 3))),
        0x58..=0x5F => Insn::Pop(reg_of((b - 0x58) | (u8::from(rex.b) << 3))),
        0xB8..=0xBF if rex.w => {
            Insn::MovImm64(reg_of((b - 0xB8) | (u8::from(rex.b) << 3)), cur.u64()?)
        }
        0xC7 if rex.w => {
            let (digit, rm) = parse_modrm(&mut cur, &rex)?;
            if digit & 7 != 0 {
                return Err(DecodeError::Unknown);
            }
            match rm {
                Rm::Reg(r) => Insn::MovImm32(r, cur.i32()?),
                Rm::Mem(_) => return Err(DecodeError::Unknown),
            }
        }
        0x89 if rex.w => {
            let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
            let src = reg_of(reg_field);
            match rm {
                Rm::Reg(dst) => Insn::MovRR { dst, src },
                Rm::Mem(dst) => Insn::MovStore { dst, src },
            }
        }
        0x8B if rex.w => {
            let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
            let dst = reg_of(reg_field);
            match rm {
                // 8B with a register operand is the alternate encoding of
                // `mov dst, src`; canonicalise to the same MovRR variant.
                Rm::Reg(src) => Insn::MovRR { dst, src },
                Rm::Mem(src) => Insn::MovLoad { dst, src },
            }
        }
        0x8D if rex.w => {
            let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
            match rm {
                Rm::Mem(addr) => Insn::Lea {
                    dst: reg_of(reg_field),
                    addr,
                },
                Rm::Reg(_) => return Err(DecodeError::Unknown),
            }
        }
        0x85 if rex.w => {
            let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
            match rm {
                Rm::Reg(a) => Insn::Test(a, reg_of(reg_field)),
                Rm::Mem(_) => return Err(DecodeError::Unknown),
            }
        }
        0x81 if rex.w => {
            let (digit, rm) = parse_modrm(&mut cur, &rex)?;
            let op = AluOp::from_imm_digit(digit & 7).ok_or(DecodeError::Unknown)?;
            match rm {
                Rm::Reg(dst) => Insn::AluImm {
                    op,
                    dst,
                    imm: cur.i32()?,
                },
                Rm::Mem(_) => return Err(DecodeError::Unknown),
            }
        }
        0xC1 if rex.w => {
            let (digit, rm) = parse_modrm(&mut cur, &rex)?;
            let r = match rm {
                Rm::Reg(r) => r,
                Rm::Mem(_) => return Err(DecodeError::Unknown),
            };
            let n = cur.u8()?;
            match digit & 7 {
                4 => Insn::ShlImm(r, n),
                5 => Insn::ShrImm(r, n),
                _ => return Err(DecodeError::Unknown),
            }
        }
        0xFF => {
            let (digit, rm) = parse_modrm(&mut cur, &rex)?;
            match (digit & 7, rm) {
                (2, Rm::Reg(r)) => Insn::CallReg(r),
                (2, Rm::Mem(m)) => Insn::CallMem(m),
                (4, Rm::Reg(r)) => Insn::JmpReg(r),
                (4, Rm::Mem(m)) => Insn::JmpMem(m),
                _ => return Err(DecodeError::Unknown),
            }
        }
        op if rex.w && AluOp::from_mr_opcode(op).is_some() => {
            let alu = AluOp::from_mr_opcode(op).unwrap();
            let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
            let src = reg_of(reg_field);
            match rm {
                Rm::Reg(dst) => Insn::Alu { op: alu, dst, src },
                Rm::Mem(dst) => Insn::AluStore { op: alu, dst, src },
            }
        }
        op if rex.w && AluOp::from_rm_opcode(op).is_some() => {
            let alu = AluOp::from_rm_opcode(op).unwrap();
            let (reg_field, rm) = parse_modrm(&mut cur, &rex)?;
            let dst = reg_of(reg_field);
            match rm {
                Rm::Reg(_) => return Err(DecodeError::Unknown), // encoder uses MR form
                Rm::Mem(src) => Insn::AluLoad { op: alu, dst, src },
            }
        }
        _ => return Err(DecodeError::Unknown),
    };
    Ok((insn, cur.pos))
}

/// Decode a linear instruction stream until the buffer is exhausted.
///
/// # Errors
///
/// Propagates the first decode failure together with its offset.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<(usize, Insn)>, (usize, DecodeError)> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        let (insn, len) = decode(&bytes[off..]).map_err(|e| (off, e))?;
        out.push((off, insn));
        off += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    fn roundtrip(insn: Insn) {
        let bytes = encode(&insn);
        let (dec, len) = decode(&bytes).unwrap_or_else(|e| panic!("{insn}: {e}"));
        assert_eq!(len, bytes.len(), "{insn}");
        // `mov r, r` has two encodings (89/8B); the decoder canonicalises
        // the 8B register form back into MovRR, so compare display text.
        assert_eq!(dec.to_string(), insn.to_string());
    }

    #[test]
    fn roundtrip_all_shapes() {
        use crate::{AluOp::*, Cond, Mem, Reg::*};
        let mems = [
            Mem::RipRel(0x1000),
            Mem::RipRel(-8),
            Mem::base(Rsp),
            Mem::base(Rbp),
            Mem::base(R12),
            Mem::base(R13),
            Mem::base_disp(Rdi, 8),
            Mem::base_disp(Rsi, -0x200),
            Mem::base_disp(Rsp, 0x48),
        ];
        let mut cases = vec![
            Insn::Nop,
            Insn::Ret,
            Insn::Int3,
            Insn::Ud2,
            Insn::Hlt,
            Insn::Pause,
            Insn::Lfence,
            Insn::CallRel(-5),
            Insn::JmpRel(0x400),
            Insn::Jcc(Cond::Ne, 16),
            Insn::Jcc(Cond::G, -32),
            Insn::CallReg(Rax),
            Insn::CallReg(R11),
            Insn::JmpReg(R15),
            Insn::Push(Rbp),
            Insn::Push(R9),
            Insn::Pop(Rdi),
            Insn::Pop(R14),
            Insn::MovImm64(Rax, 0xdead_beef_cafe_f00d),
            Insn::MovImm64(R10, 1),
            Insn::MovImm32(Rcx, -1),
            Insn::MovRR { dst: Rbp, src: Rsp },
            Insn::MovRR { dst: R8, src: R15 },
            Insn::Test(Rax, Rax),
            Insn::Imul { dst: Rdx, src: R9 },
            Insn::ShlImm(Rax, 12),
            Insn::ShrImm(R11, 3),
            Insn::AluImm {
                op: Add,
                dst: Rsp,
                imm: 0x40,
            },
            Insn::AluImm {
                op: Cmp,
                dst: R12,
                imm: -7,
            },
            Insn::Alu {
                op: Xor,
                dst: R11,
                src: R11,
            },
            Insn::Alu {
                op: Sub,
                dst: Rax,
                src: Rbx,
            },
        ];
        for m in mems {
            cases.push(Insn::CallMem(m));
            cases.push(Insn::JmpMem(m));
            cases.push(Insn::MovLoad { dst: R11, src: m });
            cases.push(Insn::MovStore { dst: m, src: Rdx });
            cases.push(Insn::Lea { dst: Rsi, addr: m });
            cases.push(Insn::AluLoad {
                op: Xor,
                dst: Rax,
                src: m,
            });
            cases.push(Insn::AluStore {
                op: Xor,
                dst: m,
                src: R11,
            });
        }
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn garbage_does_not_panic() {
        for b in 0u8..=255 {
            let _ = decode(&[b]);
            let _ = decode(&[0x48, b]);
            let _ = decode(&[b, 0x00, 0x11, 0x22, 0x33, 0x44]);
        }
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0xE8, 0x01]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_all_stream() {
        let mut bytes = Vec::new();
        for i in [Insn::Push(Reg::Rbp), Insn::Nop, Insn::Ret] {
            crate::encode_into(&i, &mut bytes);
        }
        let stream = decode_all(&bytes).unwrap();
        assert_eq!(stream.len(), 3);
        assert_eq!(stream[2].1, Insn::Ret);
    }

    #[test]
    fn misaligned_decode_finds_hidden_gadget() {
        // Classic ROP trick: the imm64 of a movabs can contain `C3`.
        let bytes = encode(&Insn::MovImm64(Reg::Rax, 0xC3));
        // Offset 2 = start of the immediate → decodes as `ret`.
        let (insn, _) = decode(&bytes[2..]).unwrap();
        assert_eq!(insn, Insn::Ret);
    }
}
