//! Instruction structure: memory operands, ALU ops, conditions, and the
//! [`Insn`] enum itself.

use crate::Reg;
use std::fmt;

/// A memory operand.
///
/// Only the two addressing modes the Adelie transformations need are
/// modelled: RIP-relative (the position-independent mode everything in the
/// paper revolves around) and base-register + displacement (stack and
/// structure accesses).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mem {
    /// `[rip + disp32]` — position-independent reference.
    RipRel(i32),
    /// `[base + disp]` — register-relative reference.
    Base { base: Reg, disp: i32 },
}

impl Mem {
    /// `[reg]` with no displacement.
    pub fn base(base: Reg) -> Mem {
        Mem::Base { base, disp: 0 }
    }

    /// `[reg + disp]`.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem::Base { base, disp }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mem::RipRel(d) => write!(f, "[rip{d:+#x}]"),
            Mem::Base { base, disp: 0 } => write!(f, "[{base}]"),
            Mem::Base { base, disp } => write!(f, "[{base}{disp:+#x}]"),
        }
    }
}

/// Two-operand ALU operations (64-bit forms).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    Add,
    Or,
    And,
    Sub,
    Xor,
    Cmp,
}

impl AluOp {
    /// The `/digit` used in the `81 /n` immediate group.
    pub(crate) fn imm_digit(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Or => 1,
            AluOp::And => 4,
            AluOp::Sub => 5,
            AluOp::Xor => 6,
            AluOp::Cmp => 7,
        }
    }

    pub(crate) fn from_imm_digit(d: u8) -> Option<AluOp> {
        Some(match d {
            0 => AluOp::Add,
            1 => AluOp::Or,
            4 => AluOp::And,
            5 => AluOp::Sub,
            6 => AluOp::Xor,
            7 => AluOp::Cmp,
            _ => return None,
        })
    }

    /// The MR-form (`op r/m64, r64`) opcode byte.
    pub(crate) fn mr_opcode(self) -> u8 {
        match self {
            AluOp::Add => 0x01,
            AluOp::Or => 0x09,
            AluOp::And => 0x21,
            AluOp::Sub => 0x29,
            AluOp::Xor => 0x31,
            AluOp::Cmp => 0x39,
        }
    }

    pub(crate) fn from_mr_opcode(op: u8) -> Option<AluOp> {
        Some(match op {
            0x01 => AluOp::Add,
            0x09 => AluOp::Or,
            0x21 => AluOp::And,
            0x29 => AluOp::Sub,
            0x31 => AluOp::Xor,
            0x39 => AluOp::Cmp,
            _ => return None,
        })
    }

    /// The RM-form (`op r64, r/m64`) opcode byte.
    pub(crate) fn rm_opcode(self) -> u8 {
        self.mr_opcode() + 2
    }

    pub(crate) fn from_rm_opcode(op: u8) -> Option<AluOp> {
        op.checked_sub(2).and_then(AluOp::from_mr_opcode)
    }

    /// Mnemonic text.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Branch conditions (the `Jcc` family), with hardware condition-code
/// nibbles matching the `0F 8x` encodings.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cond {
    /// Below (unsigned `<`), CF=1.
    B = 0x2,
    /// Above-or-equal (unsigned `>=`), CF=0.
    Ae = 0x3,
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Below-or-equal (unsigned `<=`).
    Be = 0x6,
    /// Above (unsigned `>`).
    A = 0x7,
    /// Sign (negative).
    S = 0x8,
    /// No sign.
    Ns = 0x9,
    /// Less (signed `<`).
    L = 0xC,
    /// Greater-or-equal (signed `>=`).
    Ge = 0xD,
    /// Less-or-equal (signed `<=`).
    Le = 0xE,
    /// Greater (signed `>`).
    G = 0xF,
}

impl Cond {
    pub(crate) fn code(self) -> u8 {
        self as u8
    }

    pub(crate) fn from_code(c: u8) -> Option<Cond> {
        Some(match c {
            0x2 => Cond::B,
            0x3 => Cond::Ae,
            0x4 => Cond::E,
            0x5 => Cond::Ne,
            0x6 => Cond::Be,
            0x7 => Cond::A,
            0x8 => Cond::S,
            0x9 => Cond::Ns,
            0xC => Cond::L,
            0xD => Cond::Ge,
            0xE => Cond::Le,
            0xF => Cond::G,
            _ => return None,
        })
    }

    /// Mnemonic suffix (`e` in `je`).
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }
}

/// A decoded (or to-be-encoded) instruction.
///
/// Every variant corresponds to a concrete x86-64 encoding; see
/// [`crate::encode`] for the byte forms. Relative branch displacements are
/// measured from the **end** of the instruction, exactly like hardware.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    /// `90`.
    Nop,
    /// `C3` — the gadget terminator.
    Ret,
    /// `CC` — breakpoint (used as a trap-on-execute filler).
    Int3,
    /// `0F 0B` — invalid-opcode trap.
    Ud2,
    /// `F4` — halt (interpreter stop marker in some tests).
    Hlt,
    /// `F3 90` — spin-loop hint inside retpoline speculation traps.
    Pause,
    /// `0F AE E8` — load fence inside retpoline speculation traps.
    Lfence,
    /// `E8 rel32` — direct near call.
    CallRel(i32),
    /// `E9 rel32` — direct near jump.
    JmpRel(i32),
    /// `0F 8x rel32` — conditional jump.
    Jcc(Cond, i32),
    /// `FF /2` with register operand — indirect call through a register.
    CallReg(Reg),
    /// `FF /4` with register operand — indirect jump through a register.
    JmpReg(Reg),
    /// `FF /2` with memory operand — e.g. `call *foo@GOTPCREL(%rip)`.
    CallMem(Mem),
    /// `FF /4` with memory operand — e.g. `jmp *foo@GOTPCREL(%rip)`.
    JmpMem(Mem),
    /// `50+r`.
    Push(Reg),
    /// `58+r`.
    Pop(Reg),
    /// `REX.W B8+r imm64` — `movabs`.
    MovImm64(Reg, u64),
    /// `REX.W C7 /0 imm32` — sign-extended 32-bit immediate move.
    MovImm32(Reg, i32),
    /// `REX.W 89 /r` — `mov dst, src` (dst ← src), register form.
    MovRR { dst: Reg, src: Reg },
    /// `REX.W 8B /r` — load: `mov dst, [mem]`.
    MovLoad { dst: Reg, src: Mem },
    /// `REX.W 89 /r` — store: `mov [mem], src`.
    MovStore { dst: Mem, src: Reg },
    /// `REX.W 8D /r` — `lea dst, [mem]`.
    Lea { dst: Reg, addr: Mem },
    /// MR-form ALU: `op dst, src` on registers.
    Alu { op: AluOp, dst: Reg, src: Reg },
    /// `REX.W 81 /n imm32` — ALU with immediate.
    AluImm { op: AluOp, dst: Reg, imm: i32 },
    /// RM-form ALU with memory source: `op dst, [mem]`.
    AluLoad { op: AluOp, dst: Reg, src: Mem },
    /// MR-form ALU with memory destination: `op [mem], src`
    /// (return-address encryption is `xor [rsp], key_reg`).
    AluStore { op: AluOp, dst: Mem, src: Reg },
    /// `REX.W 85 /r` — `test dst, src`.
    Test(Reg, Reg),
    /// `REX.W 0F AF /r` — `imul dst, src`.
    Imul { dst: Reg, src: Reg },
    /// `REX.W C1 /4 imm8` — shift left.
    ShlImm(Reg, u8),
    /// `REX.W C1 /5 imm8` — logical shift right.
    ShrImm(Reg, u8),
}

impl Insn {
    /// Whether this instruction ends a basic block unconditionally.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Ret | Insn::JmpRel(_) | Insn::JmpReg(_) | Insn::JmpMem(_) | Insn::Hlt | Insn::Ud2
        )
    }

    /// Whether this is an indirect control transfer (ROP/JOP pivot point).
    pub fn is_indirect_branch(&self) -> bool {
        matches!(
            self,
            Insn::CallReg(_) | Insn::JmpReg(_) | Insn::CallMem(_) | Insn::JmpMem(_)
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Nop => write!(f, "nop"),
            Insn::Ret => write!(f, "ret"),
            Insn::Int3 => write!(f, "int3"),
            Insn::Ud2 => write!(f, "ud2"),
            Insn::Hlt => write!(f, "hlt"),
            Insn::Pause => write!(f, "pause"),
            Insn::Lfence => write!(f, "lfence"),
            Insn::CallRel(d) => write!(f, "call {d:+#x}"),
            Insn::JmpRel(d) => write!(f, "jmp {d:+#x}"),
            Insn::Jcc(c, d) => write!(f, "j{} {d:+#x}", c.suffix()),
            Insn::CallReg(r) => write!(f, "call {r}"),
            Insn::JmpReg(r) => write!(f, "jmp {r}"),
            Insn::CallMem(m) => write!(f, "call {m}"),
            Insn::JmpMem(m) => write!(f, "jmp {m}"),
            Insn::Push(r) => write!(f, "push {r}"),
            Insn::Pop(r) => write!(f, "pop {r}"),
            Insn::MovImm64(r, v) => write!(f, "movabs {r}, {v:#x}"),
            Insn::MovImm32(r, v) => write!(f, "mov {r}, {v:#x}"),
            Insn::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::MovLoad { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::MovStore { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Insn::Alu { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Insn::AluImm { op, dst, imm } => write!(f, "{op} {dst}, {imm:#x}"),
            Insn::AluLoad { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Insn::AluStore { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Insn::Test(a, b) => write!(f, "test {a}, {b}"),
            Insn::Imul { dst, src } => write!(f, "imul {dst}, {src}"),
            Insn::ShlImm(r, n) => write!(f, "shl {r}, {n}"),
            Insn::ShrImm(r, n) => write!(f, "shr {r}, {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_codes_roundtrip() {
        for c in [
            Cond::B,
            Cond::Ae,
            Cond::E,
            Cond::Ne,
            Cond::Be,
            Cond::A,
            Cond::S,
            Cond::Ns,
            Cond::L,
            Cond::Ge,
            Cond::Le,
            Cond::G,
        ] {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(0x0), None);
    }

    #[test]
    fn alu_opcode_tables_roundtrip() {
        for op in [
            AluOp::Add,
            AluOp::Or,
            AluOp::And,
            AluOp::Sub,
            AluOp::Xor,
            AluOp::Cmp,
        ] {
            assert_eq!(AluOp::from_mr_opcode(op.mr_opcode()), Some(op));
            assert_eq!(AluOp::from_rm_opcode(op.rm_opcode()), Some(op));
            assert_eq!(AluOp::from_imm_digit(op.imm_digit()), Some(op));
        }
    }

    #[test]
    fn terminators() {
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::JmpReg(Reg::Rax).is_terminator());
        assert!(!Insn::CallReg(Reg::Rax).is_terminator());
        assert!(Insn::CallMem(Mem::RipRel(4)).is_indirect_branch());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Insn::Push(Reg::Rbp).to_string(), "push rbp");
        assert_eq!(
            Insn::MovLoad {
                dst: Reg::R11,
                src: Mem::RipRel(0x10)
            }
            .to_string(),
            "mov r11, [rip+0x10]"
        );
        assert_eq!(
            Insn::AluStore {
                op: AluOp::Xor,
                dst: Mem::base(Reg::Rsp),
                src: Reg::R11
            }
            .to_string(),
            "xor [rsp], r11"
        );
    }
}
