//! A two-pass assembler with labels and symbolic operands.
//!
//! The assembler lowers to concrete bytes plus [`Fixup`]s — relocation
//! requests against named symbols that `adelie-obj` turns into section
//! relocations and the loader finalises at run time (exactly the paper's
//! "relocatable format adapted for PIC", §4.1).

use crate::AluOp;
use crate::{encode_into, Cond, Insn, Mem, Reg};
use std::collections::HashMap;
use std::fmt;

/// The relocation kinds our object format supports — a subset of the
/// x86-64 psABI relocations Linux modules actually use.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FixupKind {
    /// `R_X86_64_PC32`: `S + A - P` into a 32-bit field.
    Pc32,
    /// `R_X86_64_PLT32`: like PC32 but the linker may route through a PLT
    /// stub (used in retpoline mode, paper §4.1).
    Plt32,
    /// `R_X86_64_GOTPCREL`: `GOT(S) + A - P` — RIP-relative reference to
    /// the symbol's GOT slot.
    GotPcRel,
    /// `R_X86_64_64`: absolute 64-bit address (data, or legacy movabs).
    Abs64,
    /// `R_X86_64_32S`: absolute sign-extended 32-bit — only valid when the
    /// target lives in the legacy ±2 GB module region (the vanilla-Linux
    /// baseline; this is precisely the constraint PIC removes).
    Abs32S,
}

impl fmt::Display for FixupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FixupKind::Pc32 => "PC32",
            FixupKind::Plt32 => "PLT32",
            FixupKind::GotPcRel => "GOTPCREL",
            FixupKind::Abs64 => "ABS64",
            FixupKind::Abs32S => "ABS32S",
        };
        f.write_str(s)
    }
}

/// A relocation request produced by the assembler.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fixup {
    /// Byte offset of the *field* within the assembled output.
    pub offset: usize,
    /// Relocation kind.
    pub kind: FixupKind,
    /// Target symbol name.
    pub symbol: String,
    /// Addend (`-4` for PC-relative fields whose value is measured from
    /// the end of the field, per the psABI convention).
    pub addend: i64,
}

/// Result of assembling: bytes, outstanding fixups, and label offsets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AsmOutput {
    /// Raw machine code (fixup fields still hold zeros).
    pub bytes: Vec<u8>,
    /// Relocation requests to be resolved by the linker/loader.
    pub fixups: Vec<Fixup>,
    /// Offsets of every label defined in the stream.
    pub labels: HashMap<String, usize>,
}

/// Errors surfaced by [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch references a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Clone, Debug)]
enum Item {
    Insn(Insn),
    Bytes(Vec<u8>),
    Label(String),
    JmpLabel(String),
    JccLabel(Cond, String),
    CallLabel(String),
    /// `call sym` → `E8 rel32` + PLT32 (retpoline PIC) or PC32 (non-PIC).
    CallSymRel(String, FixupKind),
    /// `call *sym@GOTPCREL(%rip)` → `FF 15 disp32` + GOTPCREL.
    CallGot(String),
    /// `jmp *sym@GOTPCREL(%rip)` → `FF 25 disp32` + GOTPCREL.
    JmpGot(String),
    /// `mov reg, sym@GOTPCREL(%rip)` → GOT slot load.
    LoadGot(Reg, String),
    /// `lea reg, sym(%rip)` → PC32.
    LeaSym(Reg, String),
    /// `movabs reg, $sym` → ABS64 (legacy/non-PIC only).
    MovAbsSym(Reg, String),
    /// `mov reg, $sym` 32-bit sign-extended → ABS32S (legacy/non-PIC only).
    MovImmSym32(Reg, String),
    /// 8 bytes of data holding the absolute address of `sym`.
    QuadSym(String),
}

fn item_len(item: &Item, scratch: &mut Vec<u8>) -> usize {
    match item {
        Item::Insn(i) => {
            scratch.clear();
            encode_into(i, scratch)
        }
        Item::Bytes(b) => b.len(),
        Item::Label(_) => 0,
        Item::JmpLabel(_) => 5,
        Item::JccLabel(..) => 6,
        Item::CallLabel(_) | Item::CallSymRel(..) => 5,
        Item::CallGot(_) | Item::JmpGot(_) => 6,
        Item::LoadGot(..) | Item::LeaSym(..) => 7,
        Item::MovAbsSym(..) => 10,
        Item::MovImmSym32(..) => 7,
        Item::QuadSym(_) => 8,
    }
}

/// The assembler. Instructions are appended through the builder methods;
/// [`Asm::assemble`] resolves labels in a second pass.
///
/// # Example
///
/// ```
/// use adelie_isa::{Asm, Reg, AluOp, Cond};
///
/// let mut a = Asm::new();
/// a.mov_imm32(Reg::Rax, 0);
/// a.label("loop");
/// a.alu_imm(AluOp::Add, Reg::Rax, 1);
/// a.alu_imm(AluOp::Cmp, Reg::Rax, 10);
/// a.jcc_label(Cond::Ne, "loop");
/// a.ret();
/// let out = a.assemble()?;
/// assert!(out.bytes.len() > 10);
/// # Ok::<(), adelie_isa::AsmError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
}

impl Asm {
    /// Create an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Append a concrete instruction.
    pub fn insn(&mut self, i: Insn) -> &mut Self {
        self.items.push(Item::Insn(i));
        self
    }

    /// Append raw bytes (data or pre-encoded code).
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.items.push(Item::Bytes(b.to_vec()));
        self
    }

    // ---- plain instruction conveniences -------------------------------

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.insn(Insn::Nop)
    }

    /// `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.insn(Insn::Ret)
    }

    /// `push reg`.
    pub fn push(&mut self, r: Reg) -> &mut Self {
        self.insn(Insn::Push(r))
    }

    /// `pop reg`.
    pub fn pop(&mut self, r: Reg) -> &mut Self {
        self.insn(Insn::Pop(r))
    }

    /// `movabs reg, imm64`.
    pub fn mov_imm64(&mut self, r: Reg, v: u64) -> &mut Self {
        self.insn(Insn::MovImm64(r, v))
    }

    /// `mov reg, imm32` (sign-extended).
    pub fn mov_imm32(&mut self, r: Reg, v: i32) -> &mut Self {
        self.insn(Insn::MovImm32(r, v))
    }

    /// `mov dst, src`.
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.insn(Insn::MovRR { dst, src })
    }

    /// `mov dst, [mem]`.
    pub fn mov_load(&mut self, dst: Reg, src: Mem) -> &mut Self {
        self.insn(Insn::MovLoad { dst, src })
    }

    /// `mov [mem], src`.
    pub fn mov_store(&mut self, dst: Mem, src: Reg) -> &mut Self {
        self.insn(Insn::MovStore { dst, src })
    }

    /// `lea dst, [mem]`.
    pub fn lea(&mut self, dst: Reg, addr: Mem) -> &mut Self {
        self.insn(Insn::Lea { dst, addr })
    }

    /// `op dst, src`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.insn(Insn::Alu { op, dst, src })
    }

    /// `op dst, imm32`.
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i32) -> &mut Self {
        self.insn(Insn::AluImm { op, dst, imm })
    }

    /// `op dst, [mem]`.
    pub fn alu_load(&mut self, op: AluOp, dst: Reg, src: Mem) -> &mut Self {
        self.insn(Insn::AluLoad { op, dst, src })
    }

    /// `op [mem], src`.
    pub fn alu_store(&mut self, op: AluOp, dst: Mem, src: Reg) -> &mut Self {
        self.insn(Insn::AluStore { op, dst, src })
    }

    /// `test a, b`.
    pub fn test(&mut self, a: Reg, b: Reg) -> &mut Self {
        self.insn(Insn::Test(a, b))
    }

    /// `call reg`.
    pub fn call_reg(&mut self, r: Reg) -> &mut Self {
        self.insn(Insn::CallReg(r))
    }

    /// `jmp reg`.
    pub fn jmp_reg(&mut self, r: Reg) -> &mut Self {
        self.insn(Insn::JmpReg(r))
    }

    // ---- labels & branches --------------------------------------------

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::Label(name.to_string()));
        self
    }

    /// `jmp label` (intra-stream).
    pub fn jmp_label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::JmpLabel(name.to_string()));
        self
    }

    /// `jcc label` (intra-stream).
    pub fn jcc_label(&mut self, c: Cond, name: &str) -> &mut Self {
        self.items.push(Item::JccLabel(c, name.to_string()));
        self
    }

    /// `call label` (intra-stream).
    pub fn call_label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::CallLabel(name.to_string()));
        self
    }

    // ---- symbolic operands (lower to fixups) --------------------------

    /// `call sym` as `E8 rel32` with a PLT32 fixup — the linker resolves
    /// it directly for local symbols or through a PLT stub in retpoline
    /// mode (paper Fig. 4, "with PLT" row).
    pub fn call_plt(&mut self, sym: &str) -> &mut Self {
        self.items
            .push(Item::CallSymRel(sym.to_string(), FixupKind::Plt32));
        self
    }

    /// `call sym` as `E8 rel32` with a plain PC32 fixup (non-PIC baseline:
    /// the target must end up within ±2 GB).
    pub fn call_pc32(&mut self, sym: &str) -> &mut Self {
        self.items
            .push(Item::CallSymRel(sym.to_string(), FixupKind::Pc32));
        self
    }

    /// `call *sym@GOTPCREL(%rip)` — the PIC form the compiler emits when
    /// the symbol's location is unknown (paper Fig. 4, "no PLT" row).
    pub fn call_got(&mut self, sym: &str) -> &mut Self {
        self.items.push(Item::CallGot(sym.to_string()));
        self
    }

    /// `jmp *sym@GOTPCREL(%rip)`.
    pub fn jmp_got(&mut self, sym: &str) -> &mut Self {
        self.items.push(Item::JmpGot(sym.to_string()));
        self
    }

    /// `mov reg, sym@GOTPCREL(%rip)` — load the symbol's address from its
    /// GOT slot (how modules obtain 64-bit addresses, paper §2.6).
    pub fn load_got(&mut self, reg: Reg, sym: &str) -> &mut Self {
        self.items.push(Item::LoadGot(reg, sym.to_string()));
        self
    }

    /// `lea reg, sym(%rip)` — direct PC-relative address of a local symbol.
    pub fn lea_sym(&mut self, reg: Reg, sym: &str) -> &mut Self {
        self.items.push(Item::LeaSym(reg, sym.to_string()));
        self
    }

    /// `movabs reg, $sym` — absolute 64-bit address (legacy loader only).
    pub fn movabs_sym(&mut self, reg: Reg, sym: &str) -> &mut Self {
        self.items.push(Item::MovAbsSym(reg, sym.to_string()));
        self
    }

    /// `mov reg, $sym` with a sign-extended 32-bit immediate (ABS32S) —
    /// valid only in the legacy ±2 GB layout.
    pub fn mov_imm_sym32(&mut self, reg: Reg, sym: &str) -> &mut Self {
        self.items.push(Item::MovImmSym32(reg, sym.to_string()));
        self
    }

    /// Emit 8 data bytes holding the absolute address of `sym` (for
    /// function-pointer tables in `.data`, like `ext4_file_inode_ops`).
    pub fn quad_sym(&mut self, sym: &str) -> &mut Self {
        self.items.push(Item::QuadSym(sym.to_string()));
        self
    }

    /// Number of items queued (labels included).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items have been queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Run the two-pass assembly.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if a label is missing or doubly defined.
    pub fn assemble(&self) -> Result<AsmOutput, AsmError> {
        let mut scratch = Vec::with_capacity(16);
        // Pass 1: label offsets.
        let mut labels: HashMap<String, usize> = HashMap::new();
        let mut off = 0usize;
        for item in &self.items {
            if let Item::Label(name) = item {
                if labels.insert(name.clone(), off).is_some() {
                    return Err(AsmError::DuplicateLabel(name.clone()));
                }
            }
            off += item_len(item, &mut scratch);
        }
        // Pass 2: emit.
        let mut out = AsmOutput {
            labels,
            ..AsmOutput::default()
        };
        let resolve = |labels: &HashMap<String, usize>, name: &str, end: usize| {
            labels
                .get(name)
                .map(|&target| (target as i64 - end as i64) as i32)
                .ok_or_else(|| AsmError::UndefinedLabel(name.to_string()))
        };
        for item in &self.items {
            let start = out.bytes.len();
            match item {
                Item::Insn(i) => {
                    encode_into(i, &mut out.bytes);
                }
                Item::Bytes(b) => out.bytes.extend_from_slice(b),
                Item::Label(_) => {}
                Item::JmpLabel(name) => {
                    let rel = resolve(&out.labels, name, start + 5)?;
                    encode_into(&Insn::JmpRel(rel), &mut out.bytes);
                }
                Item::JccLabel(c, name) => {
                    let rel = resolve(&out.labels, name, start + 6)?;
                    encode_into(&Insn::Jcc(*c, rel), &mut out.bytes);
                }
                Item::CallLabel(name) => {
                    let rel = resolve(&out.labels, name, start + 5)?;
                    encode_into(&Insn::CallRel(rel), &mut out.bytes);
                }
                Item::CallSymRel(sym, kind) => {
                    encode_into(&Insn::CallRel(0), &mut out.bytes);
                    out.fixups.push(Fixup {
                        offset: start + 1,
                        kind: *kind,
                        symbol: sym.clone(),
                        addend: -4,
                    });
                }
                Item::CallGot(sym) => {
                    encode_into(&Insn::CallMem(Mem::RipRel(0)), &mut out.bytes);
                    out.fixups.push(Fixup {
                        offset: start + 2,
                        kind: FixupKind::GotPcRel,
                        symbol: sym.clone(),
                        addend: -4,
                    });
                }
                Item::JmpGot(sym) => {
                    encode_into(&Insn::JmpMem(Mem::RipRel(0)), &mut out.bytes);
                    out.fixups.push(Fixup {
                        offset: start + 2,
                        kind: FixupKind::GotPcRel,
                        symbol: sym.clone(),
                        addend: -4,
                    });
                }
                Item::LoadGot(reg, sym) => {
                    encode_into(
                        &Insn::MovLoad {
                            dst: *reg,
                            src: Mem::RipRel(0),
                        },
                        &mut out.bytes,
                    );
                    out.fixups.push(Fixup {
                        offset: start + 3,
                        kind: FixupKind::GotPcRel,
                        symbol: sym.clone(),
                        addend: -4,
                    });
                }
                Item::LeaSym(reg, sym) => {
                    encode_into(
                        &Insn::Lea {
                            dst: *reg,
                            addr: Mem::RipRel(0),
                        },
                        &mut out.bytes,
                    );
                    out.fixups.push(Fixup {
                        offset: start + 3,
                        kind: FixupKind::Pc32,
                        symbol: sym.clone(),
                        addend: -4,
                    });
                }
                Item::MovAbsSym(reg, sym) => {
                    encode_into(&Insn::MovImm64(*reg, 0), &mut out.bytes);
                    out.fixups.push(Fixup {
                        offset: start + 2,
                        kind: FixupKind::Abs64,
                        symbol: sym.clone(),
                        addend: 0,
                    });
                }
                Item::MovImmSym32(reg, sym) => {
                    encode_into(&Insn::MovImm32(*reg, 0), &mut out.bytes);
                    out.fixups.push(Fixup {
                        offset: start + 3,
                        kind: FixupKind::Abs32S,
                        symbol: sym.clone(),
                        addend: 0,
                    });
                }
                Item::QuadSym(sym) => {
                    out.bytes.extend_from_slice(&[0u8; 8]);
                    out.fixups.push(Fixup {
                        offset: start,
                        kind: FixupKind::Abs64,
                        symbol: sym.clone(),
                        addend: 0,
                    });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode_all;

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        a.label("top");
        a.mov_imm32(Reg::Rax, 5);
        a.jcc_label(Cond::E, "done");
        a.jmp_label("top");
        a.label("done");
        a.ret();
        let out = a.assemble().unwrap();
        let stream = decode_all(&out.bytes).unwrap();
        // jmp top: backward over mov(7)+jcc(6)+jmp(5) = -18
        let jmp = stream.iter().find_map(|(_, i)| match i {
            Insn::JmpRel(d) => Some(*d),
            _ => None,
        });
        assert_eq!(jmp, Some(-18));
        let jcc = stream.iter().find_map(|(_, i)| match i {
            Insn::Jcc(_, d) => Some(*d),
            _ => None,
        });
        assert_eq!(jcc, Some(5)); // skips the 5-byte jmp
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Asm::new();
        a.jmp_label("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Asm::new();
        a.label("x").label("x");
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn fixup_offsets() {
        let mut a = Asm::new();
        a.call_got("kmalloc"); // FF 15 [field @2]
        a.load_got(Reg::R11, "key"); // REX 8B modrm [field @3]
        a.lea_sym(Reg::Rdi, "buf"); // REX 8D modrm [field @3]
        a.call_plt("printk"); // E8 [field @1]
        a.quad_sym("handler");
        let out = a.assemble().unwrap();
        assert_eq!(out.fixups.len(), 5);
        assert_eq!(out.fixups[0].offset, 2);
        assert_eq!(out.fixups[0].kind, FixupKind::GotPcRel);
        assert_eq!(out.fixups[1].offset, 6 + 3);
        assert_eq!(out.fixups[2].offset, 6 + 7 + 3);
        assert_eq!(out.fixups[3].offset, 6 + 7 + 7 + 1);
        assert_eq!(out.fixups[3].kind, FixupKind::Plt32);
        assert_eq!(out.fixups[4].kind, FixupKind::Abs64);
        assert_eq!(out.fixups[4].addend, 0);
    }

    #[test]
    fn call_label_encodes_direct_call() {
        let mut a = Asm::new();
        a.call_label("f");
        a.ret();
        a.label("f");
        a.ret();
        let out = a.assemble().unwrap();
        assert_eq!(out.bytes[0], 0xE8);
        // rel = target(6) - end_of_call(5) = 1
        assert_eq!(&out.bytes[1..5], &1i32.to_le_bytes());
        assert_eq!(out.labels["f"], 6);
    }
}
