//! Physical frame store.
//!
//! Frames are 4 KiB pages addressed by [`Pfn`]. The store supports
//! concurrent access (per-frame reader/writer locks) because module code
//! executes on many simulated CPUs while the re-randomizer builds new GOT
//! frames in parallel.

use crate::PAGE_SIZE;
use parking_lot::{Mutex, RwLock};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A physical frame number.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pfn(pub u64);

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

struct Frame {
    data: RwLock<Box<[u8; PAGE_SIZE]>>,
}

impl Frame {
    fn new_zeroed() -> Arc<Frame> {
        Arc::new(Frame {
            data: RwLock::new(Box::new([0u8; PAGE_SIZE])),
        })
    }
}

/// Counters exported by [`PhysMem::stats`].
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct PhysStats {
    /// Frames currently allocated.
    pub frames_live: u64,
    /// Total allocations ever.
    pub frames_allocated: u64,
    /// Total frees ever.
    pub frames_freed: u64,
}

/// The physical memory of the simulated machine.
///
/// Allocation is first-fit over a free list; frames are zeroed on
/// allocation (like the kernel's `GFP_ZERO`).
pub struct PhysMem {
    frames: RwLock<Vec<Option<Arc<Frame>>>>,
    free_list: Mutex<Vec<u64>>,
    allocated: AtomicU64,
    freed: AtomicU64,
}

impl Default for PhysMem {
    fn default() -> Self {
        Self::new()
    }
}

impl PhysMem {
    /// Create an empty physical memory.
    pub fn new() -> PhysMem {
        PhysMem {
            frames: RwLock::new(Vec::new()),
            free_list: Mutex::new(Vec::new()),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// Allocate one zeroed frame.
    pub fn alloc(&self) -> Pfn {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = self.free_list.lock().pop() {
            let mut frames = self.frames.write();
            frames[idx as usize] = Some(Frame::new_zeroed());
            return Pfn(idx);
        }
        let mut frames = self.frames.write();
        frames.push(Some(Frame::new_zeroed()));
        Pfn(frames.len() as u64 - 1)
    }

    /// Allocate `n` zeroed frames.
    pub fn alloc_n(&self, n: usize) -> Vec<Pfn> {
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Free a frame.
    ///
    /// # Panics
    ///
    /// Panics on double-free (freeing an unallocated pfn) — in the
    /// simulated kernel that is always a reclamation bug worth surfacing
    /// loudly.
    pub fn free(&self, pfn: Pfn) {
        let mut frames = self.frames.write();
        let slot = frames
            .get_mut(pfn.0 as usize)
            .unwrap_or_else(|| panic!("free of out-of-range {pfn}"));
        assert!(slot.take().is_some(), "double free of {pfn}");
        drop(frames);
        self.freed.fetch_add(1, Ordering::Relaxed);
        self.free_list.lock().push(pfn.0);
    }

    fn frame(&self, pfn: Pfn) -> Option<Arc<Frame>> {
        self.frames.read().get(pfn.0 as usize)?.clone()
    }

    /// Whether the frame is currently allocated.
    pub fn is_live(&self, pfn: Pfn) -> bool {
        self.frame(pfn).is_some()
    }

    /// Read bytes from within a single frame.
    ///
    /// # Panics
    ///
    /// Panics if the range crosses the frame boundary or the frame is
    /// free (callers go through [`crate::AddressSpace`], which reports a
    /// typed fault first).
    pub fn read(&self, pfn: Pfn, offset: usize, buf: &mut [u8]) {
        assert!(offset + buf.len() <= PAGE_SIZE, "read crosses frame");
        let frame = self
            .frame(pfn)
            .unwrap_or_else(|| panic!("read of freed {pfn}"));
        let data = frame.data.read();
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
    }

    /// Write bytes within a single frame.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PhysMem::read`].
    pub fn write(&self, pfn: Pfn, offset: usize, bytes: &[u8]) {
        assert!(offset + bytes.len() <= PAGE_SIZE, "write crosses frame");
        let frame = self
            .frame(pfn)
            .unwrap_or_else(|| panic!("write of freed {pfn}"));
        let mut data = frame.data.write();
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Read a little-endian u64 within one frame.
    pub fn read_u64(&self, pfn: Pfn, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(pfn, offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u64 within one frame.
    pub fn write_u64(&self, pfn: Pfn, offset: usize, v: u64) {
        self.write(pfn, offset, &v.to_le_bytes());
    }

    /// Copy a whole frame's contents into a new allocation.
    pub fn clone_frame(&self, pfn: Pfn) -> Pfn {
        let mut buf = [0u8; PAGE_SIZE];
        self.read(pfn, 0, &mut buf);
        let new = self.alloc();
        self.write(new, 0, &buf);
        new
    }

    /// Snapshot of allocation counters.
    pub fn stats(&self) -> PhysStats {
        let allocated = self.allocated.load(Ordering::Relaxed);
        let freed = self.freed.load(Ordering::Relaxed);
        PhysStats {
            frames_live: allocated - freed,
            frames_allocated: allocated,
            frames_freed: freed,
        }
    }
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMem")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_rw() {
        let pm = PhysMem::new();
        let pfn = pm.alloc();
        let mut buf = [0xFFu8; 16];
        pm.read(pfn, 100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        pm.write_u64(pfn, 8, 0x1122_3344_5566_7788);
        assert_eq!(pm.read_u64(pfn, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn free_and_reuse() {
        let pm = PhysMem::new();
        let a = pm.alloc();
        pm.write_u64(a, 0, 42);
        pm.free(a);
        assert!(!pm.is_live(a));
        let b = pm.alloc();
        // Free-list reuse gives back the same number, but zeroed.
        assert_eq!(a, b);
        assert_eq!(pm.read_u64(b, 0), 0);
        assert_eq!(pm.stats().frames_live, 1);
        assert_eq!(pm.stats().frames_allocated, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let pm = PhysMem::new();
        let a = pm.alloc();
        pm.free(a);
        pm.free(a);
    }

    #[test]
    fn clone_frame_copies() {
        let pm = PhysMem::new();
        let a = pm.alloc();
        pm.write_u64(a, 16, 0xabcd);
        let b = pm.clone_frame(a);
        assert_ne!(a, b);
        assert_eq!(pm.read_u64(b, 16), 0xabcd);
        // Independent after copy.
        pm.write_u64(a, 16, 1);
        assert_eq!(pm.read_u64(b, 16), 0xabcd);
    }

    #[test]
    fn concurrent_alloc() {
        let pm = std::sync::Arc::new(PhysMem::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pm = pm.clone();
            handles.push(std::thread::spawn(move || {
                let pfns = pm.alloc_n(64);
                for &p in &pfns {
                    pm.write_u64(p, 0, p.0);
                }
                pfns
            }));
        }
        let mut all: Vec<Pfn> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 8 * 64, "no pfn handed out twice");
    }
}
