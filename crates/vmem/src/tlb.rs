//! A per-CPU TLB model with range-based shootdown and ASID tagging.
//!
//! Re-randomization forces page-table updates, and page-table updates
//! force TLB invalidations — the cost the paper discusses in §4.3. The
//! original model used *generation-based whole-TLB shootdown*: any
//! unmap/protect bumped [`crate::AddressSpace`]'s generation and a
//! lagging [`Tlb`] flushed everything on its next lookup. That makes
//! every cycle pay the worst case.
//!
//! The space now keeps a bounded *invalidation log* of the page spans
//! each generation retired (see [`crate::AddressSpace::plan_sync`]). A
//! lagging TLB consults it and evicts **only the covered entries** — a
//! *partial flush* — falling back to a full flush only when it lagged
//! past the log's horizon or the gap's span set is too large to walk.
//! [`TlbStats::partial_flushes`] / [`TlbStats::entries_invalidated`]
//! make the two regimes measurable.
//!
//! Eviction at capacity is deterministic FIFO (first-inserted entry
//! goes first), and re-inserting an already-cached page never evicts an
//! unrelated entry.
//!
//! Synchronization is **lock-free** end to end: the generation check on
//! the hit path is one atomic load (no epoch pin at all), and the
//! lagging path reads the space's atomically-published invalidation
//! ring under an epoch pin ([`Tlb::lookup_pinned`]) — a lookup never
//! blocks on a concurrent re-randomization writer.
//!
//! # ASID tagging (the space-switch story)
//!
//! Entries are stored in the arch's *hardware* encoding
//! ([`crate::HwPte`]) and keyed by `(asid, page_va)`, mirroring
//! PCID-tagged x86 TLBs and `satp.ASID`-tagged riscv ones. Under the
//! default [`AsidPolicy::Tagged`], pointing the TLB at a different
//! [`AddressSpace`] — fleet shards each own one — is **not** a flush:
//! the current generation cursor is parked per ASID, the new ASID's
//! cursor is restored, and every cached entry survives under its tag. A
//! probe can only ever see entries whose tag equals the currently bound
//! ASID, so space A's translations are unreachable while space B is
//! bound. Returning to a space whose generation did not move in the
//! interim therefore hits warm entries immediately — the win
//! `BENCH_tlb_shootdown`'s fleet-churn phase measures.
//!
//! Tag trust has two edges, both handled:
//!
//! * **Value recycling** — ASID allocators wrap ([`crate::Asid`]'s
//!   `rollover` generation increments). Binding a space whose rollover
//!   is newer than the TLB's adopted one means any tag may have been
//!   reused by an unrelated space since: full flush, forget all
//!   cursors, adopt the new rollover (the Linux-style ASID-generation
//!   protocol).
//! * **Forced value collisions** — two live spaces sharing one ASID
//!   value (tests force this via `SpaceConfig::asid`). The per-ASID
//!   cursor records *which space id* parked it; a restore for a
//!   different space id flushes that one ASID's entries defensively
//!   instead of trusting them.
//!
//! [`AsidPolicy::FlushOnSwitch`] keeps the pre-ASID behaviour — every
//! switch is a full flush — as the measurable ablation baseline.
//!
//! # The micro-TLB (L1)
//!
//! In front of the hash-map cache sits a small direct-mapped
//! **micro-TLB**: [`Tlb::try_lookup_current`] probes one array slot
//! keyed by the virtual page number, and a hit requires the page match
//! *and* the entry's `(asid, generation)` tag to equal the TLB's
//! current binding. Because every resynchronization that could
//! invalidate anything ([`Tlb::apply_sync`] on `Ranges`/`Full`)
//! advances the generation cursor, and every space switch changes the
//! bound ASID, micro entries are invalidated *lazily* by tag mismatch —
//! no walk over the array on a shootdown **or a space switch** (PR 5
//! cleared it eagerly on every switch; the ASID half of the tag makes
//! that unnecessary). Only an operation that could make old tags
//! readable again — an explicit [`Tlb::flush`], a rollover adoption, an
//! ASID-collision flush — clears slots eagerly. See DESIGN.md §14–§15
//! for the coherence argument.

use crate::arch::{ArchKind, Asid};
use crate::hash::BuildPageHasher;
use crate::{AddressSpace, HwPte, Pte, SpacePin, TlbSync, Translation};
use std::collections::{HashMap, VecDeque};

/// Slots in the direct-mapped micro-TLB (power of two; 512 × 32-byte
/// entries ≈ 16 KiB, L1-cache resident).
const MICRO_SLOTS: usize = 512;

/// One micro-TLB entry: a translation valid exactly while the owning
/// TLB is bound to ASID `asid` *and* its generation cursor equals
/// `gen`. Both halves of the tag are checked on probe, so neither a
/// shootdown nor a space switch needs to touch the array.
#[derive(Copy, Clone, Debug)]
struct MicroEntry {
    page_va: u64,
    asid: u16,
    gen: u64,
    hw: HwPte,
}

/// How a [`Tlb`] treats being pointed at a different address space.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AsidPolicy {
    /// Keep entries across switches under their ASID tags; only
    /// rollover adoption or a tag-value collision forces a flush. The
    /// default — what PCID/ASID hardware buys.
    #[default]
    Tagged,
    /// Pre-ASID ablation baseline: every space switch is a full flush
    /// (PR 5's behaviour, kept measurable for the bench).
    FlushOnSwitch,
}

/// TLB hit/miss/flush counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct TlbStats {
    /// Lookups that hit a cached translation (micro-TLB hits included).
    pub hits: u64,
    /// Of [`TlbStats::hits`], how many were served by the direct-mapped
    /// micro-TLB (one array probe, no hash).
    pub micro_hits: u64,
    /// Lookups that missed (caller must walk the page table).
    pub misses: u64,
    /// Flushes of every kind: explicit [`Tlb::flush`], log-horizon
    /// syncs, switch-forced flushes, and (under [`AsidPolicy::Tagged`])
    /// single-ASID context invalidations. Always ≥
    /// `switch_flushes + horizon_flushes`.
    pub flushes: u64,
    /// Space switches observed (the TLB was pointed at a different
    /// [`AddressSpace`] than the one it was bound to).
    pub switches: u64,
    /// Of [`TlbStats::flushes`], those forced by an identity change: a
    /// [`AsidPolicy::FlushOnSwitch`] switch, an ASID rollover adoption,
    /// or a defensive ASID-value-collision flush. The fleet bench
    /// asserts this stays 0 under tagged churn.
    pub switch_flushes: u64,
    /// Of [`TlbStats::flushes`], those forced by a [`TlbSync::Full`]
    /// plan: the TLB lagged past the invalidation log's horizon, the
    /// gap's span set was oversized, or the log is disabled.
    pub horizon_flushes: u64,
    /// Range-based resynchronizations that evicted only covered
    /// entries instead of flushing.
    pub partial_flushes: u64,
    /// Entries evicted by partial flushes.
    pub entries_invalidated: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

impl std::ops::AddAssign for TlbStats {
    fn add_assign(&mut self, rhs: TlbStats) {
        self.hits += rhs.hits;
        self.micro_hits += rhs.micro_hits;
        self.misses += rhs.misses;
        self.flushes += rhs.flushes;
        self.switches += rhs.switches;
        self.switch_flushes += rhs.switch_flushes;
        self.horizon_flushes += rhs.horizon_flushes;
        self.partial_flushes += rhs.partial_flushes;
        self.entries_invalidated += rhs.entries_invalidated;
        self.evictions += rhs.evictions;
    }
}

impl TlbStats {
    /// Counter-wise `self - earlier` (saturating): the activity between
    /// two snapshots of one TLB's monotonically growing counters. CPUs
    /// use this to publish per-call deltas into shared accumulators.
    pub fn delta_since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits.saturating_sub(earlier.hits),
            micro_hits: self.micro_hits.saturating_sub(earlier.micro_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            switches: self.switches.saturating_sub(earlier.switches),
            switch_flushes: self.switch_flushes.saturating_sub(earlier.switch_flushes),
            horizon_flushes: self.horizon_flushes.saturating_sub(earlier.horizon_flushes),
            partial_flushes: self.partial_flushes.saturating_sub(earlier.partial_flushes),
            entries_invalidated: self
                .entries_invalidated
                .saturating_sub(earlier.entries_invalidated),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A single CPU's translation cache.
///
/// Not thread-safe by design: each simulated CPU owns one.
#[derive(Debug)]
pub struct Tlb {
    /// Direct-mapped, `(asid, generation)`-tagged L1 in front of the
    /// hash map: a hit is one index computation and one tag compare.
    /// Lazily invalidated by generation advance *and* by space
    /// switches (the ASID half of the tag); eagerly cleared only when
    /// old tags could become readable again ([`Tlb::flush`], rollover
    /// adoption, ASID-collision flush).
    micro: Vec<Option<MicroEntry>>,
    /// `(asid, page_va) → (hw pte, insertion seq)`. Entries are stored
    /// arch-encoded — what a hardware TLB holds — and decoded on hit.
    /// The seq validates lazy FIFO queue entries after partial
    /// invalidation removed keys. Keys are trusted page numbers, so
    /// the map uses the cheap deterministic [`BuildPageHasher`].
    entries: HashMap<(u16, u64), (HwPte, u64), BuildPageHasher>,
    /// FIFO insertion order, lazily pruned (entries whose seq no longer
    /// matches were invalidated or re-inserted). Capacity is global
    /// across ASIDs, like a real shared TLB.
    order: VecDeque<(u16, u64, u64)>,
    seq: u64,
    generation: u64,
    /// [`AddressSpace::id`] of the space the cache last synchronized
    /// with (0 = never synced). Generations are meaningful only within
    /// one space, so a different id re-binds the TLB: under
    /// [`AsidPolicy::Tagged`] that parks the generation cursor per
    /// ASID and keeps entries; under [`AsidPolicy::FlushOnSwitch`] it
    /// flushes everything, like hardware without an ASID match.
    space_id: u64,
    /// ASID value of the currently bound space (0 = unbound). Probes
    /// only ever match entries carrying this tag.
    asid: u16,
    /// The ASID rollover generation this TLB has adopted. A space
    /// carrying a newer one proves tag values may have been recycled
    /// by the allocator since — full flush before trusting tags again.
    rollover: u64,
    /// Parked generation cursors, one per ASID this TLB has been bound
    /// to: `asid → (space id, generation at switch-away)`. The space
    /// id guards against two live spaces sharing a forced ASID value.
    /// Invariant: entries tagged `a` exist only if `a` is the bound
    /// ASID or `cursors` has a parking record for `a` — so a missing
    /// cursor proves there is nothing stale to flush.
    cursors: HashMap<u16, (u64, u64), BuildPageHasher>,
    /// The ISA backend whose encoding cached entries use (must match
    /// the spaces this TLB serves).
    arch: ArchKind,
    policy: AsidPolicy,
    stats: TlbStats,
    capacity: usize,
}

impl Default for Tlb {
    fn default() -> Tlb {
        Tlb::new()
    }
}

impl Tlb {
    /// A TLB with the default capacity (1536 entries, Skylake-ish),
    /// the environment-selected arch, and ASID tagging on.
    pub fn new() -> Tlb {
        Tlb::with_capacity(1536)
    }

    /// A TLB bounded to `capacity` cached pages (environment-selected
    /// arch, ASID tagging on).
    pub fn with_capacity(capacity: usize) -> Tlb {
        Tlb::build(ArchKind::from_env(), AsidPolicy::Tagged, capacity)
    }

    /// A default-capacity TLB for an explicit arch backend, ASID
    /// tagging on — what the kernel's exec path constructs.
    pub fn with_arch(arch: ArchKind) -> Tlb {
        Tlb::build(arch, AsidPolicy::Tagged, 1536)
    }

    /// The ablation baseline: every space switch is a full flush (PR
    /// 5's behaviour). The fleet bench runs this against
    /// [`Tlb::with_arch`] to price the ASID win.
    pub fn flush_on_switch(arch: ArchKind) -> Tlb {
        Tlb::build(arch, AsidPolicy::FlushOnSwitch, 1536)
    }

    fn build(arch: ArchKind, policy: AsidPolicy, capacity: usize) -> Tlb {
        Tlb {
            micro: vec![None; MICRO_SLOTS],
            entries: HashMap::default(),
            order: VecDeque::new(),
            seq: 0,
            generation: 0,
            space_id: 0,
            asid: 0,
            rollover: 0,
            cursors: HashMap::default(),
            arch,
            policy,
            stats: TlbStats::default(),
            capacity,
        }
    }

    /// The ISA backend this TLB encodes entries for.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// The space-switch policy this TLB runs.
    pub fn asid_policy(&self) -> AsidPolicy {
        self.policy
    }

    /// Look up the translation for `page_va`, first resynchronizing
    /// with `space`'s invalidation log: evict only the spans retired
    /// since our snapshot when the log still covers the gap, flush
    /// everything when it does not.
    ///
    /// When the TLB is already at the space's current generation this
    /// costs a single atomic load (no epoch pin); only the lagging path
    /// pins an epoch to read the invalidation ring.
    pub fn lookup(&mut self, page_va: u64, space: &AddressSpace) -> Option<Pte> {
        if space.id() == self.space_id && space.generation() == self.generation {
            return self.probe(page_va);
        }
        let pin = space.pin();
        self.lookup_pinned(page_va, &pin)
    }

    /// [`Tlb::lookup`] under a caller-held epoch pin — what the
    /// kernel's per-CPU read handles use so one pin covers both the
    /// resynchronization and the page-table walk on a miss.
    ///
    /// A pin into a *different* space than the one this TLB last synced
    /// with (fleet-style many-space churn) re-binds the TLB to that
    /// space's ASID — under [`AsidPolicy::Tagged`] without dropping a
    /// single entry; see the module docs.
    pub fn lookup_pinned(&mut self, page_va: u64, pin: &SpacePin<'_>) -> Option<Pte> {
        self.bind(pin.space().id(), pin.space().asid());
        let (current, plan) = pin.plan_sync(self.generation);
        self.apply_sync(current, plan);
        self.probe(page_va)
    }

    /// Probe a whole run of page base addresses under **one**
    /// resynchronization: the space-binding check and the invalidation
    /// plan are paid once for the batch, then each page costs only a
    /// probe. `out[i]` is the cached PTE for `page_vas[i]` or `None` on
    /// a miss (the caller walks misses against one pinned snapshot —
    /// see `SpacePin::translate_batch`).
    pub fn lookup_batch(&mut self, page_vas: &[u64], pin: &SpacePin<'_>) -> Vec<Option<Pte>> {
        self.bind(pin.space().id(), pin.space().asid());
        let (current, plan) = pin.plan_sync(self.generation);
        self.apply_sync(current, plan);
        page_vas.iter().map(|&va| self.probe(va)).collect()
    }

    /// Re-bind the TLB to a (space, ASID) pair. The heart of the
    /// switch protocol — see the module docs for the full argument.
    fn bind(&mut self, space_id: u64, asid: Asid) {
        if space_id == self.space_id {
            return;
        }
        if self.space_id == 0 {
            // First bind ever. Entries inserted before any lookup (a
            // warmed but never-bound TLB) carry the null ASID — claim
            // them for the adopting space, preserving the pre-ASID
            // semantics where the first sync simply kept everything.
            self.claim_null_asid(asid.value);
            self.rollover = self.rollover.max(asid.rollover);
            self.space_id = space_id;
            self.asid = asid.value;
            return;
        }
        self.stats.switches += 1;
        match self.policy {
            AsidPolicy::FlushOnSwitch => {
                self.flush_for_switch();
                self.generation = 0;
            }
            AsidPolicy::Tagged => {
                if asid.rollover > self.rollover {
                    // The allocator wrapped since we last adopted:
                    // any tag value may have been recycled by spaces
                    // we never saw. Nothing is trustworthy.
                    self.flush_for_switch();
                    self.rollover = asid.rollover;
                    self.generation = 0;
                } else {
                    // Park the outgoing ASID's cursor, restore (or
                    // initialize) the incoming one.
                    if self.asid != 0 {
                        self.cursors
                            .insert(self.asid, (self.space_id, self.generation));
                    }
                    match self.cursors.get(&asid.value).copied() {
                        Some((sid, gen)) if sid == space_id => self.generation = gen,
                        Some(_) => {
                            // A *different* live space used this tag
                            // value (forced collision): its entries
                            // must not serve ours. Single-context
                            // invalidation, then start from scratch.
                            self.flush_asid(asid.value);
                            self.stats.flushes += 1;
                            self.stats.switch_flushes += 1;
                            self.generation = 0;
                        }
                        // Never bound: by the cursors invariant there
                        // are no entries under this tag to distrust.
                        None => self.generation = 0,
                    }
                }
            }
        }
        self.space_id = space_id;
        self.asid = asid.value;
    }

    /// Re-tag everything inserted while unbound (null ASID) to
    /// `asid` — the first-bind adoption step.
    fn claim_null_asid(&mut self, asid: u16) {
        if self.entries.is_empty() || asid == 0 {
            return;
        }
        let claimed: Vec<_> = self
            .entries
            .drain()
            .map(|((_, va), v)| ((asid, va), v))
            .collect();
        self.entries.extend(claimed);
        for e in self.order.iter_mut() {
            e.0 = asid;
        }
        for slot in self.micro.iter_mut().flatten() {
            slot.asid = asid;
        }
    }

    /// Hit-path probe without any synchronization: `Some(result)` only
    /// when the TLB's snapshot is already at `current_gen` (obtained
    /// from [`AddressSpace::generation`]); `None` means the caller must
    /// take an epoch pin and use [`Tlb::lookup_pinned`].
    ///
    /// Only valid for the space this TLB is bound to (a `Vm`'s private
    /// TLB): `current_gen` carries no space identity, so callers that
    /// roam across spaces must go through [`Tlb::lookup`] /
    /// [`Tlb::lookup_pinned`], which detect the switch.
    pub fn try_lookup_current(&mut self, page_va: u64, current_gen: u64) -> Option<Option<Pte>> {
        if current_gen != self.generation {
            return None;
        }
        // L1: one direct-mapped probe — an index computation and a
        // (page, asid, generation) tag compare, no hashing at all. The
        // tag makes every shootdown and every space switch an implicit
        // bulk invalidation: entries filled under another cursor or
        // another ASID can never match.
        if let Some(&Some(e)) = self.micro.get(Self::micro_idx(page_va)) {
            if e.page_va == page_va && e.asid == self.asid && e.gen == current_gen {
                self.stats.hits += 1;
                self.stats.micro_hits += 1;
                return Some(Some(self.arch.decode_owned(e.hw)));
            }
        }
        Some(self.probe(page_va))
    }

    #[inline]
    fn micro_idx(page_va: u64) -> usize {
        ((page_va >> crate::PAGE_SHIFT) as usize) & (MICRO_SLOTS - 1)
    }

    /// Install `(page_va, hw)` in the micro-TLB, tagged with the
    /// current (asid, generation) binding. Callers must only pass
    /// translations valid at `self.generation` in the currently-bound
    /// space.
    #[inline]
    fn micro_fill(&mut self, page_va: u64, hw: HwPte) {
        let asid = self.asid;
        let gen = self.generation;
        if let Some(slot) = self.micro.get_mut(Self::micro_idx(page_va)) {
            *slot = Some(MicroEntry {
                page_va,
                asid,
                gen,
                hw,
            });
        }
    }

    fn probe(&mut self, page_va: u64) -> Option<Pte> {
        let hit = self.entries.get(&(self.asid, page_va)).map(|&(hw, _)| hw);
        match hit {
            Some(hw) => {
                self.stats.hits += 1;
                // Promote the L2 hit so the next probe of this page is
                // one array access.
                self.micro_fill(page_va, hw);
                Some(self.arch.decode_owned(hw))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn apply_sync(&mut self, current: u64, plan: TlbSync) {
        match plan {
            TlbSync::Current => return,
            TlbSync::Full => {
                match self.policy {
                    // Tagged hardware flushes one context (x86 invpcid
                    // single-context, riscv sfence.vma with an ASID):
                    // only the bound ASID's entries are stale — the
                    // parked ones answer to their own cursors.
                    AsidPolicy::Tagged if self.asid != 0 => self.flush_asid(self.asid),
                    _ => {
                        self.micro.fill(None);
                        self.entries.clear();
                        self.order.clear();
                        self.cursors.clear();
                    }
                }
                self.stats.flushes += 1;
                self.stats.horizon_flushes += 1;
            }
            TlbSync::Ranges(spans) => {
                let before = self.entries.len();
                let asid = self.asid;
                self.entries.retain(|&(a, va), _| {
                    a != asid || !spans.iter().any(|&(s, e)| va >= s && va < e)
                });
                self.stats.entries_invalidated += (before - self.entries.len()) as u64;
                self.stats.partial_flushes += 1;
            }
        }
        self.generation = current;
    }

    /// Evict every entry tagged `asid` from both levels — the
    /// single-context invalidation primitive (invpcid type 1 /
    /// `sfence.vma x0, asid`), also forgetting the ASID's cursor.
    fn flush_asid(&mut self, asid: u16) {
        self.entries.retain(|&(a, _), _| a != asid);
        for slot in self.micro.iter_mut() {
            if slot.is_some_and(|e| e.asid == asid) {
                *slot = None;
            }
        }
        self.cursors.remove(&asid);
    }

    /// Full flush on behalf of an identity change (policy ablation or
    /// rollover adoption): everything [`Tlb::flush`] does, attributed
    /// to `switch_flushes`.
    fn flush_for_switch(&mut self) {
        self.flush();
        self.stats.switch_flushes += 1;
    }

    /// Install a translation produced by a page-table walk, tagged
    /// with the currently bound ASID and stored arch-encoded.
    ///
    /// Re-inserting an already-cached page refreshes it in place (it
    /// keeps its FIFO position and evicts nothing). A genuinely new
    /// page at capacity evicts the oldest entry — deterministically,
    /// regardless of which ASID owns it (capacity is shared).
    pub fn insert(&mut self, t: &Translation) {
        if self.capacity == 0 {
            return;
        }
        let hw = self.arch.encode(t.pte);
        self.micro_fill(t.page_va, hw);
        let key = (self.asid, t.page_va);
        if let Some(slot) = self.entries.get_mut(&key) {
            slot.0 = hw;
            return;
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some((a, va, seq)) => {
                    if self.entries.get(&(a, va)).is_some_and(|&(_, s)| s == seq) {
                        self.entries.remove(&(a, va));
                        self.stats.evictions += 1;
                    }
                }
                None => break, // only stale queue entries remained
            }
        }
        self.seq += 1;
        self.entries.insert(key, (hw, self.seq));
        self.order.push_back((key.0, key.1, self.seq));
        // Partial invalidation leaves dead queue entries behind; compact
        // before the queue outgrows the cache it mirrors.
        if self.order.len() > self.capacity.saturating_mul(2) + 8 {
            let entries = &self.entries;
            self.order
                .retain(|&(a, va, seq)| entries.get(&(a, va)).is_some_and(|&(_, s)| s == seq));
        }
    }

    /// Explicitly flush everything, every ASID included (e.g. a
    /// simulated `CR3` write with PCIDs disabled).
    ///
    /// Clears the micro-TLB *eagerly* and forgets all parked cursors:
    /// flush callers may reset the generation cursor, and a reused
    /// cursor value would make lazily-retained tags match again — the
    /// one case tag-based invalidation cannot cover.
    pub fn flush(&mut self) {
        self.micro.fill(None);
        self.entries.clear();
        self.order.clear();
        self.cursors.clear();
        self.stats.flushes += 1;
    }

    /// Cached entry count across all ASIDs (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, AddressSpace, Batch, PhysMem, PteFlags, SpaceConfig, PAGE_SIZE};

    const VA: u64 = 0x0012_3456_7800_0000;

    fn warm(tlb: &mut Tlb, space: &AddressSpace, va: u64) {
        let t = space.translate(va, Access::Read).unwrap();
        tlb.insert(&t);
    }

    /// A space with a forced ASID (for collision/rollover tests).
    fn space_with_asid(value: u16, rollover: u64) -> AddressSpace {
        AddressSpace::with_space_config(SpaceConfig {
            asid: Some(Asid { value, rollover }),
            ..SpaceConfig::new()
        })
    }

    #[test]
    fn hit_after_insert() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(VA, &space), None);
        let t = space.translate(VA, Access::Read).unwrap();
        tlb.insert(&t);
        assert_eq!(tlb.lookup(VA, &space), Some(t.pte));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn unmap_invalidates_only_covered_entries() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let other = VA + 0x40_0000;
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        space.map(other, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, VA);
        warm(&mut tlb, &space, other);
        space.unmap(VA).unwrap();
        // The retired page is gone, the unrelated one survives — a
        // partial flush, not a whole-TLB flush.
        assert_eq!(tlb.lookup(VA, &space), None);
        assert!(tlb.lookup(other, &space).is_some());
        let s = tlb.stats();
        assert_eq!(s.flushes, 0);
        assert_eq!(s.partial_flushes, 1);
        assert_eq!(s.entries_invalidated, 1);
    }

    #[test]
    fn lagging_past_the_log_forces_full_flush() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(4);
        let keep = VA + 0x80_0000;
        space.map(keep, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, keep);
        // More shootdowns than the log holds, while the TLB sleeps.
        for i in 0..8u64 {
            let va = VA + i * PAGE_SIZE as u64;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            space.unmap(va).unwrap();
        }
        // `keep` is still mapped, but the gap is unrecoverable — the
        // sync must flush everything rather than guess.
        assert_eq!(tlb.lookup(keep, &space), None);
        assert_eq!(tlb.stats().flushes, 1);
        assert_eq!(
            tlb.stats().horizon_flushes,
            1,
            "a horizon flush, not a switch"
        );
        assert_eq!(tlb.stats().switch_flushes, 0);
        assert_eq!(tlb.stats().partial_flushes, 0);
        // Re-warmed, it keeps hitting.
        warm(&mut tlb, &space, keep);
        assert!(tlb.lookup(keep, &space).is_some());
    }

    #[test]
    fn disabled_log_always_full_flushes() {
        let phys = PhysMem::new();
        let space = AddressSpace::with_inval_log(0);
        let a = VA;
        let b = VA + 0x10_0000;
        space.map(a, phys.alloc(), PteFlags::DATA).unwrap();
        space.map(b, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, a);
        warm(&mut tlb, &space, b);
        space.unmap(a).unwrap();
        // Legacy regime: the unrelated entry dies too.
        assert_eq!(tlb.lookup(b, &space), None);
        assert_eq!(tlb.stats().flushes, 1);
        assert_eq!(tlb.stats().horizon_flushes, 1);
        assert_eq!(tlb.stats().partial_flushes, 0);
    }

    #[test]
    fn batch_invalidation_is_one_partial_flush() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let survivor = VA + 0x100_0000;
        space.map(survivor, phys.alloc(), PteFlags::DATA).unwrap();
        space
            .map_range(VA, &phys.alloc_n(8), PteFlags::DATA)
            .unwrap();
        let mut tlb = Tlb::new();
        warm(&mut tlb, &space, survivor);
        for i in 0..8u64 {
            warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
        }
        let mut batch = Batch::new();
        batch.unmap_sparse(VA, 8);
        let outcome = space.apply(batch).unwrap();
        assert_eq!(outcome.shootdowns, 1);
        assert!(tlb.lookup(survivor, &space).is_some());
        for i in 0..8u64 {
            assert_eq!(tlb.lookup(VA + i * PAGE_SIZE as u64, &space), None);
        }
        let s = tlb.stats();
        assert_eq!(s.partial_flushes, 1, "one sync covers the whole batch");
        assert_eq!(s.entries_invalidated, 8);
        assert_eq!(s.flushes, 0);
    }

    /// Regression: re-inserting an already-cached page at capacity used
    /// to evict an arbitrary unrelated entry.
    #[test]
    fn reinsert_at_capacity_evicts_nothing() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        let mut tlb = Tlb::with_capacity(4);
        for i in 0..4u64 {
            let va = VA + i * PAGE_SIZE as u64;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            warm(&mut tlb, &space, va);
        }
        assert_eq!(tlb.len(), 4);
        // Re-insert every cached page; nothing may be evicted.
        for i in 0..4u64 {
            warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
        }
        assert_eq!(tlb.stats().evictions, 0);
        for i in 0..4u64 {
            assert!(
                tlb.lookup(VA + i * PAGE_SIZE as u64, &space).is_some(),
                "page {i} was evicted by a re-insert"
            );
        }
    }

    /// Eviction order is deterministic FIFO: the same insert sequence
    /// always evicts the same keys, regardless of hash iteration order.
    #[test]
    fn eviction_is_deterministic_fifo() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        for i in 0..8u64 {
            space
                .map(VA + i * PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA)
                .unwrap();
        }
        // Seeded (fixed) insertion order, twice over fresh TLBs: the
        // surviving set must be identical.
        let run = || {
            let mut tlb = Tlb::with_capacity(4);
            for &i in &[0u64, 1, 2, 3, 0, 4, 5] {
                warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
            }
            let mut alive: Vec<u64> = (0..8u64)
                .filter(|&i| tlb.lookup(VA + i * PAGE_SIZE as u64, &space).is_some())
                .collect();
            alive.sort_unstable();
            alive
        };
        let first = run();
        // FIFO: 0,1,2,3 cached; re-warm of 0 keeps its slot; inserting
        // 4 evicts 0 (oldest), inserting 5 evicts 1.
        assert_eq!(first, vec![2, 3, 4, 5]);
        assert_eq!(first, run(), "eviction must be deterministic");
    }

    /// The ASID-isolation invariant: a TLB that synced with space A
    /// must never serve A's translations against space B — even when
    /// the two generation counters are numerically equal — and under
    /// tagging it must achieve that *without* flushing: A's entries
    /// stay resident under their tag and hit again the moment the TLB
    /// switches back (the fleet-churn win PR 5's eager flush gave up).
    #[test]
    fn switching_spaces_never_serves_foreign_translations() {
        let phys = PhysMem::new();
        let a = AddressSpace::new();
        let b = AddressSpace::new();
        // Identical mutation histories ⇒ identical generation counters.
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA + 0x40_0000, phys.alloc(), PteFlags::DATA).unwrap();
        assert_eq!(a.generation(), b.generation());
        assert_ne!(a.id(), b.id());
        assert_ne!(a.asid(), b.asid());
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(VA, &a).is_none());
        warm(&mut tlb, &a, VA);
        assert!(tlb.lookup(VA, &a).is_some(), "warm hit in the home space");
        // Probing B for A's page must miss (B never mapped it) even
        // though B's generation equals the TLB's sync point…
        assert_eq!(
            tlb.lookup(VA, &b),
            None,
            "a foreign space must never be served another space's PTEs"
        );
        // …but nothing was flushed: A's entry is parked under its tag.
        assert!(!tlb.is_empty(), "tagged entries survive the switch");
        let s = tlb.stats();
        assert_eq!(s.flushes, 0, "a tagged switch is not a flush");
        assert_eq!(s.switches, 1);
        assert_eq!(s.switch_flushes, 0);
        // Switching back hits immediately — no re-warm needed.
        assert!(
            tlb.lookup(VA, &a).is_some(),
            "the parked entry must hit again after the round trip"
        );
        assert_eq!(tlb.stats().switches, 2);
        assert_eq!(tlb.stats().switch_flushes, 0);
    }

    /// The ablation baseline keeps PR 5's behaviour: every switch is a
    /// full flush, counted under `switch_flushes`.
    #[test]
    fn flush_on_switch_policy_flushes_every_switch() {
        let phys = PhysMem::new();
        let a = AddressSpace::new();
        let b = AddressSpace::new();
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA + 0x40_0000, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::flush_on_switch(ArchKind::default());
        assert!(tlb.lookup(VA, &a).is_none());
        warm(&mut tlb, &a, VA);
        assert!(tlb.lookup(VA, &a).is_some());
        assert_eq!(tlb.lookup(VA, &b), None);
        assert!(tlb.is_empty(), "the ablation must flush on switch");
        let s = tlb.stats();
        assert_eq!(s.switches, 1);
        assert_eq!(s.switch_flushes, 1);
        assert!(s.flushes >= s.switch_flushes + s.horizon_flushes);
        // Back home: everything must be re-warmed from scratch.
        assert_eq!(tlb.lookup(VA, &a), None);
        assert_eq!(tlb.stats().switch_flushes, 2);
    }

    /// Two live spaces forced onto one ASID value: the tag alone can't
    /// tell their entries apart, so the cursor's space-id check must
    /// flush the colliding context instead of serving foreign PTEs.
    #[test]
    fn forced_asid_collision_flushes_defensively() {
        let phys = PhysMem::new();
        let a = space_with_asid(7, 0);
        let b = space_with_asid(7, 0);
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        assert_eq!(a.asid(), b.asid());
        let pte_a = a.translate(VA, Access::Read).unwrap().pte;
        let pte_b = b.translate(VA, Access::Read).unwrap().pte;
        assert_ne!(pte_a, pte_b, "distinct frames behind the same va");
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(VA, &a).is_none());
        warm(&mut tlb, &a, VA);
        assert_eq!(tlb.lookup(VA, &a), Some(pte_a));
        // Same tag value, different space: the defensive flush must
        // fire and the probe must miss rather than serve A's frame.
        assert_eq!(tlb.lookup(VA, &b), None, "foreign PTE behind a shared tag");
        let s = tlb.stats();
        assert_eq!(s.switch_flushes, 1, "collision attributed to the switch");
        warm(&mut tlb, &b, VA);
        assert_eq!(tlb.lookup(VA, &b), Some(pte_b));
        // And the return trip collides again — B's entries die too.
        assert_eq!(tlb.lookup(VA, &a), None);
        assert_eq!(tlb.stats().switch_flushes, 2);
    }

    /// A space carrying a newer ASID rollover generation proves the
    /// allocator wrapped: every tag may have been recycled, so the
    /// bind must full-flush and forget all parked cursors.
    #[test]
    fn rollover_adoption_flushes_everything() {
        let phys = PhysMem::new();
        let a = space_with_asid(9, 0);
        let wrapped = space_with_asid(9, 1);
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        wrapped.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(VA, &a).is_none());
        warm(&mut tlb, &a, VA);
        assert!(tlb.lookup(VA, &a).is_some());
        // The wrapped space re-uses tag value 9 legitimately (new
        // rollover era). The stale same-tag entry must not serve it.
        assert_eq!(tlb.lookup(VA, &wrapped), None);
        assert!(tlb.is_empty(), "rollover adoption is a full flush");
        let s = tlb.stats();
        assert_eq!(s.switch_flushes, 1);
        assert_eq!(s.flushes, 1);
    }

    /// Many-space churn keeps the FIFO eviction machinery sound: after
    /// arbitrary space switches (which under tagging keep entries
    /// resident) the *global* capacity bound and deterministic FIFO
    /// order still hold across whichever ASIDs are cached.
    #[test]
    fn fifo_eviction_survives_space_churn() {
        let phys = PhysMem::new();
        let spaces: Vec<AddressSpace> = (0..3).map(|_| AddressSpace::new()).collect();
        for s in &spaces {
            for i in 0..8u64 {
                s.map(VA + i * PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA)
                    .unwrap();
            }
        }
        let run = || {
            let mut tlb = Tlb::with_capacity(4);
            // Bounce across spaces, warming a deterministic sequence in
            // each; capacity is shared across ASIDs, so the bound holds
            // mid-churn even though switches no longer flush.
            for (round, s) in spaces.iter().cycle().take(7).enumerate() {
                for &i in &[0u64, 1, 2, 3, 0, 4, 5] {
                    let va = VA + ((i + round as u64) % 8) * PAGE_SIZE as u64;
                    if tlb.lookup(va, s).is_none() {
                        warm(&mut tlb, s, va);
                    }
                }
                assert!(tlb.len() <= 4, "capacity bound violated mid-churn");
            }
            let last = &spaces[(7 - 1) % spaces.len()];
            let mut alive: Vec<u64> = (0..8u64)
                .filter(|&i| tlb.lookup(VA + i * PAGE_SIZE as u64, last).is_some())
                .collect();
            alive.sort_unstable();
            alive
        };
        let first = run();
        assert!(!first.is_empty() && first.len() <= 4);
        assert_eq!(first, run(), "churned eviction must stay deterministic");
    }

    #[test]
    fn capacity_bounded() {
        let mut tlb = Tlb::with_capacity(4);
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        for i in 0..8u64 {
            let va = VA + i * 4096;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            let t = space.translate(va, Access::Read).unwrap();
            tlb.insert(&t);
        }
        assert!(tlb.len() <= 4);
    }

    /// The second current-generation probe of a page is served by the
    /// direct-mapped micro-TLB (counted in `micro_hits`), and a
    /// shootdown lazily invalidates it via the generation tag — the
    /// stale entry must *miss*, not serve a retired translation.
    #[test]
    fn micro_tlb_hits_then_dies_on_shootdown() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        // Bind to the space and warm both levels.
        assert_eq!(tlb.lookup(VA, &space), None);
        warm(&mut tlb, &space, VA);
        let gen = space.generation();
        // First current-gen probe: insert() already promoted the page
        // into the micro-TLB, so this is an L1 hit.
        assert!(matches!(tlb.try_lookup_current(VA, gen), Some(Some(_))));
        assert_eq!(tlb.stats().micro_hits, 1);
        assert!(matches!(tlb.try_lookup_current(VA, gen), Some(Some(_))));
        assert_eq!(tlb.stats().micro_hits, 2);
        // Shootdown: the generation advances, so the fast path refuses
        // to answer at all (caller must resynchronize under a pin).
        space.unmap(VA).unwrap();
        assert_eq!(tlb.try_lookup_current(VA, space.generation()), None);
        // After resyncing, the retired page misses at both levels.
        assert_eq!(tlb.lookup(VA, &space), None);
        let g2 = space.generation();
        assert!(matches!(tlb.try_lookup_current(VA, g2), Some(None)));
        assert_eq!(tlb.stats().micro_hits, 2, "no stale micro serve");
    }

    /// Space switches no longer clear the micro-TLB: the ASID half of
    /// the entry tag makes the stale entry unreachable *lazily* while
    /// a foreign space is bound — and lets it hit again, without any
    /// refill, the moment its owner returns.
    #[test]
    fn micro_tlb_survives_switches_via_lazy_asid_tags() {
        let phys = PhysMem::new();
        let a = AddressSpace::new();
        let b = AddressSpace::new();
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA + PAGE_SIZE as u64, phys.alloc(), PteFlags::DATA)
            .unwrap();
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(VA, &a), None);
        warm(&mut tlb, &a, VA);
        assert!(matches!(
            tlb.try_lookup_current(VA, a.generation()),
            Some(Some(_))
        ));
        let micro_hits_before = tlb.stats().micro_hits;
        // Switch to space B (no flush — the binding changes)…
        assert_eq!(tlb.lookup(VA, &b), None);
        // …then probe A's page at B's numerically-equal generation: the
        // A-tagged micro entry must not resurface while B is bound.
        assert_eq!(b.generation(), a.generation());
        assert!(matches!(
            tlb.try_lookup_current(VA, b.generation()),
            Some(None)
        ));
        assert_eq!(
            tlb.stats().micro_hits,
            micro_hits_before,
            "no cross-ASID micro serve"
        );
        // Switch back to A: the same micro entry hits again — it was
        // never evicted, only masked by the tag.
        assert!(tlb.lookup(VA, &a).is_some());
        assert!(matches!(
            tlb.try_lookup_current(VA, a.generation()),
            Some(Some(_))
        ));
        assert!(tlb.stats().micro_hits > micro_hits_before);
        assert_eq!(tlb.stats().flushes, 0);
    }

    /// `lookup_batch` pays one resynchronization for N probes and
    /// reports per-page hits/misses positionally.
    #[test]
    fn batch_lookup_syncs_once() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space
            .map_range(VA, &phys.alloc_n(4), PteFlags::DATA)
            .unwrap();
        let mut tlb = Tlb::new();
        for i in [0u64, 2] {
            warm(&mut tlb, &space, VA + i * PAGE_SIZE as u64);
        }
        // Lag the TLB by one shootdown outside the cached pages.
        space
            .map(VA + 0x100_0000, phys.alloc(), PteFlags::DATA)
            .unwrap();
        space.unmap(VA + 0x100_0000).unwrap();
        let pages: Vec<u64> = (0..4u64).map(|i| VA + i * PAGE_SIZE as u64).collect();
        let mut reader = space.reader();
        let pin = reader.pin();
        let got = tlb.lookup_batch(&pages, &pin);
        drop(pin);
        assert!(got[0].is_some() && got[2].is_some());
        assert!(got[1].is_none() && got[3].is_none());
        let s = tlb.stats();
        assert_eq!(s.partial_flushes, 1, "one sync covered the whole batch");
        assert_eq!(s.flushes, 0);
    }

    /// Stats bookkeeping: `switches`, `switch_flushes`, and
    /// `horizon_flushes` flow through `AddAssign` and `delta_since`
    /// like every other counter, and the flush-attribution invariant
    /// holds across a mixed workload.
    #[test]
    fn split_flush_accounting_stays_consistent() {
        let phys = PhysMem::new();
        let a = AddressSpace::with_inval_log(2);
        let b = AddressSpace::new();
        a.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        b.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        assert!(tlb.lookup(VA, &a).is_none());
        warm(&mut tlb, &a, VA);
        let before = tlb.stats();
        // A horizon flush (lag past a 2-slot log)…
        for i in 1..=4u64 {
            let va = VA + i * PAGE_SIZE as u64;
            a.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            a.unmap(va).unwrap();
        }
        assert_eq!(tlb.lookup(VA, &a), None);
        // …then two tagged switches (no flushes; outcomes irrelevant)…
        let _ = tlb.lookup(VA, &b);
        let _ = tlb.lookup(VA, &a);
        // …then one explicit flush (attributed to neither bucket).
        tlb.flush();
        let d = tlb.stats().delta_since(&before);
        assert_eq!(d.horizon_flushes, 1);
        assert_eq!(d.switches, 2);
        assert_eq!(d.switch_flushes, 0);
        assert_eq!(d.flushes, 2, "horizon + explicit");
        assert!(d.flushes >= d.switch_flushes + d.horizon_flushes);
        let mut acc = TlbStats::default();
        acc += before;
        acc += d;
        assert_eq!(acc, tlb.stats(), "AddAssign must mirror delta_since");
    }
}
