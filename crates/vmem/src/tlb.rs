//! A per-CPU TLB model.
//!
//! Re-randomization forces page-table updates, and page-table updates
//! force TLB invalidations — the cost the paper discusses in §4.3. The
//! model uses *generation-based shootdown*: [`crate::AddressSpace`] bumps
//! its generation on unmap/protect, and a [`Tlb`] whose snapshot lags the
//! space's generation flushes itself on the next lookup, counting the
//! flush.

use crate::{Pte, Translation};
use std::collections::HashMap;

/// TLB hit/miss/flush counters.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct TlbStats {
    /// Lookups that hit a cached translation.
    pub hits: u64,
    /// Lookups that missed (caller must walk the page table).
    pub misses: u64,
    /// Whole-TLB flushes caused by generation bumps.
    pub flushes: u64,
}

/// A single CPU's translation cache.
///
/// Not thread-safe by design: each simulated CPU owns one.
#[derive(Debug, Default)]
pub struct Tlb {
    entries: HashMap<u64, Pte>,
    generation: u64,
    stats: TlbStats,
    capacity: usize,
}

impl Tlb {
    /// A TLB with the default capacity (1536 entries, Skylake-ish).
    pub fn new() -> Tlb {
        Tlb::with_capacity(1536)
    }

    /// A TLB bounded to `capacity` cached pages.
    pub fn with_capacity(capacity: usize) -> Tlb {
        Tlb {
            entries: HashMap::new(),
            generation: 0,
            stats: TlbStats::default(),
            capacity,
        }
    }

    /// Look up the translation for the page containing `va`, flushing
    /// first if `current_generation` moved past our snapshot.
    pub fn lookup(&mut self, page_va: u64, current_generation: u64) -> Option<Pte> {
        if self.generation != current_generation {
            self.entries.clear();
            self.generation = current_generation;
            self.stats.flushes += 1;
        }
        match self.entries.get(&page_va) {
            Some(pte) => {
                self.stats.hits += 1;
                Some(*pte)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Install a translation produced by a page-table walk.
    pub fn insert(&mut self, t: &Translation) {
        if self.entries.len() >= self.capacity {
            // Cheap pseudo-random eviction: drop an arbitrary entry.
            if let Some(&k) = self.entries.keys().next() {
                self.entries.remove(&k);
            }
        }
        self.entries.insert(t.page_va, t.pte);
    }

    /// Explicitly flush (e.g. on simulated context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.stats.flushes += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Access, AddressSpace, PhysMem, PteFlags};

    const VA: u64 = 0x0012_3456_7800_0000;

    #[test]
    fn hit_after_insert() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        let g = space.generation();
        assert_eq!(tlb.lookup(VA, g), None);
        let t = space.translate(VA, Access::Read).unwrap();
        tlb.insert(&t);
        assert_eq!(tlb.lookup(VA, g), Some(t.pte));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn generation_bump_flushes() {
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        space.map(VA, phys.alloc(), PteFlags::DATA).unwrap();
        let mut tlb = Tlb::new();
        let t = space.translate(VA, Access::Read).unwrap();
        tlb.insert(&t);
        // Unmap bumps the generation; the stale entry must not be served.
        space.unmap(VA).unwrap();
        assert_eq!(tlb.lookup(VA, space.generation()), None);
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn capacity_bounded() {
        let mut tlb = Tlb::with_capacity(4);
        let phys = PhysMem::new();
        let space = AddressSpace::new();
        for i in 0..8u64 {
            let va = VA + i * 4096;
            space.map(va, phys.alloc(), PteFlags::DATA).unwrap();
            let t = space.translate(va, Access::Read).unwrap();
            tlb.insert(&t);
        }
        assert!(tlb.entries.len() <= 4);
    }
}
